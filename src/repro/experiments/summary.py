"""One-shot reproduction summary — every paper artifact in a single run.

``repro-all`` (or ``python -m repro.experiments.summary``) regenerates
Fig. 2, Fig. 3, Table 1 and Table 2 with shared caching and prints a
compact paper-vs-measured digest plus pass/fail verdicts on the paper's
qualitative claims.  Intended as the "does the reproduction hold?" smoke
command for a fresh checkout.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field

import numpy as np

from repro.experiments import paper_values
from repro.experiments.fig2_ber import Fig2Config, run as run_fig2
from repro.experiments.fig3_decision_regions import Fig3Config, run as run_fig3
from repro.experiments.table1_adaptation import Table1Config, run as run_table1
from repro.experiments.table2_fpga import Table2Config, run as run_table2
from repro.utils.tables import format_table

__all__ = ["SummaryConfig", "SummaryResult", "run", "main"]


@dataclass(frozen=True)
class SummaryConfig:
    """Scales the whole digest (quick = CI-sized, full = paper-sized)."""

    seed: int = 1234
    train_steps: int = 2500
    max_symbols: int = 600_000
    max_errors: int = 2000
    quick: bool = False

    def fig2(self) -> Fig2Config:
        snrs = (0.0, 4.0, 8.0, 12.0) if self.quick else paper_values.FIG2_SNR_DBS
        return Fig2Config(
            snr_dbs=snrs, train_steps=self.train_steps, seed=self.seed,
            max_symbols=self.max_symbols, max_errors=self.max_errors,
        )

    def fig3(self) -> Fig3Config:
        return Fig3Config(train_steps=self.train_steps, seed=self.seed,
                          resolution=128 if self.quick else 192)

    def table1(self) -> Table1Config:
        return Table1Config(train_steps=self.train_steps, seed=self.seed,
                            n_symbols=self.max_symbols, max_errors=self.max_errors)


@dataclass
class SummaryResult:
    """Digest of all four artifacts plus claim verdicts."""

    claims: dict[str, bool] = field(default_factory=dict)
    elapsed_s: dict[str, float] = field(default_factory=dict)

    @property
    def all_hold(self) -> bool:
        return all(self.claims.values())

    def to_table(self) -> str:
        rows = [[name, "HOLDS" if ok else "VIOLATED"] for name, ok in self.claims.items()]
        return format_table(["paper claim", "verdict"], rows,
                            title="Reproduction digest — qualitative claims")


def run(config: SummaryConfig | None = None, *, verbose: bool = True) -> SummaryResult:
    """Regenerate everything; returns claim verdicts (printing optional)."""
    cfg = config if config is not None else SummaryConfig()
    result = SummaryResult()

    def timed(name, fn):
        t0 = time.time()
        out = fn()
        result.elapsed_s[name] = time.time() - t0
        return out

    fig2 = timed("fig2", lambda: run_fig2(cfg.fig2()))
    fig3 = timed("fig3", lambda: run_fig3(cfg.fig3()))
    tab1 = timed("table1", lambda: run_table1(cfg.table1()))
    tab2 = timed("table2", lambda: run_table2(Table2Config()))

    if verbose:
        print(fig2.to_table(), "\n")
        for snr, (before, after) in fig3.snapshots.items():
            print(f"Fig. 3 rotation @ {snr:+.0f} dB: {fig3.rotations[snr]:+.4f} rad "
                  f"(target {np.pi/4:+.4f})")
        print()
        print(tab1.to_table(), "\n")
        print(tab2.to_table(), "\n")

    # verdicts on the paper's qualitative claims
    ae_on_curve = all(
        fig2.series["ae"][i].ber < 1.5 * fig2.series["conventional"][i].ber + 1e-4
        for i in range(len(fig2.snr_dbs))
    )
    cent_on_curve = all(
        fig2.series["centroid_lsq"][i].ber < 1.6 * fig2.series["ae"][i].ber + 1e-3
        for i in range(len(fig2.snr_dbs))
    )
    rotations_ok = all(abs(rot - np.pi / 4) < 0.12 for rot in fig3.rotations.values())
    adaptation_ok = all(
        m["ae_after"] < 2.5 * m["baseline"] and m["centroid_after"] < 2.5 * m["baseline"]
        for m in tab1.measured.values()
    )
    catastrophic_before = all(
        m["ae_before"] > 0.25 for m in tab1.measured.values()
    )
    ratios_ok = (
        tab2.ratio("dsp") == 352
        and 8 < tab2.ratio("lut") < 13
        and 30 < tab2.ratio("energy") < 70
    )
    result.claims = {
        "Fig.2: AE on the conventional curve": ae_on_curve,
        "Fig.2: centroid demapping tracks the AE": cent_on_curve,
        "Fig.3: decision regions rotate by pi/4": rotations_ok,
        "Tab.1: unadapted receivers catastrophic (~0.32)": catastrophic_before,
        "Tab.1: retraining recovers the baseline": adaptation_ok,
        "Tab.2: LUT ~10x / DSP 352x / energy ~50x": ratios_ok,
        "Tab.2: Gbps by replication": bool(tab2.replication and tab2.replication.reaches_gbps),
    }
    if verbose:
        print(result.to_table())
        total = sum(result.elapsed_s.values())
        print(f"\ntotal runtime {total:.1f}s "
              f"({', '.join(f'{k} {v:.1f}s' for k, v in result.elapsed_s.items())})")
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI: run the full digest; exit code 1 if any claim is violated."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep for smoke testing")
    parser.add_argument("--seed", type=int, default=1234)
    args = parser.parse_args(argv)
    result = run(SummaryConfig(seed=args.seed, quick=args.quick))
    return 0 if result.all_hold else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
