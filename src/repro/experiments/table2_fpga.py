"""Table 2 — FPGA implementation comparison (architectural model).

Builds the paper's three ZU3EG designs with the calibrated dataflow model
(:mod:`repro.fpga`), cross-validates the closed-form latency/II against the
cycle-accurate pipeline simulation, and reports the headline ratios the
paper draws its conclusions from (LUT ~10×, DSP 352×, power ~10×, energy
~50×, Gbps-by-replication).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.fpga.accelerator import (
    ImplementationReport,
    build_ae_inference_accelerator,
    build_ae_training_accelerator,
)
from repro.fpga.device import ZU3EG
from repro.fpga.report import PAPER_TABLE2, format_table2
from repro.fpga.soft_demapper_core import (
    ReplicationPlan,
    build_soft_demapper_core,
    replicate_for_throughput,
)

__all__ = ["Table2Config", "Table2Result", "run", "main"]


@dataclass(frozen=True)
class Table2Config:
    """Model parameters (defaults = paper's designs at 150 MHz)."""

    clock_hz: float = 150e6
    simulate_items: int = 256  # cycle-accurate cross-check depth


@dataclass
class Table2Result:
    """Model reports per design, the replication plan, and key ratios."""

    reports: dict[str, ImplementationReport] = field(default_factory=dict)
    replication: ReplicationPlan | None = None
    simulated_ii: dict[str, float] = field(default_factory=dict)
    simulated_latency_cycles: dict[str, int] = field(default_factory=dict)

    def ratio(self, metric: str) -> float:
        """AE-inference / soft-demapper ratio of a report attribute."""
        soft = self.reports["soft_demapper"]
        ae = self.reports["ae_inference"]
        if metric == "lut":
            return ae.resources.lut / soft.resources.lut
        if metric == "dsp":
            return ae.resources.dsp / soft.resources.dsp
        if metric == "power":
            return ae.power_w / soft.power_w
        if metric == "energy":
            return ae.energy_per_symbol_j / soft.energy_per_symbol_j
        raise ValueError(f"unknown metric {metric!r}")

    def to_table(self) -> str:
        lines = [format_table2(self.reports), ""]
        lines.append(
            "headline ratios (AE-inference / soft-demapper): "
            f"LUT {self.ratio('lut'):.1f}x (paper ~10x), "
            f"DSP {self.ratio('dsp'):.0f}x (paper 352x), "
            f"power {self.ratio('power'):.1f}x (paper ~10x), "
            f"energy {self.ratio('energy'):.0f}x (paper ~50x)"
        )
        if self.replication is not None:
            r = self.replication
            lines.append(
                f"replication: {r.instances} soft-demapper cores on the ZU3EG -> "
                f"{r.aggregate_bits_per_s / 1e9:.1f} Gbit/s at {r.total_power_w:.2f} W "
                f"(paper: 'throughput in the order of Gbps')"
            )
        return "\n".join(lines)


def run(config: Table2Config | None = None) -> Table2Result:
    """Build the three designs, simulate their pipelines, assemble Table 2."""
    cfg = config if config is not None else Table2Config()
    result = Table2Result()
    builders = {
        "soft_demapper": lambda: build_soft_demapper_core(clock_hz=cfg.clock_hz),
        "ae_inference": lambda: build_ae_inference_accelerator(clock_hz=cfg.clock_hz),
        "ae_training": lambda: build_ae_training_accelerator(clock_hz=cfg.clock_hz),
    }
    for key, build in builders.items():
        pipeline, report = build()
        result.reports[key] = report
        sim = pipeline.simulate(cfg.simulate_items)
        result.simulated_ii[key] = sim.steady_state_ii
        result.simulated_latency_cycles[key] = sim.first_latency
    result.replication = replicate_for_throughput(result.reports["soft_demapper"], device=ZU3EG)
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI: regenerate Table 2 and print paper-vs-model rows + ratios."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clock-mhz", type=float, default=150.0)
    args = parser.parse_args(argv)
    result = run(Table2Config(clock_hz=args.clock_mhz * 1e6))
    print(result.to_table())
    # cross-check: cycle-accurate simulation vs closed-form model
    for key, report in result.reports.items():
        paper = PAPER_TABLE2[key]
        print(
            f"{key}: simulated II {result.simulated_ii[key]:.1f} cyc, "
            f"latency {result.simulated_latency_cycles[key]} cyc; "
            f"paper latency {paper.latency_s * args.clock_mhz * 1e6:.1f} cyc"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
