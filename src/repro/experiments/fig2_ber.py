"""Fig. 2 — BER of different demapping algorithms vs SNR.

For each SNR in 0..12 dB (Eb/N0), the AE (mapper + demapper) is trained
over AWGN; then four receivers are measured on fresh symbols:

* ``conventional`` — max-log demapping of Gray 16-QAM (the paper's
  conventional soft demapper),
* ``ae`` — ANN demapper inference,
* ``centroid_vertex`` — max-log on vertex-extracted centroids (the paper's
  extraction algorithm),
* ``centroid_lsq`` — max-log on Voronoi-inversion centroids (this repo's
  extension).

Expected shape (paper §III-B): AE and centroid curves sit on the
conventional curve up to 10 dB; the (vertex) centroid curve degrades
slightly at 12 dB.

All Monte-Carlo measurements run through the batched multi-SNR engine
(:func:`repro.link.sweep.sweep_ber`): the conventional receiver — whose
point set is SNR-independent — evaluates the *whole* axis from shared
common-random-numbers draws in one call, while the per-SNR receivers (the
AE and its extracted centroids are retrained per point) run as single-point
sweeps through the same kernels.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.channels.awgn import AWGNChannel
from repro.experiments import paper_values
from repro.experiments.cache import DEFAULT_SEED, DEFAULT_TRAIN_STEPS, trained_ae_system
from repro.extraction.hybrid import HybridDemapper
from repro.link.simulator import BERResult
from repro.link.sweep import AnnBitsReceiver, HardBitsReceiver, sweep_ber
from repro.modulation.constellations import qam_constellation
from repro.utils.ascii_plot import ber_curve_plot
from repro.utils.tables import format_table

__all__ = ["Fig2Config", "Fig2Result", "run", "main"]


@dataclass(frozen=True)
class Fig2Config:
    """Sweep parameters (defaults reproduce the paper's axis)."""

    snr_dbs: tuple[float, ...] = paper_values.FIG2_SNR_DBS
    train_steps: int = DEFAULT_TRAIN_STEPS
    seed: int = DEFAULT_SEED
    max_symbols: int = 2_000_000
    max_errors: int = 2000
    extraction_resolution: int = 256
    extraction_extent: float = 1.5


@dataclass
class Fig2Result:
    """BER per SNR per receiver, plus the analytic reference."""

    snr_dbs: list[float] = field(default_factory=list)
    series: dict[str, list[BERResult]] = field(default_factory=dict)
    analytic: list[float] = field(default_factory=list)

    def bers(self, name: str) -> list[float]:
        return [r.ber for r in self.series[name]]

    def to_table(self) -> str:
        headers = ["SNR [dB]", "analytic(paper conv.)", "conventional", "ae",
                   "centroid_vertex", "centroid_lsq"]
        rows = []
        for i, snr in enumerate(self.snr_dbs):
            rows.append([
                snr,
                self.analytic[i],
                self.series["conventional"][i].ber,
                self.series["ae"][i].ber,
                self.series["centroid_vertex"][i].ber,
                self.series["centroid_lsq"][i].ber,
            ])
        return format_table(headers, rows, float_fmt=".3e", title="Fig. 2: BER of demapping algorithms")

    def to_plot(self) -> str:
        return ber_curve_plot(
            self.snr_dbs,
            {name: self.bers(name) for name in self.series},
            title="Fig. 2: BER vs SNR (Eb/N0)",
        )


def run(config: Fig2Config | None = None) -> Fig2Result:
    """Regenerate Fig. 2.  Deterministic in ``config.seed``."""
    cfg = config if config is not None else Fig2Config()
    result = Fig2Result()
    qam = qam_constellation(16)

    # Conventional Gray-QAM receiver: the point set is SNR-independent, so
    # the whole axis batches into one CRN sweep (shared symbol/noise draws,
    # multi-sigma kernels, per-point early stop).
    conv_sweep = sweep_ber(
        qam, cfg.snr_dbs, HardBitsReceiver(qam), cfg.max_symbols,
        rng=cfg.seed, max_errors=cfg.max_errors,
    )

    for snr in cfg.snr_dbs:
        point_seed = cfg.seed + int(round(snr * 10))
        system = trained_ae_system(snr, seed=cfg.seed, steps=cfg.train_steps)
        learned = system.mapper.constellation()
        sigma2 = AWGNChannel(snr, 4).sigma2
        demapper = system.demapper

        # AE inference on the learned constellation (trained per point, so a
        # single-point sweep through the same engine)
        r_ae = sweep_ber(
            learned, (snr,), AnnBitsReceiver(demapper), cfg.max_symbols,
            rng=point_seed, max_errors=cfg.max_errors,
        )[snr]

        # extracted centroids (paper method + our lsq): hard bits equal the
        # nearest-centroid decision, so the hard sweep receiver applies
        series_cent = {}
        for method in ("vertex", "lsq"):
            hybrid = HybridDemapper.extract(
                demapper, sigma2,
                extent=cfg.extraction_extent, resolution=cfg.extraction_resolution,
                method=method, fallback=learned,
            )
            series_cent[method] = sweep_ber(
                learned, (snr,), HardBitsReceiver(hybrid.constellation),
                cfg.max_symbols, rng=point_seed, max_errors=cfg.max_errors,
            )[snr]

        result.snr_dbs.append(snr)
        result.series.setdefault("conventional", []).append(conv_sweep[snr])
        result.series.setdefault("ae", []).append(r_ae)
        result.series.setdefault("centroid_vertex", []).append(series_cent["vertex"])
        result.series.setdefault("centroid_lsq", []).append(series_cent["lsq"])
        result.analytic.append(paper_values.fig2_conventional_reference(snr))
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI: regenerate Fig. 2 and print the table + ASCII plot."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--train-steps", type=int, default=DEFAULT_TRAIN_STEPS)
    parser.add_argument("--max-symbols", type=int, default=2_000_000)
    args = parser.parse_args(argv)
    cfg = Fig2Config(seed=args.seed, train_steps=args.train_steps, max_symbols=args.max_symbols)
    result = run(cfg)
    print(result.to_table())
    print()
    print(result.to_plot())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
