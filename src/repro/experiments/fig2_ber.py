"""Fig. 2 — BER of different demapping algorithms vs SNR.

For each SNR in 0..12 dB (Eb/N0), the AE (mapper + demapper) is trained
over AWGN; then four receivers are measured on fresh symbols:

* ``conventional`` — max-log demapping of Gray 16-QAM (the paper's
  conventional soft demapper),
* ``ae`` — ANN demapper inference,
* ``centroid_vertex`` — max-log on vertex-extracted centroids (the paper's
  extraction algorithm),
* ``centroid_lsq`` — max-log on Voronoi-inversion centroids (this repo's
  extension).

Expected shape (paper §III-B): AE and centroid curves sit on the
conventional curve up to 10 dB; the (vertex) centroid curve degrades
slightly at 12 dB.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.channels.awgn import AWGNChannel
from repro.experiments import paper_values
from repro.experiments.cache import DEFAULT_SEED, DEFAULT_TRAIN_STEPS, trained_ae_system
from repro.extraction.hybrid import HybridDemapper
from repro.link.simulator import BERResult, simulate_ber
from repro.modulation.constellations import qam_constellation
from repro.modulation.demapper import MaxLogDemapper
from repro.utils.ascii_plot import ber_curve_plot
from repro.utils.complexmath import complex_to_real2
from repro.utils.tables import format_table

__all__ = ["Fig2Config", "Fig2Result", "run", "main"]


@dataclass(frozen=True)
class Fig2Config:
    """Sweep parameters (defaults reproduce the paper's axis)."""

    snr_dbs: tuple[float, ...] = paper_values.FIG2_SNR_DBS
    train_steps: int = DEFAULT_TRAIN_STEPS
    seed: int = DEFAULT_SEED
    max_symbols: int = 2_000_000
    max_errors: int = 2000
    extraction_resolution: int = 256
    extraction_extent: float = 1.5


@dataclass
class Fig2Result:
    """BER per SNR per receiver, plus the analytic reference."""

    snr_dbs: list[float] = field(default_factory=list)
    series: dict[str, list[BERResult]] = field(default_factory=dict)
    analytic: list[float] = field(default_factory=list)

    def bers(self, name: str) -> list[float]:
        return [r.ber for r in self.series[name]]

    def to_table(self) -> str:
        headers = ["SNR [dB]", "analytic(paper conv.)", "conventional", "ae",
                   "centroid_vertex", "centroid_lsq"]
        rows = []
        for i, snr in enumerate(self.snr_dbs):
            rows.append([
                snr,
                self.analytic[i],
                self.series["conventional"][i].ber,
                self.series["ae"][i].ber,
                self.series["centroid_vertex"][i].ber,
                self.series["centroid_lsq"][i].ber,
            ])
        return format_table(headers, rows, float_fmt=".3e", title="Fig. 2: BER of demapping algorithms")

    def to_plot(self) -> str:
        return ber_curve_plot(
            self.snr_dbs,
            {name: self.bers(name) for name in self.series},
            title="Fig. 2: BER vs SNR (Eb/N0)",
        )


def run(config: Fig2Config | None = None) -> Fig2Result:
    """Regenerate Fig. 2.  Deterministic in ``config.seed``."""
    cfg = config if config is not None else Fig2Config()
    result = Fig2Result()
    qam = qam_constellation(16)
    for snr in cfg.snr_dbs:
        rng = np.random.default_rng(cfg.seed + int(round(snr * 10)))
        system = trained_ae_system(snr, seed=cfg.seed, steps=cfg.train_steps)
        learned = system.mapper.constellation()
        sigma2 = AWGNChannel(snr, 4).sigma2

        def fresh_channel() -> AWGNChannel:
            return AWGNChannel(snr, 4, rng=np.random.default_rng(rng.integers(2**63)))

        # conventional: Gray QAM + max-log
        conv = MaxLogDemapper(qam)
        r_conv = simulate_ber(
            qam, fresh_channel(), lambda y: conv.demap_bits(y, sigma2),
            cfg.max_symbols, rng=rng, max_errors=cfg.max_errors,
        )

        # AE inference on the learned constellation
        demapper = system.demapper
        r_ae = simulate_ber(
            learned, fresh_channel(),
            lambda y: (demapper.forward(complex_to_real2(y)) > 0).astype(np.int8),
            cfg.max_symbols, rng=rng, max_errors=cfg.max_errors,
        )

        # extracted centroids (paper method + our lsq)
        series_cent = {}
        for method in ("vertex", "lsq"):
            hybrid = HybridDemapper.extract(
                demapper, sigma2,
                extent=cfg.extraction_extent, resolution=cfg.extraction_resolution,
                method=method, fallback=learned,
            )
            series_cent[method] = simulate_ber(
                learned, fresh_channel(), hybrid.demap_bits,
                cfg.max_symbols, rng=rng, max_errors=cfg.max_errors,
            )

        result.snr_dbs.append(snr)
        result.series.setdefault("conventional", []).append(r_conv)
        result.series.setdefault("ae", []).append(r_ae)
        result.series.setdefault("centroid_vertex", []).append(series_cent["vertex"])
        result.series.setdefault("centroid_lsq", []).append(series_cent["lsq"])
        result.analytic.append(paper_values.fig2_conventional_reference(snr))
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI: regenerate Fig. 2 and print the table + ASCII plot."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--train-steps", type=int, default=DEFAULT_TRAIN_STEPS)
    parser.add_argument("--max-symbols", type=int, default=2_000_000)
    args = parser.parse_args(argv)
    cfg = Fig2Config(seed=args.seed, train_steps=args.train_steps, max_symbols=args.max_symbols)
    result = run(cfg)
    print(result.to_table())
    print()
    print(result.to_plot())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
