"""Published reference values (Ney et al., IPDPSW 2022).

Table 1 and Table 2 are transcribed verbatim from the paper.  Fig. 2 is a
line plot without a data table; the conventional-demapper curve coincides
with the analytic Gray 16-QAM BER (our calibration anchor), and the paper's
stated qualitative result is that AE-inference and centroid extraction lie
on that curve up to 10 dB with slight centroid degradation at 12 dB — the
Fig. 2 bench asserts exactly those relations.
"""

from __future__ import annotations

from repro.utils.stats import gray_qam_ber_approx

__all__ = [
    "TABLE1",
    "FIG2_SNR_DBS",
    "fig2_conventional_reference",
    "FIG3_SNRS",
    "FIG3_PHASE_OFFSET",
]

#: Table 1 — phase-offset adaptation (BER).  Keys: SNR (dB, Eb/N0).
TABLE1: dict[float, dict[str, float]] = {
    -2.0: {
        "baseline": 0.19,
        "ae_before": 0.318,
        "centroid_before": 0.319,
        "ae_after": 0.199,
        "centroid_after": 0.2005,
    },
    8.0: {
        "baseline": 0.0103,
        "ae_before": 0.316,
        "centroid_before": 0.323,
        "ae_after": 0.0127,
        "centroid_after": 0.0143,
    },
}

#: Fig. 2 sweep range (the x axis of the paper's BER plot).
FIG2_SNR_DBS: tuple[float, ...] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0)


def fig2_conventional_reference(snr_db: float) -> float:
    """Analytic Gray 16-QAM BER — the paper's conventional-demapper curve."""
    return float(gray_qam_ber_approx(snr_db, order=16))


#: Fig. 3 shows decision regions at these SNRs, before/after retraining...
FIG3_SNRS: tuple[float, ...] = (-2.0, 8.0)
#: ...for a channel with this fixed phase offset (paper: π/4).
FIG3_PHASE_OFFSET: float = 0.7853981633974483
