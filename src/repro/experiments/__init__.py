"""Experiment drivers — one module per paper artifact.

Each driver exposes ``run(config) -> result`` (pure, seedable) and a
``main()`` console entry point that prints paper-vs-measured tables (and
ASCII figures).  The pytest-benchmark harnesses in ``benchmarks/`` wrap the
same ``run`` functions, so CLI runs and benchmark runs produce identical
numbers for identical seeds.

* :mod:`repro.experiments.fig2_ber` — Fig. 2 (BER vs SNR, 3 curves)
* :mod:`repro.experiments.fig3_decision_regions` — Fig. 3 (DR + centroids
  before/after retraining)
* :mod:`repro.experiments.table1_adaptation` — Table 1 (phase-offset
  adaptation)
* :mod:`repro.experiments.table2_fpga` — Table 2 (FPGA implementation)
"""

from repro.experiments import paper_values
from repro.experiments.cache import trained_ae_system

__all__ = ["paper_values", "trained_ae_system"]
