"""Fig. 3 — decision regions and centroids before/after retraining.

The AE is trained over a 0-offset AWGN channel; the channel then acquires a
π/4 phase offset and the demapper is retrained on it.  Decision regions and
extracted centroids are recorded before and after, at SNR −2 dB and 8 dB.

Expected shape (paper §III-C): "for both SNRs the DRs are rotated by π/4
after retraining" — quantified here by the mean centroid rotation angle.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.autoencoder.training import ReceiverFinetuner, TrainingConfig
from repro.channels.awgn import AWGNChannel
from repro.channels.composite import CompositeChannel
from repro.channels.phase import PhaseOffsetChannel
from repro.experiments import paper_values
from repro.experiments.cache import DEFAULT_SEED, DEFAULT_TRAIN_STEPS, trained_ae_system
from repro.extraction.centroids import CentroidSet, extract_centroids
from repro.extraction.decision_regions import DecisionRegionGrid, sample_decision_regions
from repro.utils.ascii_plot import decision_region_plot

__all__ = ["Fig3Config", "Fig3Snapshot", "Fig3Result", "run", "main", "mean_rotation_angle"]


@dataclass(frozen=True)
class Fig3Config:
    """Experiment parameters (defaults = paper setup)."""

    snr_dbs: tuple[float, ...] = paper_values.FIG3_SNRS
    phase_offset: float = paper_values.FIG3_PHASE_OFFSET
    train_steps: int = DEFAULT_TRAIN_STEPS
    retrain_steps: int = 1500
    seed: int = DEFAULT_SEED
    resolution: int = 192
    extent: float = 1.5
    method: str = "vertex"


@dataclass
class Fig3Snapshot:
    """One panel of Fig. 3: a DR grid plus its centroids."""

    grid: DecisionRegionGrid
    centroids: CentroidSet

    def to_plot(self, title: str) -> str:
        return decision_region_plot(
            self.grid.labels, self.grid.extent,
            centroids=self.centroids.points, title=title,
        )


@dataclass
class Fig3Result:
    """Snapshots keyed by SNR: (before, after) + measured rotation."""

    snapshots: dict[float, tuple[Fig3Snapshot, Fig3Snapshot]] = field(default_factory=dict)
    rotations: dict[float, float] = field(default_factory=dict)
    phase_offset: float = paper_values.FIG3_PHASE_OFFSET


def mean_rotation_angle(before: np.ndarray, after: np.ndarray) -> float:
    """Average rotation (radians) mapping centroid set ``before`` to ``after``.

    Uses the phase of the complex correlation Σ conj(b)·a — the least-squares
    rigid rotation estimate for matched complex point sets.
    """
    b = np.asarray(before, dtype=np.complex128).ravel()
    a = np.asarray(after, dtype=np.complex128).ravel()
    if b.shape != a.shape or b.size == 0:
        raise ValueError("centroid sets must be matched and non-empty")
    corr = np.sum(np.conj(b) * a)
    if abs(corr) == 0:
        raise ValueError("degenerate centroid sets (zero correlation)")
    return float(np.angle(corr))


def _snapshot(demapper, order: int, cfg: Fig3Config, fallback) -> Fig3Snapshot:
    grid = sample_decision_regions(
        demapper.bit_probability_fn(), extent=cfg.extent, resolution=cfg.resolution
    )
    cents = extract_centroids(grid, order, method=cfg.method)
    if cents.n_missing:
        cents = cents.fill_missing(fallback.points)
    return Fig3Snapshot(grid=grid, centroids=cents)


def run(config: Fig3Config | None = None) -> Fig3Result:
    """Regenerate Fig. 3 (both SNR panels, before and after retraining)."""
    cfg = config if config is not None else Fig3Config()
    result = Fig3Result(phase_offset=cfg.phase_offset)
    for snr in cfg.snr_dbs:
        system = trained_ae_system(snr, seed=cfg.seed, steps=cfg.train_steps, copy=True)
        constellation = system.mapper.constellation()
        before = _snapshot(system.demapper, system.order, cfg, constellation)

        rng = np.random.default_rng(cfg.seed + 77 + int(round(snr * 10)))
        rotated = CompositeChannel(
            [PhaseOffsetChannel(cfg.phase_offset), AWGNChannel(snr, 4, rng=rng)]
        )
        finetuner = ReceiverFinetuner(
            system,
            TrainingConfig(steps=cfg.retrain_steps, batch_size=512, lr=2e-3),
            constellation=constellation,
        )
        finetuner.run(rotated, rng)
        after = _snapshot(system.demapper, system.order, cfg, constellation.rotated(cfg.phase_offset))

        result.snapshots[snr] = (before, after)
        result.rotations[snr] = mean_rotation_angle(before.centroids.points, after.centroids.points)
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI: regenerate Fig. 3 and print ASCII decision-region panels."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--resolution", type=int, default=192)
    args = parser.parse_args(argv)
    cfg = Fig3Config(seed=args.seed, resolution=args.resolution)
    result = run(cfg)
    for snr, (before, after) in result.snapshots.items():
        print(before.to_plot(f"SNR {snr:+.0f} dB — before retraining"))
        print()
        print(after.to_plot(f"SNR {snr:+.0f} dB — after retraining (pi/4 offset)"))
        print(
            f"measured centroid rotation: {result.rotations[snr]:+.4f} rad "
            f"(expected {cfg.phase_offset:+.4f} rad)\n"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
