"""Table 1 — phase-offset adaptation of AE and centroid demapping.

For SNR ∈ {−2, 8} dB: the AE is trained on 0-offset AWGN; the channel then
rotates by π/4.  Measured BERs:

* ``baseline``        — conventional max-log on the frozen constellation,
  no phase offset (the lower bound: "a channel without any phase-offset");
* ``ae_before``/``centroid_before`` — AE inference / extracted-centroid
  demapping on the rotated channel *before* retraining (upper bound: "a
  conventional algorithm without any adaption");
* ``ae_after``/``centroid_after``  — the same after demapper retraining.

Expected shape (paper §III-C): before ≈ 0.32 at both SNRs; after ≈ the
baseline (phase shift "nearly fully compensated"), with no drawback from
using extracted centroids instead of AE inference.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.autoencoder.training import ReceiverFinetuner, TrainingConfig
from repro.channels.awgn import AWGNChannel
from repro.channels.composite import CompositeChannel
from repro.channels.phase import PhaseOffsetChannel
from repro.experiments import paper_values
from repro.experiments.cache import DEFAULT_SEED, DEFAULT_TRAIN_STEPS, trained_ae_system
from repro.extraction.hybrid import HybridDemapper
from repro.link.simulator import simulate_ber
from repro.modulation.demapper import MaxLogDemapper
from repro.utils.complexmath import complex_to_real2
from repro.utils.tables import format_table

__all__ = ["Table1Config", "Table1Result", "run", "main"]


@dataclass(frozen=True)
class Table1Config:
    """Experiment parameters (defaults = paper setup)."""

    snr_dbs: tuple[float, ...] = paper_values.FIG3_SNRS
    phase_offset: float = paper_values.FIG3_PHASE_OFFSET
    train_steps: int = DEFAULT_TRAIN_STEPS
    retrain_steps: int = 1500
    seed: int = DEFAULT_SEED
    n_symbols: int = 500_000
    max_errors: int = 3000
    extraction_method: str = "lsq"
    extraction_resolution: int = 256
    extraction_extent: float = 1.5


@dataclass
class Table1Result:
    """Measured BERs per SNR, aligned with ``paper_values.TABLE1``."""

    measured: dict[float, dict[str, float]] = field(default_factory=dict)

    def to_table(self) -> str:
        headers = ["SNR", "source", "baseline", "AE before", "Cent. before",
                   "AE after", "Cent. after"]
        rows = []
        for snr, m in self.measured.items():
            p = paper_values.TABLE1.get(snr)
            if p is not None:
                rows.append([snr, "paper", p["baseline"], p["ae_before"],
                             p["centroid_before"], p["ae_after"], p["centroid_after"]])
            rows.append([snr, "measured", m["baseline"], m["ae_before"],
                         m["centroid_before"], m["ae_after"], m["centroid_after"]])
        return format_table(headers, rows, float_fmt=".4f",
                            title="Table 1: phase-offset adaptation (BER)")


def run(config: Table1Config | None = None) -> Table1Result:
    """Regenerate Table 1.  Deterministic in ``config.seed``."""
    cfg = config if config is not None else Table1Config()
    result = Table1Result()
    for snr in cfg.snr_dbs:
        seed_base = cfg.seed + 1000 + int(round(snr * 10))
        system = trained_ae_system(snr, seed=cfg.seed, steps=cfg.train_steps, copy=True)
        constellation = system.mapper.constellation()
        sigma2 = AWGNChannel(snr, 4).sigma2
        demapper = system.demapper

        def clean_channel(s=snr, sb=seed_base):
            return AWGNChannel(s, 4, rng=np.random.default_rng(sb))

        def rotated_channel(s=snr, sb=seed_base):
            return CompositeChannel(
                [PhaseOffsetChannel(cfg.phase_offset),
                 AWGNChannel(s, 4, rng=np.random.default_rng(sb + 1))]
            )

        def measure(channel, demap_fn, sb_off: int):
            return simulate_ber(
                constellation, channel, demap_fn, cfg.n_symbols,
                rng=np.random.default_rng(seed_base + sb_off), max_errors=cfg.max_errors,
            ).ber

        def ann_demap(y):
            return (demapper.forward(complex_to_real2(y)) > 0).astype(np.int8)

        def extract():
            return HybridDemapper.extract(
                demapper, sigma2,
                extent=cfg.extraction_extent, resolution=cfg.extraction_resolution,
                method=cfg.extraction_method, fallback=constellation,
            )

        conv = MaxLogDemapper(constellation)
        baseline = measure(clean_channel(), lambda y: conv.demap_bits(y, sigma2), 10)

        ae_before = measure(rotated_channel(), ann_demap, 11)
        centroid_before = measure(rotated_channel(), extract().demap_bits, 12)

        rng_retrain = np.random.default_rng(seed_base + 13)
        ReceiverFinetuner(
            system,
            TrainingConfig(steps=cfg.retrain_steps, batch_size=512, lr=2e-3),
            constellation=constellation,
        ).run(rotated_channel(), rng_retrain)

        ae_after = measure(rotated_channel(), ann_demap, 14)
        centroid_after = measure(rotated_channel(), extract().demap_bits, 15)

        result.measured[snr] = {
            "baseline": baseline,
            "ae_before": ae_before,
            "centroid_before": centroid_before,
            "ae_after": ae_after,
            "centroid_after": centroid_after,
        }
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI: regenerate Table 1 and print paper-vs-measured rows."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--n-symbols", type=int, default=500_000)
    args = parser.parse_args(argv)
    cfg = Table1Config(seed=args.seed, n_symbols=args.n_symbols)
    print(run(cfg).to_table())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
