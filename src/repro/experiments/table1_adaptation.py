"""Table 1 — phase-offset adaptation of AE and centroid demapping.

For SNR ∈ {−2, 8} dB: the AE is trained on 0-offset AWGN; the channel then
rotates by π/4.  Measured BERs:

* ``baseline``        — conventional max-log on the frozen constellation,
  no phase offset (the lower bound: "a channel without any phase-offset");
* ``ae_before``/``centroid_before`` — AE inference / extracted-centroid
  demapping on the rotated channel *before* retraining (upper bound: "a
  conventional algorithm without any adaption");
* ``ae_after``/``centroid_after``  — the same after demapper retraining.

Expected shape (paper §III-C): before ≈ 0.32 at both SNRs; after ≈ the
baseline (phase shift "nearly fully compensated"), with no drawback from
using extracted centroids instead of AE inference.

Every measurement runs on the batched sweep engine
(:func:`repro.link.sweep.sweep_ber`): the phase offset enters as a
``pre_channel_factory`` stage ahead of the implicit AWGN scaling, the AE
receivers use the allocation-free inference path, and the centroid
receivers are built by :class:`~repro.link.sweep.ExtractedCentroidFactory`
— centroids re-extracted at each sweep point's σ² *inside* the engine
(the ROADMAP's "sweep-native adaptation experiments" item).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from repro.autoencoder.training import ReceiverFinetuner, TrainingConfig
from repro.channels.awgn import AWGNChannel
from repro.channels.composite import CompositeChannel
from repro.channels.factories import PhaseOffsetFactory
from repro.channels.phase import PhaseOffsetChannel
from repro.experiments import paper_values
from repro.experiments.cache import DEFAULT_SEED, DEFAULT_TRAIN_STEPS, trained_ae_system
from repro.link.sweep import (
    AnnBitsReceiver,
    ExtractedCentroidFactory,
    HardBitsReceiver,
    sweep_ber,
)
from repro.utils.tables import format_table

__all__ = ["Table1Config", "Table1Result", "run", "main"]


@dataclass(frozen=True)
class Table1Config:
    """Experiment parameters (defaults = paper setup)."""

    snr_dbs: tuple[float, ...] = paper_values.FIG3_SNRS
    phase_offset: float = paper_values.FIG3_PHASE_OFFSET
    train_steps: int = DEFAULT_TRAIN_STEPS
    retrain_steps: int = 1500
    seed: int = DEFAULT_SEED
    n_symbols: int = 500_000
    max_errors: int = 3000
    extraction_method: str = "lsq"
    extraction_resolution: int = 256
    extraction_extent: float = 1.5


@dataclass
class Table1Result:
    """Measured BERs per SNR, aligned with ``paper_values.TABLE1``."""

    measured: dict[float, dict[str, float]] = field(default_factory=dict)

    def to_table(self) -> str:
        headers = ["SNR", "source", "baseline", "AE before", "Cent. before",
                   "AE after", "Cent. after"]
        rows = []
        for snr, m in self.measured.items():
            p = paper_values.TABLE1.get(snr)
            if p is not None:
                rows.append([snr, "paper", p["baseline"], p["ae_before"],
                             p["centroid_before"], p["ae_after"], p["centroid_after"]])
            rows.append([snr, "measured", m["baseline"], m["ae_before"],
                         m["centroid_before"], m["ae_after"], m["centroid_after"]])
        return format_table(headers, rows, float_fmt=".4f",
                            title="Table 1: phase-offset adaptation (BER)")


def run(config: Table1Config | None = None) -> Table1Result:
    """Regenerate Table 1 on the sweep engine.  Deterministic in ``config.seed``.

    Each system is trained per SNR, so each sweep has one point; the engine
    still supplies the CRN chunking, deterministic per-chunk spawns, phase
    offset as a pre-noise stage, and — for the centroid rows — per-point
    re-extraction via ``receiver_factory``.
    """
    cfg = config if config is not None else Table1Config()
    result = Table1Result()
    rotation = PhaseOffsetFactory(cfg.phase_offset)
    for snr in cfg.snr_dbs:
        seed_base = cfg.seed + 1000 + int(round(snr * 10))
        system = trained_ae_system(snr, seed=cfg.seed, steps=cfg.train_steps, copy=True)
        constellation = system.mapper.constellation()
        demapper = system.demapper

        def measure(receiver, sb_off: int, *, rotated: bool, factory=None):
            res = sweep_ber(
                constellation, (snr,), receiver, cfg.n_symbols,
                rng=np.random.default_rng(seed_base + sb_off),
                max_errors=cfg.max_errors,
                pre_channel_factory=rotation if rotated else None,
                receiver_factory=factory,
            )
            return res[snr].ber

        def extraction_factory():
            return ExtractedCentroidFactory(
                demapper, fallback=constellation,
                method=cfg.extraction_method,
                extent=cfg.extraction_extent,
                resolution=cfg.extraction_resolution,
            )

        baseline = measure(HardBitsReceiver(constellation), 10, rotated=False)

        ae_before = measure(AnnBitsReceiver(demapper), 11, rotated=True)
        centroid_before = measure(None, 12, rotated=True, factory=extraction_factory())

        rng_retrain = np.random.default_rng(seed_base + 13)
        retrain_channel = CompositeChannel(
            [PhaseOffsetChannel(cfg.phase_offset),
             AWGNChannel(snr, 4, rng=np.random.default_rng(seed_base + 1))]
        )
        ReceiverFinetuner(
            system,
            TrainingConfig(steps=cfg.retrain_steps, batch_size=512, lr=2e-3),
            constellation=constellation,
        ).run(retrain_channel, rng_retrain)

        ae_after = measure(AnnBitsReceiver(demapper), 14, rotated=True)
        centroid_after = measure(None, 15, rotated=True, factory=extraction_factory())

        result.measured[snr] = {
            "baseline": baseline,
            "ae_before": ae_before,
            "centroid_before": centroid_before,
            "ae_after": ae_after,
            "centroid_after": centroid_after,
        }
    return result


def main(argv: list[str] | None = None) -> int:
    """CLI: regenerate Table 1 and print paper-vs-measured rows."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--n-symbols", type=int, default=500_000)
    args = parser.parse_args(argv)
    cfg = Table1Config(seed=args.seed, n_symbols=args.n_symbols)
    print(run(cfg).to_table())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
