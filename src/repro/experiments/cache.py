"""Process-level cache of trained AE systems.

Several experiments and benchmarks need "the AE trained at SNR x"; training
is cheap (~1-2 s) but not free, so identical (snr, seed, steps) requests
share one trained system per process.  Results are deterministic in the
seed, so caching does not change any measured number.

The cache returns the *system* (mutable — retraining experiments modify the
demapper), so callers that retrain must request ``copy=True`` to leave the
cached instance pristine for other users.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.autoencoder.demapper_ann import DemapperANN
from repro.autoencoder.mapper_ann import MapperANN
from repro.autoencoder.system import AESystem
from repro.autoencoder.training import E2ETrainer, TrainingConfig
from repro.channels.awgn import AWGNChannel

__all__ = ["trained_ae_system", "DEFAULT_TRAIN_STEPS", "DEFAULT_SEED"]

DEFAULT_TRAIN_STEPS = 3000
DEFAULT_SEED = 1234


@lru_cache(maxsize=32)
def _train(snr_db: float, seed: int, steps: int, batch_size: int, order: int) -> AESystem:
    rng = np.random.default_rng(seed)
    mapper = MapperANN(order, init="qam", rng=rng)
    demapper = DemapperANN(mapper.bits_per_symbol, rng=rng)
    channel = AWGNChannel(snr_db, mapper.bits_per_symbol, rng=rng)
    system = AESystem(mapper, demapper, channel)
    E2ETrainer(system, TrainingConfig(steps=steps, batch_size=batch_size)).run(rng)
    return system


def trained_ae_system(
    snr_db: float,
    *,
    seed: int = DEFAULT_SEED,
    steps: int = DEFAULT_TRAIN_STEPS,
    batch_size: int = 512,
    order: int = 16,
    copy: bool = False,
) -> AESystem:
    """AE jointly trained over AWGN at ``snr_db`` (Eb/N0), cached per process.

    With ``copy=True`` the demapper (and mapper) are deep-copied so the
    caller may retrain freely without invalidating the cache.
    """
    system = _train(float(snr_db), int(seed), int(steps), int(batch_size), int(order))
    if not copy:
        return system
    mapper = MapperANN(system.order, init="qam")
    mapper.load_state_dict(system.mapper.state_dict())
    demapper = system.demapper.copy()
    channel = AWGNChannel(snr_db, mapper.bits_per_symbol, rng=np.random.default_rng(seed + 1))
    return AESystem(mapper, demapper, channel)
