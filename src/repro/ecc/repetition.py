"""Repetition code with majority-vote decoding (teaching/testing baseline)."""

from __future__ import annotations

import numpy as np

from repro.ecc.hamming import DecodeResult

__all__ = ["RepetitionCode"]


class RepetitionCode:
    """(n, 1) repetition code; n must be odd for unambiguous majority vote."""

    def __init__(self, n: int = 3):
        if n < 1 or n % 2 == 0:
            raise ValueError("repetition factor must be odd and >= 1")
        self.n = n
        self.k = 1

    @property
    def rate(self) -> float:
        """Code rate 1/n."""
        return 1.0 / self.n

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Repeat every bit n times: ``(N,)`` or ``(N,1)`` -> ``(N, n)``."""
        d = np.asarray(data)
        if not np.all((d == 0) | (d == 1)):
            raise ValueError("bits must be 0/1 valued")
        d = d.reshape(-1)
        return np.repeat(d[:, None], self.n, axis=1).astype(np.int8)

    def decode(self, codewords: np.ndarray) -> DecodeResult:
        """Majority vote; ``corrected`` counts minority bits overruled."""
        cw = np.asarray(codewords)
        if cw.ndim == 1:
            if cw.size % self.n != 0:
                raise ValueError(f"length {cw.size} not a multiple of {self.n}")
            cw = cw.reshape(-1, self.n)
        if cw.shape[1] != self.n:
            raise ValueError(f"expected (N, {self.n}), got {cw.shape}")
        ones = cw.sum(axis=1, dtype=np.int64)
        decided = (ones > self.n // 2).astype(np.int8)
        # flips corrected = number of received bits disagreeing with the vote
        corrected = int(np.where(decided == 1, self.n - ones, ones).sum())
        return DecodeResult(data=decided[:, None], corrected=corrected, detected_uncorrectable=0)
