"""Hamming codes over GF(2), vectorised with NumPy.

:class:`HammingCode` is the classic (2^r−1, 2^r−1−r) single-error-correcting
code in systematic form; :class:`ExtendedHammingCode` appends an overall
parity bit for SECDED (single-error-correct, double-error-detect).

``decode`` returns the number of corrected bit flips — the statistic the
paper (via ref [9]) uses to detect channel degradation and trigger demapper
retraining.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["HammingCode", "ExtendedHammingCode", "DecodeResult"]


@dataclass(frozen=True)
class DecodeResult:
    """Outcome of a block decode.

    Attributes
    ----------
    data:
        Decoded information bits, shape ``(blocks, k)``.
    corrected:
        Number of single-bit corrections applied across all blocks.
    detected_uncorrectable:
        Number of blocks flagged as having detected-but-uncorrectable errors
        (always 0 for plain Hamming; double errors for SECDED).
    """

    data: np.ndarray
    corrected: int
    detected_uncorrectable: int


class HammingCode:
    """Systematic Hamming(n=2^r−1, k=n−r) encoder/decoder.

    The parity-check matrix column for (1-indexed) position ``j`` is the
    binary expansion of ``j``; parity bits sit at power-of-two positions.
    All operations are vectorised over blocks: ``encode`` takes ``(N, k)``
    bits and returns ``(N, n)``.
    """

    def __init__(self, r: int = 3):
        if r < 2:
            raise ValueError("r must be >= 2 (r=3 gives Hamming(7,4))")
        self.r = int(r)
        self.n = (1 << r) - 1
        self.k = self.n - r
        positions = np.arange(1, self.n + 1)
        # H columns = binary of position (LSB in row 0): shape (r, n)
        self._h = ((positions[None, :] >> np.arange(r)[:, None]) & 1).astype(np.int8)
        self._parity_pos = (1 << np.arange(r)) - 1  # 0-indexed positions of parity bits
        is_parity = np.zeros(self.n, dtype=bool)
        is_parity[self._parity_pos] = True
        self._data_pos = np.flatnonzero(~is_parity)
        # Parity equations: parity bit p (row p of H) covers data positions
        # where H[p, data_pos] == 1.  (H[p, parity_pos[p]] == 1 only there.)
        self._parity_eq = self._h[:, self._data_pos].astype(np.int8)  # (r, k)
        # Syndrome value -> 0-indexed error position (syndrome s corresponds
        # to 1-indexed position s).
        self._syndrome_weights = (1 << np.arange(r)).astype(np.int64)

    @property
    def rate(self) -> float:
        """Code rate k/n."""
        return self.k / self.n

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``(N, k)`` (or flat multiple-of-k) information bits -> ``(N, n)``."""
        d = self._as_blocks(data, self.k)
        cw = np.zeros((d.shape[0], self.n), dtype=np.int8)
        cw[:, self._data_pos] = d
        parity = (d @ self._parity_eq.T) & 1  # (N, r), XOR via mod-2 matmul
        cw[:, self._parity_pos] = parity.astype(np.int8)
        return cw

    def decode(self, codewords: np.ndarray) -> DecodeResult:
        """Syndrome-decode ``(N, n)`` blocks, correcting up to one flip each."""
        cw = self._as_blocks(codewords, self.n).copy()
        syndrome_bits = (cw @ self._h.T) & 1  # (N, r)
        syndromes = syndrome_bits.astype(np.int64) @ self._syndrome_weights  # (N,)
        errors = syndromes > 0
        rows = np.flatnonzero(errors)
        if rows.size:
            cols = syndromes[rows] - 1  # 1-indexed position -> 0-indexed
            cw[rows, cols] ^= 1
        return DecodeResult(
            data=cw[:, self._data_pos],
            corrected=int(rows.size),
            detected_uncorrectable=0,
        )

    @staticmethod
    def _as_blocks(bits: np.ndarray, width: int) -> np.ndarray:
        b = np.asarray(bits)
        if not np.all((b == 0) | (b == 1)):
            raise ValueError("bits must be 0/1 valued")
        if b.ndim == 1:
            if b.size % width != 0:
                raise ValueError(f"bit count {b.size} not a multiple of {width}")
            b = b.reshape(-1, width)
        if b.ndim != 2 or b.shape[1] != width:
            raise ValueError(f"expected (N, {width}) bits, got shape {b.shape}")
        return b.astype(np.int8)


class ExtendedHammingCode(HammingCode):
    """SECDED: Hamming(2^r, 2^r−1−r) with an overall even-parity bit.

    Decoding behaviour:

    * syndrome 0, parity OK            -> no error
    * syndrome ≠ 0, parity violated    -> single error, corrected
    * syndrome 0, parity violated      -> error in the parity bit itself
    * syndrome ≠ 0, parity OK          -> double error: detected, not corrected
    """

    def __init__(self, r: int = 3):
        super().__init__(r)
        self.n_ext = self.n + 1

    def encode(self, data: np.ndarray) -> np.ndarray:
        inner = super().encode(data)
        overall = inner.sum(axis=1, dtype=np.int64) & 1
        return np.concatenate([inner, overall[:, None].astype(np.int8)], axis=1)

    def decode(self, codewords: np.ndarray) -> DecodeResult:
        cw = self._as_blocks(codewords, self.n_ext).copy()
        inner = cw[:, : self.n]
        parity_bit = cw[:, self.n]
        syndrome_bits = (inner @ self._h.T) & 1
        syndromes = syndrome_bits.astype(np.int64) @ self._syndrome_weights
        parity_calc = (inner.sum(axis=1, dtype=np.int64) + parity_bit) & 1  # 0 if even parity holds

        single = (syndromes > 0) & (parity_calc == 1)
        double = (syndromes > 0) & (parity_calc == 0)
        parity_only = (syndromes == 0) & (parity_calc == 1)

        rows = np.flatnonzero(single)
        if rows.size:
            cols = syndromes[rows] - 1
            inner[rows, cols] ^= 1
        corrected = int(rows.size + np.count_nonzero(parity_only))
        return DecodeResult(
            data=inner[:, self._data_pos],
            corrected=corrected,
            detected_uncorrectable=int(np.count_nonzero(double)),
        )
