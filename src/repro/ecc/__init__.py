"""Error-correction substrate used for retraining triggers (paper ref [9]).

The paper proposes detecting channel changes either via pilot-BER or via the
number of bit flips corrected by an outer ECC (Schibisch et al. 2018).  This
package provides the outer code machinery:

* :class:`HammingCode` — Hamming(2^r−1, 2^r−1−r) with single-error
  correction; decode reports the number of corrected flips (the trigger
  statistic).
* :class:`ExtendedHammingCode` — SECDED variant (detects double errors).
* :class:`RepetitionCode` — trivial majority-vote code (testing/teaching).
* CRC-8/16 frame checks, block/random interleavers.

The convolutional code + CRC + interleaver trio is also the substrate of
the serving stack's coded-traffic path
(:mod:`repro.serving.coding`): the soft Viterbi ACS there runs through the
``viterbi_decode`` backend kernel, bit-identical to
:meth:`ConvolutionalCode.decode_soft`'s pure-NumPy reference.

``from repro.ecc import *`` is a supported, stable surface: ``__all__``
below is the package's public API, tiered by code family.
"""

from repro.ecc.convolutional import ConvolutionalCode, ViterbiResult
from repro.ecc.crc import Crc, CRC8_CCITT, CRC16_CCITT
from repro.ecc.hamming import ExtendedHammingCode, HammingCode
from repro.ecc.interleaver import BlockInterleaver, RandomInterleaver
from repro.ecc.repetition import RepetitionCode

__all__ = [
    # convolutional coding (hard/soft Viterbi — the serving coded path)
    "ConvolutionalCode",
    "ViterbiResult",
    # block codes (retraining-trigger statistics)
    "HammingCode",
    "ExtendedHammingCode",
    "RepetitionCode",
    # frame integrity
    "Crc",
    "CRC8_CCITT",
    "CRC16_CCITT",
    # interleaving (burst-error decorrelation)
    "BlockInterleaver",
    "RandomInterleaver",
]
