"""Bit interleavers (block and pseudo-random permutation).

Interleaving decorrelates burst errors before the Hamming decoder — relevant
for the fading channels in :mod:`repro.channels.fading`, where a deep fade
corrupts contiguous runs of symbols.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["BlockInterleaver", "RandomInterleaver"]


class BlockInterleaver:
    """Row-in/column-out block interleaver of size rows x cols."""

    def __init__(self, rows: int, cols: int):
        if rows < 1 or cols < 1:
            raise ValueError("rows and cols must be >= 1")
        self.rows = rows
        self.cols = cols
        self.size = rows * cols
        idx = np.arange(self.size).reshape(rows, cols)
        self._perm = idx.T.ravel()           # write row-wise, read column-wise
        self._inv = np.argsort(self._perm)

    def interleave(self, bits: np.ndarray) -> np.ndarray:
        """Permute a bit array whose length is a multiple of rows*cols."""
        b = np.asarray(bits)
        if b.size % self.size != 0:
            raise ValueError(f"length {b.size} not a multiple of {self.size}")
        blocks = b.reshape(-1, self.size)
        return blocks[:, self._perm].reshape(b.shape)

    def deinterleave(self, bits: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`interleave`."""
        b = np.asarray(bits)
        if b.size % self.size != 0:
            raise ValueError(f"length {b.size} not a multiple of {self.size}")
        blocks = b.reshape(-1, self.size)
        return blocks[:, self._inv].reshape(b.shape)


class RandomInterleaver:
    """Fixed pseudo-random permutation of blocks of ``size`` bits."""

    def __init__(self, size: int, rng: np.random.Generator | int | None = None):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size
        rng = as_generator(rng)
        self._perm = rng.permutation(size)
        self._inv = np.argsort(self._perm)

    def interleave(self, bits: np.ndarray) -> np.ndarray:
        """Permute a bit array whose length is a multiple of ``size``."""
        b = np.asarray(bits)
        if b.size % self.size != 0:
            raise ValueError(f"length {b.size} not a multiple of {self.size}")
        blocks = b.reshape(-1, self.size)
        return blocks[:, self._perm].reshape(b.shape)

    def deinterleave(self, bits: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`interleave`."""
        b = np.asarray(bits)
        if b.size % self.size != 0:
            raise ValueError(f"length {b.size} not a multiple of {self.size}")
        blocks = b.reshape(-1, self.size)
        return blocks[:, self._inv].reshape(b.shape)
