"""Table-driven CRC over bit arrays (byte-aligned frames).

Used for frame integrity checks in the link layer: a failed CRC marks a
frame as bad without needing the true payload, complementing the
corrected-flip statistic from :mod:`repro.ecc.hamming`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Crc", "CRC8_CCITT", "CRC16_CCITT"]


class Crc:
    """Generic table-driven CRC with MSB-first bit order.

    Parameters
    ----------
    width:
        CRC width in bits (8 or 16 supported).
    poly:
        Generator polynomial (without the implicit leading 1).
    init:
        Initial register value.
    xor_out:
        Final XOR applied to the register.
    """

    def __init__(self, width: int, poly: int, *, init: int = 0, xor_out: int = 0, name: str = "crc"):
        if width not in (8, 16):
            raise ValueError("only widths 8 and 16 are supported")
        self.width = width
        self.poly = poly
        self.init = init
        self.xor_out = xor_out
        self.name = name
        self._mask = (1 << width) - 1
        self._top = 1 << (width - 1)
        self._table = self._build_table()

    def _build_table(self) -> np.ndarray:
        table = np.zeros(256, dtype=np.int64)
        for byte in range(256):
            reg = byte << (self.width - 8)
            for _ in range(8):
                if reg & self._top:
                    reg = ((reg << 1) ^ self.poly) & self._mask
                else:
                    reg = (reg << 1) & self._mask
            table[byte] = reg
        return table

    def compute_bytes(self, data: np.ndarray) -> int:
        """CRC of a uint8 byte sequence."""
        b = np.asarray(data, dtype=np.uint8).ravel()
        reg = self.init
        shift = self.width - 8
        for byte in b.tolist():  # register recurrence is inherently sequential
            idx = ((reg >> shift) ^ byte) & 0xFF
            reg = ((reg << 8) & self._mask) ^ int(self._table[idx])
        return (reg ^ self.xor_out) & self._mask

    def compute_bits(self, bits: np.ndarray) -> int:
        """CRC of a 0/1 bit array whose length is a multiple of 8 (MSB first)."""
        b = np.asarray(bits)
        if b.size % 8 != 0:
            raise ValueError(f"bit count {b.size} must be a multiple of 8")
        if not np.all((b == 0) | (b == 1)):
            raise ValueError("bits must be 0/1 valued")
        packed = np.packbits(b.astype(np.uint8))
        return self.compute_bytes(packed)

    def append(self, bits: np.ndarray) -> np.ndarray:
        """Return ``bits`` with the CRC appended (MSB first)."""
        crc = self.compute_bits(bits)
        crc_bits = ((crc >> np.arange(self.width - 1, -1, -1)) & 1).astype(np.int8)
        return np.concatenate([np.asarray(bits, dtype=np.int8), crc_bits])

    def check(self, bits_with_crc: np.ndarray) -> bool:
        """True iff the trailing CRC matches the payload."""
        b = np.asarray(bits_with_crc)
        if b.size < self.width:
            raise ValueError("frame shorter than CRC width")
        payload, tail = b[: -self.width], b[-self.width :]
        crc = self.compute_bits(payload)
        crc_bits = ((crc >> np.arange(self.width - 1, -1, -1)) & 1).astype(np.int8)
        return bool(np.array_equal(tail.astype(np.int8), crc_bits))


#: CRC-8/CCITT (poly 0x07)
CRC8_CCITT = Crc(8, 0x07, name="CRC-8/CCITT")
#: CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF)
CRC16_CCITT = Crc(16, 0x1021, init=0xFFFF, name="CRC-16/CCITT-FALSE")
