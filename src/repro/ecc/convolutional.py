"""Convolutional coding with hard/soft Viterbi decoding.

Extends the ECC substrate beyond block codes: a rate-1/n feed-forward
convolutional encoder and a Viterbi decoder that accepts either hard bits
(Hamming branch metric) or **LLRs** (correlation metric).  The soft decoder
is what makes this interesting for the paper's pipeline: coded performance
depends on the *quality* of the demapper's soft outputs, so it
discriminates between exact log-MAP, max-log on the true constellation,
and max-log on extracted centroids (see ``benchmarks/bench_ext_coded_ber.py``).

LLR convention matches :mod:`repro.modulation.demapper`: ``llr > 0`` ⇒ bit 1,
so the correlation metric for a branch emitting coded bits ``c ∈ {0,1}ⁿ``
is ``Σ_j c_j · llr_j`` (the constant term is path-independent).

The add-compare-select inner loop has two homes: :meth:`ConvolutionalCode.
_viterbi` is the pure-NumPy reference (a Python loop over trellis steps),
and ``backend.viterbi_decode`` (:mod:`repro.backend`) is the kernel form
the serving engine dispatches — same IEEE operations per state, so
``decode_soft(llrs, backend=...)`` is bit-identical to the reference on
every tier (pinned by ``tests/backend/test_backend_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConvolutionalCode", "ViterbiResult"]


@dataclass(frozen=True)
class ViterbiResult:
    """Decoded information bits plus the winning path metric."""

    data: np.ndarray
    path_metric: float


class ConvolutionalCode:
    """Rate-1/n feed-forward convolutional code with terminated blocks.

    Parameters
    ----------
    generators:
        Generator polynomials as integers; bit ``i`` (LSB = current input)
        taps shift-register position ``i``.  The classic K=3 code is
        ``(0b111, 0b101)`` (octal 7,5).
    constraint_length:
        K = number of taps (register length + 1).  States = 2^(K-1).

    Encoding appends ``K-1`` zero tail bits so every block terminates in
    state 0 (standard trellis termination — the decoder exploits it).
    """

    def __init__(self, generators: tuple[int, ...] = (0b111, 0b101), constraint_length: int = 3):
        if constraint_length < 2 or constraint_length > 10:
            raise ValueError("constraint_length must lie in [2, 10]")
        if len(generators) < 2:
            raise ValueError("need at least two generator polynomials (rate <= 1/2)")
        for g in generators:
            if g <= 0 or g >= (1 << constraint_length):
                raise ValueError(f"generator {g:#o} out of range for K={constraint_length}")
        self.generators = tuple(int(g) for g in generators)
        self.k = int(constraint_length)
        self.n_out = len(generators)
        self.n_states = 1 << (self.k - 1)

        # Precompute the trellis: for state s and input bit b, the register
        # content is (b << (K-1)) | s read as [newest ... oldest]; outputs
        # are parities of generator taps; next state drops the oldest bit.
        states = np.arange(self.n_states)
        self._next_state = np.empty((self.n_states, 2), dtype=np.int64)
        self._outputs = np.empty((self.n_states, 2, self.n_out), dtype=np.int8)
        for b in (0, 1):
            register = (states << 1) | b  # newest bit in LSB, oldest in MSB
            self._next_state[:, b] = register & (self.n_states - 1)
            for j, g in enumerate(self.generators):
                taps = register & g
                # parity via vectorised popcount
                parity = np.zeros_like(taps)
                t = taps.copy()
                while np.any(t):
                    parity ^= t & 1
                    t >>= 1
                self._outputs[:, b, j] = parity.astype(np.int8)
        # trellis tables are derived lazily (and cached) — batch decoders
        # fetch them once per launch instead of re-sorting per block
        self._trellis: tuple[np.ndarray, np.ndarray] | None = None
        self._outputs_f64: np.ndarray | None = None

    # -- encode -----------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Asymptotic code rate 1/n (termination overhead excluded)."""
        return 1.0 / self.n_out

    def encoded_length(self, n_info: int) -> int:
        """Coded bits produced for ``n_info`` information bits (with tail)."""
        return (n_info + self.k - 1) * self.n_out

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode a flat 0/1 bit array; returns the terminated coded stream."""
        d = np.asarray(data)
        if d.ndim != 1:
            raise ValueError("data must be a flat bit array")
        if not np.all((d == 0) | (d == 1)):
            raise ValueError("bits must be 0/1 valued")
        bits = np.concatenate([d.astype(np.int8), np.zeros(self.k - 1, dtype=np.int8)])
        out = np.empty((bits.size, self.n_out), dtype=np.int8)
        state = 0
        for t, b in enumerate(bits.tolist()):
            out[t] = self._outputs[state, b]
            state = self._next_state[state, b]
        assert state == 0  # termination invariant
        return out.ravel()

    # -- decode -----------------------------------------------------------------
    def _transition_tables(self):
        """Transitions grouped by destination: for every next state exactly
        two (source state, input bit) arrivals.  Returns ``(src, inb)`` of
        shape ``(n_states, 2)`` such that
        ``next_state[src[ns, i], inb[ns, i]] == ns``.  Cached: the tables
        depend only on the (immutable) generator set, and batch decoders
        share them across every block of a launch."""
        if self._trellis is None:
            states = np.arange(self.n_states)
            src_all = np.repeat(states, 2)
            inb_all = np.tile(np.array([0, 1]), self.n_states)
            dst_all = self._next_state[src_all, inb_all]
            order = np.argsort(dst_all, kind="stable")
            src = src_all[order].reshape(self.n_states, 2)
            inb = inb_all[order].reshape(self.n_states, 2)
            self._trellis = (
                np.ascontiguousarray(src, dtype=np.int64),
                np.ascontiguousarray(inb, dtype=np.int64),
            )
        return self._trellis

    def trellis_tables(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The kernel decoder's view of the trellis: ``(src, inb, outputs)``.

        ``src``/``inb`` are the destination-grouped ``(n_states, 2)`` int64
        arrival tables of :meth:`_transition_tables`; ``outputs`` is the
        per-(state, input) coded-bit table as float64 ``(n_states, 2, n_out)``
        — the operand ``decode_soft`` contracts LLRs against.  All three are
        cached and must be treated as read-only (``backend.viterbi_decode``
        and :func:`repro.backend.dispatch.grouped_viterbi_decode` take them
        verbatim, so sessions sharing a code share one table set).
        """
        src, inb = self._transition_tables()
        if self._outputs_f64 is None:
            self._outputs_f64 = self._outputs.astype(np.float64)
        return src, inb, self._outputs_f64

    def _viterbi(self, branch_metrics: np.ndarray) -> ViterbiResult:
        """Max-metric Viterbi over per-step branch metrics.

        ``branch_metrics[t, s, b]`` is the metric of leaving state ``s``
        with input ``b`` at step ``t``.  Starts and ends in state 0
        (terminated blocks).  Note the trellis structure gives input bit =
        LSB of the destination state, so only predecessor states need to be
        stored for traceback.
        """
        n_steps = branch_metrics.shape[0]
        src, inb = self._transition_tables()
        metric = np.full(self.n_states, -np.inf)
        metric[0] = 0.0
        prev_state = np.empty((n_steps, self.n_states), dtype=np.int64)
        for t in range(n_steps):
            arrivals = metric[src] + branch_metrics[t][src, inb]  # (S, 2)
            winner = np.argmax(arrivals, axis=1)
            metric = arrivals[np.arange(self.n_states), winner]
            prev_state[t] = src[np.arange(self.n_states), winner]

        # traceback from state 0 (terminated)
        state = 0
        bits = np.empty(n_steps, dtype=np.int8)
        for t in range(n_steps - 1, -1, -1):
            bits[t] = state & 1  # input bit that led INTO `state`
            state = prev_state[t, state]
        info = bits[: n_steps - (self.k - 1)]
        final = metric[0]
        return ViterbiResult(data=info, path_metric=float(final))

    def decode_hard(self, coded: np.ndarray) -> ViterbiResult:
        """Hard-decision Viterbi (maximise bit agreements)."""
        c = np.asarray(coded)
        if c.size % self.n_out != 0:
            raise ValueError(f"coded length {c.size} not a multiple of {self.n_out}")
        r = c.reshape(-1, self.n_out).astype(np.float64)
        # metric = agreements: Σ_j [c_j == r_j] = Σ_j (2r-1)(2c-1)/2 + const
        return self.decode_soft((2.0 * r - 1.0) * 4.0)  # pseudo-LLRs, llr>0 <=> bit 1

    def decode_soft(self, llrs: np.ndarray, *, backend=None) -> ViterbiResult:
        """Soft-decision Viterbi from LLRs (llr > 0 ⇒ coded bit 1).

        ``backend=None`` runs the pure-NumPy reference ACS
        (:meth:`_viterbi`); passing a :mod:`repro.backend` instance routes
        the inner loop through its ``viterbi_decode`` kernel instead —
        bit-identical decoded bits and path metric on every tier (the
        backend-parity contract), just faster.
        """
        l = np.asarray(llrs, dtype=np.float64)
        if l.ndim != 1 and not (l.ndim == 2 and l.shape[1] == self.n_out):
            l = l.ravel()
        if l.ndim == 1:
            if l.size % self.n_out != 0:
                raise ValueError(f"LLR length {l.size} not a multiple of {self.n_out}")
            l = l.reshape(-1, self.n_out)
        n_steps = l.shape[0]
        # branch metric: Σ_j out_bit * llr_j  (out_bits precomputed per (s,b))
        src, inb, out = self.trellis_tables()
        bm = np.einsum("tj,sbj->tsb", l, out)
        if backend is None:
            return self._viterbi(bm)
        bits, path_metric = backend.viterbi_decode(bm, src, inb)
        return ViterbiResult(
            data=bits[: n_steps - (self.k - 1)], path_metric=path_metric
        )
