"""repro — reproduction of "A Hybrid Approach combining ANN-based and
Conventional Demapping in Communication for Efficient FPGA-Implementation"
(J. Ney, B. Hammoud, N. Wehn, IEEE IPDPSW 2022, arXiv:2304.05042).

Quick start (see ``examples/quickstart.py`` for the narrated version)::

    import numpy as np
    from repro import (AESystem, MapperANN, DemapperANN, E2ETrainer,
                       TrainingConfig, AWGNChannel, HybridDemapper)

    rng = np.random.default_rng(0)
    mapper, demapper = MapperANN(16, rng=rng), DemapperANN(4, rng=rng)
    system = AESystem(mapper, demapper, AWGNChannel(8.0, 4, rng=rng))
    E2ETrainer(system, TrainingConfig(steps=2000)).run(rng)      # step 1: E2E training
    hybrid = HybridDemapper.extract(                              # step 3: extraction
        demapper, system.channel.sigma2, fallback=mapper.constellation())
    llrs = hybrid.llrs(system.transmit(np.arange(16)))            # cheap inference

Subpackages: :mod:`repro.nn` (NumPy NN framework), :mod:`repro.modulation`
(QAM/demappers), :mod:`repro.channels`, :mod:`repro.ecc`,
:mod:`repro.autoencoder` (AE core), :mod:`repro.extraction` (the hybrid
approach), :mod:`repro.fpga` (implementation model), :mod:`repro.link`,
:mod:`repro.experiments` (paper artifacts), :mod:`repro.backend` (pluggable
compute tiers — ``REPRO_BACKEND=numpy|numpy32|numba``), :mod:`repro.serving`
(multi-session streaming demapper runtime with cross-session
micro-batching).
"""

from repro.autoencoder import (
    AESystem,
    DemapperANN,
    E2ETrainer,
    MapperANN,
    ReceiverFinetuner,
    TrainingConfig,
)
from repro.channels import (
    AWGNChannel,
    CompositeChannel,
    PhaseOffsetChannel,
    sigma2_from_snr,
)
from repro.extraction import (
    HybridDemapper,
    extract_centroids,
    sample_decision_regions,
)
from repro.backend import get_backend, set_backend, use_backend
from repro.link import AdaptiveReceiver, simulate_ber
from repro.modulation import (
    Constellation,
    ExactLogMAPDemapper,
    Mapper,
    MaxLogDemapper,
    qam_constellation,
)
from repro.serving import DemapperSession, ServingEngine

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MapperANN",
    "DemapperANN",
    "AESystem",
    "E2ETrainer",
    "ReceiverFinetuner",
    "TrainingConfig",
    "AWGNChannel",
    "PhaseOffsetChannel",
    "CompositeChannel",
    "sigma2_from_snr",
    "HybridDemapper",
    "sample_decision_regions",
    "extract_centroids",
    "Constellation",
    "qam_constellation",
    "Mapper",
    "MaxLogDemapper",
    "ExactLogMAPDemapper",
    "AdaptiveReceiver",
    "simulate_ber",
    "get_backend",
    "set_backend",
    "use_backend",
    "ServingEngine",
    "DemapperSession",
]
