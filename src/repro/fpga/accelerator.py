"""Builders for the AE inference and AE training accelerators (Table 2 rows).

The AE designs use a float32 datapath: the paper implements the *trainable*
demapper on the FPGA (forward + backward + update, §II-B, FINN-style layer
modules with adjustable DOP), and reconfigures between a
maximum-parallelism inference design and a training design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import FPGADevice, ZU3EG
from repro.fpga.hls import DataflowPipeline, PipelineStage
from repro.fpga.layers import FLOAT32, PrecisionSpec, dense_stage, sigmoid_stage
from repro.fpga.power import CALIBRATED_ZU3EG_150MHZ, PowerModel
from repro.fpga.resources import ResourceVector

__all__ = [
    "ImplementationReport",
    "build_ae_inference_accelerator",
    "build_ae_training_accelerator",
]


@dataclass(frozen=True)
class ImplementationReport:
    """Implementation metrics of one design — one Table-2 row.

    ``latency_s``/``throughput_per_s`` come from the pipeline model;
    ``power_w``/``energy_per_symbol_j`` from the calibrated power model.
    """

    name: str
    latency_s: float
    throughput_per_s: float
    resources: ResourceVector
    power_w: float
    energy_per_symbol_j: float

    def row(self) -> list[object]:
        """Cells in the paper's Table-2 column order."""
        return [
            self.name,
            self.latency_s,
            self.throughput_per_s,
            self.resources.bram_36,
            round(self.resources.dsp),
            round(self.resources.ff),
            round(self.resources.lut),
            self.power_w,
            self.energy_per_symbol_j,
        ]


def _report(
    pipeline: DataflowPipeline, power_model: PowerModel, *, extra: ResourceVector | None = None
) -> ImplementationReport:
    res = pipeline.resources if extra is None else pipeline.resources + extra
    power = power_model.power(res, clock_hz=pipeline.clock_hz)
    return ImplementationReport(
        name=pipeline.name,
        latency_s=pipeline.latency_s,
        throughput_per_s=pipeline.throughput_per_s,
        resources=res,
        power_w=power,
        energy_per_symbol_j=power / pipeline.throughput_per_s,
    )


def build_ae_inference_accelerator(
    hidden: tuple[int, ...] = (16, 16, 16),
    bits_per_symbol: int = 4,
    *,
    folding: list[tuple[int, int]] | None = None,
    precision: PrecisionSpec = FLOAT32,
    device: FPGADevice = ZU3EG,
    clock_hz: float | None = None,
    power_model: PowerModel = CALIBRATED_ZU3EG_150MHZ,
) -> tuple[DataflowPipeline, ImplementationReport]:
    """AE-inference design: the demapper MLP as a layer-per-module pipeline.

    ``folding`` gives (pe, simd) per dense layer.  The default maximises
    parallelism within the ZU3EG's 360 DSPs, reproducing the paper's
    "designed to achieve maximal resource utilization ... limited by the
    amount of available DSPs": II = 12 cycles, 352 DSPs.
    """
    widths = [2, *hidden, bits_per_symbol]
    if folding is None:
        # Calibrated default for the paper topology (DSP-bound): layer IIs
        # 8/12/12/8 -> pipeline II 12; 60 float MAC units + 4 sigmoids.
        folding = [(2, 2), (3, 8), (3, 8), (1, 8)]
    if len(folding) != len(widths) - 1:
        raise ValueError(f"folding must have {len(widths) - 1} (pe, simd) entries")
    clk = device.default_clock_hz if clock_hz is None else clock_hz
    stages: list[PipelineStage] = []
    for i, (pe, simd) in enumerate(folding):
        stages.append(
            dense_stage(
                f"dense{i}", widths[i], widths[i + 1], pe=pe, simd=simd, precision=precision
            )
        )
    stages.append(sigmoid_stage("sigmoid", widths[-1], precision=precision))
    pipe = DataflowPipeline("AE-inference", stages, clock_hz=clk)
    return pipe, _report(pipe, power_model)


#: Per-MAC extra cost of a backward dense unit: the fused dW-accumulate
#: (grad_out · activation products feeding gradient accumulators).
_GRAD_ACCUM_DSP = 2.0
_GRAD_ACCUM_LUT = 60.0
_GRAD_ACCUM_FF = 110.0

#: Batch sequencing, loss evaluation, gradient interconnect and Adam/SGD
#: state handling of the training design — logic with no inference
#: counterpart.  Calibrated against the paper's Table-2 training row.
_TRAINING_CONTROL_OVERHEAD = ResourceVector(lut=6500.0, ff=6200.0, dsp=0.0, bram_36=2.0)


def _backward_dense_stage(
    name: str,
    grad_in: int,
    grad_out: int,
    *,
    pe: int,
    simd: int,
    precision: PrecisionSpec,
) -> PipelineStage:
    """A backward layer: dX = dY·W plus dW accumulation (transposed MACs)."""
    base = dense_stage(name, grad_in, grad_out, pe=pe, simd=simd, precision=precision)
    units = pe * simd
    extra = ResourceVector(
        lut=units * _GRAD_ACCUM_LUT,
        ff=units * _GRAD_ACCUM_FF,
        dsp=units * _GRAD_ACCUM_DSP,
        bram_36=0.0,
    )
    return PipelineStage(name=name, ii=base.ii, depth=base.depth, resources=base.resources + extra)


def build_ae_training_accelerator(
    hidden: tuple[int, ...] = (16, 16, 16),
    bits_per_symbol: int = 4,
    *,
    precision: PrecisionSpec = FLOAT32,
    device: FPGADevice = ZU3EG,
    clock_hz: float | None = None,
    power_model: PowerModel = CALIBRATED_ZU3EG_150MHZ,
    batch_buffer_depth: int = 1024,
    fwd_folding: list[tuple[int, int]] | None = None,
    bwd_folding: list[tuple[int, int]] | None = None,
    update_units: int = 8,
) -> tuple[DataflowPipeline, ImplementationReport]:
    """AE-training design: forward + backward + parameter-update pipeline.

    Structure (per §II-B, "forward and the backward path ... as a pipelined
    architecture ... separate hardware modules for each ANN-layer"):

    * forward dense stages (reduced DOP — training tolerates lower rate),
    * a sigmoid + loss-gradient stage,
    * backward dense stages (transposed-weight MACs **plus dW-accumulate**,
      roughly 2× the forward arithmetic per layer),
    * a parameter-update stage (``update_units`` multipliers sweep all
      parameters once per *batch*; amortised per-sample it never throttles
      the pipeline, so it is modelled at II = 1),
    * batch activation buffers in BRAM (replay for the backward pass — the
      dominant BRAM cost; paper: 89 blocks vs 18.5 for inference).
    """
    widths = [2, *hidden, bits_per_symbol]
    n_layers = len(widths) - 1
    if fwd_folding is None:
        fwd_folding = [(1, 2), (2, 4), (2, 4), (1, 4)]
    if bwd_folding is None:
        bwd_folding = [(1, 2), (2, 4), (2, 4), (1, 2)]
    if len(fwd_folding) != n_layers or len(bwd_folding) != n_layers:
        raise ValueError(f"foldings must have {n_layers} entries")
    if update_units < 1:
        raise ValueError("update_units must be >= 1")
    if batch_buffer_depth < 1:
        raise ValueError("batch_buffer_depth must be >= 1")
    clk = device.default_clock_hz if clock_hz is None else clock_hz

    stages: list[PipelineStage] = []
    for i, (pe, simd) in enumerate(fwd_folding):
        stages.append(
            dense_stage(f"fwd{i}", widths[i], widths[i + 1], pe=pe, simd=simd, precision=precision)
        )
    stages.append(sigmoid_stage("sigmoid+dloss", widths[-1], precision=precision))
    for i, (pe, simd) in enumerate(bwd_folding):
        # backward layer i propagates grads through W_i^T: out x in swap
        stages.append(
            _backward_dense_stage(
                f"bwd{i}", widths[n_layers - i], widths[n_layers - i - 1],
                pe=pe, simd=simd, precision=precision,
            )
        )
    stages.append(
        PipelineStage(
            name="param-update",
            ii=1,  # once per batch; amortised per-sample cost < 1 cycle
            depth=3,
            resources=ResourceVector(
                lut=update_units * precision.mac_lut + 400,
                ff=update_units * precision.mac_ff + 300,
                dsp=update_units * precision.mac_dsp,
                bram_36=1.0,  # parameter + gradient store
            ),
        )
    )
    pipe = DataflowPipeline("AE-training", stages, clock_hz=clk)

    # batch activation buffers (replay for backward): one per layer boundary
    act_values = sum(widths)
    buffer_bits = act_values * batch_buffer_depth * precision.bits
    extra = _TRAINING_CONTROL_OVERHEAD + ResourceVector(bram_36=-(-buffer_bits // 36864))
    return pipe, _report(pipe, power_model, extra=extra)
