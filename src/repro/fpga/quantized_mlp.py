"""Bit-accurate integer MLP datapath (the FPGA demapper's arithmetic).

Models what a fixed-point RTL/HLS implementation of the demapper ANN
computes, not just its cost:

* weights/biases quantised to a weight format, activations to an activation
  format (both :class:`~repro.fpga.fixed_point.FixedPointFormat`);
* integer matrix-multiplies with 64-bit accumulators (hardware: DSP48 MACs
  with wide accumulation — never overflows for the paper's layer sizes);
* requantisation via rounding right-shift (round-half-up, the standard
  cheap hardware rounding) with saturation;
* ReLU on integers; the final sigmoid through a 256-entry lookup table,
  exactly as an FPGA would evaluate it.

``tests/fpga/test_quantized_mlp.py`` verifies bit-exactness properties and
that 8-bit quantisation costs almost no BER (ablated over bit widths in
``benchmarks/bench_ablation_quantization.py``).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.autoencoder.demapper_ann import DemapperANN
from repro.backend import get_backend
from repro.fpga.fixed_point import FixedPointFormat
from repro.nn.layers import Dense, ReLU
from repro.utils.numerics import stable_sigmoid
from repro.utils.rng import as_generator

__all__ = ["QuantizedDemapper", "build_sigmoid_lut"]


@lru_cache(maxsize=8)
def _cached_sigmoid_lut(entries: int, input_range: float) -> tuple[np.ndarray, float]:
    """Module-level LUT cache: every demapper instance with the same geometry
    shares one read-only table instead of rebuilding it per construction.
    Bounded so sweeps over many exotic geometries can't grow memory without
    limit; the default ``(256, 8.0)`` entry effectively never evicts."""
    step = 2.0 * input_range / entries
    xs = -input_range + step * np.arange(entries)
    table = stable_sigmoid(xs)
    table.setflags(write=False)
    return table, step


def build_sigmoid_lut(*, entries: int = 256, input_range: float = 8.0) -> tuple[np.ndarray, float]:
    """Uniform sigmoid LUT over ``[-input_range, +input_range)``.

    Returns ``(table, step)``: ``table[i] = sigmoid(-range + i*step)``.
    256 entries over ±8 give a worst-case absolute error < 0.008 — far below
    what demapping accuracy requires (only the 0.5 threshold and coarse
    confidence matter).  Backed by a module-level cache; the returned table
    is a fresh writable copy (callers may post-process it in place).
    """
    if entries < 8:
        raise ValueError("entries must be >= 8")
    if input_range <= 0:
        raise ValueError("input_range must be positive")
    table, step = _cached_sigmoid_lut(int(entries), float(input_range))
    return table.copy(), step


class QuantizedDemapper:
    """Integer-arithmetic twin of a trained :class:`DemapperANN`.

    Post-training static quantisation with per-layer scaling (standard
    FINN/deployment practice):

    * every Dense layer's weights get their own fixed-point split within
      ``weight_format.total_bits`` total bits, the integer width chosen to
      cover that layer's weight range (no saturation, maximal resolution);
    * every activation boundary gets its own split within
      ``activation_format.total_bits`` bits, the integer width chosen from a
      **calibration batch** run through the float model (ReLU activations in
      this MLP reach ~20, far beyond any one-size format);
    * the requantisation between layers is a rounding shift by a per-layer
      compile-time constant (``w_frac + a_frac_in − a_frac_out``; performed
      as a left shift when negative).

    Parameters
    ----------
    demapper:
        The trained float model to quantise.
    weight_format:
        Per-layer budget for parameter quantisation (its ``total_bits``).
    activation_format:
        Per-boundary budget for activation quantisation.
    calibration:
        ``(N, 2)`` float samples for activation-range calibration; defaults
        to 4096 unit-scale Gaussian points (≈ unit-energy received symbols)
        drawn from ``calibration_seed``.
    calibration_seed:
        Seed (or generator) for the default calibration batch, so callers
        can vary or thread their experiment seed instead of every instance
        silently sharing ``default_rng(0)``.  Ignored when ``calibration``
        is given.
    """

    def __init__(
        self,
        demapper: DemapperANN,
        *,
        weight_format: FixedPointFormat = FixedPointFormat(8, 6),
        activation_format: FixedPointFormat = FixedPointFormat(12, 8),
        calibration: np.ndarray | None = None,
        calibration_seed: int | np.random.Generator | None = 0,
    ):
        self.weight_format = weight_format
        self.activation_format = activation_format
        self.bits_per_symbol = demapper.bits_per_symbol
        if calibration is None:
            calibration = as_generator(calibration_seed).normal(size=(4096, 2))
        calibration = np.asarray(calibration, dtype=np.float64)
        if calibration.ndim != 2 or calibration.shape[1] != 2:
            raise ValueError("calibration must be (N, 2)")

        # Walk the Sequential: Dense layers carry (W, b); ReLU flags the
        # preceding Dense.  (The float model keeps sigmoid outside the net.)
        dense_layers: list[Dense] = []
        relu_after: list[bool] = []
        for layer in demapper.net.layers:
            if isinstance(layer, Dense):
                dense_layers.append(layer)
                relu_after.append(False)
            elif isinstance(layer, ReLU):
                if not dense_layers:
                    raise ValueError("ReLU before any Dense layer")
                relu_after[-1] = True
        if not dense_layers:
            raise ValueError("demapper has no Dense layers")

        # calibrate activation ranges at every layer boundary (float model)
        act_ranges = [float(np.abs(calibration).max())]
        a = calibration
        for dense, relu in zip(dense_layers[:-1], relu_after[:-1]):
            a = a @ dense.weight.data.T
            if dense.bias is not None:
                a = a + dense.bias.data
            if relu:
                a = np.maximum(a, 0.0)
            act_ranges.append(float(np.abs(a).max()))

        self._act_formats = [
            self._fit_format(r, activation_format.total_bits) for r in act_ranges
        ]
        self._layers: list[tuple[np.ndarray, np.ndarray, int, bool]] = []
        self._w_formats: list[FixedPointFormat] = []
        for li, (dense, relu) in enumerate(zip(dense_layers, relu_after)):
            w = dense.weight.data
            w_fmt = self._fit_format(float(np.abs(w).max()), weight_format.total_bits)
            self._w_formats.append(w_fmt)
            w_q = w_fmt.to_int(w)
            a_in = self._act_formats[li]
            acc_scale = w_fmt.scale * a_in.scale
            b = dense.bias.data if dense.bias is not None else np.zeros(dense.out_features)
            b_q = np.rint(b / acc_scale).astype(np.int64)
            if li < len(dense_layers) - 1:
                a_out = self._act_formats[li + 1]
                shift = w_fmt.frac_bits + a_in.frac_bits - a_out.frac_bits
            else:
                shift = 0  # final accumulators are the logits
            self._layers.append((w_q, b_q, shift, relu))
        # internal use reads the shared cached (read-only) table directly —
        # no per-instance rebuild or copy
        self._lut, self._lut_step = _cached_sigmoid_lut(256, 8.0)
        self._lut_range = self._lut_step * len(self._lut) / 2.0

    @staticmethod
    def _fit_format(max_abs: float, total_bits: int) -> FixedPointFormat:
        """Smallest integer width covering ``max_abs``, rest fractional."""
        int_bits = 1 + (int(np.ceil(np.log2(max_abs + 1e-12))) if max_abs > 1e-12 else 0)
        int_bits = int(np.clip(int_bits, 1, total_bits - 1))
        return FixedPointFormat(total_bits, total_bits - int_bits)

    # -- integer pipeline -------------------------------------------------------
    def _requantize(self, acc: np.ndarray, shift: int, out_fmt: FixedPointFormat) -> np.ndarray:
        """Accumulator -> next activation codes: rounding shift + saturate."""
        if shift > 0:
            half = 1 << (shift - 1)
            shifted = (acc + half) >> shift
        elif shift < 0:
            shifted = acc << (-shift)
        else:
            shifted = acc
        return out_fmt.saturate_int(shifted)

    def integer_forward(self, received: np.ndarray) -> np.ndarray:
        """Full integer pipeline; returns final-layer accumulators (int64).

        ``received`` is float ``(N, 2)``; the input quantiser is part of the
        datapath (an ADC/AGC would feed these codes in hardware).
        """
        x = self._act_formats[0].to_int(np.asarray(received, dtype=np.float64))
        n_layers = len(self._layers)
        backend = get_backend()
        for li, (w_q, b_q, shift, relu) in enumerate(self._layers):
            acc = backend.gemm_i64(x, w_q, b_q)  # int64 MAC array
            if li == n_layers - 1:
                return acc  # logits stay at accumulator scale
            x = self._requantize(acc, shift, self._act_formats[li + 1])
            if relu:
                x = np.maximum(x, 0)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- float-facing views -----------------------------------------------------
    @property
    def logit_scale(self) -> float:
        """Scale of the final accumulator codes (last w_scale · last a_scale)."""
        return self._w_formats[-1].scale * self._act_formats[-1].scale

    def logits(self, received: np.ndarray) -> np.ndarray:
        """Dequantised logits ``(N, k)``."""
        return self.integer_forward(received) * self.logit_scale

    def hard_bits(self, received: np.ndarray) -> np.ndarray:
        """Hard bit decisions — sign test on the integer accumulator."""
        return (self.integer_forward(received) > 0).astype(np.int8)

    def probabilities(self, received: np.ndarray) -> np.ndarray:
        """Per-bit probabilities via the sigmoid LUT (hardware-style)."""
        z = self.logits(received)
        idx = np.clip(
            ((z + self._lut_range) / self._lut_step).astype(np.int64),
            0,
            len(self._lut) - 1,
        )
        return self._lut[idx]

    def bit_probability_fn(self):
        """Extractor-compatible handle (``(N,2) -> (N,k)``)."""
        return self.probabilities

    def symbol_labels(self, received: np.ndarray) -> np.ndarray:
        """Most-likely symbol label per sample from the integer pipeline."""
        bits = self.hard_bits(received)
        weights = (1 << np.arange(self.bits_per_symbol - 1, -1, -1)).astype(np.int64)
        return bits.astype(np.int64) @ weights

    # -- introspection ----------------------------------------------------------
    @property
    def weight_memory_bits(self) -> int:
        """Total parameter storage in bits (weights + biases)."""
        bits = 0
        acc_bits = self.weight_format.total_bits + self.activation_format.total_bits + 8
        for w_q, b_q, _, _ in self._layers:
            bits += w_q.size * self.weight_format.total_bits
            bits += b_q.size * acc_bits
        return bits

    @property
    def layer_formats(self) -> list[tuple[str, str]]:
        """(weight format, input-activation format) per layer, for reports."""
        return [
            (str(w), str(a)) for w, a in zip(self._w_formats, self._act_formats)
        ]
