"""Dataflow pipeline model (Vivado-HLS / FINN style).

A design is a chain of :class:`PipelineStage` s, each internally pipelined
with an initiation interval (II — cycles between accepted inputs) and a
depth (cycles from input to output).  Composition follows HLS dataflow
semantics with FIFO decoupling:

* pipeline II   = max over stage IIs (the slowest stage throttles the chain),
* pipeline depth = sum of stage depths,
* throughput    = f_clk / II,
* latency       = depth / f_clk.

:meth:`DataflowPipeline.simulate` is a cycle-accurate token simulation of
the same chain (items stall when a downstream stage is busy); it is used in
tests to cross-validate the closed-form formulas — the two must agree
exactly for any stage mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fpga.resources import ResourceVector

__all__ = ["PipelineStage", "DataflowPipeline", "SimulationResult"]


@dataclass(frozen=True)
class PipelineStage:
    """One internally-pipelined hardware module.

    Attributes
    ----------
    name:
        Human-readable stage name (for reports).
    ii:
        Initiation interval in cycles (>= 1).
    depth:
        Pipeline depth in cycles (>= 1): input-to-output latency.
    resources:
        LUT/FF/DSP/BRAM cost of the stage.
    """

    name: str
    ii: int
    depth: int
    resources: ResourceVector = field(default_factory=ResourceVector)

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ValueError("ii must be >= 1")
        if self.depth < 1:
            raise ValueError("depth must be >= 1")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of a cycle-accurate token simulation.

    ``exit_cycles[i]`` is the cycle at which item ``i`` leaves the last
    stage, items entering back-to-back from cycle 0.
    """

    exit_cycles: np.ndarray

    @property
    def first_latency(self) -> int:
        """Cycles until the first item completes (= pipeline depth)."""
        return int(self.exit_cycles[0])

    @property
    def steady_state_ii(self) -> float:
        """Average inter-departure interval once the pipeline is full."""
        if self.exit_cycles.size < 2:
            raise ValueError("need >= 2 items to measure steady-state II")
        tail = self.exit_cycles[self.exit_cycles.size // 2 :]
        if tail.size < 2:
            tail = self.exit_cycles
        return float(np.mean(np.diff(tail)))


class DataflowPipeline:
    """A chain of pipeline stages with FIFO decoupling."""

    def __init__(self, name: str, stages: list[PipelineStage], *, clock_hz: float = 150e6):
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        if clock_hz <= 0:
            raise ValueError("clock must be positive")
        self.name = name
        self.stages = list(stages)
        self.clock_hz = float(clock_hz)

    # -- closed-form metrics ------------------------------------------------------
    @property
    def ii(self) -> int:
        """Pipeline initiation interval (cycles): the slowest stage."""
        return max(s.ii for s in self.stages)

    @property
    def depth(self) -> int:
        """End-to-end pipeline depth in cycles."""
        return sum(s.depth for s in self.stages)

    @property
    def latency_s(self) -> float:
        """Input-to-output latency of one item in seconds."""
        return self.depth / self.clock_hz

    @property
    def throughput_per_s(self) -> float:
        """Sustained items per second (f_clk / II)."""
        return self.clock_hz / self.ii

    @property
    def resources(self) -> ResourceVector:
        """Aggregate resource usage over all stages."""
        return ResourceVector.total([s.resources for s in self.stages])

    # -- cycle-accurate simulation ---------------------------------------------
    def simulate(self, n_items: int) -> SimulationResult:
        """Token simulation: ``n_items`` offered back-to-back from cycle 0.

        Recurrence per stage ``s`` and item ``i``:
        ``start[i,s] = max(finish[i,s-1], start[i-1,s] + II_s)``;
        ``finish[i,s] = start[i,s] + depth_s``.  (Unbounded FIFOs between
        stages, as HLS dataflow with default FIFO sizing behaves for
        monotonically-draining pipelines.)
        """
        if n_items < 1:
            raise ValueError("n_items must be >= 1")
        n_stages = len(self.stages)
        prev_start = np.full(n_stages, -(10**9), dtype=np.int64)
        exit_cycles = np.empty(n_items, dtype=np.int64)
        for i in range(n_items):
            ready = i  # offered at cycle i (back-to-back source)
            for s, stage in enumerate(self.stages):
                start = max(ready, prev_start[s] + stage.ii)
                prev_start[s] = start
                ready = start + stage.depth
            exit_cycles[i] = ready
        return SimulationResult(exit_cycles=exit_cycles)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DataflowPipeline({self.name!r}, II={self.ii}, depth={self.depth})"
