"""Power and energy model (resource-proportional, calibrated).

``P = P_static + a·(LUT) + a·(FF) + c·DSP + d·BRAM36``  at the reference
clock (150 MHz); energy per symbol = P / throughput.

The four coefficients are calibrated *once* by solving the linear system
given by the paper's three Table-2 designs (soft demapper, AE inference, AE
training) with the BRAM coefficient fixed at a datasheet-plausible
0.5 mW/block — see ``tests/fpga/test_power.py`` which re-derives the fit.
The resulting values are physically sensible for a Zynq UltraScale+ at
150 MHz: ~4 µW per active LUT/FF, ~0.9 mW per DSP48, 45 mW static.

For designs other than the calibration points (DOP/quantisation ablations,
replicated cores) the model extrapolates linearly in resources — the
standard assumption of early-phase FPGA power estimation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.resources import ResourceVector

__all__ = ["PowerModel", "CALIBRATED_ZU3EG_150MHZ"]


@dataclass(frozen=True)
class PowerModel:
    """Linear resource-to-power model at a fixed reference clock."""

    static_w: float
    lut_ff_w: float      # watts per LUT and per FF (shared coefficient)
    dsp_w: float         # watts per DSP48
    bram_w: float        # watts per 36-Kb BRAM tile
    clock_hz: float = 150e6

    def __post_init__(self) -> None:
        for name in ("static_w", "lut_ff_w", "dsp_w", "bram_w", "clock_hz"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def power(self, resources: ResourceVector, *, clock_hz: float | None = None) -> float:
        """Total power in watts; dynamic part scales linearly with clock."""
        f = self.clock_hz if clock_hz is None else float(clock_hz)
        if f <= 0:
            raise ValueError("clock must be positive")
        dynamic = (
            self.lut_ff_w * (resources.lut + resources.ff)
            + self.dsp_w * resources.dsp
            + self.bram_w * resources.bram_36
        )
        return self.static_w + dynamic * (f / self.clock_hz)

    def energy_per_item(
        self, resources: ResourceVector, throughput_per_s: float, *, clock_hz: float | None = None
    ) -> float:
        """Joules per processed item (symbol) at the given throughput."""
        if throughput_per_s <= 0:
            raise ValueError("throughput must be positive")
        return self.power(resources, clock_hz=clock_hz) / throughput_per_s


def _calibrate() -> PowerModel:
    """Solve the 3-point calibration (documented in the module docstring).

    Unknowns: static, lut_ff coefficient, dsp coefficient; BRAM fixed at
    0.5 mW/block.  Exactly reproduces the paper's three power numbers on
    the paper's own resource counts.
    """
    import numpy as np

    bram_w = 0.5e-3
    # paper rows: (lut+ff, dsp, bram36, power)
    rows = [
        (1107 + 1042, 1, 0.0, 5.5e-2),       # soft demapper w/ learned centroids
        (11343 + 10895, 352, 18.5, 4.53e-1),  # AE inference
        (19793 + 19013, 343, 89.0, 5.47e-1),  # AE training
    ]
    a = np.array([[1.0, lf, d] for lf, d, _, _ in rows])
    b = np.array([p - bram_w * br for _, _, br, p in rows])
    static, lut_ff, dsp = np.linalg.solve(a, b)
    return PowerModel(static_w=float(static), lut_ff_w=float(lut_ff), dsp_w=float(dsp), bram_w=bram_w)


#: The calibrated ZU3EG@150MHz model used by all Table-2 and ablation benches.
CALIBRATED_ZU3EG_150MHZ = _calibrate()
