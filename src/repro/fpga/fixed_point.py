"""Fixed-point number formats: quantisation, saturation, integer views.

``FixedPointFormat(total_bits, frac_bits)`` describes a signed two's-
complement format with ``total_bits - frac_bits`` integer bits (including
sign).  Quantisation uses round-half-to-even (the default FPGA/IEEE
behaviour) and saturates at the representable range — matching what an HLS
``ap_fixed<W, I, AP_RND_CONV, AP_SAT>`` datapath computes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedPointFormat"]


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format ``Q(total_bits - frac_bits).frac_bits``."""

    total_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if not 2 <= self.total_bits <= 32:
            raise ValueError("total_bits must lie in [2, 32]")
        if self.frac_bits < 0 or self.frac_bits >= self.total_bits:
            raise ValueError("frac_bits must lie in [0, total_bits)")

    # -- derived ---------------------------------------------------------------
    @property
    def int_bits(self) -> int:
        """Integer bits including the sign bit."""
        return self.total_bits - self.frac_bits

    @property
    def scale(self) -> float:
        """LSB weight 2^-frac_bits."""
        return 2.0 ** (-self.frac_bits)

    @property
    def min_int(self) -> int:
        return -(1 << (self.total_bits - 1))

    @property
    def max_int(self) -> int:
        return (1 << (self.total_bits - 1)) - 1

    @property
    def min_value(self) -> float:
        return self.min_int * self.scale

    @property
    def max_value(self) -> float:
        return self.max_int * self.scale

    # -- conversions -----------------------------------------------------------
    def to_int(self, x: np.ndarray | float) -> np.ndarray:
        """Quantise reals to the integer code (round-half-even, saturating)."""
        arr = np.asarray(x, dtype=np.float64) / self.scale
        codes = np.rint(arr)  # numpy rint = round half to even
        return np.clip(codes, self.min_int, self.max_int).astype(np.int64)

    def from_int(self, codes: np.ndarray | int) -> np.ndarray:
        """Integer codes back to real values."""
        return np.asarray(codes, dtype=np.float64) * self.scale

    def quantize(self, x: np.ndarray | float) -> np.ndarray:
        """Round ``x`` onto the representable grid (returns floats)."""
        return self.from_int(self.to_int(x))

    def quantization_error_bound(self) -> float:
        """Max |x - quantize(x)| for in-range x (half an LSB)."""
        return 0.5 * self.scale

    def saturate_int(self, codes: np.ndarray) -> np.ndarray:
        """Clamp integer codes into the representable range."""
        return np.clip(np.asarray(codes, dtype=np.int64), self.min_int, self.max_int)

    def __str__(self) -> str:  # pragma: no cover
        return f"Q{self.int_bits}.{self.frac_bits}"
