"""Table-2 regeneration: model results side by side with the paper's.

``PAPER_TABLE2`` holds the published numbers; :func:`table2_rows` builds
the three designs with the architectural model and returns aligned rows;
:func:`format_table2` renders the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.accelerator import (
    ImplementationReport,
    build_ae_inference_accelerator,
    build_ae_training_accelerator,
)
from repro.fpga.soft_demapper_core import build_soft_demapper_core
from repro.utils.tables import format_table

__all__ = ["PaperRow", "PAPER_TABLE2", "table2_rows", "format_table2"]


@dataclass(frozen=True)
class PaperRow:
    """One row of the paper's Table 2."""

    name: str
    latency_s: float
    throughput_per_s: float
    bram: float
    dsp: int
    ff: int
    lut: int
    power_w: float
    energy_per_symbol_j: float


#: Published Table 2 (Ney et al. 2022).
PAPER_TABLE2: dict[str, PaperRow] = {
    "soft_demapper": PaperRow(
        "Soft-demapper with learned centroids",
        5.33e-8, 7.50e7, 0.0, 1, 1042, 1107, 5.5e-2, 7.33e-10,
    ),
    "ae_inference": PaperRow(
        "AE-inference", 8.10e-8, 1.23e7, 18.5, 352, 10895, 11343, 4.53e-1, 3.67e-8
    ),
    "ae_training": PaperRow(
        "AE-training", 2.67e-7, 3.75e6, 89.0, 343, 19013, 19793, 5.47e-1, 1.46e-7
    ),
}


def table2_rows() -> dict[str, ImplementationReport]:
    """Build the three designs with the architectural model."""
    _, soft = build_soft_demapper_core()
    _, inference = build_ae_inference_accelerator()
    _, training = build_ae_training_accelerator()
    return {"soft_demapper": soft, "ae_inference": inference, "ae_training": training}


def format_table2(model_rows: dict[str, ImplementationReport] | None = None) -> str:
    """Render paper-vs-model Table 2 as text."""
    model_rows = model_rows if model_rows is not None else table2_rows()
    headers = [
        "design", "source", "Latency [s]", "Tput [sym/s]", "BRAM", "DSP", "FF", "LUT",
        "Power [W]", "Energy [J/sym]",
    ]
    rows: list[list[object]] = []
    for key, paper in PAPER_TABLE2.items():
        model = model_rows[key]
        rows.append(
            [paper.name, "paper", paper.latency_s, paper.throughput_per_s, paper.bram,
             paper.dsp, paper.ff, paper.lut, paper.power_w, paper.energy_per_symbol_j]
        )
        rows.append(
            ["", "model", model.latency_s, model.throughput_per_s,
             model.resources.bram_36, round(model.resources.dsp),
             round(model.resources.ff), round(model.resources.lut),
             model.power_w, model.energy_per_symbol_j]
        )
    return format_table(headers, rows, float_fmt=".3g", title="Table 2: AE-based inference vs conventional soft demapping")
