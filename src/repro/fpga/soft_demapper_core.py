"""The centroid-based soft-demapper core (Table 2 row 1) and replication.

The conventional max-log demapper on extracted centroids: a distance bank,
per-bit min trees, and one scaling DSP — an order of magnitude cheaper than
ANN inference, which is the entire point of the hybrid approach.  Because a
single core is so small, many can be instantiated in parallel to "approach
a throughput in the order of Gbps" (paper §III-D) —
:func:`replicate_for_throughput` sizes that array against the device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.accelerator import ImplementationReport, _report
from repro.fpga.device import FPGADevice, ZU3EG
from repro.fpga.hls import DataflowPipeline
from repro.fpga.layers import distance_stage, llr_stage, min_tree_stage
from repro.fpga.power import CALIBRATED_ZU3EG_150MHZ, PowerModel

__all__ = ["build_soft_demapper_core", "replicate_for_throughput", "ReplicationPlan"]


def build_soft_demapper_core(
    n_centroids: int = 16,
    bits_per_symbol: int = 4,
    *,
    distance_units: int = 8,
    device: FPGADevice = ZU3EG,
    clock_hz: float | None = None,
    power_model: PowerModel = CALIBRATED_ZU3EG_150MHZ,
) -> tuple[DataflowPipeline, ImplementationReport]:
    """Max-log soft demapper over ``n_centroids`` stored centroids.

    With the default DOP (8 distance units for 16 centroids) the core runs
    at II = 2 and depth 8 — at 150 MHz that is the paper's 53.3 ns latency
    and 75 Msymbol/s throughput.
    """
    if n_centroids < 2:
        raise ValueError("n_centroids must be >= 2")
    clk = device.default_clock_hz if clock_hz is None else clock_hz
    stages = [
        distance_stage("distances", n_centroids, units=distance_units),
        min_tree_stage("min-trees", n_centroids, bits_per_symbol),
        llr_stage("llr-scale", bits_per_symbol),
    ]
    pipe = DataflowPipeline("Soft-demapper (learned centroids)", stages, clock_hz=clk)
    return pipe, _report(pipe, power_model)


@dataclass(frozen=True)
class ReplicationPlan:
    """A parallel array of identical demapper cores on one device."""

    instances: int
    per_core: ImplementationReport
    total_power_w: float
    aggregate_symbols_per_s: float
    aggregate_bits_per_s: float
    utilization: dict[str, float]

    @property
    def reaches_gbps(self) -> bool:
        """Does the array sustain at least 1 Gbit/s of demapped bits?"""
        return self.aggregate_bits_per_s >= 1e9


def replicate_for_throughput(
    report: ImplementationReport,
    bits_per_symbol: int = 4,
    *,
    device: FPGADevice = ZU3EG,
    margin: float = 0.1,
    power_model: PowerModel = CALIBRATED_ZU3EG_150MHZ,
) -> ReplicationPlan:
    """Fill the device with copies of a core (paper's Gbps argument).

    ``margin`` reserves a fraction of every resource class for interconnect
    and I/O.  Static power is counted once; dynamic power scales with the
    instance count.
    """
    n = device.max_instances(report.resources, margin=margin)
    if n < 1:
        raise ValueError("not even one instance fits the device")
    total_res = report.resources.scale(n)
    # power: static once + n * dynamic
    dynamic_per_core = report.power_w - power_model.static_w
    total_power = power_model.static_w + n * dynamic_per_core
    agg_sym = n * report.throughput_per_s
    return ReplicationPlan(
        instances=n,
        per_core=report,
        total_power_w=total_power,
        aggregate_symbols_per_s=agg_sym,
        aggregate_bits_per_s=agg_sym * bits_per_symbol,
        utilization=device.utilization(total_res),
    )
