"""HLS stage builders with area costing (FINN-style folding arithmetic).

Every builder returns a :class:`~repro.fpga.hls.PipelineStage` whose II and
depth follow from the degree of parallelism (DOP = PE×SIMD folding, paper
§II-B) and whose LUT/FF/DSP/BRAM cost follows from per-element constants.

Cost constants are **calibrated** against the paper's Vivado HLS 2019.2
results (Table 2) — one calibration for the float32 MAC (the AE designs,
which need float for on-device training) and one for the narrow fixed-point
datapath of the soft-demapper core.  They are in the range published for
Vivado HLS operator implementations (a float mul+add pipeline costs ~5 DSP
and ~100-200 LUT/FF; an 8-12 bit LUT multiplier ~50-70 LUTs).  The same
constants drive the DOP/quantisation ablations, so trends are
self-consistent by construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fpga.hls import PipelineStage
from repro.fpga.resources import ResourceVector

__all__ = [
    "PrecisionSpec",
    "FLOAT32",
    "INT16",
    "INT8",
    "dense_stage",
    "sigmoid_stage",
    "distance_stage",
    "min_tree_stage",
    "llr_stage",
]


@dataclass(frozen=True)
class PrecisionSpec:
    """Datapath precision and its per-operator implementation cost.

    ``mac_dsp/lut/ff``: cost of one multiply-accumulate unit.
    ``sigmoid_dsp/lut/ff``: cost of one sigmoid evaluator (float: pipelined
    expf; fixed point: 256-entry LUT).
    ``fifo_bram``: 36-Kb blocks per inter-stage stream FIFO (wide float
    streams need deeper/wider buffering).
    """

    name: str
    bits: int
    mac_dsp: float
    mac_lut: float
    mac_ff: float
    sigmoid_dsp: float
    sigmoid_lut: float
    sigmoid_ff: float
    fifo_bram: float


#: 32-bit float datapath (Vivado HLS fadd/fmul) — required for on-device
#: *training*; the paper's AE designs use it for inference too so the same
#: weights serve both.  5 DSP per MAC (3 mul + 2 add), ~13 DSP per expf.
FLOAT32 = PrecisionSpec(
    name="float32", bits=32, mac_dsp=5.0, mac_lut=145.0, mac_ff=135.0,
    sigmoid_dsp=13.0, sigmoid_lut=400.0, sigmoid_ff=500.0, fifo_bram=3.5,
)

#: 16-bit fixed point: one DSP48 per MAC, table sigmoid.
INT16 = PrecisionSpec(
    name="int16", bits=16, mac_dsp=1.0, mac_lut=30.0, mac_ff=48.0,
    sigmoid_dsp=0.0, sigmoid_lut=180.0, sigmoid_ff=90.0, fifo_bram=0.5,
)

#: 8-bit fixed point: LUT multipliers (no DSP), table sigmoid.
INT8 = PrecisionSpec(
    name="int8", bits=8, mac_dsp=0.0, mac_lut=68.0, mac_ff=55.0,
    sigmoid_dsp=0.0, sigmoid_lut=150.0, sigmoid_ff=80.0, fifo_bram=0.25,
)

#: Control/FSM + AXI-stream glue per stage (LUT, FF), calibrated.
_STAGE_CTRL_LUT = 200.0
_STAGE_CTRL_FF = 150.0


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def dense_stage(
    name: str,
    in_features: int,
    out_features: int,
    *,
    pe: int,
    simd: int,
    precision: PrecisionSpec = FLOAT32,
) -> PipelineStage:
    """A folded fully-connected layer (matrix-vector unit).

    ``pe`` output neurons and ``simd`` inputs are processed per cycle, so

    * II    = ceil(in/simd) · ceil(out/pe)   cycles/input,
    * depth = ceil(in/simd) + 2              (accumulate + output register),
    * MAC units = pe · simd.

    Weights live in BRAM when the layer exceeds ~18 Kb at the given
    precision (HLS puts small arrays in LUTRAM/FF).
    """
    if in_features < 1 or out_features < 1:
        raise ValueError("layer dimensions must be >= 1")
    if not 1 <= pe <= out_features:
        raise ValueError(f"pe must lie in [1, {out_features}]")
    if not 1 <= simd <= in_features:
        raise ValueError(f"simd must lie in [1, {in_features}]")
    ii = _ceil_div(in_features, simd) * _ceil_div(out_features, pe)
    depth = _ceil_div(in_features, simd) + 2
    units = pe * simd
    weight_bits = in_features * out_features * precision.bits
    bram = math.ceil(weight_bits / 36864) if weight_bits > 18432 else 0
    lutram_lut = 0.0 if bram else weight_bits / 64.0  # distributed RAM cost
    res = ResourceVector(
        lut=units * precision.mac_lut + _STAGE_CTRL_LUT + lutram_lut,
        ff=units * precision.mac_ff + _STAGE_CTRL_FF,
        dsp=units * precision.mac_dsp,
        bram_36=bram + precision.fifo_bram,
    )
    return PipelineStage(name=name, ii=ii, depth=depth, resources=res)


def sigmoid_stage(name: str, width: int, *, precision: PrecisionSpec = FLOAT32) -> PipelineStage:
    """Per-bit sigmoid bank (``width`` parallel evaluators), II=1."""
    if width < 1:
        raise ValueError("width must be >= 1")
    res = ResourceVector(
        lut=width * precision.sigmoid_lut + _STAGE_CTRL_LUT,
        ff=width * precision.sigmoid_ff + _STAGE_CTRL_FF,
        dsp=width * precision.sigmoid_dsp,
        bram_36=precision.fifo_bram,
    )
    return PipelineStage(name=name, ii=1, depth=2, resources=res)


# -- soft-demapper stages (narrow fixed point) ----------------------------------

#: One squared-distance unit: 2 subtractors + 2 LUT squarers + adder, ~12-bit.
_DIST_UNIT_LUT = 100.0
_DIST_UNIT_FF = 90.0


def distance_stage(name: str, n_points: int, *, units: int) -> PipelineStage:
    """Squared Euclidean distances to ``n_points`` centroids, ``units`` in parallel.

    Centroids are held in registers (counted in FF); no DSPs — the operands
    are narrow enough for LUT squarers (this is what lets the paper's core
    report DSP = 1 overall).
    """
    if n_points < 2:
        raise ValueError("n_points must be >= 2")
    if not 1 <= units <= n_points:
        raise ValueError(f"units must lie in [1, {n_points}]")
    ii = _ceil_div(n_points, units)
    centroid_regs_ff = n_points * 2 * 12 / 4.0  # 12-bit I/Q register file, packed
    res = ResourceVector(
        lut=units * _DIST_UNIT_LUT + 50.0,
        ff=units * _DIST_UNIT_FF + centroid_regs_ff,
        dsp=0.0,
        bram_36=0.0,
    )
    return PipelineStage(name=name, ii=ii, depth=3, resources=res)


def min_tree_stage(name: str, n_points: int, bits_per_symbol: int) -> PipelineStage:
    """Running min₀/min₁ trees per bit position over the distance stream."""
    if n_points < 2 or bits_per_symbol < 1:
        raise ValueError("invalid min-tree geometry")
    comparators = 2 * bits_per_symbol  # one (min0, min1) pair per bit
    res = ResourceVector(
        lut=comparators * 20.0,
        ff=comparators * 18.0 + 2 * bits_per_symbol * 12,
        dsp=0.0,
        bram_36=0.0,
    )
    depth = max(2, math.ceil(math.log2(n_points)))
    return PipelineStage(name=name, ii=1, depth=depth, resources=res)


def llr_stage(name: str, bits_per_symbol: int) -> PipelineStage:
    """Final LLR: per-bit subtraction and the 1/(2σ²) scaling multiply.

    The scaling is the single DSP of the paper's soft-demapper row.
    """
    if bits_per_symbol < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    res = ResourceVector(
        lut=bits_per_symbol * 15.0 + 40.0,
        ff=bits_per_symbol * 14.0 + 60.0,
        dsp=1.0,
        bram_36=0.0,
    )
    return PipelineStage(name=name, ii=1, depth=1, resources=res)
