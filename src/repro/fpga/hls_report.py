"""Per-stage HLS-style reports (the Vivado HLS "synthesis report" analogue).

Render a :class:`~repro.fpga.hls.DataflowPipeline` the way designers read
Vivado reports: one row per stage with II, depth, and resource breakdown,
plus the pipeline totals and device utilization — used by the deployment
example and golden-tested against the Table-2 designs.
"""

from __future__ import annotations

from repro.fpga.device import FPGADevice, ZU3EG
from repro.fpga.hls import DataflowPipeline
from repro.utils.tables import format_table

__all__ = ["stage_report", "utilization_report"]


def stage_report(pipeline: DataflowPipeline) -> str:
    """Per-stage breakdown: II, depth, LUT/FF/DSP/BRAM, plus totals."""
    rows: list[list[object]] = []
    for s in pipeline.stages:
        r = s.resources
        rows.append([s.name, s.ii, s.depth, round(r.lut), round(r.ff),
                     round(r.dsp), r.bram_36])
    total = pipeline.resources
    rows.append(["TOTAL (pipeline)", pipeline.ii, pipeline.depth,
                 round(total.lut), round(total.ff), round(total.dsp), total.bram_36])
    return format_table(
        ["stage", "II [cyc]", "depth [cyc]", "LUT", "FF", "DSP", "BRAM36"],
        rows,
        title=(f"{pipeline.name} @ {pipeline.clock_hz / 1e6:.0f} MHz — "
               f"latency {pipeline.latency_s * 1e9:.1f} ns, "
               f"throughput {pipeline.throughput_per_s / 1e6:.2f} Msym/s"),
    )


def utilization_report(pipeline: DataflowPipeline, device: FPGADevice = ZU3EG) -> str:
    """Device utilization of the pipeline on ``device``."""
    used = pipeline.resources
    util = device.utilization(used)
    rows = [
        ["LUT", round(used.lut), device.lut, f"{util['lut']:.1%}"],
        ["FF", round(used.ff), device.ff, f"{util['ff']:.1%}"],
        ["DSP", round(used.dsp), device.dsp, f"{util['dsp']:.1%}"],
        ["BRAM36", used.bram_36, device.bram_36, f"{util['bram_36']:.1%}"],
    ]
    fits = "fits" if device.fits(used) else "DOES NOT FIT"
    return format_table(
        ["resource", "used", "available", "utilization"],
        rows,
        title=f"{pipeline.name} on {device.name}: {fits}",
    )
