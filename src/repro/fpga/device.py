"""FPGA device database and utilization checks."""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.resources import ResourceVector

__all__ = ["FPGADevice", "ZU3EG", "ULTRA96_V2"]


@dataclass(frozen=True)
class FPGADevice:
    """Capacity of an FPGA part.

    Counts follow the vendor datasheet convention: ``bram_36`` is the
    number of 36-Kb block-RAM tiles.
    """

    name: str
    lut: int
    ff: int
    dsp: int
    bram_36: int
    default_clock_hz: float = 150e6

    def utilization(self, used: ResourceVector) -> dict[str, float]:
        """Fractional utilization per resource class (may exceed 1.0)."""
        return {
            "lut": used.lut / self.lut,
            "ff": used.ff / self.ff,
            "dsp": used.dsp / self.dsp,
            "bram_36": used.bram_36 / self.bram_36,
        }

    def fits(self, used: ResourceVector, *, margin: float = 0.0) -> bool:
        """True iff ``used`` fits within ``(1 - margin)`` of every resource."""
        if not 0.0 <= margin < 1.0:
            raise ValueError("margin must lie in [0, 1)")
        cap = 1.0 - margin
        return all(u <= cap for u in self.utilization(used).values())

    def max_instances(self, per_instance: ResourceVector, *, margin: float = 0.0) -> int:
        """How many copies of a module fit on the device."""
        if not 0.0 <= margin < 1.0:
            raise ValueError("margin must lie in [0, 1)")
        cap = 1.0 - margin
        limits = []
        for used, avail in (
            (per_instance.lut, self.lut),
            (per_instance.ff, self.ff),
            (per_instance.dsp, self.dsp),
            (per_instance.bram_36, self.bram_36),
        ):
            if used > 0:
                limits.append(int(cap * avail / used))
        return min(limits) if limits else 0


#: Xilinx Zynq UltraScale+ ZU3EG (the part on the Avnet Ultra96-V2 used by
#: the paper): 70 560 LUTs, 141 120 FFs, 360 DSP48E2, 216 36-Kb BRAM tiles.
ZU3EG = FPGADevice(name="xczu3eg", lut=70560, ff=141120, dsp=360, bram_36=216)

#: Board alias used in the paper's §III-A setup description.
ULTRA96_V2 = ZU3EG
