"""FPGA implementation model — the substrate replacing the Xilinx ZU3EG.

The paper implements three designs on an Avnet Ultra96-V2 (Xilinx ZU3EG)
with Vivado HLS 2019.2 and reports Table 2 (latency, throughput, BRAM, DSP,
FF, LUT, power, energy/symbol).  Hardware cannot be synthesised here, so
this package models the implementation at two levels (DESIGN.md §2):

**Behavioural** — :mod:`repro.fpga.fixed_point` and
:mod:`repro.fpga.quantized_mlp` implement a bit-accurate integer datapath
(quantised weights/activations, integer MACs, LUT sigmoid) — the arithmetic
an RTL datapath with the same formats would perform, verifiable against the
float model.

**Architectural** — :mod:`repro.fpga.hls` models a FINN-style dataflow
pipeline (per-stage initiation interval, pipeline depth, cycle-accurate
token simulation); :mod:`repro.fpga.layers` costs each stage in
LUT/FF/DSP/BRAM as a function of the degree of parallelism (PE×SIMD
folding, paper §II-B "flexible adjustment of the degree of parallelism");
:mod:`repro.fpga.power` converts resources to power/energy with
coefficients calibrated once against the paper's three Table-2 designs.

Builders in :mod:`repro.fpga.accelerator` (AE inference / AE training) and
:mod:`repro.fpga.soft_demapper_core` (centroid max-log core) assemble the
three Table-2 designs; :mod:`repro.fpga.report` regenerates the table.
"""

from repro.fpga.accelerator import (
    build_ae_inference_accelerator,
    build_ae_training_accelerator,
    ImplementationReport,
)
from repro.fpga.device import FPGADevice, ULTRA96_V2, ZU3EG
from repro.fpga.fixed_point import FixedPointFormat
from repro.fpga.hls import DataflowPipeline, PipelineStage
from repro.fpga.hls_report import stage_report, utilization_report
from repro.fpga.power import PowerModel
from repro.fpga.quantized_mlp import QuantizedDemapper
from repro.fpga.quantized_soft_demapper import QuantizedSoftDemapper
from repro.fpga.reconfiguration import (
    AdaptationBudget,
    FpgaVsAsic,
    ReconfigurationModel,
    compare_fpga_vs_asic,
)
from repro.fpga.resources import ResourceVector
from repro.fpga.soft_demapper_core import build_soft_demapper_core, replicate_for_throughput

__all__ = [
    "FPGADevice",
    "ZU3EG",
    "ULTRA96_V2",
    "ResourceVector",
    "FixedPointFormat",
    "QuantizedDemapper",
    "PipelineStage",
    "DataflowPipeline",
    "PowerModel",
    "ImplementationReport",
    "build_ae_inference_accelerator",
    "build_ae_training_accelerator",
    "build_soft_demapper_core",
    "replicate_for_throughput",
    "ReconfigurationModel",
    "AdaptationBudget",
    "FpgaVsAsic",
    "compare_fpga_vs_asic",
    "QuantizedSoftDemapper",
    "stage_report",
    "utilization_report",
]
