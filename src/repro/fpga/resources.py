"""Resource vectors: LUT / FF / DSP / BRAM accounting."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ResourceVector"]


@dataclass(frozen=True)
class ResourceVector:
    """FPGA resource usage of a module (or aggregate of modules).

    BRAM is counted in 36-Kb blocks (``bram_36``), matching the paper's
    Table 2 column (half blocks — 18-Kb — appear as .5).
    """

    lut: float = 0.0
    ff: float = 0.0
    dsp: float = 0.0
    bram_36: float = 0.0

    def __post_init__(self) -> None:
        for name in ("lut", "ff", "dsp", "bram_36"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            dsp=self.dsp + other.dsp,
            bram_36=self.bram_36 + other.bram_36,
        )

    def scale(self, k: float) -> "ResourceVector":
        """Resource usage of ``k`` parallel instances."""
        if k < 0:
            raise ValueError("k must be >= 0")
        return ResourceVector(
            lut=self.lut * k, ff=self.ff * k, dsp=self.dsp * k, bram_36=self.bram_36 * k
        )

    @staticmethod
    def total(items: list["ResourceVector"]) -> "ResourceVector":
        """Sum a list of resource vectors."""
        acc = ResourceVector()
        for it in items:
            acc = acc + it
        return acc

    def as_dict(self) -> dict[str, float]:
        return {"lut": self.lut, "ff": self.ff, "dsp": self.dsp, "bram_36": self.bram_36}
