"""Bit-accurate integer datapath of the centroid soft demapper (Table 2 row 1).

The architectural model (:mod:`repro.fpga.soft_demapper_core`) costs the
core; this module computes what it *outputs*, bit for bit:

* centroids quantised to a narrow fixed-point format (default Q2.10 —
  12-bit I/Q registers, as costed in the distance stage);
* received samples quantised by the input ADC format;
* integer squared distances (LUT squarers in hardware — here exact integer
  arithmetic with 64-bit headroom);
* per-bit min₀/min₁ trees on integers;
* the single scaling DSP: LLR = (min₀ − min₁) · round(2^s/(2σ²)) >> s,
  i.e. multiply by a precomputed fixed-point reciprocal and shift;
* LLR output saturated to a configurable width (what the FEC sees).

``tests/fpga/test_quantized_soft_demapper.py`` verifies BER parity with the
float max-log demapper and LLR-width effects on coded performance.
"""

from __future__ import annotations

import numpy as np

from repro.backend import PaddedBitSets
from repro.fpga.fixed_point import FixedPointFormat
from repro.modulation.constellations import Constellation

__all__ = ["QuantizedSoftDemapper"]


class QuantizedSoftDemapper:
    """Integer max-log soft demapper over quantised centroids.

    Parameters
    ----------
    constellation:
        Centroid point set (bit labels implicit in ordering).
    sigma2:
        Per-real-dimension noise variance (baked into the scaling constant,
        as on hardware where the host writes the register).
    input_format:
        ADC / input quantiser format for received I/Q (default Q2.10).
    centroid_format:
        Centroid register format (default Q2.10, the 12-bit registers of
        the distance stage).
    llr_format:
        Output LLR format (default Q6.2 — 8-bit LLRs, a common FEC input
        width).
    scale_bits:
        Fractional bits of the fixed-point reciprocal ``1/(2σ²)``.
    """

    def __init__(
        self,
        constellation: Constellation,
        sigma2: float,
        *,
        input_format: FixedPointFormat = FixedPointFormat(12, 10),
        centroid_format: FixedPointFormat = FixedPointFormat(12, 10),
        llr_format: FixedPointFormat = FixedPointFormat(8, 2),
        scale_bits: int = 12,
    ):
        if sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        if not 1 <= scale_bits <= 24:
            raise ValueError("scale_bits must lie in [1, 24]")
        self.constellation = constellation
        self.sigma2 = float(sigma2)
        self.input_format = input_format
        self.centroid_format = centroid_format
        self.llr_format = llr_format
        self.scale_bits = int(scale_bits)

        pts = constellation.points
        self._c_re = centroid_format.to_int(pts.real)
        self._c_im = centroid_format.to_int(pts.imag)
        # the register the host writes: round(2^s / (2 sigma^2)), combined
        # with the distance scale (centroid LSB^2) to yield real-unit LLRs
        self._recip = int(round((1 << scale_bits) / (2.0 * sigma2)))
        if self._recip < 1:
            raise ValueError("sigma2 too large for the chosen scale_bits")
        # Shared padded index table (padding repeats a set member — harmless
        # for the min trees), mirroring the parallel min₀/min₁ comparator
        # banks of the RTL: one gather + one min along the padded axis.
        self._bitsets = PaddedBitSets.from_bit_matrix(constellation.bit_matrix)

    # -- integer pipeline -------------------------------------------------------
    def integer_distances(self, received: np.ndarray) -> np.ndarray:
        """Integer squared distances ``(N, M)`` at centroid-LSB² scale."""
        y = np.asarray(received, dtype=np.complex128).ravel()
        # hardware quantises the input to the centroid grid (shared format
        # keeps the subtractor aligned without a shifter)
        y_re = self.input_format.to_int(y.real)
        y_im = self.input_format.to_int(y.imag)
        dre = y_re[:, None] - self._c_re[None, :]
        dim = y_im[:, None] - self._c_im[None, :]
        return dre * dre + dim * dim  # int64; 2*(2^11)^2 << 2^63

    def integer_llrs(self, received: np.ndarray) -> np.ndarray:
        """LLR codes ``(N, k)`` in the output format's integer domain."""
        d2 = self.integer_distances(received)
        k = self.constellation.bits_per_symbol
        # per-bit min banks from the shared padded table; reduced one set at
        # a time so peak memory stays at one (N, width) temporary
        bs = self._bitsets
        mins = np.empty((d2.shape[0], 2 * k), dtype=np.int64)
        for s in range(2 * k):
            np.minimum.reduce(d2[:, bs.table[s, : bs.sizes[s]]], axis=1, out=mins[:, s])
        diff = mins[:, :k] - mins[:, k:]
        # scaling DSP: (diff * recip) >> scale_bits, then requantise to the
        # LLR grid.  diff is at centroid-LSB^2 scale; fold that in exactly.
        lsb2 = self.centroid_format.scale * self.centroid_format.scale
        # combined real value = diff * lsb2 * recip / 2^s; map onto llr grid:
        #   code = round(value / llr_scale)
        scaled = diff * self._recip  # int64
        value = scaled.astype(np.float64) * lsb2 / (1 << self.scale_bits)
        codes = np.rint(value / self.llr_format.scale).astype(np.int64)
        return self.llr_format.saturate_int(codes)

    # -- float-facing views -------------------------------------------------------
    def llrs(self, received: np.ndarray) -> np.ndarray:
        """Dequantised LLRs ``(N, k)`` (what the FEC consumes)."""
        return self.integer_llrs(received) * self.llr_format.scale

    def demap_bits(self, received: np.ndarray) -> np.ndarray:
        """Hard bits (sign of the integer LLRs, ties to 0)."""
        return (self.integer_llrs(received) > 0).astype(np.int8)

    @property
    def centroid_memory_bits(self) -> int:
        """Centroid register file size in bits."""
        return 2 * self.constellation.order * self.centroid_format.total_bits
