"""Reconfiguration timing and the FPGA-vs-ASIC argument (paper §III-D).

The paper's closing argument: training hardware idles almost always (the
inference/training duty cycle is extreme), so an ASIC carrying both
datapaths wastes silicon, while an FPGA *reconfigures* between a
maximum-parallelism inference design and a training design.  This module
quantifies that argument:

* :class:`ReconfigurationModel` — bitstream-size/bandwidth timing for full
  and partial reconfiguration (defaults: ZU3EG-class 5.8 MB bitstream,
  PCAP at ~125 MB/s, as on Zynq UltraScale+);
* :class:`AdaptationBudget` — end-to-end latency of one adaptation event:
  reconfigure to the training design → retrain on pilots → reconfigure
  back → sample decision regions through the inference engine → compute
  centroids (on the PS);
* :func:`compare_fpga_vs_asic` — silicon-efficiency comparison at a given
  adaptation rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.accelerator import ImplementationReport
from repro.utils.tables import format_table

__all__ = ["ReconfigurationModel", "AdaptationBudget", "FpgaVsAsic", "compare_fpga_vs_asic"]


@dataclass(frozen=True)
class ReconfigurationModel:
    """Configuration-port timing of a Zynq UltraScale+-class device."""

    full_bitstream_bytes: float = 5.8e6   # ZU3EG-class PL bitstream
    config_bandwidth_bytes_per_s: float = 125e6  # PCAP, practical rate

    def __post_init__(self) -> None:
        if self.full_bitstream_bytes <= 0 or self.config_bandwidth_bytes_per_s <= 0:
            raise ValueError("bitstream size and bandwidth must be positive")

    @property
    def full_reconfiguration_s(self) -> float:
        """Time to load a full bitstream."""
        return self.full_bitstream_bytes / self.config_bandwidth_bytes_per_s

    def partial_reconfiguration_s(self, area_fraction: float) -> float:
        """Time to load a partial bitstream covering ``area_fraction`` of the PL."""
        if not 0 < area_fraction <= 1:
            raise ValueError("area_fraction must lie in (0, 1]")
        return self.full_reconfiguration_s * area_fraction


@dataclass(frozen=True)
class AdaptationBudget:
    """Latency decomposition of one retrain + re-extract adaptation event."""

    reconfigure_to_training_s: float
    retraining_s: float
    reconfigure_to_inference_s: float
    region_sampling_s: float
    centroid_computation_s: float

    @property
    def total_s(self) -> float:
        return (
            self.reconfigure_to_training_s
            + self.retraining_s
            + self.reconfigure_to_inference_s
            + self.region_sampling_s
            + self.centroid_computation_s
        )

    def to_table(self) -> str:
        rows = [
            ["reconfigure -> training design", self.reconfigure_to_training_s],
            ["retraining (pilot traffic)", self.retraining_s],
            ["reconfigure -> inference design", self.reconfigure_to_inference_s],
            ["decision-region sampling", self.region_sampling_s],
            ["centroid computation (PS)", self.centroid_computation_s],
            ["TOTAL adaptation latency", self.total_s],
        ]
        return format_table(["phase", "time [s]"], rows, float_fmt=".3g",
                            title="Adaptation latency budget (one retrain event)")

    @staticmethod
    def estimate(
        training: ImplementationReport,
        inference: ImplementationReport,
        *,
        reconfig: ReconfigurationModel | None = None,
        retrain_steps: int = 1500,
        batch_size: int = 512,
        extraction_resolution: int = 256,
        centroid_computation_s: float = 2e-3,
        partial: bool = True,
        device_lut: float = 70560.0,
    ) -> "AdaptationBudget":
        """Build the budget from the Table-2 design reports.

        Retraining processes ``steps × batch`` pilot symbols at the training
        design's throughput; region sampling runs ``resolution²`` inferences
        through the inference engine; reconfiguration is partial (region
        sized by the larger design) unless ``partial=False``.
        """
        if retrain_steps < 1 or batch_size < 1 or extraction_resolution < 4:
            raise ValueError("invalid retraining/extraction parameters")
        rc = reconfig if reconfig is not None else ReconfigurationModel()
        if partial:
            frac = min(1.0, max(training.resources.lut, inference.resources.lut) / device_lut)
            frac = max(frac, 0.05)  # partial regions are floorplanned generously
            t_rc = rc.partial_reconfiguration_s(frac)
        else:
            t_rc = rc.full_reconfiguration_s
        t_retrain = retrain_steps * batch_size / training.throughput_per_s
        t_sample = extraction_resolution**2 / inference.throughput_per_s
        return AdaptationBudget(
            reconfigure_to_training_s=t_rc,
            retraining_s=t_retrain,
            reconfigure_to_inference_s=t_rc,
            region_sampling_s=t_sample,
            centroid_computation_s=centroid_computation_s,
        )


@dataclass(frozen=True)
class FpgaVsAsic:
    """Silicon-efficiency comparison at a given adaptation rate."""

    fpga_resident_lut: float
    asic_resident_lut: float
    asic_training_idle_fraction: float
    fpga_inference_availability: float

    def to_table(self) -> str:
        rows = [
            ["resident logic, FPGA (reconfigured)", f"{self.fpga_resident_lut:.0f} LUT-eq"],
            ["resident logic, ASIC (both datapaths)", f"{self.asic_resident_lut:.0f} LUT-eq"],
            ["ASIC training-logic idle fraction", f"{self.asic_training_idle_fraction:.4%}"],
            ["FPGA inference availability", f"{self.fpga_inference_availability:.4%}"],
        ]
        return format_table(["quantity", "value"], rows,
                            title="FPGA vs ASIC (paper SIII-D argument, quantified)")


def compare_fpga_vs_asic(
    training: ImplementationReport,
    inference: ImplementationReport,
    budget: AdaptationBudget,
    *,
    adaptations_per_hour: float = 60.0,
) -> FpgaVsAsic:
    """Quantify §III-D: "high idle time of the training module on an ASIC".

    On the FPGA only one design is resident at a time (max of the two); on
    an ASIC both are always resident, and the training datapath is busy only
    during the retraining slice of each adaptation event.
    """
    if adaptations_per_hour <= 0:
        raise ValueError("adaptations_per_hour must be positive")
    period_s = 3600.0 / adaptations_per_hour
    if budget.total_s >= period_s:
        raise ValueError("adaptation events overlap at this rate")
    training_busy = budget.retraining_s / period_s
    fpga_unavailable = budget.total_s / period_s
    return FpgaVsAsic(
        fpga_resident_lut=max(training.resources.lut, inference.resources.lut),
        asic_resident_lut=training.resources.lut + inference.resources.lut,
        asic_training_idle_fraction=1.0 - training_busy,
        fpga_inference_availability=1.0 - fpga_unavailable,
    )
