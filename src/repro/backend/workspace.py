"""Reusable scratch buffers so steady-state hot loops allocate nothing.

A :class:`Workspace` hands out preallocated ``out=``-style buffers keyed by
``(key, shape, dtype)``.  The first request for a key allocates; every later
request with the same shape and dtype returns the *same* array, so a batched
kernel that processes identically-shaped batches reuses its intermediates
instead of hitting the allocator every call.

Contract (the "workspace-reuse" contract):

* A buffer returned by :meth:`Workspace.scratch` is only valid until the next
  ``scratch`` call with the same key — callers must never hold a scratch
  buffer across kernel invocations or return it to user code.
* Buffer contents are undefined on entry (no zeroing); kernels must fully
  overwrite what they read.
* Buffers are **thread-local**: two threads asking for the same key get
  independent arrays, so thread-parallel sweeps cannot corrupt each other.

Shape changes are handled by reallocation (the old buffer for that key is
dropped), so irregular tail batches are correct, merely not allocation-free.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Per-thread pool of named, shape-keyed scratch arrays."""

    def __init__(self) -> None:
        self._local = threading.local()

    # Scratch buffers are per-process transients: pickling (e.g. a
    # backend-pinned demapper shipped to a worker process) sends an empty
    # workspace and the receiver re-warms its own buffers.
    def __getstate__(self) -> dict:
        return {}

    def __setstate__(self, state: dict) -> None:
        self._local = threading.local()

    def _bufs(self) -> dict:
        bufs = getattr(self._local, "bufs", None)
        if bufs is None:
            bufs = {}
            self._local.bufs = bufs
            self._local.hits = 0
            self._local.misses = 0
        return bufs

    def scratch(self, key: str, shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Return a reusable uninitialised buffer of ``shape``/``dtype``.

        The same ``key`` with the same shape and dtype returns the same array
        on every call from the same thread.
        """
        bufs = self._bufs()
        shape = tuple(int(s) for s in shape)
        dtype = np.dtype(dtype)
        entry = bufs.get(key)
        if entry is not None and entry.shape == shape and entry.dtype == dtype:
            self._local.hits += 1
            return entry
        buf = np.empty(shape, dtype=dtype)
        bufs[key] = buf
        self._local.misses += 1
        return buf

    def clear(self) -> None:
        """Drop all buffers held by the calling thread."""
        self._local.bufs = {}
        self._local.hits = 0
        self._local.misses = 0

    @property
    def stats(self) -> tuple[int, int]:
        """``(hits, misses)`` for the calling thread — for tests/diagnostics."""
        self._bufs()
        return (self._local.hits, self._local.misses)
