"""Backend registry and selection.

Three tiers, selectable via the ``REPRO_BACKEND`` environment variable or
the API below:

======== ===================================================================
name     meaning
======== ===================================================================
numpy    float64 NumPy reference (default; bit-identical hard decisions to
         the historical implementation)
numpy32  float32 fast path (~2× throughput, documented LLR tolerance)
numba    Numba-JIT fused kernels; **silently** falls back to ``numpy`` when
         Numba is not installed
======== ===================================================================

``get_backend()`` resolves lazily: the env var is read on first use, and
:func:`set_backend`/:func:`use_backend` override it for the process /
a scope.  Backend instances are cached per tier so their workspaces (and
Numba's compiled kernels) are shared across all call sites.

Every tier serves the same kernel surface: the demapping kernels
(``maxlog_llrs``/``logmap_llrs`` and their multi-sigma forms,
``hard_indices``), the decoding kernel (``viterbi_decode`` — the soft
Viterbi ACS the coded serving path dispatches), and the dense-algebra
helpers (``linear``/``gemm``/``gemm_i64``).
"""

from __future__ import annotations

import contextvars
import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.backend.numba_backend import NUMBA_AVAILABLE, NumbaBackend
from repro.backend.numpy_backend import NumpyBackend

__all__ = [
    "available_backends",
    "backend_from_name",
    "get_backend",
    "set_backend",
    "use_backend",
]

#: Environment variable consulted on first :func:`get_backend` call.
ENV_VAR = "REPRO_BACKEND"

_ALIASES = {
    "numpy": "numpy",
    "reference": "numpy",
    "float64": "numpy",
    "numpy32": "numpy32",
    "float32": "numpy32",
    "numba": "numba",
    "jit": "numba",
}

_instances: dict[str, NumpyBackend] = {}
_current: NumpyBackend | None = None
#: Scoped (``use_backend``) overrides live in a context variable, so nested
#: or thread-concurrent scopes (e.g. inside ``sweep_snr`` runner threads)
#: cannot corrupt each other or the process-wide selection.
_scoped: contextvars.ContextVar[NumpyBackend | None] = contextvars.ContextVar(
    "repro_backend_scoped", default=None
)


def available_backends() -> tuple[str, ...]:
    """Canonical tier names usable with :func:`set_backend` / ``REPRO_BACKEND``."""
    return ("numpy", "numpy32", "numba")


def backend_from_name(name: str) -> NumpyBackend:
    """Resolve a tier name (or alias) to a cached backend instance.

    ``"numba"`` without Numba installed resolves to the NumPy reference —
    the documented silent fallback — so deployment scripts can request the
    JIT tier unconditionally.
    """
    canonical = _ALIASES.get(str(name).strip().lower())
    if canonical is None:
        raise ValueError(
            f"unknown backend {name!r}; choose from {', '.join(available_backends())}"
        )
    if canonical == "numba" and not NUMBA_AVAILABLE:
        canonical = "numpy"
    inst = _instances.get(canonical)
    if inst is None:
        if canonical == "numpy":
            inst = NumpyBackend(np.float64)
        elif canonical == "numpy32":
            inst = NumpyBackend(np.float32)
        else:
            inst = NumbaBackend()
        _instances[canonical] = inst
    return inst


def get_backend() -> NumpyBackend:
    """The current backend: innermost ``use_backend`` scope if active,
    otherwise the process-wide selection (env-resolved on first call)."""
    scoped = _scoped.get()
    if scoped is not None:
        return scoped
    global _current
    if _current is None:
        _current = backend_from_name(os.environ.get(ENV_VAR, "numpy"))
    return _current


def set_backend(backend: NumpyBackend | str | None) -> NumpyBackend:
    """Select the process-wide backend by name or instance.

    ``None`` resets to lazy env-var resolution.  Returns the backend that is
    now current (after reset: the freshly resolved one).
    """
    global _current
    if backend is None:
        _current = None
        return get_backend()
    _current = backend_from_name(backend) if isinstance(backend, str) else backend
    return _current


@contextmanager
def use_backend(backend: NumpyBackend | str) -> Iterator[NumpyBackend]:
    """Scoped backend override (restores the previous selection on exit).

    Context-local: concurrent scopes in different threads (or tasks) see
    only their own override and cannot clobber the process-wide selection.
    """
    chosen = backend_from_name(backend) if isinstance(backend, str) else backend
    token = _scoped.set(chosen)
    try:
        yield chosen
    finally:
        _scoped.reset(token)
