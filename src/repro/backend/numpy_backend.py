"""NumPy compute backends: float64 reference and float32 fast path.

All hot kernels work in a **transposed** ``(M, n)`` layout internally: one
contiguous row of length ``n`` per constellation point.  Per-bit reductions
then become row-wise ``minimum``/``exp`` passes over contiguous memory —
measured ~5× faster than the naive ``(n, M)`` column-gather formulation for
16-QAM at 256k symbols — and every intermediate lives in the backend
workspace, so steady-state batches allocate only the caller-visible output
(nothing at all when ``out=`` is passed).

The float64 tier reproduces the pre-backend reference implementation
bit-for-bit (same IEEE operations in the same order per element); the
float32 tier halves memory traffic and roughly doubles throughput at a
documented LLR tolerance (see ``FLOAT32_LLR_RTOL``).
"""

from __future__ import annotations

import numpy as np

from repro.backend.bitsets import PaddedBitSets
from repro.backend.workspace import Workspace

__all__ = ["NumpyBackend", "FLOAT32_LLR_RTOL", "MULTI_SIGMA_TILE"]

#: Column-tile width of the multi-sigma sweep kernels.  A tile's working set
#: (distance block + temporaries + per-set minima: ~1.5 MB at 16-QAM/float64)
#: stays cache-resident, which is what lets the batched ``(S, n)`` launch
#: beat S sequential single-SNR launches whose full-width intermediates
#: stream through last-level cache.
MULTI_SIGMA_TILE = 8192

#: Documented agreement between the float32 and float64 tiers: max-log and
#: log-MAP LLRs agree within this *relative* tolerance of the batch's peak
#: LLR magnitude (float32 keeps ~7 significant digits; distances are O(1)
#: and the 1/(2σ²) scaling is exact in both tiers).
FLOAT32_LLR_RTOL = 1e-4


def _check_llr_out(out: np.ndarray | None, n: int, k: int) -> np.ndarray:
    """Validate a caller-supplied LLR output buffer (or allocate one).

    The documented contract is an exact float64 ``(n, k)`` array — silently
    demoting precision or broadcasting into a larger buffer would void the
    bit-identity guarantees, so both are rejected.
    """
    if out is None:
        return np.empty((n, k), dtype=np.float64)
    if out.shape != (n, k):
        raise ValueError(f"out must have shape ({n}, {k}), got {out.shape}")
    if out.dtype != np.float64:
        raise ValueError(f"out must be float64, got {out.dtype}")
    return out


def _check_multi_args(
    received: np.ndarray, sigma2s: np.ndarray
) -> tuple[np.ndarray, int, int, np.ndarray]:
    """Validate the ``(S, n)`` received tensor and the per-row sigma vector."""
    y = np.asarray(received)
    if y.ndim != 2:
        raise ValueError(f"multi-sigma kernels expect (S, n) received, got shape {y.shape}")
    sig = np.asarray(sigma2s, dtype=np.float64).ravel()
    if sig.size != y.shape[0]:
        raise ValueError(
            f"sigma2s must have one entry per received row: got {sig.size} for S={y.shape[0]}"
        )
    if sig.size and np.any(sig <= 0):
        raise ValueError("every sigma2 must be positive")
    return y, y.shape[0], y.shape[1], sig


def _check_llr_multi_out(out: np.ndarray | None, s: int, n: int, k: int) -> np.ndarray:
    """Validate a caller-supplied ``(S, n, k)`` LLR buffer (or allocate one).

    The kernels fill the buffer through a flat ``(S·n, k)`` view, so a
    non-contiguous buffer (whose reshape would silently copy) is rejected.
    """
    if out is None:
        return np.empty((s, n, k), dtype=np.float64)
    if out.shape != (s, n, k):
        raise ValueError(f"out must have shape ({s}, {n}, {k}), got {out.shape}")
    if out.dtype != np.float64:
        raise ValueError(f"out must be float64, got {out.dtype}")
    if not out.flags.c_contiguous:
        raise ValueError("out must be C-contiguous (reshaping would copy)")
    return out


def _column_tiles(total: int, tile: int):
    """Yield ``(start, stop, key_tag)`` column tiles over a flattened sweep.

    Full tiles share one workspace key; the (single) ragged tail gets its own
    ``#tail`` tag so alternating full/tail widths within a call never thrash
    the shape-keyed workspace — steady-state sweep calls stay allocation-free.
    """
    full = total - (total % tile)
    for start in range(0, full, tile):
        yield start, start + tile, ""
    if total > full:
        yield full, total, "#tail"


class NumpyBackend:
    """Vectorised NumPy kernels at a configurable working precision.

    Parameters
    ----------
    dtype:
        Working dtype of the distance/reduction intermediates
        (``np.float64`` = reference tier, ``np.float32`` = fast tier).
        Caller-facing outputs are always float64.
    name:
        Registry name (defaults to ``"numpy"``/``"numpy32"`` by dtype).
    """

    def __init__(self, dtype=np.float64, *, name: str | None = None):
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"unsupported backend dtype {dtype}")
        self.dtype = dtype
        self.name = name if name is not None else ("numpy" if dtype == np.float64 else "numpy32")
        self.workspace = Workspace()

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r}, dtype={self.dtype.name})"

    # -- workspace ----------------------------------------------------------
    def scratch(self, key: str, shape: tuple[int, ...], dtype=None) -> np.ndarray:
        """Reusable uninitialised buffer (see :class:`Workspace`)."""
        return self.workspace.scratch(key, shape, self.dtype if dtype is None else dtype)

    # -- shared distance stage ---------------------------------------------
    def _split_received(self, received: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Received complex ``(n,)`` -> contiguous real/imag scratch vectors."""
        y = np.asarray(received)
        if not np.iscomplexobj(y):
            y = y.astype(np.complex128)
        y = y.ravel()
        n = y.size
        yr = self.scratch("y_re", (n,))
        yi = self.scratch("y_im", (n,))
        np.copyto(yr, y.real, casting="same_kind")
        np.copyto(yi, y.imag, casting="same_kind")
        return yr, yi

    def _split_points(self, points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Constellation points -> real/imag vectors in the working dtype."""
        c = np.asarray(points).ravel()
        return c.real.astype(self.dtype), c.imag.astype(self.dtype)

    def _distances_tile(
        self, yr: np.ndarray, yi: np.ndarray,
        c_re: np.ndarray, c_im: np.ndarray,
        start: int, stop: int, key: str,
    ) -> np.ndarray:
        """Squared-distance block ``(M, stop-start)`` for one column slice.

        ``key`` namespaces the scratch buffers: full-width scalar kernels and
        tile-width sweep kernels use distinct keys so alternating between
        them never thrashes the shape-keyed workspace.
        """
        m = c_re.size
        d2 = self.scratch(key, (m, stop - start))
        t = self.scratch(key + "~tmp", (m, stop - start))
        np.subtract(c_re[:, None], yr[None, start:stop], out=d2)
        np.multiply(d2, d2, out=d2)
        np.subtract(c_im[:, None], yi[None, start:stop], out=t)
        np.multiply(t, t, out=t)
        np.add(d2, t, out=d2)
        return d2

    def point_distances_t(self, received: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Squared distances in transposed ``(M, n)`` layout (scratch-owned).

        The returned array is workspace scratch — valid until the next kernel
        call on this backend from the same thread.
        """
        yr, yi = self._split_received(received)
        c_re, c_im = self._split_points(points)
        return self._distances_tile(yr, yi, c_re, c_im, 0, yr.size, "d2_t")

    def _set_minima(self, d2: np.ndarray, bitsets: PaddedBitSets, key: str = "set_mins") -> np.ndarray:
        """Row-wise minima per padded bit set: ``(2k, n)`` scratch array."""
        n = d2.shape[1]
        mins = self.scratch(key, (2 * bitsets.k, n))
        table, sizes = bitsets.table, bitsets.sizes
        for s in range(table.shape[0]):
            acc = mins[s]
            np.copyto(acc, d2[table[s, 0]])
            for t in range(1, sizes[s]):
                np.minimum(acc, d2[table[s, t]], out=acc)
        return mins

    # -- demapping kernels --------------------------------------------------
    def maxlog_llrs(
        self,
        received: np.ndarray,
        points: np.ndarray,
        bitsets: PaddedBitSets,
        sigma2: float,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fused max-log bit LLRs ``(n, k)`` float64.

        One distance pass + one row-reduction pass per bit set; the Python
        loop over bit positions of the naive formulation is gone.
        """
        d2 = self.point_distances_t(received, points)
        mins = self._set_minima(d2, bitsets)
        k, n = bitsets.k, d2.shape[1]
        diff = self.scratch("llr_t", (k, n))
        np.subtract(mins[:k], mins[k:], out=diff)
        np.multiply(diff, self.dtype.type(1.0 / (2.0 * sigma2)), out=diff)
        out = _check_llr_out(out, n, k)
        np.copyto(out, diff.T, casting="same_kind")
        return out

    def logmap_llrs(
        self,
        received: np.ndarray,
        points: np.ndarray,
        bitsets: PaddedBitSets,
        sigma2: float,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact log-MAP bit LLRs via streaming log-sum-exp, ``(n, k)`` float64.

        Two passes per bit set over the transposed distance rows: the set
        minimum (= LSE max, for stability) falls out of the shared minima
        kernel, then one exp-accumulate pass over the *unpadded* rows.
        """
        d2 = self.point_distances_t(received, points)
        mins = self._set_minima(d2, bitsets)
        k, n = bitsets.k, d2.shape[1]
        neg_inv = self.dtype.type(-1.0 / (2.0 * sigma2))
        lse = self.scratch("lse_t", (2 * k, n))
        acc = self.scratch("lse_acc", (n,))
        tmp = self.scratch("lse_tmp", (n,))
        table, sizes = bitsets.table, bitsets.sizes
        for s in range(table.shape[0]):
            # metric_r = -d2_r/(2σ²); max over the set = -min(d2)/(2σ²)
            mx = mins[s]
            np.multiply(mx, neg_inv, out=mx)
            acc.fill(0.0)
            for t in range(sizes[s]):
                np.multiply(d2[table[s, t]], neg_inv, out=tmp)
                np.subtract(tmp, mx, out=tmp)
                np.exp(tmp, out=tmp)
                np.add(acc, tmp, out=acc)
            np.log(acc, out=acc)
            np.add(mx, acc, out=lse[s])
        diff = self.scratch("llr_t", (k, n))
        np.subtract(lse[k:], lse[:k], out=diff)
        out = _check_llr_out(out, n, k)
        np.copyto(out, diff.T, casting="same_kind")
        return out

    # -- multi-sigma sweep kernels -------------------------------------------
    def maxlog_llrs_multi(
        self,
        received: np.ndarray,
        points: np.ndarray,
        bitsets: PaddedBitSets,
        sigma2s: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Max-log LLRs for a whole SNR sweep in one launch: ``(S, n, k)``.

        ``received`` is an ``(S, n)`` tensor (row ``s`` = the received batch
        at sweep point ``s``); ``sigma2s`` holds the per-row noise variances.
        The distance + per-bit reduction stage runs once over the flattened
        ``S·n`` samples (column-tiled so each block stays cache-resident) and
        the S ``1/(2σ²)`` scalings are applied from a per-column vector — on
        the default tier every per-SNR slice ``out[s]`` is bit-identical to
        ``maxlog_llrs(received[s], ..., sigma2s[s])``.
        """
        y, s_count, n, sig = _check_multi_args(received, sigma2s)
        k = bitsets.k
        out = _check_llr_multi_out(out, s_count, n, k)
        total = s_count * n
        if total == 0:
            return out
        out_flat = out.reshape(total, k)
        yr, yi = self._split_received(y)
        c_re, c_im = self._split_points(points)
        inv_col = self.scratch("inv2s2_col", (total,))
        inv_col.reshape(s_count, n)[:] = (1.0 / (2.0 * sig))[:, None]
        for start, stop, tag in _column_tiles(total, MULTI_SIGMA_TILE):
            d2 = self._distances_tile(yr, yi, c_re, c_im, start, stop, "sw_d2" + tag)
            mins = self._set_minima(d2, bitsets, key="sw_mins" + tag)
            diff = self.scratch("sw_llr" + tag, (k, stop - start))
            np.subtract(mins[:k], mins[k:], out=diff)
            np.multiply(diff, inv_col[None, start:stop], out=diff)
            np.copyto(out_flat[start:stop], diff.T, casting="same_kind")
        return out

    def logmap_llrs_multi(
        self,
        received: np.ndarray,
        points: np.ndarray,
        bitsets: PaddedBitSets,
        sigma2s: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact log-MAP LLRs for a whole SNR sweep: ``(S, n, k)`` float64.

        Same layout/contract as :meth:`maxlog_llrs_multi`; the shared distance
        stage and per-set minima are computed once per column tile, then the
        streaming log-sum-exp runs with the per-column ``-1/(2σ²)`` metric
        scale, reproducing the per-SNR kernel bit-for-bit on the default tier.
        """
        y, s_count, n, sig = _check_multi_args(received, sigma2s)
        k = bitsets.k
        out = _check_llr_multi_out(out, s_count, n, k)
        total = s_count * n
        if total == 0:
            return out
        out_flat = out.reshape(total, k)
        yr, yi = self._split_received(y)
        c_re, c_im = self._split_points(points)
        neg_col = self.scratch("neg_inv2s2_col", (total,))
        neg_col.reshape(s_count, n)[:] = (-1.0 / (2.0 * sig))[:, None]
        table, sizes = bitsets.table, bitsets.sizes
        for start, stop, tag in _column_tiles(total, MULTI_SIGMA_TILE):
            w = stop - start
            d2 = self._distances_tile(yr, yi, c_re, c_im, start, stop, "sw_d2" + tag)
            mins = self._set_minima(d2, bitsets, key="sw_mins" + tag)
            nc = neg_col[start:stop]
            # Pre-scale the whole tile to the LSE metric once: each point row
            # is a member of k bit sets, so the per-member scaling of the
            # scalar kernel would repeat every product k times.  The products
            # are the same IEEE multiplications either way, so per-SNR slices
            # stay bit-identical to the scalar kernel.
            np.multiply(d2, nc[None, :], out=d2)
            lse = self.scratch("sw_lse" + tag, (2 * k, w))
            acc = self.scratch("sw_lse_acc" + tag, (w,))
            tmp = self.scratch("sw_lse_tmp" + tag, (w,))
            for s in range(table.shape[0]):
                mx = mins[s]
                np.multiply(mx, nc, out=mx)
                acc.fill(0.0)
                for t in range(sizes[s]):
                    np.subtract(d2[table[s, t]], mx, out=tmp)
                    np.exp(tmp, out=tmp)
                    np.add(acc, tmp, out=acc)
                np.log(acc, out=acc)
                np.add(mx, acc, out=lse[s])
            diff = self.scratch("sw_llr" + tag, (k, w))
            np.subtract(lse[k:], lse[:k], out=diff)
            np.copyto(out_flat[start:stop], diff.T, casting="same_kind")
        return out

    def hard_indices(self, received: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Nearest-point labels (ties -> lowest label, as before).

        ``received`` may be any shape — hard decisions are σ²-independent, so
        a whole ``(S, n)`` sweep tensor batches through one flattened,
        column-tiled launch (cache-resident distance blocks; per-column
        argmin is independent of tiling, so results are unchanged); the
        returned label array matches the input shape.
        """
        y = np.asarray(received)
        yr, yi = self._split_received(y)
        c_re, c_im = self._split_points(points)
        total = yr.size
        out = np.empty(total, dtype=np.intp)
        for start, stop, tag in _column_tiles(total, MULTI_SIGMA_TILE):
            d2 = self._distances_tile(yr, yi, c_re, c_im, start, stop, "sw_d2" + tag)
            np.argmin(d2, axis=0, out=out[start:stop])
        return out.reshape(y.shape) if y.ndim != 1 else out

    # -- decoding kernels ----------------------------------------------------
    def viterbi_decode(
        self,
        branch_metrics: np.ndarray,
        src: np.ndarray,
        inb: np.ndarray,
        *,
        key: str = "viterbi",
    ) -> tuple[np.ndarray, float]:
        """Terminated-trellis Viterbi ACS + traceback over branch metrics.

        ``branch_metrics[t, s, b]`` is the (finite) metric of leaving state
        ``s`` with input bit ``b`` at step ``t``; ``src``/``inb`` are the
        destination-grouped ``(n_states, 2)`` arrival tables
        (:meth:`repro.ecc.convolutional.ConvolutionalCode.trellis_tables`).
        Starts and ends in state 0; the input bit that led into a state is
        its LSB, so traceback only needs predecessor states.  Returns
        ``(bits, path_metric)`` — the full decoded path as int8 ``(T,)``
        (termination tail included; callers slice it off) and the winning
        terminated metric.

        Bit-identical to ``ConvolutionalCode._viterbi`` on both NumPy
        tiers: the ACS intermediates are pinned to float64 scratch (the
        float32 tier inherits the method unchanged), each arrival is the
        same single IEEE add, and ties select arrival 0 exactly like the
        reference's first-wins ``argmax``.  Everything but the returned bit
        vector lives in ``key``-namespaced workspace scratch.
        """
        bm = np.ascontiguousarray(np.asarray(branch_metrics, dtype=np.float64))
        if bm.ndim != 3 or bm.shape[2] != 2:
            raise ValueError(
                f"branch_metrics must be (n_steps, n_states, 2), got {bm.shape}"
            )
        n_steps, n_states = bm.shape[0], bm.shape[1]
        src = np.asarray(src, dtype=np.int64)
        inb = np.asarray(inb, dtype=np.int64)
        if src.shape != (n_states, 2) or inb.shape != (n_states, 2):
            raise ValueError(
                f"src/inb must be ({n_states}, 2) arrival tables, "
                f"got {src.shape} and {inb.shape}"
            )
        metric = self.scratch(key + "_m0", (n_states,), dtype=np.float64)
        nxt = self.scratch(key + "_m1", (n_states,), dtype=np.float64)
        arr = self.scratch(key + "_arr", (n_states, 2), dtype=np.float64)
        gat = self.scratch(key + "_gat", (n_states, 2), dtype=np.float64)
        win = self.scratch(key + "_win", (n_states,), dtype=np.bool_)
        prev = self.scratch(key + "_prev", (n_steps, n_states), dtype=np.int64)
        flat = self.scratch(key + "_flat", (n_states, 2), dtype=np.int64)
        # flattened (state, bit) gather index into one step's (S, 2) page
        np.multiply(src, 2, out=flat)
        np.add(flat, inb, out=flat)
        metric.fill(-np.inf)
        metric[0] = 0.0
        src0, src1 = src[:, 0], src[:, 1]
        bm_flat = bm.reshape(n_steps, -1)
        for t in range(n_steps):
            np.take(metric, src, out=arr)
            np.take(bm_flat[t], flat, out=gat)
            np.add(arr, gat, out=arr)                 # arrivals (S, 2)
            # first-wins argmax: arrival 1 only on a strict improvement
            np.greater(arr[:, 1], arr[:, 0], out=win)
            np.copyto(nxt, arr[:, 0])
            np.copyto(nxt, arr[:, 1], where=win)
            np.copyto(prev[t], src0)
            np.copyto(prev[t], src1, where=win)
            metric, nxt = nxt, metric
        state = 0
        bits = np.empty(n_steps, dtype=np.int8)
        for t in range(n_steps - 1, -1, -1):
            bits[t] = state & 1
            state = int(prev[t, state])
        return bits, float(metric[0])

    # -- dense-algebra kernels ----------------------------------------------
    def linear(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fused ``x @ weight.T + bias`` without intermediate temporaries."""
        if out is None:
            out = np.empty((x.shape[0], weight.shape[0]), dtype=np.result_type(x, weight))
        np.matmul(x, weight.T, out=out)
        if bias is not None:
            out += bias
        return out

    def gemm(self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Plain matrix product with optional preallocated output."""
        if out is None:
            return a @ b
        np.matmul(a, b, out=out)
        return out

    def gemm_i64(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
    ) -> np.ndarray:
        """Integer MAC array ``x @ weight.T (+ bias)`` with int64 accumulation."""
        acc = np.matmul(x, weight.T)
        if bias is not None:
            acc += bias
        return acc
