"""NumPy compute backends: float64 reference and float32 fast path.

All hot kernels work in a **transposed** ``(M, n)`` layout internally: one
contiguous row of length ``n`` per constellation point.  Per-bit reductions
then become row-wise ``minimum``/``exp`` passes over contiguous memory —
measured ~5× faster than the naive ``(n, M)`` column-gather formulation for
16-QAM at 256k symbols — and every intermediate lives in the backend
workspace, so steady-state batches allocate only the caller-visible output
(nothing at all when ``out=`` is passed).

The float64 tier reproduces the pre-backend reference implementation
bit-for-bit (same IEEE operations in the same order per element); the
float32 tier halves memory traffic and roughly doubles throughput at a
documented LLR tolerance (see ``FLOAT32_LLR_RTOL``).
"""

from __future__ import annotations

import numpy as np

from repro.backend.bitsets import PaddedBitSets
from repro.backend.workspace import Workspace

__all__ = ["NumpyBackend", "FLOAT32_LLR_RTOL"]

#: Documented agreement between the float32 and float64 tiers: max-log and
#: log-MAP LLRs agree within this *relative* tolerance of the batch's peak
#: LLR magnitude (float32 keeps ~7 significant digits; distances are O(1)
#: and the 1/(2σ²) scaling is exact in both tiers).
FLOAT32_LLR_RTOL = 1e-4


def _check_llr_out(out: np.ndarray | None, n: int, k: int) -> np.ndarray:
    """Validate a caller-supplied LLR output buffer (or allocate one).

    The documented contract is an exact float64 ``(n, k)`` array — silently
    demoting precision or broadcasting into a larger buffer would void the
    bit-identity guarantees, so both are rejected.
    """
    if out is None:
        return np.empty((n, k), dtype=np.float64)
    if out.shape != (n, k):
        raise ValueError(f"out must have shape ({n}, {k}), got {out.shape}")
    if out.dtype != np.float64:
        raise ValueError(f"out must be float64, got {out.dtype}")
    return out


class NumpyBackend:
    """Vectorised NumPy kernels at a configurable working precision.

    Parameters
    ----------
    dtype:
        Working dtype of the distance/reduction intermediates
        (``np.float64`` = reference tier, ``np.float32`` = fast tier).
        Caller-facing outputs are always float64.
    name:
        Registry name (defaults to ``"numpy"``/``"numpy32"`` by dtype).
    """

    def __init__(self, dtype=np.float64, *, name: str | None = None):
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"unsupported backend dtype {dtype}")
        self.dtype = dtype
        self.name = name if name is not None else ("numpy" if dtype == np.float64 else "numpy32")
        self.workspace = Workspace()

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}(name={self.name!r}, dtype={self.dtype.name})"

    # -- workspace ----------------------------------------------------------
    def scratch(self, key: str, shape: tuple[int, ...], dtype=None) -> np.ndarray:
        """Reusable uninitialised buffer (see :class:`Workspace`)."""
        return self.workspace.scratch(key, shape, self.dtype if dtype is None else dtype)

    # -- shared distance stage ---------------------------------------------
    def _split_received(self, received: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Received complex ``(n,)`` -> contiguous real/imag scratch vectors."""
        y = np.asarray(received)
        if not np.iscomplexobj(y):
            y = y.astype(np.complex128)
        y = y.ravel()
        n = y.size
        yr = self.scratch("y_re", (n,))
        yi = self.scratch("y_im", (n,))
        np.copyto(yr, y.real, casting="same_kind")
        np.copyto(yi, y.imag, casting="same_kind")
        return yr, yi

    def point_distances_t(self, received: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Squared distances in transposed ``(M, n)`` layout (scratch-owned).

        The returned array is workspace scratch — valid until the next kernel
        call on this backend from the same thread.
        """
        yr, yi = self._split_received(received)
        c = np.asarray(points).ravel()
        c_re = c.real.astype(self.dtype)
        c_im = c.imag.astype(self.dtype)
        m, n = c.size, yr.size
        d2 = self.scratch("d2_t", (m, n))
        t = self.scratch("d2_tmp", (m, n))
        np.subtract(c_re[:, None], yr[None, :], out=d2)
        np.multiply(d2, d2, out=d2)
        np.subtract(c_im[:, None], yi[None, :], out=t)
        np.multiply(t, t, out=t)
        np.add(d2, t, out=d2)
        return d2

    def _set_minima(self, d2: np.ndarray, bitsets: PaddedBitSets) -> np.ndarray:
        """Row-wise minima per padded bit set: ``(2k, n)`` scratch array."""
        n = d2.shape[1]
        mins = self.scratch("set_mins", (2 * bitsets.k, n))
        table, sizes = bitsets.table, bitsets.sizes
        for s in range(table.shape[0]):
            acc = mins[s]
            np.copyto(acc, d2[table[s, 0]])
            for t in range(1, sizes[s]):
                np.minimum(acc, d2[table[s, t]], out=acc)
        return mins

    # -- demapping kernels --------------------------------------------------
    def maxlog_llrs(
        self,
        received: np.ndarray,
        points: np.ndarray,
        bitsets: PaddedBitSets,
        sigma2: float,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fused max-log bit LLRs ``(n, k)`` float64.

        One distance pass + one row-reduction pass per bit set; the Python
        loop over bit positions of the naive formulation is gone.
        """
        d2 = self.point_distances_t(received, points)
        mins = self._set_minima(d2, bitsets)
        k, n = bitsets.k, d2.shape[1]
        diff = self.scratch("llr_t", (k, n))
        np.subtract(mins[:k], mins[k:], out=diff)
        np.multiply(diff, self.dtype.type(1.0 / (2.0 * sigma2)), out=diff)
        out = _check_llr_out(out, n, k)
        np.copyto(out, diff.T, casting="same_kind")
        return out

    def logmap_llrs(
        self,
        received: np.ndarray,
        points: np.ndarray,
        bitsets: PaddedBitSets,
        sigma2: float,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact log-MAP bit LLRs via streaming log-sum-exp, ``(n, k)`` float64.

        Two passes per bit set over the transposed distance rows: the set
        minimum (= LSE max, for stability) falls out of the shared minima
        kernel, then one exp-accumulate pass over the *unpadded* rows.
        """
        d2 = self.point_distances_t(received, points)
        mins = self._set_minima(d2, bitsets)
        k, n = bitsets.k, d2.shape[1]
        neg_inv = self.dtype.type(-1.0 / (2.0 * sigma2))
        lse = self.scratch("lse_t", (2 * k, n))
        acc = self.scratch("lse_acc", (n,))
        tmp = self.scratch("lse_tmp", (n,))
        table, sizes = bitsets.table, bitsets.sizes
        for s in range(table.shape[0]):
            # metric_r = -d2_r/(2σ²); max over the set = -min(d2)/(2σ²)
            mx = mins[s]
            np.multiply(mx, neg_inv, out=mx)
            acc.fill(0.0)
            for t in range(sizes[s]):
                np.multiply(d2[table[s, t]], neg_inv, out=tmp)
                np.subtract(tmp, mx, out=tmp)
                np.exp(tmp, out=tmp)
                np.add(acc, tmp, out=acc)
            np.log(acc, out=acc)
            np.add(mx, acc, out=lse[s])
        diff = self.scratch("llr_t", (k, n))
        np.subtract(lse[k:], lse[:k], out=diff)
        out = _check_llr_out(out, n, k)
        np.copyto(out, diff.T, casting="same_kind")
        return out

    def hard_indices(self, received: np.ndarray, points: np.ndarray) -> np.ndarray:
        """Nearest-point labels ``(n,)`` (ties -> lowest label, as before)."""
        d2 = self.point_distances_t(received, points)
        return np.argmin(d2, axis=0)

    # -- dense-algebra kernels ----------------------------------------------
    def linear(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Fused ``x @ weight.T + bias`` without intermediate temporaries."""
        if out is None:
            out = np.empty((x.shape[0], weight.shape[0]), dtype=np.result_type(x, weight))
        np.matmul(x, weight.T, out=out)
        if bias is not None:
            out += bias
        return out

    def gemm(self, a: np.ndarray, b: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Plain matrix product with optional preallocated output."""
        if out is None:
            return a @ b
        np.matmul(a, b, out=out)
        return out

    def gemm_i64(
        self,
        x: np.ndarray,
        weight: np.ndarray,
        bias: np.ndarray | None = None,
    ) -> np.ndarray:
        """Integer MAC array ``x @ weight.T (+ bias)`` with int64 accumulation."""
        acc = np.matmul(x, weight.T)
        if bias is not None:
            acc += bias
        return acc
