"""Group-by-constellation batched dispatch over the multi-sigma kernels.

The serving engine coalesces pending frames *across sessions* into one
micro-batch.  Sessions do not share a σ² estimate — each owns its own — but
many share a constellation/centroid point set, and the multi-sigma kernels
introduced for SNR sweeps (``maxlog_llrs_multi``) already solve exactly this
shape: an ``(S, n)`` received tensor with a per-row σ² vector over one shared
point set.  This module provides the grouping layer in between: take a list
of per-frame demap requests (each with its own points / bit sets / σ² /
received row), partition it into groups whose members share a point set, a
bit labelling, and a row length, and dispatch **one** fused kernel launch per
group instead of one per request.

The stacked ``(S, n)`` input, the per-group σ² vector and the ``(S, n, k)``
kernel output all live in the backend workspace, so a steady-state serving
loop that passes per-request ``out=`` buffers allocates nothing.  On the
default (float64) tier every request's LLR block is bit-identical to a
sequential ``maxlog_llrs`` call with the same arguments — grouping only
shares the distance stage, which is the multi-kernel's documented contract.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backend.bitsets import PaddedBitSets
from repro.backend.core import get_backend

__all__ = ["DemapRequest", "group_requests", "batched_maxlog_llrs", "grouped_maxlog_llrs"]


@dataclass(frozen=True)
class DemapRequest:
    """One frame's worth of soft-demapping work.

    Attributes
    ----------
    received:
        Complex received row ``(n,)``.
    points:
        Constellation / centroid points ``(M,)``.
    bitsets:
        Padded per-bit index table for ``points``' labelling.
    sigma2:
        This request's per-real-dimension noise variance.
    """

    received: np.ndarray
    points: np.ndarray
    bitsets: PaddedBitSets
    sigma2: float

    def __post_init__(self) -> None:
        if self.sigma2 <= 0:
            raise ValueError(f"sigma2 must be positive, got {self.sigma2}")


#: id(array) -> content bytes, evicted by weakref.finalize when the array is
#: collected (so a reused id can never serve a stale key).  Point sets and
#: bit-set tables are immutable throughout the codebase (frozen
#: Constellation / PaddedBitSets), which is what makes caching by identity
#: sound; a fleet of sessions sharing one centroid set then pays the
#: serialization once, not once per frame per round.
_content_keys: dict[int, bytes] = {}


def _cached_bytes(arr: np.ndarray) -> bytes:
    if not isinstance(arr, np.ndarray):
        return np.ascontiguousarray(np.asarray(arr)).tobytes()
    key = _content_keys.get(id(arr))
    if key is None:
        key = np.ascontiguousarray(arr).tobytes()
        _content_keys[id(arr)] = key
        weakref.finalize(arr, _content_keys.pop, id(arr), None)
    return key


def _group_key(req: DemapRequest) -> tuple:
    """Batching key: requests batch iff point set, labelling and length match.

    Content-based (point values, not object identity), so two sessions whose
    centroid sets were extracted independently but landed on identical points
    still share a launch, while a session whose demapper was just swapped
    falls out of its old group automatically.  The content bytes are cached
    per array object (see :data:`_content_keys`), so the common case — many
    sessions sharing one constellation — costs a dict hit per request.
    """
    return (
        _cached_bytes(req.points),
        _cached_bytes(req.bitsets.table),
        int(np.asarray(req.received).size),
    )


def group_requests(requests: Sequence[DemapRequest]) -> list[list[int]]:
    """Partition request indices into batchable groups (input order kept).

    Returns a list of index lists; each inner list names the requests of one
    group, in their original submission order (so batching never reorders a
    session's frames relative to each other).
    """
    groups: dict[tuple, list[int]] = {}
    for i, req in enumerate(requests):
        groups.setdefault(_group_key(req), []).append(i)
    return list(groups.values())


def batched_maxlog_llrs(
    requests: Sequence[DemapRequest],
    *,
    backend=None,
    key: str = "disp",
    with_received: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """One fused launch for requests already known to share a group.

    All requests must share a point set, bit labelling and row length (the
    first request is taken as the group's reference — callers obtain such
    groups from :func:`group_requests`).  Returns the scratch-owned
    ``(S, n, k)`` LLR tensor: row ``s`` is request ``s``'s LLR block, valid
    until the next kernel call on this backend from the same thread.  The
    stacked input, σ² vector and output all live in the workspace under
    ``key``-namespaced entries, so steady-state callers allocate nothing.

    With ``with_received`` the scratch-owned stacked ``(S, n)`` input is
    returned alongside the LLRs — callers that post-process the same batch
    (the serving engine's pilot noise estimation) reuse the stacking copy
    instead of redoing it, under the same scratch-lifetime rules.
    """
    if not requests:
        raise ValueError("batched_maxlog_llrs needs at least one request")
    be = backend if backend is not None else get_backend()
    first = requests[0]
    n = np.asarray(first.received).size
    k = first.bitsets.k
    s = len(requests)
    stacked = be.scratch(f"{key}_rx", (s, n), dtype=np.complex128)
    sig = be.scratch(f"{key}_sig", (s,), dtype=np.float64)
    for row, req in enumerate(requests):
        rec = np.asarray(req.received).ravel()
        if rec.size != n:
            raise ValueError(f"request {row} has length {rec.size}, group expects {n}")
        np.copyto(stacked[row], rec, casting="same_kind")
        sig[row] = req.sigma2
    llrs = be.maxlog_llrs_multi(
        stacked,
        first.points,
        first.bitsets,
        sig,
        out=be.scratch(f"{key}_llr", (s, n, k), dtype=np.float64),
    )
    return (llrs, stacked) if with_received else llrs


def grouped_maxlog_llrs(
    requests: Sequence[DemapRequest],
    *,
    outs: Sequence[np.ndarray | None] | None = None,
    backend=None,
) -> list[np.ndarray]:
    """Demap every request, one fused multi-sigma launch per group.

    Parameters
    ----------
    requests:
        The per-frame work items (see :class:`DemapRequest`).
    outs:
        Optional per-request float64 ``(n, k)`` output buffers (entries may
        be None); with buffers supplied the steady-state call allocates
        nothing — stacking, σ² vector and the kernel's ``(S, n, k)`` output
        all come from the backend workspace.
    backend:
        Backend instance to dispatch on (default: the process-wide one).

    Returns
    -------
    Per-request LLR arrays ``(n, k)`` in request order.  On the default tier
    each is bit-identical to ``backend.maxlog_llrs(received, points,
    bitsets, sigma2)`` for that request alone.
    """
    be = backend if backend is not None else get_backend()
    if outs is not None and len(outs) != len(requests):
        raise ValueError(f"outs must have one entry per request: {len(outs)} vs {len(requests)}")
    results: list[np.ndarray | None] = [None] * len(requests)
    for g, members in enumerate(group_requests(requests)):
        if len(members) == 1:
            # no batching partner — the scalar kernel skips the stacking copy
            i = members[0]
            req = requests[i]
            out = outs[i] if outs is not None else None
            results[i] = be.maxlog_llrs(
                req.received, req.points, req.bitsets, req.sigma2, out=out
            )
            continue
        llrs = batched_maxlog_llrs(
            [requests[i] for i in members], backend=be, key=f"disp#{g}"
        )
        for row, i in enumerate(members):
            if outs is not None and outs[i] is not None:
                np.copyto(outs[i], llrs[row], casting="same_kind")
                results[i] = outs[i]
            else:
                results[i] = llrs[row].copy()
    return results
