"""Group-by-constellation batched dispatch over the multi-sigma kernels.

The serving engine coalesces pending frames *across sessions* into one
micro-batch.  Sessions do not share a σ² estimate — each owns its own — but
many share a constellation/centroid point set, and the multi-sigma kernels
introduced for SNR sweeps (``maxlog_llrs_multi``) already solve exactly this
shape: an ``(S, n)`` received tensor with a per-row σ² vector over one shared
point set.  This module provides the grouping layer in between: take a list
of per-frame demap requests (each with its own points / bit sets / σ² /
received row), partition it into groups whose members share a point set, a
bit labelling, and a row length, and dispatch **one** fused kernel launch per
group instead of one per request.

The stacked ``(S, n)`` input, the per-group σ² vector and the ``(S, n, k)``
kernel output all live in the backend workspace, so a steady-state serving
loop that passes per-request ``out=`` buffers allocates nothing.  On the
default (float64) tier every request's LLR block is bit-identical to a
sequential ``maxlog_llrs`` call with the same arguments — grouping only
shares the distance stage, which is the multi-kernel's documented contract.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backend.bitsets import PaddedBitSets
from repro.backend.core import get_backend

__all__ = [
    "DemapRequest",
    "group_requests",
    "batched_maxlog_llrs",
    "grouped_maxlog_llrs",
    "grouped_viterbi_decode",
]


@dataclass(frozen=True)
class DemapRequest:
    """One frame's worth of soft-demapping work.

    Attributes
    ----------
    received:
        Complex received row ``(n,)``.
    points:
        Constellation / centroid points ``(M,)``.
    bitsets:
        Padded per-bit index table for ``points``' labelling.
    sigma2:
        This request's per-real-dimension noise variance.
    """

    received: np.ndarray
    points: np.ndarray
    bitsets: PaddedBitSets
    sigma2: float

    def __post_init__(self) -> None:
        if self.sigma2 <= 0:
            raise ValueError(f"sigma2 must be positive, got {self.sigma2}")


#: id(array) -> content bytes, evicted by weakref.finalize when the array is
#: collected (so a reused id can never serve a stale key).  Point sets and
#: bit-set tables are immutable throughout the codebase (frozen
#: Constellation / PaddedBitSets), which is what makes caching by identity
#: sound; a fleet of sessions sharing one centroid set then pays the
#: serialization once, not once per frame per round.
_content_keys: dict[int, bytes] = {}


def _cached_bytes(arr: np.ndarray) -> bytes:
    if not isinstance(arr, np.ndarray):
        return np.ascontiguousarray(np.asarray(arr)).tobytes()
    key = _content_keys.get(id(arr))
    if key is None:
        key = np.ascontiguousarray(arr).tobytes()
        _content_keys[id(arr)] = key
        weakref.finalize(arr, _content_keys.pop, id(arr), None)
    return key


def _group_key(req: DemapRequest) -> tuple:
    """Batching key: requests batch iff point set, labelling and length match.

    Content-based (point values, not object identity), so two sessions whose
    centroid sets were extracted independently but landed on identical points
    still share a launch, while a session whose demapper was just swapped
    falls out of its old group automatically.  The content bytes are cached
    per array object (see :data:`_content_keys`), so the common case — many
    sessions sharing one constellation — costs a dict hit per request.
    """
    return (
        _cached_bytes(req.points),
        _cached_bytes(req.bitsets.table),
        int(np.asarray(req.received).size),
    )


def group_requests(requests: Sequence[DemapRequest]) -> list[list[int]]:
    """Partition request indices into batchable groups (input order kept).

    Returns a list of index lists; each inner list names the requests of one
    group, in their original submission order (so batching never reorders a
    session's frames relative to each other).
    """
    groups: dict[tuple, list[int]] = {}
    for i, req in enumerate(requests):
        groups.setdefault(_group_key(req), []).append(i)
    return list(groups.values())


def batched_maxlog_llrs(
    requests: Sequence[DemapRequest],
    *,
    backend=None,
    key: str = "disp",
    with_received: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """One fused launch for requests already known to share a group.

    All requests must share a point set, bit labelling and row length (the
    first request is taken as the group's reference — callers obtain such
    groups from :func:`group_requests`).  Returns the scratch-owned
    ``(S, n, k)`` LLR tensor: row ``s`` is request ``s``'s LLR block, valid
    until the next kernel call on this backend from the same thread.  The
    stacked input, σ² vector and output all live in the workspace under
    ``key``-namespaced entries, so steady-state callers allocate nothing.

    With ``with_received`` the scratch-owned stacked ``(S, n)`` input is
    returned alongside the LLRs — callers that post-process the same batch
    (the serving engine's pilot noise estimation) reuse the stacking copy
    instead of redoing it, under the same scratch-lifetime rules.
    """
    if not requests:
        raise ValueError("batched_maxlog_llrs needs at least one request")
    be = backend if backend is not None else get_backend()
    first = requests[0]
    n = np.asarray(first.received).size
    k = first.bitsets.k
    s = len(requests)
    stacked = be.scratch(f"{key}_rx", (s, n), dtype=np.complex128)
    sig = be.scratch(f"{key}_sig", (s,), dtype=np.float64)
    for row, req in enumerate(requests):
        rec = np.asarray(req.received).ravel()
        if rec.size != n:
            raise ValueError(f"request {row} has length {rec.size}, group expects {n}")
        np.copyto(stacked[row], rec, casting="same_kind")
        sig[row] = req.sigma2
    llrs = be.maxlog_llrs_multi(
        stacked,
        first.points,
        first.bitsets,
        sig,
        out=be.scratch(f"{key}_llr", (s, n, k), dtype=np.float64),
    )
    return (llrs, stacked) if with_received else llrs


def grouped_maxlog_llrs(
    requests: Sequence[DemapRequest],
    *,
    outs: Sequence[np.ndarray | None] | None = None,
    backend=None,
) -> list[np.ndarray]:
    """Demap every request, one fused multi-sigma launch per group.

    Parameters
    ----------
    requests:
        The per-frame work items (see :class:`DemapRequest`).
    outs:
        Optional per-request float64 ``(n, k)`` output buffers (entries may
        be None); with buffers supplied the steady-state call allocates
        nothing — stacking, σ² vector and the kernel's ``(S, n, k)`` output
        all come from the backend workspace.
    backend:
        Backend instance to dispatch on (default: the process-wide one).

    Returns
    -------
    Per-request LLR arrays ``(n, k)`` in request order.  On the default tier
    each is bit-identical to ``backend.maxlog_llrs(received, points,
    bitsets, sigma2)`` for that request alone.
    """
    be = backend if backend is not None else get_backend()
    if outs is not None and len(outs) != len(requests):
        raise ValueError(f"outs must have one entry per request: {len(outs)} vs {len(requests)}")
    results: list[np.ndarray | None] = [None] * len(requests)
    for g, members in enumerate(group_requests(requests)):
        if len(members) == 1:
            # no batching partner — the scalar kernel skips the stacking copy
            i = members[0]
            req = requests[i]
            out = outs[i] if outs is not None else None
            results[i] = be.maxlog_llrs(
                req.received, req.points, req.bitsets, req.sigma2, out=out
            )
            continue
        llrs = batched_maxlog_llrs(
            [requests[i] for i in members], backend=be, key=f"disp#{g}"
        )
        for row, i in enumerate(members):
            if outs is not None and outs[i] is not None:
                np.copyto(outs[i], llrs[row], casting="same_kind")
                results[i] = outs[i]
            else:
                results[i] = llrs[row].copy()
    return results


def grouped_viterbi_decode(
    code,
    llr_blocks: np.ndarray,
    *,
    backend=None,
    key: str = "vit",
) -> list[tuple[np.ndarray, float]]:
    """Soft-decision Viterbi over a stack of equal-geometry LLR blocks.

    The coded sibling of :func:`batched_maxlog_llrs`: callers (the serving
    engine) group coalesced frames by their
    :class:`~repro.serving.coding.CodedFrameConfig`, so every block of a
    launch shares ``code``'s trellis — the (cached) transition/output
    tables are fetched once and the per-block branch metrics land in one
    ``key``-namespaced workspace tensor, not one allocation per frame.

    Parameters
    ----------
    code:
        A :class:`~repro.ecc.convolutional.ConvolutionalCode` (anything
        with ``trellis_tables()``, ``n_states`` and ``n_out``).
    llr_blocks:
        ``(R, n_steps, n_out)`` deinterleaved LLR stack — row ``r`` is one
        frame's coded payload in trellis-step order.
    backend:
        Backend instance to dispatch ``viterbi_decode`` on (default: the
        process-wide one).

    Returns
    -------
    Per-block ``(bits, path_metric)`` tuples in row order, where ``bits``
    is the full int8 decoded path (termination tail included — callers
    slice ``bits[:n_steps - (K - 1)]``).  Each row's result is a pure
    function of that row's LLRs alone (the ACS never mixes rows), and on
    every tier it is bit-identical to ``code.decode_soft`` on the single
    block — the decode analogue of the demap grouping contract.
    """
    be = backend if backend is not None else get_backend()
    blocks = np.asarray(llr_blocks, dtype=np.float64)
    if blocks.ndim != 3:
        raise ValueError(
            f"llr_blocks must be (R, n_steps, n_out), got shape {blocks.shape}"
        )
    r, n_steps, n_out = blocks.shape
    if n_out != code.n_out:
        raise ValueError(f"blocks carry {n_out} LLRs per step, code emits {code.n_out}")
    src, inb, outputs = code.trellis_tables()
    bm = be.scratch(f"{key}_bm", (r, n_steps, code.n_states, 2), dtype=np.float64)
    results: list[tuple[np.ndarray, float]] = []
    for row in range(r):
        # per-row einsum: exactly the reference decode_soft contraction, so
        # batch composition can never perturb a block's branch metrics
        np.einsum("tj,sbj->tsb", blocks[row], outputs, out=bm[row])
        results.append(be.viterbi_decode(bm[row], src, inb, key=key))
    return results
