"""Pluggable compute backends for the demapping / Monte-Carlo hot paths.

See :mod:`repro.backend.core` for the tier table and selection rules
(``REPRO_BACKEND`` env var, :func:`set_backend`, :func:`use_backend`) and
:mod:`repro.backend.workspace` for the workspace-reuse contract that lets
steady-state batches run allocation-free.
"""

from repro.backend.bitsets import PaddedBitSets
from repro.backend.dispatch import DemapRequest, group_requests, grouped_maxlog_llrs
from repro.backend.core import (
    ENV_VAR,
    available_backends,
    backend_from_name,
    get_backend,
    set_backend,
    use_backend,
)
from repro.backend.numba_backend import NUMBA_AVAILABLE, NumbaBackend
from repro.backend.numpy_backend import FLOAT32_LLR_RTOL, NumpyBackend
from repro.backend.workspace import Workspace

__all__ = [
    "ENV_VAR",
    "FLOAT32_LLR_RTOL",
    "NUMBA_AVAILABLE",
    "DemapRequest",
    "NumbaBackend",
    "NumpyBackend",
    "PaddedBitSets",
    "Workspace",
    "available_backends",
    "backend_from_name",
    "get_backend",
    "group_requests",
    "grouped_maxlog_llrs",
    "set_backend",
    "use_backend",
]
