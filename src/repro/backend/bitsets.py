"""Padded per-bit index tables for point-set demapping kernels.

The max-log and log-MAP demappers need, for every bit position ``j`` and bit
value ``v``, the indices of the constellation points whose label has bit
``j`` equal to ``v``.  Kernels want these as one rectangular table instead of
``2k`` ragged Python lists, so the whole per-bit reduction is a single
strided pass (NumPy) or a fixed-trip-count inner loop (Numba) — no Python
loop over bit positions in the hot path.

Rows ``0..k-1`` of :attr:`PaddedBitSets.table` are the bit=0 sets, rows
``k..2k-1`` the bit=1 sets, each padded to the widest set.  Padding entries
repeat the row's first index — harmless for ``min`` reductions — and
:attr:`sizes` records the true set lengths for reductions (like log-sum-exp)
where duplicates would bias the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PaddedBitSets"]


@dataclass(frozen=True)
class PaddedBitSets:
    """Rectangular index tables over a labelled point set.

    Attributes
    ----------
    table:
        ``(2k, width)`` intp array; row ``j`` = indices with bit ``j`` = 0,
        row ``k+j`` = indices with bit ``j`` = 1, right-padded by repeating
        the first index of the row.
    sizes:
        ``(2k,)`` true (unpadded) lengths of each row.
    k:
        Bits per symbol.
    order:
        Number of points M.
    """

    table: np.ndarray
    sizes: np.ndarray
    k: int
    order: int

    @property
    def width(self) -> int:
        """Padded row width (size of the largest per-bit set)."""
        return int(self.table.shape[1])

    def row(self, j: int, value: int) -> np.ndarray:
        """Unpadded indices for bit ``j`` equal to ``value``."""
        r = j + (self.k if value else 0)
        return self.table[r, : self.sizes[r]]

    @staticmethod
    def from_bit_matrix(bit_matrix: np.ndarray) -> "PaddedBitSets":
        """Build tables from an ``(M, k)`` bit-label matrix."""
        bm = np.asarray(bit_matrix)
        if bm.ndim != 2:
            raise ValueError(f"bit_matrix must be 2-D, got shape {bm.shape}")
        order, k = bm.shape
        rows = [np.flatnonzero(bm[:, j] == v) for v in (0, 1) for j in range(k)]
        if any(r.size == 0 for r in rows):
            raise ValueError("every bit position needs at least one point per bit value")
        width = max(r.size for r in rows)
        table = np.empty((2 * k, width), dtype=np.intp)
        sizes = np.empty(2 * k, dtype=np.intp)
        for i, r in enumerate(rows):
            table[i, : r.size] = r
            table[i, r.size :] = r[0]
            sizes[i] = r.size
        return PaddedBitSets(table=table, sizes=sizes, k=k, order=order)
