"""Optional Numba-JIT backend with silent NumPy fallback.

Importing this module never fails and never imports the JIT toolchain:
``NUMBA_AVAILABLE`` is probed with :func:`importlib.util.find_spec` (cheap),
and the actual ``numba`` import plus kernel compilation happen lazily on
first :class:`NumbaBackend` construction, so ``import repro`` stays fast
even on machines where numba (and llvmlite) are installed.  When Numba is
absent the registry quietly serves the NumPy reference backend instead (the
issue-mandated "silent fallback"), so the same code runs unchanged in
minimal containers.

The jitted kernels fuse the whole demapping pipeline per symbol — distance,
per-bit minima (or streaming log-sum-exp), scaling — in one cache-resident
pass over a stack-local distance vector, the same dataflow as the FPGA's
pipelined distance/min-tree stages.  Hard decisions are bit-identical to the
NumPy float64 tier: identical IEEE double operations, only the loop
scheduling differs.
"""

from __future__ import annotations

import importlib.util
from types import SimpleNamespace

import numpy as np

from repro.backend.bitsets import PaddedBitSets
from repro.backend.numpy_backend import (
    NumpyBackend,
    _check_llr_multi_out,
    _check_llr_out,
    _check_multi_args,
)

__all__ = ["NUMBA_AVAILABLE", "NumbaBackend"]

#: Cheap availability probe — does not import numba/llvmlite.
NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

_kernels: SimpleNamespace | None = None


def _get_kernels() -> SimpleNamespace:  # pragma: no cover - needs numba installed
    """Import numba and compile the kernel set once, on first use."""
    global _kernels
    if _kernels is not None:
        return _kernels
    from numba import njit

    @njit(cache=True)
    def maxlog(y_re, y_im, c_re, c_im, table, sizes, k, scale, out):
        n = y_re.size
        m = c_re.size
        d2 = np.empty(m, dtype=np.float64)
        for i in range(n):
            for p in range(m):
                dr = y_re[i] - c_re[p]
                di = y_im[i] - c_im[p]
                d2[p] = dr * dr + di * di
            for j in range(k):
                m0 = np.inf
                for t in range(sizes[j]):
                    v = d2[table[j, t]]
                    if v < m0:
                        m0 = v
                m1 = np.inf
                for t in range(sizes[k + j]):
                    v = d2[table[k + j, t]]
                    if v < m1:
                        m1 = v
                out[i, j] = (m0 - m1) * scale

    @njit(cache=True)
    def logmap(y_re, y_im, c_re, c_im, table, sizes, k, inv_2s2, out):
        n = y_re.size
        m = c_re.size
        metric = np.empty(m, dtype=np.float64)
        for i in range(n):
            for p in range(m):
                dr = y_re[i] - c_re[p]
                di = y_im[i] - c_im[p]
                metric[p] = -(dr * dr + di * di) * inv_2s2
            for j in range(k):
                mx1 = -np.inf
                for t in range(sizes[k + j]):
                    v = metric[table[k + j, t]]
                    if v > mx1:
                        mx1 = v
                s1 = 0.0
                for t in range(sizes[k + j]):
                    s1 += np.exp(metric[table[k + j, t]] - mx1)
                mx0 = -np.inf
                for t in range(sizes[j]):
                    v = metric[table[j, t]]
                    if v > mx0:
                        mx0 = v
                s0 = 0.0
                for t in range(sizes[j]):
                    s0 += np.exp(metric[table[j, t]] - mx0)
                out[i, j] = (mx1 + np.log(s1)) - (mx0 + np.log(s0))

    @njit(cache=True)
    def maxlog_multi(y_re, y_im, c_re, c_im, table, sizes, k, scale_col, out):
        # identical dataflow to `maxlog`, with a per-sample (= per sweep row)
        # 1/(2σ²) scaling read from the expanded column vector
        n = y_re.size
        m = c_re.size
        d2 = np.empty(m, dtype=np.float64)
        for i in range(n):
            for p in range(m):
                dr = y_re[i] - c_re[p]
                di = y_im[i] - c_im[p]
                d2[p] = dr * dr + di * di
            for j in range(k):
                m0 = np.inf
                for t in range(sizes[j]):
                    v = d2[table[j, t]]
                    if v < m0:
                        m0 = v
                m1 = np.inf
                for t in range(sizes[k + j]):
                    v = d2[table[k + j, t]]
                    if v < m1:
                        m1 = v
                out[i, j] = (m0 - m1) * scale_col[i]

    @njit(cache=True)
    def logmap_multi(y_re, y_im, c_re, c_im, table, sizes, k, inv_2s2_col, out):
        n = y_re.size
        m = c_re.size
        metric = np.empty(m, dtype=np.float64)
        for i in range(n):
            inv_2s2 = inv_2s2_col[i]
            for p in range(m):
                dr = y_re[i] - c_re[p]
                di = y_im[i] - c_im[p]
                metric[p] = -(dr * dr + di * di) * inv_2s2
            for j in range(k):
                mx1 = -np.inf
                for t in range(sizes[k + j]):
                    v = metric[table[k + j, t]]
                    if v > mx1:
                        mx1 = v
                s1 = 0.0
                for t in range(sizes[k + j]):
                    s1 += np.exp(metric[table[k + j, t]] - mx1)
                mx0 = -np.inf
                for t in range(sizes[j]):
                    v = metric[table[j, t]]
                    if v > mx0:
                        mx0 = v
                s0 = 0.0
                for t in range(sizes[j]):
                    s0 += np.exp(metric[table[j, t]] - mx0)
                out[i, j] = (mx1 + np.log(s1)) - (mx0 + np.log(s0))

    @njit(cache=True)
    def hard(y_re, y_im, c_re, c_im, out):
        n = y_re.size
        m = c_re.size
        for i in range(n):
            best = np.inf
            arg = 0
            for p in range(m):
                dr = y_re[i] - c_re[p]
                di = y_im[i] - c_im[p]
                v = dr * dr + di * di
                if v < best:
                    best = v
                    arg = p
            out[i] = arg

    @njit(cache=True)
    def viterbi(bm, src, inb, prev, bits):
        # terminated-trellis ACS + traceback; strict `>` on arrival 1
        # replicates the NumPy reference's first-wins argmax tie-breaking,
        # and each arrival is the same single IEEE double add
        n_steps = bm.shape[0]
        n_states = bm.shape[1]
        metric = np.empty(n_states, dtype=np.float64)
        nxt = np.empty(n_states, dtype=np.float64)
        for s in range(n_states):
            metric[s] = -np.inf
        metric[0] = 0.0
        for t in range(n_steps):
            for s in range(n_states):
                s0 = src[s, 0]
                s1 = src[s, 1]
                a0 = metric[s0] + bm[t, s0, inb[s, 0]]
                a1 = metric[s1] + bm[t, s1, inb[s, 1]]
                if a1 > a0:
                    nxt[s] = a1
                    prev[t, s] = s1
                else:
                    nxt[s] = a0
                    prev[t, s] = s0
            for s in range(n_states):
                metric[s] = nxt[s]
        state = 0
        for t in range(n_steps - 1, -1, -1):
            bits[t] = state & 1
            state = prev[t, state]
        return metric[0]

    @njit(cache=True)
    def gemm_i64(x, w, bias, out):
        n, kin = x.shape
        kout = w.shape[0]
        for i in range(n):
            for o in range(kout):
                acc = bias[o]
                for c in range(kin):
                    acc += x[i, c] * w[o, c]
                out[i, o] = acc

    _kernels = SimpleNamespace(
        maxlog=maxlog,
        logmap=logmap,
        maxlog_multi=maxlog_multi,
        logmap_multi=logmap_multi,
        hard=hard,
        viterbi=viterbi,
        gemm_i64=gemm_i64,
    )
    return _kernels


class NumbaBackend(NumpyBackend):
    """JIT tier: fused per-symbol kernels, float64 semantics.

    Construction raises :class:`RuntimeError` when Numba is missing.  The
    registry (:func:`repro.backend.core.backend_from_name`) never constructs
    this class in that case — it checks :data:`NUMBA_AVAILABLE` first and
    serves the NumPy reference instead — so only direct instantiation sees
    the error.
    """

    def __init__(self) -> None:
        if not NUMBA_AVAILABLE:
            raise RuntimeError("numba is not installed")
        super().__init__(np.float64, name="numba")
        self._k = _get_kernels()

    def _prepared(self, received, points):  # pragma: no cover - needs numba
        yr, yi = self._split_received(received)
        c = np.asarray(points).ravel()
        return yr, yi, np.ascontiguousarray(c.real), np.ascontiguousarray(c.imag)

    def maxlog_llrs(self, received, points, bitsets: PaddedBitSets, sigma2, out=None):  # pragma: no cover
        yr, yi, c_re, c_im = self._prepared(received, points)
        out = _check_llr_out(out, yr.size, bitsets.k)
        self._k.maxlog(
            yr, yi, c_re, c_im, bitsets.table, bitsets.sizes,
            bitsets.k, 1.0 / (2.0 * sigma2), out,
        )
        return out

    def logmap_llrs(self, received, points, bitsets: PaddedBitSets, sigma2, out=None):  # pragma: no cover
        yr, yi, c_re, c_im = self._prepared(received, points)
        out = _check_llr_out(out, yr.size, bitsets.k)
        self._k.logmap(
            yr, yi, c_re, c_im, bitsets.table, bitsets.sizes,
            bitsets.k, 1.0 / (2.0 * sigma2), out,
        )
        return out

    def maxlog_llrs_multi(self, received, points, bitsets, sigma2s, out=None):  # pragma: no cover
        y, s_count, n, sig = _check_multi_args(received, sigma2s)
        yr, yi, c_re, c_im = self._prepared(y, points)
        out = _check_llr_multi_out(out, s_count, n, bitsets.k)
        scale_col = np.repeat(1.0 / (2.0 * sig), n)
        self._k.maxlog_multi(
            yr, yi, c_re, c_im, bitsets.table, bitsets.sizes,
            bitsets.k, scale_col, out.reshape(s_count * n, bitsets.k),
        )
        return out

    def logmap_llrs_multi(self, received, points, bitsets, sigma2s, out=None):  # pragma: no cover
        y, s_count, n, sig = _check_multi_args(received, sigma2s)
        yr, yi, c_re, c_im = self._prepared(y, points)
        out = _check_llr_multi_out(out, s_count, n, bitsets.k)
        inv_col = np.repeat(1.0 / (2.0 * sig), n)
        self._k.logmap_multi(
            yr, yi, c_re, c_im, bitsets.table, bitsets.sizes,
            bitsets.k, inv_col, out.reshape(s_count * n, bitsets.k),
        )
        return out

    def hard_indices(self, received, points):  # pragma: no cover - needs numba
        y = np.asarray(received)
        yr, yi, c_re, c_im = self._prepared(y, points)
        out = np.empty(yr.size, dtype=np.intp)
        self._k.hard(yr, yi, c_re, c_im, out)
        return out.reshape(y.shape) if y.ndim != 1 else out

    def viterbi_decode(self, branch_metrics, src, inb, *, key="viterbi"):  # pragma: no cover - needs numba
        bm = np.ascontiguousarray(np.asarray(branch_metrics, dtype=np.float64))
        if bm.ndim != 3 or bm.shape[2] != 2:
            raise ValueError(
                f"branch_metrics must be (n_steps, n_states, 2), got {bm.shape}"
            )
        n_steps, n_states = bm.shape[0], bm.shape[1]
        src = np.ascontiguousarray(src, dtype=np.int64)
        inb = np.ascontiguousarray(inb, dtype=np.int64)
        prev = self.scratch(key + "_prev", (n_steps, n_states), dtype=np.int64)
        bits = np.empty(n_steps, dtype=np.int8)
        metric = self._k.viterbi(bm, src, inb, prev, bits)
        return bits, float(metric)

    def gemm_i64(self, x, weight, bias=None):  # pragma: no cover - needs numba
        x = np.ascontiguousarray(x, dtype=np.int64)
        w = np.ascontiguousarray(weight, dtype=np.int64)
        b = np.zeros(w.shape[0], dtype=np.int64) if bias is None else np.asarray(bias, dtype=np.int64)
        out = np.empty((x.shape[0], w.shape[0]), dtype=np.int64)
        self._k.gemm_i64(x, w, b, out)
        return out
