"""Learning-rate schedulers operating on an :class:`~repro.nn.optim.Optimizer`.

Used by the E2E trainer (cosine annealing stabilises the late phase of
constellation learning at high SNR, where the BCE surface flattens).
"""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer

__all__ = ["LRScheduler", "ConstantLR", "StepLR", "ExponentialLR", "CosineAnnealingLR"]


class LRScheduler:
    """Base class: tracks step count and rewrites ``optimizer.lr``."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def get_lr(self) -> float:
        """Learning rate for the current ``step_count``."""
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and apply the new learning rate."""
        self.step_count += 1
        lr = self.get_lr()
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    """No-op scheduler (keeps the base learning rate)."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must lie in (0, 1]")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.step_count // self.step_size)


class ExponentialLR(LRScheduler):
    """Multiply the learning rate by ``gamma`` every step."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.999):
        super().__init__(optimizer)
        if not 0 < gamma <= 1:
            raise ValueError("gamma must lie in (0, 1]")
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma**self.step_count


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to ``eta_min`` over ``t_max`` steps."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0):
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError("t_max must be >= 1")
        if eta_min < 0:
            raise ValueError("eta_min must be >= 0")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        t = min(self.step_count, self.t_max)
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * t / self.t_max))
