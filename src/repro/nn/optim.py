"""First-order optimizers: SGD (momentum/Nesterov), Adam, RMSprop.

All updates are performed in place on ``Parameter.data`` (no reallocation in
the training loop, per the HPC guide's in-place-operations advice).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "RMSprop"]


class Optimizer:
    """Base class holding the parameter list and the learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        self.params = list(params)
        self.lr = float(lr)

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Zero all parameter gradients."""
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum/Nesterov/weight decay."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-2,
        *,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        if nesterov and momentum == 0.0:
            raise ValueError("Nesterov momentum requires momentum > 0")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be >= 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if not p.requires_grad:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = g + self.momentum * v if self.nesterov else v
            p.data -= self.lr * g


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction.

    The default hyper-parameters match common practice and train the paper's
    demapper to convergence in a few thousand steps.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        *,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must lie in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.b1**self.t
        bc2 = 1.0 - self.b2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if not p.requires_grad:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1.0 - self.b1) * g
            v *= self.b2
            v += (1.0 - self.b2) * (g * g)
            p.data -= self.lr * (m / bc1) / (np.sqrt(v / bc2) + self.eps)


class RMSprop(Optimizer):
    """RMSprop (Tieleman & Hinton) with optional momentum."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        *,
        alpha: float = 0.99,
        eps: float = 1e-8,
        momentum: float = 0.0,
    ):
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError("alpha must lie in [0, 1)")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum
        self._sq = [np.zeros_like(p.data) for p in self.params]
        self._buf = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, sq, buf in zip(self.params, self._sq, self._buf):
            if not p.requires_grad:
                continue
            g = p.grad
            sq *= self.alpha
            sq += (1.0 - self.alpha) * (g * g)
            update = g / (np.sqrt(sq) + self.eps)
            if self.momentum:
                buf *= self.momentum
                buf += update
                update = buf
            p.data -= self.lr * update
