"""A compact, from-scratch neural-network framework on NumPy.

This subpackage replaces PyTorch for the paper's tiny models (embedding
mapper, 3x16 MLP demapper).  It provides explicitly-differentiated layers
(manual backprop — no tape), standard losses and optimizers, learning-rate
schedulers, weight initialisation, numerical gradient checking, and
state-dict (de)serialisation.

Design notes (see DESIGN.md §5):

* layers cache forward activations on ``self`` and consume them in
  ``backward`` — training is strictly ``forward -> backward -> step`` so a
  single-slot cache is sufficient and keeps the hot loop allocation-light;
* everything is vectorised over the batch axis; matmuls hit BLAS;
* all parameter updates are in-place (``+=``) per the HPC guide.
"""

from repro.nn.init import he_normal, he_uniform, normal_init, uniform_init, xavier_normal, xavier_uniform
from repro.nn.layers import (
    Dense,
    Dropout,
    Embedding,
    Identity,
    LeakyReLU,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.losses import BCEWithLogitsLoss, CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, Optimizer, RMSprop
from repro.nn.schedulers import ConstantLR, CosineAnnealingLR, ExponentialLR, LRScheduler, StepLR
from repro.nn.serialization import load_state_dict_npz, save_state_dict_npz
from repro.nn.gradcheck import gradcheck_module, numerical_gradient

__all__ = [
    "Parameter",
    "Module",
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Dropout",
    "Embedding",
    "Sequential",
    "BCEWithLogitsLoss",
    "MSELoss",
    "CrossEntropyLoss",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSprop",
    "LRScheduler",
    "ConstantLR",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "uniform_init",
    "normal_init",
    "gradcheck_module",
    "numerical_gradient",
    "save_state_dict_npz",
    "load_state_dict_npz",
]
