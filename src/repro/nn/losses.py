"""Loss functions with analytic gradients.

All losses return ``(value, grad)`` where ``grad`` is dLoss/dInput with the
same shape as the input, already divided by the batch size ("mean"
reduction), so ``model.backward(grad)`` directly yields mean-gradient
updates.
"""

from __future__ import annotations

import numpy as np

from repro.utils.numerics import stable_sigmoid

__all__ = ["BCEWithLogitsLoss", "MSELoss", "CrossEntropyLoss"]


class BCEWithLogitsLoss:
    """Binary cross-entropy on logits (numerically stable log-sum-exp form).

    This is the paper's training objective: the demapper's last Dense layer
    produces logits; BCE against the transmitted bits maximises bitwise
    mutual information.  Using logits avoids the sigmoid-saturation overflow
    of a plain BCE.

    ``loss = mean( max(z,0) - z*t + log(1 + exp(-|z|)) )``
    ``dloss/dz = (sigmoid(z) - t) / N``
    """

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        z = np.asarray(logits, dtype=np.float64)
        t = np.asarray(targets, dtype=np.float64)
        if z.shape != t.shape:
            raise ValueError(f"shape mismatch: logits {z.shape} vs targets {t.shape}")
        loss = np.maximum(z, 0.0) - z * t + np.log1p(np.exp(-np.abs(z)))
        grad = (stable_sigmoid(z) - t) / z.size
        return float(loss.mean()), grad

    @staticmethod
    def from_probabilities(probs: np.ndarray, targets: np.ndarray, *, eps: float = 1e-12) -> float:
        """BCE evaluated on probabilities (no gradient) — for metrics only."""
        p = np.clip(np.asarray(probs, dtype=np.float64), eps, 1.0 - eps)
        t = np.asarray(targets, dtype=np.float64)
        return float(-(t * np.log(p) + (1.0 - t) * np.log(1.0 - p)).mean())


class MSELoss:
    """Mean squared error ``mean((x - t)^2)`` with gradient ``2(x-t)/N``."""

    def __call__(self, preds: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        x = np.asarray(preds, dtype=np.float64)
        t = np.asarray(targets, dtype=np.float64)
        if x.shape != t.shape:
            raise ValueError(f"shape mismatch: preds {x.shape} vs targets {t.shape}")
        diff = x - t
        return float((diff * diff).mean()), (2.0 / x.size) * diff


class CrossEntropyLoss:
    """Softmax cross-entropy on logits with integer class targets.

    Provided for the symbol-wise (categorical) AE variant — an alternative to
    the paper's bitwise BCE head that some AE literature uses.
    """

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> tuple[float, np.ndarray]:
        z = np.asarray(logits, dtype=np.float64)
        t = np.asarray(targets)
        if z.ndim != 2:
            raise ValueError("logits must be (batch, classes)")
        if t.shape != (z.shape[0],):
            raise ValueError(f"targets must be (batch,), got {t.shape}")
        if not np.issubdtype(t.dtype, np.integer):
            raise TypeError("targets must be integer class indices")
        zmax = z.max(axis=1, keepdims=True)
        exp = np.exp(z - zmax)
        p = exp / exp.sum(axis=1, keepdims=True)
        n = z.shape[0]
        nll = -np.log(np.clip(p[np.arange(n), t], 1e-300, None))
        grad = p.copy()
        grad[np.arange(n), t] -= 1.0
        grad /= n
        return float(nll.mean()), grad
