"""Save/load module parameters as ``.npz`` archives.

This mirrors the paper's flow of "train in Python, export the trained
parameters to the hardware architecture": the exported arrays are exactly
what :mod:`repro.fpga` quantises into the fixed-point datapath.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module

__all__ = ["save_state_dict_npz", "load_state_dict_npz"]


def save_state_dict_npz(module: Module, path: str | os.PathLike) -> None:
    """Serialise all parameters of ``module`` to a compressed ``.npz``."""
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_state_dict_npz(module: Module, path: str | os.PathLike) -> None:
    """Load parameters saved by :func:`save_state_dict_npz` (shape-checked)."""
    with np.load(path) as data:
        state = {k: data[k] for k in data.files}
    module.load_state_dict(state)
