"""Parameter container and Module base class (manual backprop).

A :class:`Module` is a differentiable operator: ``forward(x)`` computes the
output and caches whatever ``backward(grad_out)`` needs; ``backward``
accumulates parameter gradients into ``Parameter.grad`` and returns the
gradient w.r.t. the input.  Composition is handled by
:class:`repro.nn.layers.Sequential`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["Parameter", "Module"]


class Parameter:
    """A trainable tensor: ``data`` plus an accumulated gradient ``grad``.

    ``grad`` always has the same shape as ``data`` and is zero-initialised;
    optimizers read ``grad`` and update ``data`` in place.
    """

    __slots__ = ("data", "grad", "name", "requires_grad")

    def __init__(self, data: np.ndarray, *, name: str = "", requires_grad: bool = True):
        self.data = np.ascontiguousarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = requires_grad

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return self.data.size

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero (in place)."""
        self.grad[...] = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"


class Module:
    """Base class for differentiable layers and models."""

    def __init__(self) -> None:
        self.training = True

    # -- interface ---------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output for a batch ``x`` and cache for backward."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_out`` (dLoss/dOutput): accumulate parameter
        gradients and return dLoss/dInput.  Must be called after ``forward``."""
        raise NotImplementedError

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Inference-only forward pass: no backward state, reusable buffers.

        Layers that override this compute into backend-workspace scratch (and
        never cache activations), so a steady-state inference loop over
        fixed-size batches allocates nothing; pass ``out=`` to own the final
        result, otherwise the returned array may be workspace scratch that is
        only valid until the module's next ``infer`` call on this thread.
        Every layer shipped in :mod:`repro.nn.layers` overrides it.  The base
        fallback delegates to :meth:`forward` (copied into ``out`` when
        given) — correct output, but it refreshes the layer's cached backward
        state, so custom layers relying on the fallback must not interleave
        ``infer`` between a ``forward`` and its ``backward``.
        """
        y = self.forward(x)
        if out is not None:
            np.copyto(out, y)
            return out
        return y

    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module (and submodules), in a
        stable order."""
        params: list[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
                    elif isinstance(item, Parameter):
                        params.append(item)
        return params

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all submodules depth-first."""
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -- conveniences ------------------------------------------------------
    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def zero_grad(self) -> None:
        """Zero the gradients of every parameter in the module tree."""
        for p in self.parameters():
            p.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects e.g. Dropout)."""
        for m in self.modules():
            m.training = mode
        return self

    def eval(self) -> "Module":
        """Set inference mode recursively."""
        return self.train(False)

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    # -- state dict --------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays, keyed by stable positional names."""
        return {f"param_{i}": p.data.copy() for i, p in enumerate(self.parameters())}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict` (shape-checked)."""
        params = self.parameters()
        if len(state) != len(params):
            raise ValueError(f"state has {len(state)} entries, module has {len(params)} parameters")
        for i, p in enumerate(params):
            key = f"param_{i}"
            if key not in state:
                raise KeyError(f"missing key {key!r} in state dict")
            arr = np.asarray(state[key], dtype=np.float64)
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {key}: {arr.shape} vs {p.data.shape}")
            p.data[...] = arr
