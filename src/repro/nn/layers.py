"""Differentiable layers: Dense, activations, Embedding, Dropout, Sequential.

Each layer implements ``forward``/``backward`` with explicit gradient
formulas (validated by :mod:`repro.nn.gradcheck`).  Shapes follow the
convention ``(batch, features)``; Embedding takes integer index vectors.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.backend import get_backend
from repro.nn.init import he_normal, xavier_uniform
from repro.nn.module import Module, Parameter
from repro.utils.numerics import stable_sigmoid


def _infer_scratch(key: str, shape: tuple[int, ...], avoid: np.ndarray | None = None) -> np.ndarray:
    """Float64 inference scratch from the current backend's workspace.

    Keys are shared per layer *class* (not per instance), so inference
    memory stays bounded by distinct (class, shape) pairs no matter how many
    models a process constructs and discards.  Sharing means a layer's input
    may itself be the shared buffer (e.g. two same-shape Dense layers in a
    row); callers whose kernel cannot run in place pass it as ``avoid`` to
    get an alternate buffer instead.
    """
    buf = get_backend().workspace.scratch(key, shape, np.float64)
    if buf is avoid:
        buf = get_backend().workspace.scratch(key + "~alt", shape, np.float64)
    return buf


__all__ = [
    "Dense",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Dropout",
    "Embedding",
    "Sequential",
]


class Dense(Module):
    """Fully connected layer ``y = x @ W.T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input/output widths.
    bias:
        Include an additive bias (default True).
    init:
        Weight initialiser ``f(shape, rng) -> ndarray``; defaults to He
        normal (the paper's hidden layers use ReLU).
    rng:
        Generator used for initialisation.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        *,
        bias: bool = True,
        init: Callable[[tuple[int, ...], np.random.Generator], np.ndarray] | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError("in_features and out_features must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        init = init if init is not None else he_normal
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init((out_features, in_features), rng), name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self._x: np.ndarray | None = None
        self._gw: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected (batch, {self.in_features}), got {x.shape}")
        self._x = x
        # Fused matmul+bias on the compute backend (float64 throughout: the
        # training path needs full precision for gradcheck-grade gradients).
        return get_backend().linear(x, self.weight.data, None if self.bias is None else self.bias.data)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.asarray(grad_out, dtype=np.float64)
        backend = get_backend()
        # Accumulate the weight gradient through a layer-owned buffer so the
        # training loop's steady state allocates nothing for this GEMM (the
        # buffer's lifetime is tied to the layer, not a global workspace).
        if self._gw is None:
            self._gw = np.empty(self.weight.grad.shape, dtype=np.float64)
        self.weight.grad += backend.gemm(grad_out.T, self._x, out=self._gw)
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return backend.gemm(grad_out, self.weight.data)

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(f"expected (batch, {self.in_features}), got {x.shape}")
        if out is None:
            # matmul cannot run in place, so never write into our own input
            # (which is the shared scratch when same-shape Dense layers chain)
            out = _infer_scratch(f"infer/dense/{self.out_features}", (x.shape[0], self.out_features), avoid=x)
        return get_backend().linear(
            x, self.weight.data, None if self.bias is None else self.bias.data, out=out
        )


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if out is None:
            out = _infer_scratch(f"infer/relu/{x.shape[-1]}", x.shape)  # in-place-safe if out is x
        return np.maximum(x, 0.0, out=out)


class LeakyReLU(Module):
    """Leaky ReLU with negative slope ``alpha``."""

    def __init__(self, alpha: float = 0.01) -> None:
        super().__init__()
        if alpha < 0:
            raise ValueError("alpha must be >= 0")
        self.alpha = alpha
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._mask = x > 0
        return np.where(self._mask, x, self.alpha * x)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, self.alpha * grad_out)

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if out is None:
            # the two-step multiply/maximum below reads x after writing out
            out = _infer_scratch(f"infer/lrelu/{x.shape[-1]}", x.shape, avoid=x)
        if self.alpha <= 1.0:
            # max(x, αx) = x for x > 0 else αx when α <= 1
            np.multiply(x, self.alpha, out=out)
            return np.maximum(x, out, out=out)
        np.copyto(out, np.where(x > 0, x, self.alpha * x))
        return out


class Sigmoid(Module):
    """Logistic sigmoid ``1/(1+exp(-x))`` (numerically stable two-branch form)."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    #: Shared overflow-free sigmoid (kept as a staticmethod-style alias for
    #: backward compatibility; the single implementation lives in
    #: :func:`repro.utils.numerics.stable_sigmoid`).
    stable_sigmoid = staticmethod(stable_sigmoid)

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._y = self.stable_sigmoid(x)
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * self._y * (1.0 - self._y)

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if out is None:
            out = _infer_scratch(f"infer/sigmoid/{x.shape[-1]}", x.shape, avoid=x)
        return stable_sigmoid(x, out=out)


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._y: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._y = np.tanh(np.asarray(x, dtype=np.float64))
        return self._y

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._y is None:
            raise RuntimeError("backward called before forward")
        return grad_out * (1.0 - self._y * self._y)

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if out is None:
            out = _infer_scratch(f"infer/tanh/{x.shape[-1]}", x.shape)  # ufunc is in-place-safe
        return np.tanh(x, out=out)


class Identity(Module):
    """No-op layer (useful as a placeholder in configurable topologies)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float64)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if out is not None:
            np.copyto(out, x)
            return out
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, *, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("dropout probability must lie in [0, 1)")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        # inference never drops units, regardless of the training flag
        x = np.asarray(x, dtype=np.float64)
        if out is not None:
            np.copyto(out, x)
            return out
        return x


class Embedding(Module):
    """Lookup table: integer indices ``(batch,)`` -> vectors ``(batch, dim)``.

    This is the paper's "trainable embedding layer with 16 inputs and two
    outputs" — the constellation table itself.
    """

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        *,
        init: Callable[[tuple[int, ...], np.random.Generator], np.ndarray] | None = None,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if num_embeddings < 1 or dim < 1:
            raise ValueError("num_embeddings and dim must be >= 1")
        rng = rng if rng is not None else np.random.default_rng()
        init = init if init is not None else xavier_uniform
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.table = Parameter(init((num_embeddings, dim), rng), name="embedding")
        self._idx: np.ndarray | None = None

    def forward(self, idx: np.ndarray) -> np.ndarray:
        idx = np.asarray(idx)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError(f"Embedding expects integer indices, got dtype {idx.dtype}")
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding index out of range")
        self._idx = idx
        return self.table.data[idx]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._idx is None:
            raise RuntimeError("backward called before forward")
        idx = self._idx
        grad_out = np.asarray(grad_out, dtype=np.float64)
        if idx.ndim == 1 and grad_out.shape == (idx.size, self.dim):
            # Scatter-add via one flat bincount: ~an order of magnitude
            # faster than np.add.at's buffered ufunc path, and this sits in
            # the mapper's training loop.
            flat = idx.astype(np.intp)[:, None] * self.dim + np.arange(self.dim, dtype=np.intp)
            acc = np.bincount(
                flat.ravel(),
                weights=grad_out.ravel(),
                minlength=self.num_embeddings * self.dim,
            )
            self.table.grad += acc.reshape(self.num_embeddings, self.dim)
        else:  # exotic index shapes keep the general (slow) scatter
            np.add.at(self.table.grad, idx, grad_out)
        # There is no gradient w.r.t. integer indices; return zeros of the
        # index shape so Sequential composition stays well-typed.
        return np.zeros(idx.shape, dtype=np.float64)

    def infer(self, idx: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        idx = np.asarray(idx)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError(f"Embedding expects integer indices, got dtype {idx.dtype}")
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding index out of range")
        if out is not None:
            np.take(self.table.data, idx, axis=0, out=out)
            return out
        return self.table.data[idx]


class Sequential(Module):
    """Composition of layers applied in order; backward runs in reverse."""

    def __init__(self, *layers: Module):
        super().__init__()
        if not layers:
            raise ValueError("Sequential needs at least one layer")
        self.layers: list[Module] = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_out = layer.backward(grad_out)
        return grad_out

    def infer(self, x: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Chain the layers' inference paths; only the last layer sees ``out``.

        With workspace-aware layers (Dense/ReLU/Sigmoid) a fixed-batch-size
        steady state allocates nothing: every intermediate lives in a
        per-layer backend scratch buffer and no backward state is cached.
        """
        last = len(self.layers) - 1
        for i, layer in enumerate(self.layers):
            x = layer.infer(x, out=out if i == last else None)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]

    @staticmethod
    def mlp(
        widths: Sequence[int],
        *,
        hidden_activation: Callable[[], Module] = ReLU,
        output_activation: Callable[[], Module] | None = None,
        rng: np.random.Generator | None = None,
    ) -> "Sequential":
        """Build an MLP from layer widths, e.g. ``[2, 16, 16, 16, 4]``.

        ``hidden_activation`` is inserted after every layer but the last;
        ``output_activation`` (if given) caps the stack.  This captures the
        paper's demapper: ``Sequential.mlp([2,16,16,16,4], output_activation=Sigmoid)``.
        """
        if len(widths) < 2:
            raise ValueError("need at least input and output width")
        rng = rng if rng is not None else np.random.default_rng()
        layers: list[Module] = []
        for i in range(len(widths) - 1):
            layers.append(Dense(widths[i], widths[i + 1], rng=rng))
            if i < len(widths) - 2:
                layers.append(hidden_activation())
        if output_activation is not None:
            layers.append(output_activation())
        return Sequential(*layers)
