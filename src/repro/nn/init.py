"""Weight initialisation schemes (Glorot/Xavier, He/Kaiming, plain)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "xavier_uniform",
    "xavier_normal",
    "he_uniform",
    "he_normal",
    "uniform_init",
    "normal_init",
]


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) < 2:
        raise ValueError(f"fan-based init needs >= 2-D shape, got {shape}")
    fan_in = int(np.prod(shape[1:]))
    fan_out = shape[0]
    return fan_in, fan_out


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot uniform: U(-a, a) with ``a = sqrt(6/(fan_in + fan_out))``.

    Suitable for sigmoid/tanh layers (keeps activation variance stable).
    """
    fan_in, fan_out = _fans(shape)
    a = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape)


def xavier_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot normal: N(0, 2/(fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform: U(-a, a) with ``a = sqrt(6/fan_in)`` (for ReLU)."""
    fan_in, _ = _fans(shape)
    a = np.sqrt(6.0 / fan_in)
    return rng.uniform(-a, a, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal: N(0, 2/fan_in) (for ReLU)."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def uniform_init(shape: tuple[int, ...], rng: np.random.Generator, *, low: float = -0.1, high: float = 0.1) -> np.ndarray:
    """Plain uniform initialisation in ``[low, high)``."""
    return rng.uniform(low, high, size=shape)


def normal_init(shape: tuple[int, ...], rng: np.random.Generator, *, std: float = 0.1) -> np.ndarray:
    """Plain zero-mean Gaussian initialisation with standard deviation ``std``."""
    return rng.normal(0.0, std, size=shape)
