"""Numerical gradient checking for modules and losses.

Central differences on every parameter entry and on the input; this is the
correctness anchor for the entire manual-backprop framework (and for the
mapper's non-trivial power-normalisation gradient).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn.module import Module

__all__ = ["numerical_gradient", "gradcheck_module"]


def numerical_gradient(
    f: Callable[[np.ndarray], float],
    x: np.ndarray,
    *,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` at ``x``.

    ``f`` must not mutate ``x``.  O(2·size) evaluations — fine for the tiny
    models used here.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    gflat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        fp = f(x)
        flat[i] = orig - eps
        fm = f(x)
        flat[i] = orig
        gflat[i] = (fp - fm) / (2.0 * eps)
    return grad


def gradcheck_module(
    module: Module,
    x: np.ndarray,
    *,
    loss_weights: np.ndarray | None = None,
    eps: float = 1e-6,
    rtol: float = 1e-4,
    atol: float = 1e-6,
    check_input_grad: bool = True,
) -> bool:
    """Verify ``module.backward`` against central differences.

    The scalar objective is ``sum(W * module(x))`` for a fixed random weight
    tensor ``W`` (so every output entry influences the loss).  Checks all
    parameter gradients and (optionally) the input gradient.  Raises
    ``AssertionError`` with a diagnostic on mismatch; returns ``True`` on
    success.
    """
    x = np.asarray(x)  # keep dtype: integer inputs (Embedding/Mapper) stay integer
    y0 = module.forward(x)
    if loss_weights is None:
        rng = np.random.default_rng(0)
        loss_weights = rng.normal(size=y0.shape)
    w = np.asarray(loss_weights, dtype=np.float64)
    if w.shape != y0.shape:
        raise ValueError(f"loss_weights shape {w.shape} != output shape {y0.shape}")

    # Analytic gradients.
    module.zero_grad()
    module.forward(x)
    analytic_input_grad = module.backward(w.copy())
    analytic_param_grads = [p.grad.copy() for p in module.parameters()]

    # Numerical parameter gradients.
    for pi, p in enumerate(module.parameters()):

        def loss_wrt_param(_arr: np.ndarray, _p=p) -> float:
            return float((w * module.forward(x)).sum())

        num = numerical_gradient(loss_wrt_param, p.data, eps=eps)
        ana = analytic_param_grads[pi]
        if not np.allclose(ana, num, rtol=rtol, atol=atol):
            err = np.abs(ana - num).max()
            raise AssertionError(
                f"parameter {pi} ({p.name}): analytic vs numerical gradient mismatch "
                f"(max abs err {err:.3e})"
            )

    if check_input_grad and np.issubdtype(x.dtype, np.floating):

        def loss_wrt_input(arr: np.ndarray) -> float:
            return float((w * module.forward(arr)).sum())

        num_in = numerical_gradient(loss_wrt_input, x.copy(), eps=eps)
        if not np.allclose(analytic_input_grad, num_in, rtol=rtol, atol=atol):
            err = np.abs(analytic_input_grad - num_in).max()
            raise AssertionError(f"input gradient mismatch (max abs err {err:.3e})")

    # Restore a clean cache state.
    module.zero_grad()
    module.forward(x)
    return True
