"""HybridDemapper — centroids + conventional max-log soft demapping.

The deliverable of the paper's inference step: after (re)training, the
demapper ANN is *replaced* for inference by the sub-optimal soft demapper
running on the extracted centroids.  The centroids "do not necessarily
replicate the constellation of the mapper but implicitly include the learned
information of the ANN to compensate channel impairments, e.g. ... the
phase-shift of the channel" (§II-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autoencoder.demapper_ann import DemapperANN
from repro.extraction.centroids import CentroidSet, extract_centroids
from repro.extraction.decision_regions import DecisionRegionGrid, sample_decision_regions
from repro.modulation.constellations import Constellation
from repro.modulation.demapper import MaxLogDemapper

__all__ = ["HybridDemapper"]


@dataclass
class HybridDemapper:
    """Conventional soft demapper driven by ANN-extracted centroids.

    Build with :meth:`extract` (full pipeline: sample decision regions ->
    centroids -> max-log core) or construct directly from a centroid
    :class:`~repro.modulation.constellations.Constellation`.

    Attributes
    ----------
    constellation:
        The centroid point set (bit labels implicit in the ordering).
    sigma2:
        Per-real-dimension noise variance used for LLR scaling.
    grid:
        The decision-region grid the centroids came from (None if built
        directly).
    centroids:
        The raw :class:`CentroidSet` (None if built directly).
    """

    constellation: Constellation
    sigma2: float
    grid: DecisionRegionGrid | None = None
    centroids: CentroidSet | None = None

    def __post_init__(self) -> None:
        if self.sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        self._core = MaxLogDemapper(self.constellation)

    # -- construction -----------------------------------------------------------
    @classmethod
    def extract(
        cls,
        demapper: DemapperANN,
        sigma2: float,
        *,
        extent: float = 1.5,
        resolution: int = 256,
        method: str = "vertex",
        fallback: Constellation | None = None,
        es: float = 1.0,
    ) -> "HybridDemapper":
        """Run the paper's extraction pipeline on a trained demapper ANN.

        ``fallback`` (usually the frozen transmit constellation) fills any
        symbol whose decision region does not appear in the window.

        The default window half-width (1.5) tightly covers a unit-energy
        16-QAM constellation (max |point| ≈ 1.34): ANN decision boundaries
        are only trustworthy where training data landed, so sampling far
        into the network's extrapolation region degrades every estimator.
        For the ``"lsq"`` method, boundary samples are additionally
        density-weighted with scale ``sqrt(es + 2·sigma2)``.
        """
        grid = sample_decision_regions(
            demapper.bit_probability_fn(), extent=extent, resolution=resolution
        )
        order = 1 << demapper.bits_per_symbol
        cents = extract_centroids(
            grid, order, method=method, density_scale=float(np.sqrt(es + 2.0 * sigma2))
        )
        if cents.n_missing:
            if fallback is None:
                raise ValueError(
                    f"{cents.n_missing} decision regions absent from the window and no "
                    "fallback constellation given"
                )
            cents = cents.fill_missing(fallback.points)
        return cls(
            constellation=cents.as_constellation(),
            sigma2=sigma2,
            grid=grid,
            centroids=cents,
        )

    # -- demapping ----------------------------------------------------------------
    @property
    def core(self) -> MaxLogDemapper:
        """The max-log core over the centroid set.

        Batched dispatch layers (the serving engine's cross-session
        micro-batching) use this to reach the constellation points and
        padded bit-set tables behind one multi-sigma kernel launch.
        """
        return self._core

    def llrs(self, received: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Max-log LLRs ``(N, k)`` on the extracted centroids.

        ``out`` (optional float64 ``(N, k)``) is filled and returned in
        place — same allocation-free steady-state contract as
        :meth:`~repro.modulation.demapper.MaxLogDemapper.llrs`, so serving
        hot loops can demap frame after frame without touching the
        allocator.
        """
        return self._core.llrs(received, self.sigma2, out=out)

    def llrs_multi(
        self, received: np.ndarray, sigma2s: np.ndarray, *, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Max-log LLRs for an ``(S, n)`` batch with *per-row* noise variances.

        Unlike :meth:`llrs` this ignores the demapper's own ``sigma2`` —
        the serving engine batches frames of several sessions (each with its
        own σ² estimate) over one shared centroid set, so the variances
        arrive as a vector.  Returns (or fills ``out`` with) ``(S, n, k)``
        float64; on the default tier each row is bit-identical to
        ``llrs`` at that row's σ².
        """
        return self._core.llrs_multi(received, sigma2s, out=out)

    def demap_bits(self, received: np.ndarray) -> np.ndarray:
        """Hard bits ``(N, k)`` by nearest centroid.

        Dispatches to the backend ``hard_indices`` kernel (the max-log hard
        decision is σ²-independent, so no LLRs are materialised) — parity
        with :meth:`~repro.modulation.demapper.MaxLogDemapper.demap_bits`.
        Exact-tie inputs resolve to the lowest centroid label, matching
        :class:`~repro.modulation.demapper.HardDemapper`.
        """
        return self._core.demap_bits(received, self.sigma2)

    def __call__(self, received: np.ndarray) -> np.ndarray:
        return self.llrs(received)

    def with_sigma2(self, sigma2: float) -> "HybridDemapper":
        """Copy with a different noise variance (same centroids)."""
        return HybridDemapper(
            constellation=self.constellation,
            sigma2=sigma2,
            grid=self.grid,
            centroids=self.centroids,
        )
