"""Voronoi geometry on sampled decision-region grids.

Three geometric primitives used by the centroid estimators:

* :func:`region_vertices` — detect the vertices of each (window-clipped)
  Voronoi cell: interior points where ≥3 regions meet, window-border
  crossings between two regions, and the window corners;
* :func:`boundary_midpoints` — sample points on the pairwise cell
  boundaries (midpoints of label-changing grid edges);
* :func:`voronoi_inversion` — recover the *generator* points of a Voronoi
  partition from boundary samples by iterated linear least squares.

The inversion solves, for every boundary sample ``x`` between cells ``a``
and ``b``, the perpendicular-bisector identity

``2·x·(c_a − c_b) = q_a − q_b``  with  ``q_i = ‖c_i‖²``.

Treated as one homogeneous *linear* system in ``(c, q)`` this has gauge
freedoms, and the raw residual ``‖x−c_b‖² − ‖x−c_a‖²`` vanishes trivially
whenever two generators coincide — so naive least squares collapses
neighbouring generators for imperfect (non-Voronoi) boundaries.  We instead
minimise the **geometric distance of each boundary sample to the bisector
plane** of its two generators,

``r(x) = (‖x − c_b‖² − ‖x − c_a‖²) / (2‖c_a − c_b‖)``

(this *diverges* on collapse, making the degenerate solution infeasible).
The plane distance is **orientation-blind** — swapping two neighbouring
generators leaves every bisector unchanged — so the objective also carries
hinge *orientation residuals*: for each adjacent region pair (a, b), the
region-a interior point ``m_a`` (mass centroid) must be closer to ``c_a``
than to ``c_b``:

``h_ab = w_o · max(0, ‖m_a − c_a‖² − ‖m_a − c_b‖²)``

These are exactly zero at any correctly-oriented solution (no bias) but
large in a swapped basin, excluding it.  Weak anchors ``λ(c − prior)`` fix
the remaining gauge; the analytic-Jacobian Gauss-Newton solve
(``scipy.optimize.least_squares``) is initialised at the mass centroids.
At a perfect Voronoi partition every residual is zero at the true
generators, so recovery is exact up to grid quantisation (property-tested
in ``tests/extraction/test_voronoi_centroids.py``).
"""

from __future__ import annotations

import numpy as np

from repro.extraction.decision_regions import DecisionRegionGrid

__all__ = ["region_vertices", "boundary_midpoints", "voronoi_inversion"]


def boundary_midpoints(grid: DecisionRegionGrid) -> tuple[np.ndarray, np.ndarray]:
    """Midpoints of grid edges whose endpoints carry different labels.

    Returns ``(points, pairs)`` where ``points`` is ``(B, 2)`` float and
    ``pairs`` is ``(B, 2)`` int64 with the two region labels (unordered) on
    either side of each sample.
    """
    lbl = grid.labels
    xs, ys = grid.xs, grid.ys

    # horizontal edges: (iy, ix) -- (iy, ix+1)
    hmask = lbl[:, :-1] != lbl[:, 1:]
    hy, hx = np.nonzero(hmask)
    h_pts = np.column_stack([0.5 * (xs[hx] + xs[hx + 1]), ys[hy]])
    h_pairs = np.column_stack([lbl[hy, hx], lbl[hy, hx + 1]])

    # vertical edges: (iy, ix) -- (iy+1, ix)
    vmask = lbl[:-1, :] != lbl[1:, :]
    vy, vx = np.nonzero(vmask)
    v_pts = np.column_stack([xs[vx], 0.5 * (ys[vy] + ys[vy + 1])])
    v_pairs = np.column_stack([lbl[vy, vx], lbl[vy + 1, vx]])

    points = np.concatenate([h_pts, v_pts], axis=0)
    pairs = np.concatenate([h_pairs, v_pairs], axis=0)
    return points, pairs


def region_vertices(grid: DecisionRegionGrid) -> dict[int, np.ndarray]:
    """Vertices of each window-clipped Voronoi cell, keyed by region label.

    A cell's vertex set comprises:

    * interior junctions — centres of 2x2 sample blocks containing ≥3
      distinct labels (where three or more cells meet);
    * border crossings — window-border points where the label changes
      (vertices introduced by clipping the diagram to the window);
    * window corners — owned by the region decided at that corner.

    Returns a dict ``label -> (V, 2)`` vertex arrays.
    """
    lbl = grid.labels
    xs, ys = grid.xs, grid.ys
    out: dict[int, list[np.ndarray]] = {}

    def add(label: int, pt: np.ndarray) -> None:
        out.setdefault(int(label), []).append(pt)

    # interior junctions: 2x2 blocks with >= 3 distinct labels
    a = lbl[:-1, :-1]
    b = lbl[:-1, 1:]
    c = lbl[1:, :-1]
    d = lbl[1:, 1:]
    stacked = np.stack([a, b, c, d])  # (4, H-1, W-1)
    sorted_blocks = np.sort(stacked, axis=0)
    distinct = 1 + (np.diff(sorted_blocks, axis=0) != 0).sum(axis=0)
    jy, jx = np.nonzero(distinct >= 3)
    for iy, ix in zip(jy.tolist(), jx.tolist()):
        pt = np.array([0.5 * (xs[ix] + xs[ix + 1]), 0.5 * (ys[iy] + ys[iy + 1])])
        for label in {int(a[iy, ix]), int(b[iy, ix]), int(c[iy, ix]), int(d[iy, ix])}:
            add(label, pt)

    # border crossings (4 window edges)
    def border_cross(line: np.ndarray, coords: np.ndarray, fixed: float, horizontal: bool) -> None:
        change = np.nonzero(line[:-1] != line[1:])[0]
        for i in change.tolist():
            mid = 0.5 * (coords[i] + coords[i + 1])
            pt = np.array([mid, fixed]) if horizontal else np.array([fixed, mid])
            add(int(line[i]), pt)
            add(int(line[i + 1]), pt)

    border_cross(lbl[0, :], xs, float(ys[0]), horizontal=True)      # bottom
    border_cross(lbl[-1, :], xs, float(ys[-1]), horizontal=True)    # top
    border_cross(lbl[:, 0], ys, float(xs[0]), horizontal=False)     # left
    border_cross(lbl[:, -1], ys, float(xs[-1]), horizontal=False)   # right

    # window corners
    add(int(lbl[0, 0]), np.array([xs[0], ys[0]]))
    add(int(lbl[0, -1]), np.array([xs[-1], ys[0]]))
    add(int(lbl[-1, 0]), np.array([xs[0], ys[-1]]))
    add(int(lbl[-1, -1]), np.array([xs[-1], ys[-1]]))

    return {label: np.unique(np.array(pts), axis=0) for label, pts in out.items()}


def voronoi_inversion(
    grid: DecisionRegionGrid,
    *,
    prior: np.ndarray | None = None,
    anchor_weight: float | None = None,
    max_boundary_points: int = 20000,
    density_scale: float | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Recover Voronoi generators from a sampled partition (Gauss-Newton).

    Minimises the point-to-bisector distances (see module docstring) plus
    orientation hinges and anchor residuals ``λ(c − prior)`` that
    regularise the soft modes of imperfect partitions.  Residuals are
    normalised by the boundary count so λ is comparable across resolutions.

    Parameters
    ----------
    grid:
        Sampled decision regions.
    prior:
        Optional ``(L, 2)`` prior generator estimates for the ``L`` present
        labels, in ``grid.present_labels`` order (default: mass centroids).
    anchor_weight:
        Weight λ of the prior residuals.  Default (None) is **adaptive**: a
        pilot solve with a weak anchor measures the residual boundary
        misfit ρ (RMS point-to-bisector distance); the final solve uses
        ``λ = clip(0.5·ρ, 5e-4, 2e-2)``.  Ideal Voronoi partitions have
        ρ ≈ grid-cell level, keeping the anchor (and its bias) negligible;
        ANN decision boundaries misfit more, and the stronger anchor pins
        the under-determined soft modes to the prior.
    max_boundary_points:
        Random subsample cap on boundary equations (keeps the Jacobian
        small for very fine grids).
    density_scale:
        If given, boundary residuals are weighted by
        ``exp(−‖x‖²/(2·density_scale²))`` — a proxy for the received-sample
        density.  ANN decision boundaries are only meaningful where data
        lands; the far field is extrapolation noise.  Pass
        ``sqrt(Es + 2σ²)`` for a unit-energy constellation (what
        :meth:`repro.extraction.hybrid.HybridDemapper.extract` does).
    rng:
        Generator for the subsample (default: deterministic seed 0).

    Returns
    -------
    (labels, centers):
        ``labels``: the present region labels; ``centers``: ``(L, 2)``
        recovered generators aligned with ``labels``.
    """
    from scipy.optimize import least_squares

    points, pairs = boundary_midpoints(grid)
    if points.shape[0] == 0:
        raise ValueError("grid contains a single region; no boundaries to invert")
    if points.shape[0] > max_boundary_points:
        rng = rng if rng is not None else np.random.default_rng(0)
        keep = rng.choice(points.shape[0], size=max_boundary_points, replace=False)
        points = points[keep]
        pairs = pairs[keep]

    present = grid.present_labels
    col = {int(label): i for i, label in enumerate(present)}
    n_regions = present.size
    n_eq = points.shape[0]
    a_idx = np.array([col[int(p)] for p in pairs[:, 0]])
    b_idx = np.array([col[int(p)] for p in pairs[:, 1]])

    # mass-centroid prior
    if prior is None:
        pts = grid.points()
        flat = grid.labels.ravel()
        prior = np.array([pts[flat == label].mean(axis=0) for label in present])
    prior = np.asarray(prior, dtype=np.float64)
    if prior.shape != (n_regions, 2):
        raise ValueError(f"prior must be ({n_regions}, 2), got {prior.shape}")

    w = np.full(n_eq, 1.0 / np.sqrt(n_eq))
    if density_scale is not None:
        if density_scale <= 0:
            raise ValueError("density_scale must be positive")
        dens = np.exp(-np.sum(points * points, axis=1) / (2.0 * density_scale**2))
        w = w * dens
        norm = np.sqrt(np.sum(w * w))
        if norm > 0:
            w = w / norm  # unit total weight, as in the unweighted case
    rows = np.arange(n_eq)

    # orientation constraints: one hinge per ordered adjacent pair (a, b)
    pair_keys = np.unique(np.sort(np.column_stack([a_idx, b_idx]), axis=1), axis=0)
    o_a = np.concatenate([pair_keys[:, 0], pair_keys[:, 1]])  # region owning m
    o_b = np.concatenate([pair_keys[:, 1], pair_keys[:, 0]])  # its neighbour
    n_orient = o_a.size
    orient_weight = 0.5
    orient_m = prior  # interior reference points (mass centroids)

    def unpack(u: np.ndarray) -> np.ndarray:
        return u.reshape(n_regions, 2)

    eps = 1e-9

    def _parts(c: np.ndarray):
        da = points - c[a_idx]                       # x − c_a
        db = points - c[b_idx]                       # x − c_b
        diff = c[a_idx] - c[b_idx]                   # c_a − c_b
        sep = np.maximum(np.linalg.norm(diff, axis=1), eps)
        d_num = (db * db).sum(axis=1) - (da * da).sum(axis=1)
        return da, db, diff, sep, d_num

    def _orient_parts(c: np.ndarray):
        dma = orient_m[o_a] - c[o_a]                 # m_a − c_a
        dmb = orient_m[o_a] - c[o_b]                 # m_a − c_b
        gap = (dma * dma).sum(axis=1) - (dmb * dmb).sum(axis=1)
        return dma, dmb, gap

    def make_residuals(lam: float):
        def residuals(u: np.ndarray) -> np.ndarray:
            c = unpack(u)
            _, _, _, sep, d_num = _parts(c)
            r_boundary = w * d_num / (2.0 * sep)     # signed point-to-bisector distance
            r_anchor = lam * (c - prior).ravel()
            _, _, gap = _orient_parts(c)
            r_orient = orient_weight * np.maximum(gap, 0.0)
            return np.concatenate([r_boundary, r_anchor, r_orient])

        def jacobian(u: np.ndarray) -> np.ndarray:
            c = unpack(u)
            da, db, diff, sep, d_num = _parts(c)
            unit = diff / sep[:, None]               # (c_a − c_b)/‖·‖
            # r = w·D/(2L), L = ‖c_a − c_b‖:
            #   ∂r/∂c_a = w·( 2(x−c_a)/(2L) − D/(2L²)·u )
            #   ∂r/∂c_b = w·(−2(x−c_b)/(2L) + D/(2L²)·u )
            inv_l = 1.0 / sep
            ga = w[:, None] * (da * inv_l[:, None] - (d_num / (2.0 * sep * sep))[:, None] * unit)
            gb = w[:, None] * (-db * inv_l[:, None] + (d_num / (2.0 * sep * sep))[:, None] * unit)
            jac = np.zeros((n_eq + 2 * n_regions + n_orient, 2 * n_regions))
            jac[rows, 2 * a_idx] += ga[:, 0]
            jac[rows, 2 * a_idx + 1] += ga[:, 1]
            jac[rows, 2 * b_idx] += gb[:, 0]
            jac[rows, 2 * b_idx + 1] += gb[:, 1]
            jac[n_eq : n_eq + 2 * n_regions, :] = lam * np.eye(2 * n_regions)
            # hinge: dh/dc_a = −2(m_a − c_a), dh/dc_b = +2(m_a − c_b), when active
            dma, dmb, gap = _orient_parts(c)
            active = gap > 0
            orows = n_eq + 2 * n_regions + np.flatnonzero(active)
            act_a = o_a[active]
            act_b = o_b[active]
            jac[orows, 2 * act_a] += orient_weight * (-2.0 * dma[active, 0])
            jac[orows, 2 * act_a + 1] += orient_weight * (-2.0 * dma[active, 1])
            jac[orows, 2 * act_b] += orient_weight * (2.0 * dmb[active, 0])
            jac[orows, 2 * act_b + 1] += orient_weight * (2.0 * dmb[active, 1])
            return jac

        return residuals, jacobian

    def plane_distance_rms(c: np.ndarray) -> float:
        _, _, _, sep, d_num = _parts(c)
        d = d_num / (2.0 * sep)
        return float(np.sqrt(np.mean(d * d)))

    # 'trf' handles the piecewise-smooth hinge objective robustly.
    if anchor_weight is not None:
        res_fn, jac_fn = make_residuals(float(anchor_weight))
        sol = least_squares(res_fn, prior.ravel(), jac=jac_fn, method="trf")
        return present, unpack(sol.x)

    # adaptive anchoring: pilot solve with a strong anchor (stays near the
    # prior, basin-safe), measure the boundary misfit, then final solve with
    # a misfit-matched anchor (negligible bias on near-ideal partitions).
    res_fn, jac_fn = make_residuals(2e-2)
    pilot = least_squares(res_fn, prior.ravel(), jac=jac_fn, method="trf")
    rho = plane_distance_rms(unpack(pilot.x))
    lam = float(np.clip(0.5 * rho, 5e-4, 2e-2))
    res_fn, jac_fn = make_residuals(lam)
    sol = least_squares(res_fn, pilot.x, jac=jac_fn, method="trf")
    return present, unpack(sol.x)
