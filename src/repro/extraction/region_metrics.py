"""Decision-region diagnostics: adjacency graphs and quality metrics.

Tools to *inspect* a sampled decision-region diagram before trusting the
extraction built on it:

* :func:`region_adjacency_graph` — the region graph (networkx): one node
  per present label (with area/centroid attributes), one edge per pair of
  regions sharing a boundary (with boundary sample counts);
* :func:`labeling_consistency` — fraction of adjacent region pairs whose
  labels differ in exactly one bit.  For a well-trained demapper on a
  Gray-labelled constellation this is ≈ 1; a collapse in this metric means
  the network learned a broken labeling (extraction will inherit it);
* :func:`region_connectedness` — fraction of regions that are a single
  connected component.  ANN decision regions can fragment (islands of one
  label inside another); fragmented regions make all centroid estimators
  unreliable, so the adaptive loop should treat low connectedness as a
  retrain-quality failure.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.extraction.decision_regions import DecisionRegionGrid
from repro.extraction.voronoi import boundary_midpoints

__all__ = ["region_adjacency_graph", "labeling_consistency", "region_connectedness"]


def region_adjacency_graph(grid: DecisionRegionGrid) -> nx.Graph:
    """Build the region-adjacency graph of a decision-region diagram.

    Nodes are the present labels with attributes ``area`` (fraction of the
    window) and ``centroid`` (mass centroid, complex).  Edges connect
    regions that share at least one boundary sample, weighted by the number
    of boundary samples (``weight``), a proxy for shared-boundary length.
    """
    g = nx.Graph()
    labels = grid.present_labels
    pts = grid.points()
    flat = grid.labels.ravel()
    total = flat.size
    for label in labels.tolist():
        sel = flat == label
        mass = pts[sel].mean(axis=0)
        g.add_node(
            int(label),
            area=float(np.count_nonzero(sel) / total),
            centroid=complex(mass[0], mass[1]),
        )
    _, pairs = boundary_midpoints(grid)
    if pairs.shape[0]:
        ordered = np.sort(pairs, axis=1)
        uniq, counts = np.unique(ordered, axis=0, return_counts=True)
        for (a, b), w in zip(uniq.tolist(), counts.tolist()):
            g.add_edge(int(a), int(b), weight=int(w))
    return g


def labeling_consistency(grid: DecisionRegionGrid, bits_per_symbol: int) -> float:
    """Fraction of adjacent region pairs differing in exactly one bit.

    The spatial analogue of the Gray property: on a sane demapper, crossing
    one decision boundary flips one bit.  Weighted by shared-boundary
    length so long boundaries (which dominate the error rate) count more.
    """
    if bits_per_symbol < 1:
        raise ValueError("bits_per_symbol must be >= 1")
    g = region_adjacency_graph(grid)
    if g.number_of_edges() == 0:
        raise ValueError("no adjacent regions in the grid")
    good = 0.0
    total = 0.0
    for a, b, data in g.edges(data=True):
        w = data["weight"]
        hamming = bin(a ^ b).count("1")
        total += w
        if hamming == 1:
            good += w
    return good / total


def region_connectedness(grid: DecisionRegionGrid) -> float:
    """Fraction of present regions forming a single connected component.

    Uses 4-connectivity on the sample grid (flood fill via networkx on the
    pixel graph restricted to each label).
    """
    labels = grid.labels
    res = labels.shape[0]
    present = grid.present_labels
    connected = 0
    for label in present.tolist():
        mask = labels == label
        ys, xs = np.nonzero(mask)
        n_pixels = ys.size
        if n_pixels == 0:  # pragma: no cover - present labels have pixels
            continue
        # build the pixel graph for this region only
        g = nx.Graph()
        idx = ys.astype(np.int64) * res + xs.astype(np.int64)
        g.add_nodes_from(idx.tolist())
        # horizontal neighbours
        right = mask[:, :-1] & mask[:, 1:]
        ry, rx = np.nonzero(right)
        g.add_edges_from(zip((ry * res + rx).tolist(), (ry * res + rx + 1).tolist()))
        # vertical neighbours
        down = mask[:-1, :] & mask[1:, :]
        dy, dx = np.nonzero(down)
        g.add_edges_from(zip((dy * res + dx).tolist(), ((dy + 1) * res + dx).tolist()))
        if nx.number_connected_components(g) == 1:
            connected += 1
    return connected / present.size
