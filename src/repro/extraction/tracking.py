"""Lightweight centroid tracking — adaptation without retraining.

Full demapper retraining (paper step 2) costs hundreds of milliseconds of
pilot traffic plus an FPGA reconfiguration.  For impairments that are *rigid
motions of the constellation* (phase drift, gain drift) there is a much
cheaper tier: estimate the motion from pilots and apply it directly to the
stored centroids of the hybrid demapper — a handful of multiplies, no ANN
involved at all.

:class:`CentroidTracker` implements that tier and reports when the residual
pilot error says a rigid update is *not* enough (the constellation warped —
IQ imbalance, nonlinearity), at which point the caller should escalate to
retraining + re-extraction.  This three-tier policy (track → re-extract →
retrain) is a natural extension of the paper's two-tier loop.
"""

from __future__ import annotations

import numpy as np

from repro.extraction.hybrid import HybridDemapper
from repro.link.estimation import estimate_complex_gain
from repro.modulation.constellations import Constellation

__all__ = ["CentroidTracker"]


class CentroidTracker:
    """Rigid (one-tap) tracking of a hybrid demapper's centroid set.

    Parameters
    ----------
    hybrid:
        The hybrid demapper whose centroids are tracked (replaced on update —
        ``current`` always holds the newest instance).
    residual_threshold:
        Normalised residual power above which the rigid model is declared
        insufficient (→ escalate to retraining).
    """

    def __init__(self, hybrid: HybridDemapper, *, residual_threshold: float = 0.35):
        if residual_threshold <= 0:
            raise ValueError("residual_threshold must be positive")
        self.current = hybrid
        self.residual_threshold = float(residual_threshold)
        self.cumulative_gain: complex = 1.0 + 0.0j
        self.updates = 0

    def update(
        self,
        pilot_indices: np.ndarray,
        rx_pilots: np.ndarray,
        *,
        sigma2: float | None = None,
    ) -> bool:
        """One tracking step from a pilot block.

        The *current centroids* are the receiver's model of where each
        symbol lands; the incremental gain ``g`` is estimated between the
        centroids of the pilot labels and the actually-received pilots
        (``y ≈ g·c_idx``), then applied to the whole centroid set.  Returns
        ``True`` if the post-fit residual is consistent with noise (the
        rigid model suffices), ``False`` if the constellation has *warped*
        beyond a rigid motion (⇒ escalate to retraining + re-extraction).

        ``sigma2`` overrides the noise variance used for the residual floor
        — serving sessions pass their live in-loop estimate so a drifting
        SNR does not misclassify honest noise as constellation warp.  The
        demapper's stored ``sigma2`` is the default.
        """
        idx = np.asarray(pilot_indices)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError("pilot_indices must be integer labels")
        sigma2 = float(self.current.sigma2 if sigma2 is None else sigma2)
        if sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        y = np.asarray(rx_pilots, dtype=np.complex128).ravel()
        x_ref = self.current.constellation.points[idx]
        g = estimate_complex_gain(x_ref, y)
        if g == 0:
            raise ValueError("estimated zero gain")
        # residual after the rigid fit vs the expected noise floor 2σ²N
        resid_power = float(np.sum(np.abs(y - g * x_ref) ** 2))
        noise_floor = 2.0 * sigma2 * y.size
        rigid_ok = resid_power <= (1.0 + self.residual_threshold) * noise_floor

        pts = self.current.constellation.points * g
        self.current = HybridDemapper(
            constellation=Constellation(points=pts, name="tracked-centroids"),
            sigma2=self.current.sigma2,
            grid=self.current.grid,
            centroids=self.current.centroids,
        )
        self.cumulative_gain *= g
        self.updates += 1
        return rigid_ok

    def demap_bits(self, received: np.ndarray) -> np.ndarray:
        """Hard bits through the currently-tracked centroids."""
        return self.current.demap_bits(received)

    def llrs(self, received: np.ndarray) -> np.ndarray:
        """LLRs through the currently-tracked centroids."""
        return self.current.llrs(received)
