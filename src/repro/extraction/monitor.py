"""Degradation monitors — when to trigger demapper retraining.

Paper §II-C: "the performance of the system can be regularly evaluated,
either by periodically sending pilot symbols to trigger retraining of the
demapper if the bit error rate (BER) reaches a threshold or by using an
outer error correction code (ECC) ... the number of bit flips that are
corrected by the ECC can guide as performance metric".

Both monitors share hysteresis logic: the trigger fires when the windowed
statistic exceeds ``threshold`` and then stays silent for ``cooldown``
observations (modelling the retraining latency during which measurements
are stale).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

__all__ = [
    "TIER_TRACK",
    "TIER_RETRAIN",
    "MonitorState",
    "DegradationMonitor",
    "PilotBERMonitor",
    "EccFlipMonitor",
    "AdaptationLadder",
]

#: Adaptation tiers a trigger can escalate through (cheap first).
TIER_TRACK = "track"
TIER_RETRAIN = "retrain"


@dataclass(frozen=True)
class MonitorState:
    """Read-only snapshot of a :class:`DegradationMonitor`.

    Lets telemetry and swap workers report the monitor without reaching into
    its private deque (the serving engine records one of these per session).

    Attributes
    ----------
    level:
        Mean of the current observation window (NaN while empty).
    window_fill:
        Observations currently held (``<= window``).
    window:
        Configured window length.
    armed:
        True when the trigger can fire (not in cooldown).
    cooldown_left:
        Observations remaining before re-arming (0 when armed).
    triggers:
        Total trigger count since construction (never reset).
    threshold:
        Configured trigger level.
    """

    level: float
    window_fill: int
    window: int
    armed: bool
    cooldown_left: int
    triggers: int
    threshold: float


class DegradationMonitor:
    """Windowed-threshold trigger with cooldown.

    Parameters
    ----------
    threshold:
        Trigger level for the windowed mean statistic.
    window:
        Number of recent observations averaged.
    cooldown:
        Observations to ignore after a trigger before re-arming.
    """

    def __init__(self, threshold: float, *, window: int = 4, cooldown: int = 8):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if window < 1:
            raise ValueError("window must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        self.threshold = float(threshold)
        self.window = int(window)
        self.cooldown = int(cooldown)
        self._values: deque[float] = deque(maxlen=window)
        self._cooldown_left = 0
        self.triggers = 0

    def observe(self, value: float) -> bool:
        """Feed one statistic observation; returns True iff retraining fires."""
        if value < 0:
            raise ValueError("statistic must be non-negative")
        self._values.append(float(value))
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return False
        if len(self._values) < self.window:
            return False
        if float(np.mean(self._values)) > self.threshold:
            self.triggers += 1
            self._cooldown_left = self.cooldown
            self._values.clear()
            return True
        return False

    @property
    def current_level(self) -> float:
        """Mean of the current window (NaN if empty)."""
        return float(np.mean(self._values)) if self._values else float("nan")

    @property
    def window_fill(self) -> int:
        """Observations currently held (``<= window``)."""
        return len(self._values)

    @property
    def armed(self) -> bool:
        """True when the trigger can fire (not in cooldown)."""
        return self._cooldown_left == 0

    def state(self) -> MonitorState:
        """Immutable snapshot of the monitor (see :class:`MonitorState`)."""
        return MonitorState(
            level=self.current_level,
            window_fill=self.window_fill,
            window=self.window,
            armed=self.armed,
            cooldown_left=self._cooldown_left,
            triggers=self.triggers,
            threshold=self.threshold,
        )

    def reset(self) -> None:
        """Clear the window and cooldown (e.g. after re-extraction).

        Idempotent: a second ``reset()`` with no interleaving ``observe`` is
        a no-op, so swap workers may reset unconditionally after installing a
        fresh demapper without racing a reset the trigger path already did.
        ``triggers`` is a lifetime counter and survives resets.
        """
        self._values.clear()
        self._cooldown_left = 0


class PilotBERMonitor(DegradationMonitor):
    """Trigger on pilot-measured BER.

    ``observe_pilots(bits_hat, bits_true)`` computes the pilot BER and feeds
    it to the windowed trigger.
    """

    def observe_pilots(self, bits_hat: np.ndarray, bits_true: np.ndarray) -> bool:
        a = np.asarray(bits_hat)
        b = np.asarray(bits_true)
        if a.shape != b.shape or a.size == 0:
            raise ValueError("pilot bit arrays must be equal-shape and non-empty")
        return self.observe(float(np.mean(a != b)))


class EccFlipMonitor(DegradationMonitor):
    """Trigger on the rate of ECC-corrected bit flips (paper ref [9]).

    ``observe_decode(corrected, total_bits)`` feeds corrected-flips per
    transmitted bit.  Works with any decoder returning a
    :class:`repro.ecc.hamming.DecodeResult`-style count.
    """

    def observe_decode(self, corrected: int, total_bits: int) -> bool:
        if total_bits <= 0:
            raise ValueError("total_bits must be positive")
        if corrected < 0:
            raise ValueError("corrected must be >= 0")
        return self.observe(corrected / total_bits)


class AdaptationLadder:
    """Escalation policy across adaptation tiers: track first, then retrain.

    Full retraining + re-extraction costs hundreds of milliseconds of pilot
    traffic and (on the FPGA) a reconfiguration; a rigid centroid update
    (:class:`~repro.extraction.tracking.CentroidTracker`) costs a handful of
    multiplies.  The ladder remembers how many *consecutive* monitor
    triggers were answered with the tracking tier: the first
    ``track_attempts`` triggers get :data:`TIER_TRACK`, and if degradation
    still persists — the monitor fires again before a full healthy window
    was observed — the next trigger escalates to :data:`TIER_RETRAIN`.

    Callers report outcomes: :meth:`note_track` after a tracking response,
    :meth:`note_recovered` once a full monitor window passed below
    threshold (the track demonstrably worked), and :meth:`reset` after a
    retrained demapper is installed.  The track streak is the only state,
    so the tier sequence is a pure function of the trigger/recovery
    timeline — which is what lets the serving determinism tests pin tier
    decisions bit-for-bit.

    ``track_attempts=0`` escalates every trigger straight to retraining
    (the paper's two-tier loop).
    """

    def __init__(self, track_attempts: int = 1):
        if track_attempts < 0:
            raise ValueError("track_attempts must be >= 0")
        self.track_attempts = int(track_attempts)
        self._streak = 0

    @property
    def track_streak(self) -> int:
        """Consecutive tracking responses since the last recovery/retrain."""
        return self._streak

    def wants_track(self) -> bool:
        """True while the cheap tier still has attempts left."""
        return self._streak < self.track_attempts

    def note_track(self) -> None:
        """Record that a trigger was answered with a tracking update."""
        self._streak += 1

    def note_recovered(self) -> None:
        """Record a full healthy monitor window: tracking worked, re-arm."""
        self._streak = 0

    def reset(self) -> None:
        """Re-arm the ladder (e.g. after a retrained demapper installed)."""
        self._streak = 0
