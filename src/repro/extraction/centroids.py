"""Centroid extraction from decision-region grids.

Three estimators for the per-symbol centroid ``c_i`` (paper §II-C):

* ``"vertex"`` — the paper's method: mean of the cell's Voronoi vertices
  (window-clipped).  Cheap and robust; slightly biased for cells whose
  vertices are asymmetric around the generator.
* ``"mass"``   — mean of all window samples in the cell.  Most robust to
  ragged regions but biased for cells clipped by the window.
* ``"lsq"``    — Voronoi inversion (:func:`repro.extraction.voronoi
  .voronoi_inversion`): unbiased for ideal Voronoi partitions; our
  extension, ablated in ``benchmarks/bench_ablation_extraction.py``.

A region that never appears in the window (possible for a badly trained
demapper at very low SNR) has no estimate; :meth:`CentroidSet.fill_missing`
substitutes the transmitter's constellation point and records the fallback.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.extraction.decision_regions import DecisionRegionGrid
from repro.extraction.voronoi import region_vertices, voronoi_inversion
from repro.modulation.constellations import Constellation

__all__ = ["CentroidSet", "extract_centroids"]

_METHODS = ("vertex", "mass", "lsq")


@dataclass
class CentroidSet:
    """Extracted centroids for all ``order`` symbol labels.

    Attributes
    ----------
    points:
        Complex array ``(order,)``; NaN where the label was absent from the
        sampled window and not yet filled.
    found:
        Boolean mask ``(order,)`` — True where the estimate came from the
        grid (False = missing or filled by fallback).
    method:
        Estimator name ("vertex" | "mass" | "lsq").
    """

    points: np.ndarray
    found: np.ndarray
    method: str

    @property
    def order(self) -> int:
        return self.points.size

    @property
    def n_missing(self) -> int:
        """Labels without a grid-derived estimate."""
        return int(np.count_nonzero(~self.found))

    def fill_missing(self, fallback: np.ndarray) -> "CentroidSet":
        """Substitute ``fallback`` points (complex ``(order,)``) for missing labels."""
        fb = np.asarray(fallback, dtype=np.complex128)
        if fb.shape != (self.order,):
            raise ValueError(f"fallback must have shape ({self.order},), got {fb.shape}")
        pts = self.points.copy()
        pts[~self.found] = fb[~self.found]
        return CentroidSet(points=pts, found=self.found.copy(), method=self.method)

    def as_constellation(self, name: str | None = None) -> Constellation:
        """Wrap as a labelled point set for the conventional demapper.

        Raises if any label is still missing (call :meth:`fill_missing`
        first).
        """
        if np.any(np.isnan(self.points.real)):
            raise ValueError(
                f"{self.n_missing} labels missing from the sampled window; "
                "call fill_missing() with the transmit constellation first"
            )
        return Constellation(
            points=self.points.copy(),
            name=name if name is not None else f"centroids-{self.method}",
        )


def _mass_centroids(grid: DecisionRegionGrid, order: int) -> tuple[np.ndarray, np.ndarray]:
    flat = grid.labels.ravel()
    pts = grid.points()
    counts = np.bincount(flat, minlength=order)[:order].astype(np.float64)
    sx = np.bincount(flat, weights=pts[:, 0], minlength=order)[:order]
    sy = np.bincount(flat, weights=pts[:, 1], minlength=order)[:order]
    found = counts > 0
    safe = np.where(found, counts, 1.0)
    centers = np.column_stack([sx / safe, sy / safe])
    return centers, found


def extract_centroids(
    grid: DecisionRegionGrid,
    order: int,
    *,
    method: str = "vertex",
    density_scale: float | None = None,
) -> CentroidSet:
    """Extract one centroid per symbol label from a decision-region grid.

    Parameters
    ----------
    grid:
        Sampled decision regions (see :func:`sample_decision_regions`).
    order:
        Constellation size M; labels are ``0..M-1``.
    method:
        ``"vertex"`` (paper), ``"mass"``, or ``"lsq"``.
    density_scale:
        For ``"lsq"``: Gaussian weighting scale for boundary samples (see
        :func:`repro.extraction.voronoi.voronoi_inversion`); ignored by the
        other methods.
    """
    if method not in _METHODS:
        raise ValueError(f"method must be one of {_METHODS}, got {method!r}")
    if order < 2:
        raise ValueError("order must be >= 2")
    if grid.labels.max(initial=0) >= order:
        raise ValueError("grid contains labels outside 0..order-1")

    centers = np.full((order, 2), np.nan)
    found = np.zeros(order, dtype=bool)

    if method == "mass":
        mass, mass_found = _mass_centroids(grid, order)
        centers[mass_found] = mass[mass_found]
        found = mass_found
    elif method == "vertex":
        verts = region_vertices(grid)
        for label, v in verts.items():
            if 0 <= label < order and v.shape[0] > 0:
                centers[label] = v.mean(axis=0)
                found[label] = True
        # a region entirely interior to one sample? fall back to mass for any
        # present-but-vertexless label (degenerate, e.g. single-pixel region)
        mass, mass_found = _mass_centroids(grid, order)
        still = mass_found & ~found
        centers[still] = mass[still]
        found |= still
    else:  # lsq
        if grid.present_labels.size == 1:
            # single region: inversion impossible; fall back to mass centroid
            mass, mass_found = _mass_centroids(grid, order)
            centers[mass_found] = mass[mass_found]
            found = mass_found
        else:
            labels_present, inv = voronoi_inversion(grid, density_scale=density_scale)
            for label, c in zip(labels_present.tolist(), inv):
                if 0 <= label < order:
                    centers[label] = c
                    found[label] = True

    points = centers[:, 0] + 1j * centers[:, 1]
    return CentroidSet(points=points, found=found, method=method)
