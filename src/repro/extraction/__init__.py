"""The hybrid approach: decision-region extraction and centroid demapping.

This is the paper's primary contribution (§II-C "Inference"):

1. sample the trained demapper ANN over the 2-D input plane to obtain its
   decision regions (:func:`sample_decision_regions`);
2. interpret the region diagram as a Voronoi partition and extract one
   centroid per symbol — three estimators are provided:

   * ``"vertex"``  — mean of each (clipped) Voronoi cell's vertices, the
     paper's own method ("calculated based on the vertices of each Voronoi
     cell");
   * ``"mass"``    — mean of all sampled points in the cell;
   * ``"lsq"``     — Voronoi inversion: least-squares fit of generators to
     the sampled cell boundaries (this repo's extension; exact on ideal
     Voronoi partitions up to grid quantisation);

3. hand the centroids to the conventional max-log soft demapper
   (:class:`~repro.modulation.demapper.MaxLogDemapper`) for cheap inference
   — wrapped as :class:`HybridDemapper`;
4. monitor link quality and re-trigger retraining + re-extraction
   (:class:`PilotBERMonitor`, :class:`EccFlipMonitor`).
"""

from repro.extraction.centroids import CentroidSet, extract_centroids
from repro.extraction.decision_regions import DecisionRegionGrid, sample_decision_regions
from repro.extraction.hybrid import HybridDemapper
from repro.extraction.monitor import (
    TIER_RETRAIN,
    TIER_TRACK,
    AdaptationLadder,
    DegradationMonitor,
    EccFlipMonitor,
    MonitorState,
    PilotBERMonitor,
)
from repro.extraction.region_metrics import (
    labeling_consistency,
    region_adjacency_graph,
    region_connectedness,
)
from repro.extraction.tracking import CentroidTracker
from repro.extraction.voronoi import (
    boundary_midpoints,
    region_vertices,
    voronoi_inversion,
)

__all__ = [
    "DecisionRegionGrid",
    "sample_decision_regions",
    "CentroidSet",
    "extract_centroids",
    "region_vertices",
    "boundary_midpoints",
    "voronoi_inversion",
    "HybridDemapper",
    "DegradationMonitor",
    "MonitorState",
    "PilotBERMonitor",
    "EccFlipMonitor",
    "AdaptationLadder",
    "TIER_TRACK",
    "TIER_RETRAIN",
    "CentroidTracker",
    "region_adjacency_graph",
    "labeling_consistency",
    "region_connectedness",
]
