"""Decision-region sampling over the demapper's 2-D input plane.

Paper §II-C: "first, we sample over the two-dimensional input space of the
demapper-ANN to get the learned symbol (ANN-output) for each complex input
sample.  This gives us the decision regions (DRs) of each symbol."

The grid is axis-aligned, square and symmetric about the origin; cell labels
are the packed hard-bit outputs of the demapper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = ["DecisionRegionGrid", "sample_decision_regions"]


@dataclass(frozen=True)
class DecisionRegionGrid:
    """A sampled decision-region diagram.

    Attributes
    ----------
    labels:
        ``(resolution, resolution)`` int64 grid; ``labels[iy, ix]`` is the
        symbol decided at ``(xs[ix], ys[iy])``.
    extent:
        Half-width of the sampled window (the window is ``[-extent, extent]²``).
    xs, ys:
        The 1-D sample coordinates (identical linspaces).
    """

    labels: np.ndarray
    extent: float
    xs: np.ndarray = field(repr=False)
    ys: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        lbl = np.asarray(self.labels)
        if lbl.ndim != 2 or lbl.shape[0] != lbl.shape[1]:
            raise ValueError(f"labels must be a square grid, got {lbl.shape}")
        if self.extent <= 0:
            raise ValueError("extent must be positive")

    @property
    def resolution(self) -> int:
        """Samples per axis."""
        return self.labels.shape[0]

    @property
    def cell_size(self) -> float:
        """Spacing between adjacent samples."""
        return float(self.xs[1] - self.xs[0])

    @property
    def present_labels(self) -> np.ndarray:
        """Sorted unique labels that claim at least one sample."""
        return np.unique(self.labels)

    def points(self) -> np.ndarray:
        """All sample coordinates as ``(resolution², 2)`` (row-major by y)."""
        gx, gy = np.meshgrid(self.xs, self.ys)
        return np.column_stack([gx.ravel(), gy.ravel()])

    def region_fractions(self, order: int) -> np.ndarray:
        """Fraction of the window claimed by each label ``0..order-1``."""
        counts = np.bincount(self.labels.ravel(), minlength=order)[:order]
        return counts / self.labels.size

    def label_at(self, points: np.ndarray) -> np.ndarray:
        """Nearest-sample lookup of region labels for arbitrary points ``(N, 2)``."""
        p = np.asarray(points, dtype=np.float64)
        if p.ndim != 2 or p.shape[1] != 2:
            raise ValueError("points must be (N, 2)")
        n = self.resolution
        scale = (n - 1) / (2.0 * self.extent)
        ix = np.clip(np.round((p[:, 0] + self.extent) * scale), 0, n - 1).astype(np.int64)
        iy = np.clip(np.round((p[:, 1] + self.extent) * scale), 0, n - 1).astype(np.int64)
        return self.labels[iy, ix]


def sample_decision_regions(
    bit_probability_fn: Callable[[np.ndarray], np.ndarray],
    *,
    extent: float = 2.0,
    resolution: int = 256,
    batch_rows: int = 64,
    label_fn: Callable[[np.ndarray], np.ndarray] | None = None,
) -> DecisionRegionGrid:
    """Sample a demapper's decision regions on a square grid.

    Parameters
    ----------
    bit_probability_fn:
        ``(N, 2) -> (N, k)`` per-bit probabilities (or logits — only the
        0.5/0 threshold matters).  Typically
        ``DemapperANN.bit_probability_fn()``.
    extent:
        Half-width of the window; should comfortably cover the received
        constellation plus noise (default 2.0 for unit-energy 16-QAM).
    resolution:
        Samples per axis (grid is resolution²).
    batch_rows:
        Rows evaluated per call, bounding peak memory for large grids.
    label_fn:
        Optional direct labelling function ``(N, 2) -> (N,)`` overriding the
        bit-threshold path (used to build exact Voronoi references in tests).
    """
    if resolution < 4:
        raise ValueError("resolution must be >= 4")
    if extent <= 0:
        raise ValueError("extent must be positive")
    xs = np.linspace(-extent, extent, resolution)
    ys = np.linspace(-extent, extent, resolution)
    labels = np.empty((resolution, resolution), dtype=np.int64)
    for start in range(0, resolution, batch_rows):
        stop = min(start + batch_rows, resolution)
        gx, gy = np.meshgrid(xs, ys[start:stop])
        pts = np.column_stack([gx.ravel(), gy.ravel()])
        if label_fn is not None:
            block = np.asarray(label_fn(pts), dtype=np.int64)
        else:
            probs = np.asarray(bit_probability_fn(pts))
            if probs.ndim != 2 or probs.shape[0] != pts.shape[0]:
                raise ValueError(f"bit_probability_fn returned bad shape {probs.shape}")
            bits = (probs > 0.5).astype(np.int64)
            k = bits.shape[1]
            weights = (1 << np.arange(k - 1, -1, -1)).astype(np.int64)
            block = bits @ weights
        labels[start:stop, :] = block.reshape(stop - start, resolution)
    return DecisionRegionGrid(labels=labels, extent=float(extent), xs=xs, ys=ys)
