"""Classical pilot-based channel estimation — the non-ML adaptation baseline.

The paper's retraining loop competes with decades of classical
synchronisation.  This module provides that comparator:

* :func:`estimate_phase` — ML phase estimate from pilots
  (``angle(Σ conj(x)·y)``, the least-squares rigid rotation);
* :func:`estimate_complex_gain` — joint phase+amplitude (one-tap LS);
* :class:`PhaseSyncReceiver` — derotate-by-estimate + conventional max-log
  demapping on the known constellation.

A pure phase offset is fully handled classically (and the comparison bench
shows it); the AE's edge is impairments *outside* the classical model —
e.g. IQ imbalance warps the constellation in a widely-linear way no single
derotation can undo, while demapper retraining absorbs it
(``benchmarks/bench_ext_adaptation_comparison.py``).
"""

from __future__ import annotations

import numpy as np

from repro.modulation.constellations import Constellation
from repro.modulation.demapper import MaxLogDemapper, llrs_to_bits

__all__ = [
    "estimate_phase",
    "estimate_complex_gain",
    "estimate_noise_sigma2",
    "estimate_noise_sigma2_batch",
    "PhaseSyncReceiver",
]


def estimate_phase(tx_pilots: np.ndarray, rx_pilots: np.ndarray) -> float:
    """ML estimate of a common phase rotation from pilot pairs.

    ``angle(Σ conj(x_i)·y_i)`` — the maximiser of the likelihood under
    ``y = e^{jφ}x + n`` and simultaneously the least-squares rigid rotation.
    """
    x = np.asarray(tx_pilots, dtype=np.complex128).ravel()
    y = np.asarray(rx_pilots, dtype=np.complex128).ravel()
    if x.shape != y.shape or x.size == 0:
        raise ValueError("pilot arrays must be matched and non-empty")
    corr = np.sum(np.conj(x) * y)
    if abs(corr) == 0:
        raise ValueError("degenerate pilots (zero correlation)")
    return float(np.angle(corr))


def estimate_complex_gain(tx_pilots: np.ndarray, rx_pilots: np.ndarray) -> complex:
    """One-tap least-squares channel estimate ``h = Σ conj(x)y / Σ |x|²``."""
    x = np.asarray(tx_pilots, dtype=np.complex128).ravel()
    y = np.asarray(rx_pilots, dtype=np.complex128).ravel()
    if x.shape != y.shape or x.size == 0:
        raise ValueError("pilot arrays must be matched and non-empty")
    energy = np.sum(np.abs(x) ** 2)
    if energy == 0:
        raise ValueError("all-zero pilots")
    return complex(np.sum(np.conj(x) * y) / energy)


def estimate_noise_sigma2(
    tx_pilots: np.ndarray, rx_pilots: np.ndarray, *, fit_gain: bool = True
) -> float:
    """Pilot-based per-real-dimension noise-variance estimate.

    Under ``y = h·x + n`` with circular complex noise of per-dimension
    variance σ², the residual power after removing the (optionally
    estimated) one-tap gain is a 2(N-1)-DOF chi-square with mean
    ``2σ²(N-1)``, so dividing by that gives an unbiased σ̂².  With
    ``fit_gain`` the estimate is invariant to rigid channel motion (phase or
    amplitude drift) — exactly what a serving loop wants: a phase jump must
    not masquerade as a noise-floor jump.  Without it (``fit_gain=False``,
    or fewer than two pilots) the residual is taken against the reference
    points directly and divided by ``2N``.

    ``tx_pilots`` are the *reference* positions the receiver expects the
    pilots to land on — the transmit constellation for a classical receiver,
    the extracted centroid set for the hybrid demapper (whose centroids
    already absorb learned impairments).
    """
    x = np.asarray(tx_pilots, dtype=np.complex128).ravel()
    y = np.asarray(rx_pilots, dtype=np.complex128).ravel()
    if x.shape != y.shape or x.size == 0:
        raise ValueError("pilot arrays must be matched and non-empty")
    if fit_gain and x.size >= 2:
        h = estimate_complex_gain(x, y)
        resid = float(np.sum(np.abs(y - h * x) ** 2))
        dof = x.size - 1
    else:
        resid = float(np.sum(np.abs(y - x) ** 2))
        dof = x.size
    return resid / (2.0 * dof)


def estimate_noise_sigma2_batch(
    tx_ref: np.ndarray, rx: np.ndarray, pilot_mask: np.ndarray
) -> np.ndarray:
    """Row-wise :func:`estimate_noise_sigma2` over a stacked ``(S, n)`` batch.

    The serving engine's vectorised form: row ``s`` holds one frame's
    reference points and received samples, ``pilot_mask`` selects each
    row's pilots, and the returned ``(S,)`` vector is that row's gain-fit
    noise estimate — the same statistic as the scalar function, reduced
    with row-local sums so each row's value is independent of who it was
    batched with (the serving determinism contract).  Rows with fewer than
    two pilots get NaN (no gain DOF to remove — callers skip the update).
    """
    x = np.asarray(tx_ref, dtype=np.complex128)
    y = np.asarray(rx, dtype=np.complex128)
    m = np.asarray(pilot_mask, dtype=bool)
    if x.ndim != 2 or x.shape != y.shape or m.shape != x.shape:
        raise ValueError("tx_ref, rx and pilot_mask must be equal-shape (S, n)")
    xm = np.where(m, x, 0.0)
    ym = np.where(m, y, 0.0)
    n_pilots = m.sum(axis=1)
    num = np.einsum("ij,ij->i", np.conj(xm), ym)
    den = np.einsum("ij,ij->i", np.conj(xm), xm).real
    with np.errstate(divide="ignore", invalid="ignore"):
        h = num / den
        r = ym - h[:, None] * xm
        resid = np.einsum("ij,ij->i", np.conj(r), r).real
        out = resid / (2.0 * (n_pilots - 1))
    out[n_pilots < 2] = np.nan
    return out


class PhaseSyncReceiver:
    """Classical receiver: pilot phase/gain estimation + derotation + max-log.

    Parameters
    ----------
    constellation:
        The (known) transmit constellation.
    sigma2:
        Per-dimension noise variance for LLR scaling.
    mode:
        ``"phase"`` (unit-modulus derotation) or ``"gain"`` (full one-tap
        equalisation ``y/h``).
    """

    def __init__(self, constellation: Constellation, sigma2: float, *, mode: str = "phase"):
        if sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        if mode not in ("phase", "gain"):
            raise ValueError("mode must be 'phase' or 'gain'")
        self.constellation = constellation
        self.sigma2 = float(sigma2)
        self.mode = mode
        self._core = MaxLogDemapper(constellation)
        self._h: complex = 1.0 + 0.0j

    @property
    def estimate(self) -> complex:
        """Current channel estimate (phase-only estimates have |h| = 1)."""
        return self._h

    def update(self, tx_pilots: np.ndarray, rx_pilots: np.ndarray) -> complex:
        """Re-estimate the channel from a pilot block; returns the estimate."""
        if self.mode == "phase":
            self._h = complex(np.exp(1j * estimate_phase(tx_pilots, rx_pilots)))
        else:
            self._h = estimate_complex_gain(tx_pilots, rx_pilots)
            if self._h == 0:
                raise ValueError("estimated zero gain")
        return self._h

    def equalize(self, received: np.ndarray) -> np.ndarray:
        """Apply the current estimate (derotation / one-tap division)."""
        return np.asarray(received, dtype=np.complex128) / self._h

    def llrs(self, received: np.ndarray) -> np.ndarray:
        """Max-log LLRs after equalisation."""
        return self._core.llrs(self.equalize(received), self.sigma2)

    def demap_bits(self, received: np.ndarray) -> np.ndarray:
        """Hard bits after equalisation."""
        return llrs_to_bits(self.llrs(received))
