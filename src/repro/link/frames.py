"""Pilot/payload framing for the adaptive receiver.

A frame interleaves known pilot symbols (for quality monitoring and
retraining data) with payload symbols.  Pilots lead the frame — the
receiver uses them to estimate the current BER before trusting the
payload decisions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["FrameConfig", "Frame", "build_frame", "frame_bers"]


@dataclass(frozen=True)
class FrameConfig:
    """Frame geometry.

    ``pilot_symbols`` known symbols followed by ``payload_symbols`` data
    symbols; ``pilot_overhead`` reports the rate loss.
    """

    pilot_symbols: int = 128
    payload_symbols: int = 1024

    def __post_init__(self) -> None:
        if self.pilot_symbols < 1:
            raise ValueError("pilot_symbols must be >= 1")
        if self.payload_symbols < 1:
            raise ValueError("payload_symbols must be >= 1")

    @property
    def total_symbols(self) -> int:
        return self.pilot_symbols + self.payload_symbols

    @property
    def pilot_overhead(self) -> float:
        """Fraction of the frame spent on pilots."""
        return self.pilot_symbols / self.total_symbols


@dataclass(frozen=True)
class Frame:
    """One frame of symbol labels with a pilot mask."""

    indices: np.ndarray       # (total,) int64 symbol labels
    pilot_mask: np.ndarray    # (total,) bool, True where pilot

    @property
    def pilot_indices(self) -> np.ndarray:
        return self.indices[self.pilot_mask]

    @property
    def payload_indices(self) -> np.ndarray:
        return self.indices[~self.pilot_mask]


def frame_bers(
    hat_bits: np.ndarray,
    true_bits: np.ndarray,
    pilot_mask: np.ndarray,
) -> tuple[float, float]:
    """``(pilot_ber, payload_ber)`` of one demapped frame.

    The pilot BER is the live quality statistic fed to the degradation
    monitors; the payload BER is the ground-truth telemetry a simulation can
    report because it knows the transmitted bits.  Shared by the adaptive
    receiver and the serving engine so both report identically-defined
    numbers.
    """
    hat = np.asarray(hat_bits)
    true = np.asarray(true_bits)
    mask = np.asarray(pilot_mask, dtype=bool)
    if hat.shape != true.shape:
        raise ValueError(f"bit arrays must be equal-shape, got {hat.shape} vs {true.shape}")
    if mask.shape[0] != hat.shape[0]:
        raise ValueError(
            f"pilot_mask length {mask.shape[0]} does not match {hat.shape[0]} symbols"
        )
    err = hat != true
    pilot = float(np.mean(err[mask])) if mask.any() else float("nan")
    payload = float(np.mean(err[~mask])) if (~mask).any() else float("nan")
    return pilot, payload


def build_frame(
    config: FrameConfig,
    order: int,
    rng: np.random.Generator | int | None = None,
) -> Frame:
    """Draw a random frame (uniform labels for pilots and payload)."""
    if order < 2:
        raise ValueError("order must be >= 2")
    rng = as_generator(rng)
    total = config.total_symbols
    indices = rng.integers(0, order, size=total, dtype=np.int64)
    mask = np.zeros(total, dtype=bool)
    mask[: config.pilot_symbols] = True
    return Frame(indices=indices, pilot_mask=mask)
