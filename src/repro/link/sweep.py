"""Batched multi-SNR Monte-Carlo sweep engine (common random numbers).

Every headline artifact of the paper — the Fig. 2 BER curves, the Table 1
adaptation deltas, the coded-BER extension — is an SNR *sweep*, yet running
it as S independent :func:`~repro.link.simulator.simulate_ber` calls pays S
kernel launches, S noise streams, and S passes over freshly drawn symbols
per evaluation batch.  This engine evaluates all S sweep points per chunk
from **one** shared draw:

1. draw ``n`` source symbols and ``n`` *unit-variance* complex noise samples
   once per chunk (common random numbers, CRN),
2. scale the shared noise by each point's ``σ_s`` to form an ``(S, n)``
   received tensor — optionally after a shared pre-noise impairment stage
   (phase offset, fading, PA compression, ... via a channel factory),
3. demap all S rows through the multi-sigma backend kernels
   (``maxlog_llrs_multi`` / ``logmap_llrs_multi`` / batched
   ``hard_indices``): the distance stage runs once over the flattened
   ``S·n`` samples and the S ``1/(2σ²)`` scalings come from a vector — one
   fused launch instead of S.

**Common-random-numbers variance reduction.**  Because every SNR point sees
the *same* symbols and the same (rescaled) noise realisation, the sweep's
per-point BER estimates are strongly positively correlated: a chunk with an
unlucky noise draw is unlucky at every SNR simultaneously, so the estimated
*curve* keeps its shape (differences between adjacent SNR points have much
lower variance than under independent draws) even though each individual
point has the ordinary Monte-Carlo variance.  BER curves come out visibly
smoother at equal sample budgets — the classic CRN effect for comparing
systems across a swept parameter.

**Determinism.**  Chunks follow the same spawn discipline as the chunked
:func:`~repro.link.simulator.simulate_ber` mode: per-chunk ``(bits, noise)``
generators spawned in order from the master seed, results accumulated in
chunk order, early stopping applied per SNR point at chunk granularity.
Per-SNR error counts are therefore a pure function of ``(seed, n_symbols,
batch_size)`` — independent of ``n_workers`` *and* of how the SNR axis is
batched (sweeping ``[0, 4, 8]`` dB gives the same counts per point as
sweeping ``[0, 4]`` and ``[8]`` separately, because the shared draw never
depends on S).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.backend import get_backend, use_backend
from repro.channels.awgn import sigma2_from_snr
from repro.channels.base import Channel
from repro.link.simulator import BERResult, run_chunks_in_order
from repro.modulation.constellations import Constellation
from repro.utils.complexmath import complex_to_real2
from repro.utils.rng import as_generator
from repro.utils.stats import wilson_interval

__all__ = [
    "sweep_ber",
    "HardBitsReceiver",
    "SoftBitsReceiver",
    "AnnBitsReceiver",
    "PerPointReceiver",
    "ExtractedCentroidFactory",
]


@dataclass(frozen=True)
class HardBitsReceiver:
    """Nearest-point sweep receiver: ``(S, n)`` received -> ``(S, n, k)`` bits.

    Hard decisions are σ²-independent, so the whole sweep tensor batches
    through one flattened ``hard_indices`` kernel launch.  This is the
    conventional receiver of the paper's Fig. 2 (max-log demapping followed
    by thresholding equals the minimum-distance decision), and equally the
    hybrid receiver when ``constellation`` is an extracted centroid set.
    """

    constellation: Constellation

    def __call__(self, received: np.ndarray, sigma2s: np.ndarray) -> np.ndarray:
        idx = get_backend().hard_indices(received, self.constellation.points)
        return self.constellation.bit_matrix[idx]


@dataclass(frozen=True)
class SoftBitsReceiver:
    """Sweep receiver thresholding a demapper's multi-sigma LLRs.

    ``demapper`` must expose ``llrs_multi(received, sigma2s)`` (max-log or
    exact log-MAP).  Use this when the bitwise-MAP decision differs from the
    nearest-point one (exact log-MAP) or when the LLR path itself is what
    is being measured; for plain minimum-distance bits
    :class:`HardBitsReceiver` is faster.
    """

    demapper: object

    def __call__(self, received: np.ndarray, sigma2s: np.ndarray) -> np.ndarray:
        return (self.demapper.llrs_multi(received, sigma2s) > 0).astype(np.int8)


@dataclass(frozen=True)
class AnnBitsReceiver:
    """Sweep receiver for an ANN demapper (σ²-independent inference).

    Flattens the ``(S, n)`` tensor into one ``(S·n, 2)`` batch through the
    allocation-free ``infer_logits`` path and thresholds at 0.
    """

    demapper: object  # DemapperANN (kept untyped to avoid an import cycle)

    def __call__(self, received: np.ndarray, sigma2s: np.ndarray) -> np.ndarray:
        flat = complex_to_real2(np.asarray(received).ravel())
        logits = self.demapper.infer_logits(flat)
        bits = (logits > 0).astype(np.int8)
        return bits.reshape(received.shape + (bits.shape[-1],))


@dataclass(frozen=True)
class PerPointReceiver:
    """Sweep receiver with a *distinct* receiver per SNR point.

    Some receivers are themselves σ²-dependent objects — the canonical case
    is hybrid demapping on centroids *re-extracted at each point's σ²* (the
    extraction density weighting depends on the noise level), the missing
    piece for running the adaptation experiments on the sweep engine.  Those
    cannot share one multi-sigma kernel launch across the axis, but they
    still profit from everything else the engine gives: the single CRN
    symbol/noise draw per chunk (variance-reduced curves), per-point early
    stop, worker fan-out, and SNR-axis-split invariance.

    ``receivers[p]`` is the receiver for sweep point ``p`` with signature
    ``(received (n,), sigma2) -> (n, k) bits``; the sweep core passes the
    active point indices so each row is routed to its own receiver.  Build
    one with :func:`sweep_ber`'s ``receiver_factory`` argument (the factory
    is invoked once per point, *not* per chunk).
    """

    receivers: tuple

    #: Marks the three-argument receiver protocol for the sweep core.
    per_point = True

    def __post_init__(self) -> None:
        if not self.receivers:
            raise ValueError("PerPointReceiver needs at least one receiver")

    def __call__(
        self, received: np.ndarray, sigma2s: np.ndarray, point_idx: np.ndarray
    ) -> np.ndarray:
        return np.stack(
            [
                np.asarray(self.receivers[p](received[i], float(sigma2s[i])))
                for i, p in enumerate(point_idx)
            ]
        )


@dataclass(frozen=True)
class _ExtractedCentroidPointReceiver:
    """Hard-decision receiver over one extracted centroid set (picklable)."""

    hybrid: object  # HybridDemapper (untyped to avoid an import cycle)

    def __call__(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        return self.hybrid.demap_bits(received)


@dataclass(frozen=True)
class ExtractedCentroidFactory:
    """``receiver_factory`` that re-runs centroid extraction per SNR point.

    At every sweep point the trained demapper ANN's decision regions are
    sampled and centroids extracted with that point's σ² (the ``"lsq"``
    density weighting is σ²-dependent), then payload bits are demapped by
    nearest centroid — the paper's hybrid receiver, evaluated the way the
    ROADMAP's "sweep-native adaptation experiments" item asks for.

    Extraction happens once per point at sweep start (S extractions per
    sweep, not per chunk).
    """

    demapper: object  # DemapperANN
    fallback: Constellation | None = None
    method: str = "lsq"
    extent: float = 1.5
    resolution: int = 192
    es: float = 1.0

    def __call__(self, snr_db: float, sigma2: float) -> _ExtractedCentroidPointReceiver:
        from repro.extraction.hybrid import HybridDemapper

        hybrid = HybridDemapper.extract(
            self.demapper,
            sigma2,
            extent=self.extent,
            resolution=self.resolution,
            method=self.method,
            fallback=self.fallback,
            es=self.es,
        )
        return _ExtractedCentroidPointReceiver(hybrid)


def _sweep_chunk(
    constellation: Constellation,
    sigma2s: np.ndarray,
    sigmas: np.ndarray,
    active_idx: np.ndarray,
    receiver: Callable[[np.ndarray, np.ndarray], np.ndarray],
    pre_channel_factory: Callable[[np.random.Generator], Channel] | None,
    n: int,
    bits_rng: np.random.Generator,
    noise_rng: np.random.Generator,
    backend,
) -> tuple[np.ndarray, int, int]:
    """One CRN chunk: returns ``(per_snr_bit_errors (S,), bits, symbols)``.

    Only the sweep rows in ``active_idx`` (points that had not early-stopped
    when the chunk was scheduled) are formed and demapped; the returned error
    vector is scattered back to full length.  Because the shared draw never
    depends on which rows are evaluated, pruning cannot change any counted
    bit.  Module-level so it pickles into worker processes; runs under the
    parent's resolved backend tier (workers do not inherit ``set_backend``
    state).
    """
    k = constellation.bits_per_symbol
    with use_backend(backend):
        idx = bits_rng.integers(0, constellation.order, size=n)
        x = constellation.points[idx]
        if pre_channel_factory is not None:
            # spawned *before* the noise draw so the unit-noise stream is
            # identical whether or not a pre-stage is present
            (pre_rng,) = noise_rng.spawn(1)
            x = pre_channel_factory(pre_rng).forward(x)
        unit = noise_rng.normal(0.0, 1.0, size=(n, 2))
        e = unit[:, 0] + 1j * unit[:, 1]
        received = x[None, :] + sigmas[active_idx, None] * e[None, :]
        if getattr(receiver, "per_point", False):
            # three-argument protocol: per-point receivers need to know which
            # sweep rows survived early stopping to route each to its own
            # receiver (σ² values alone could collide)
            hat = np.asarray(receiver(received, sigma2s[active_idx], active_idx))
        else:
            hat = np.asarray(receiver(received, sigma2s[active_idx]))
    if hat.shape != (active_idx.size, n, k):
        raise ValueError(
            f"receiver returned shape {hat.shape}, expected ({active_idx.size}, {n}, {k})"
        )
    truth = constellation.bit_matrix[idx]
    errors = np.zeros(sigma2s.size, dtype=np.int64)
    errors[active_idx] = np.count_nonzero(hat != truth[None, :, :], axis=(1, 2))
    return errors, n * k, n


class _SweepAccumulator:
    """Per-SNR accounting in strict chunk order with per-point early stop."""

    def __init__(self, s_count: int, max_errors: int | None):
        self.errors = np.zeros(s_count, dtype=np.int64)
        self.bits = np.zeros(s_count, dtype=np.int64)
        self.symbols = np.zeros(s_count, dtype=np.int64)
        self.active = np.ones(s_count, dtype=bool)
        self.max_errors = max_errors

    def consume(self, chunk_errors: np.ndarray, chunk_bits: int, chunk_symbols: int) -> bool:
        """Fold one chunk in; returns True while any SNR point still runs."""
        act = self.active
        self.errors[act] += chunk_errors[act]
        self.bits[act] += chunk_bits
        self.symbols[act] += chunk_symbols
        if self.max_errors is not None:
            self.active &= self.errors < self.max_errors
        return bool(self.active.any())


def sweep_ber(
    constellation: Constellation,
    snr_dbs: Sequence[float],
    receiver: Callable[[np.ndarray, np.ndarray], np.ndarray] | None,
    n_symbols: int,
    *,
    rng: np.random.Generator | int | None = None,
    batch_size: int = 65536,
    max_errors: int | None = None,
    n_workers: int = 1,
    snr_type: str = "ebn0",
    es: float = 1.0,
    pre_channel_factory: Callable[[np.random.Generator], Channel] | None = None,
    receiver_factory: Callable[[float, float], Callable] | None = None,
) -> Mapping[float, BERResult]:
    """Measure the BER of a receiver at every SNR of a sweep in one batched run.

    Parameters
    ----------
    constellation:
        Transmit constellation (labels = bits).
    snr_dbs:
        The sweep axis.  All points share each chunk's symbol and
        unit-noise draw (common random numbers — see the module docstring
        for the variance-reduction property).
    receiver:
        ``(received (S, n) complex, sigma2s (S,)) -> (S, n, k) bits``.
        Row ``s`` of ``received`` is the chunk's batch at sweep point ``s``.
        :class:`HardBitsReceiver`, :class:`SoftBitsReceiver` and
        :class:`AnnBitsReceiver` cover the standard receivers; like the
        chunked ``simulate_ber`` mode the callable must be stateless per
        call and picklable for ``n_workers > 1``.
    n_symbols:
        Maximum symbols per SNR point.
    rng:
        Master seed/generator; per-chunk generators are spawned from it in
        deterministic order, making per-SNR counts a pure function of
        ``(seed, n_symbols, batch_size)`` — independent of ``n_workers``
        and of how the SNR axis is split across calls.
    batch_size:
        Symbols per chunk (part of the reproducibility key).
    max_errors:
        Early-stop a sweep *point* once it accumulates this many bit errors
        (applied at chunk granularity in chunk order); the run ends when
        every point has stopped.
    n_workers:
        Worker processes for chunk fan-out (``1`` = in-process); never
        changes a counted bit.
    snr_type / es:
        SNR convention forwarded to
        :func:`repro.channels.awgn.sigma2_from_snr`.
    pre_channel_factory:
        Optional picklable ``rng -> Channel`` applied to the clean symbols
        *before* the scaled noise is added — one shared impairment
        realisation per chunk (phase offset, fading, PA compression, or a
        ``CompositeFactory`` stack thereof from
        :mod:`repro.channels.factories`).  The AWGN stage is implicit (that
        is what the sweep scales), so factories here must not add noise of
        their own.
    receiver_factory:
        Build a *distinct* receiver per sweep point: ``(snr_db, sigma2) ->
        ((received (n,), sigma2) -> (n, k) bits)``, invoked once per point
        up front and wrapped in :class:`PerPointReceiver`.  This is how
        σ²-dependent receivers (e.g. :class:`ExtractedCentroidFactory`,
        which re-extracts centroids at each point's noise level) run on the
        sweep engine.  Mutually exclusive with ``receiver``.

    Returns
    -------
    Ordered mapping ``snr_db -> BERResult`` (one Wilson interval per point).
    """
    snrs = [float(s) for s in snr_dbs]
    if not snrs:
        raise ValueError("snr_dbs must contain at least one sweep point")
    if (receiver is None) == (receiver_factory is None):
        raise ValueError("pass exactly one of receiver or receiver_factory")
    if n_symbols < 1:
        raise ValueError("n_symbols must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    rng = as_generator(rng)
    k = constellation.bits_per_symbol
    sigma2s = np.array(
        [sigma2_from_snr(s, k, snr_type=snr_type, es=es) for s in snrs], dtype=np.float64
    )
    sigmas = np.sqrt(sigma2s)
    if receiver_factory is not None:
        # one receiver per point, built before any chunk runs — per-point
        # state (like an extraction) happens S times per sweep, not per chunk
        receiver = PerPointReceiver(
            tuple(receiver_factory(snr, float(s2)) for snr, s2 in zip(snrs, sigma2s))
        )

    sizes = [batch_size] * (n_symbols // batch_size)
    if n_symbols % batch_size:
        sizes.append(n_symbols % batch_size)
    backend = get_backend()

    acc = _SweepAccumulator(len(snrs), max_errors)

    def chunk_args_iter():
        # `active_idx` is snapshotted at scheduling time: in-process that is
        # exact; with workers it may lag the accumulator by the submission
        # window, in which case a finished point's rows are computed and then
        # masked out — never the reverse (active only shrinks), so counts
        # stay invariant while finished points stop costing compute.
        for n in sizes:
            bits_rng, noise_rng = rng.spawn(2)
            yield (
                constellation, sigma2s, sigmas, np.flatnonzero(acc.active),
                receiver, pre_channel_factory, n, bits_rng, noise_rng, backend,
            )
    run_chunks_in_order(
        _sweep_chunk, chunk_args_iter(), lambda result: acc.consume(*result), n_workers
    )

    results = {}
    for i, snr in enumerate(snrs):
        lo, hi = wilson_interval(int(acc.errors[i]), int(acc.bits[i]))
        results[snr] = BERResult(
            bit_errors=int(acc.errors[i]),
            bits=int(acc.bits[i]),
            symbols=int(acc.symbols[i]),
            ci_low=lo,
            ci_high=hi,
        )
    return results
