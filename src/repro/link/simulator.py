"""Batched Monte-Carlo BER engine.

Streams random symbols through ``constellation -> channel -> demapper`` in
large batches (vectorised end to end), stops early once ``max_errors`` bit
errors have been observed (relative BER accuracy ~1/sqrt(max_errors)), and
reports a Wilson confidence interval.

Two execution modes:

* **Legacy streaming** (default): one channel instance, one RNG, sequential
  batches — byte-compatible with the original engine.
* **Deterministic chunked** (``channel_factory`` given): the run is split
  into fixed chunks, each with its own ``rng.spawn()``-derived source-bit
  and channel-noise generators, and chunk results are accumulated in chunk
  order.  The error count is then a pure function of ``(rng seed,
  n_symbols, batch_size)`` — *independent of the worker count* — so
  ``n_workers > 1`` fans chunks out over worker processes without changing
  a single counted bit.  Early stopping is applied at chunk granularity in
  chunk order, preserving that invariance.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterator, Mapping, Sequence

import contextvars
import multiprocessing
import numpy as np

from repro.backend import get_backend, use_backend
from repro.channels.base import Channel
from repro.channels.factories import AWGNFactory
from repro.modulation.constellations import Constellation
from repro.utils.rng import as_generator
from repro.utils.stats import wilson_interval

__all__ = ["BERResult", "AWGNFactory", "simulate_ber", "sweep_snr"]


@dataclass(frozen=True)
class BERResult:
    """Outcome of a Monte-Carlo BER run."""

    bit_errors: int
    bits: int
    symbols: int
    ci_low: float
    ci_high: float

    @property
    def ber(self) -> float:
        """Point estimate of the bit error rate."""
        return self.bit_errors / self.bits if self.bits else float("nan")

    def __str__(self) -> str:  # pragma: no cover
        return f"BER {self.ber:.3e} [{self.ci_low:.2e}, {self.ci_high:.2e}] ({self.bits} bits)"


def run_chunks_in_order(
    chunk_fn: Callable[..., object],
    chunk_args: Iterator[tuple],
    consume: Callable[[object], bool],
    n_workers: int,
) -> None:
    """Execute ``chunk_fn`` over an argument stream, consuming results in
    strict chunk order; ``consume(result)`` returns False to stop early.

    This is the worker-invariance core shared by the chunked
    :func:`simulate_ber` mode and the multi-SNR sweep engine
    (:mod:`repro.link.sweep`): with ``n_workers <= 1`` chunks run in-process;
    otherwise they fan out over a forkserver process pool with a *bounded*
    submission window (``2·n_workers`` — an early stop wastes at most ~one
    window of speculative work) while results are still consumed strictly in
    chunk order, so early-stop boundaries — and therefore every counted
    bit — are identical for every worker count.  ``chunk_args`` is advanced
    lazily, which lets callers snapshot mutable scheduling state (e.g. which
    sweep points are still active) per chunk.
    """
    if n_workers <= 1:
        for args in chunk_args:
            if not consume(chunk_fn(*args)):
                return
        return
    try:
        # forkserver: children fork from a dedicated single-threaded server,
        # so spawning from a multithreaded parent (e.g. inside a sweep_snr
        # thread pool) is safe; plain fork is not.
        ctx = multiprocessing.get_context("forkserver")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = multiprocessing.get_context()
    with ProcessPoolExecutor(max_workers=n_workers, mp_context=ctx) as ex:
        window = 2 * n_workers
        pending: list = []
        exhausted = False
        try:
            while pending or not exhausted:
                while not exhausted and len(pending) < window:
                    args = next(chunk_args, None)
                    if args is None:
                        exhausted = True
                    else:
                        pending.append(ex.submit(chunk_fn, *args))
                if not pending:
                    break
                if not consume(pending.pop(0).result()):
                    break
        finally:
            for fut in pending:
                fut.cancel()


def _ber_chunk(
    constellation: Constellation,
    channel_factory: Callable[[np.random.Generator], Channel],
    demap_bits: Callable[[np.ndarray], np.ndarray],
    n: int,
    bits_rng: np.random.Generator,
    noise_rng: np.random.Generator,
    backend,
) -> tuple[int, int, int]:
    """One independent chunk: returns ``(bit_errors, bits, symbols)``.

    Module-level so it pickles into worker processes.  ``backend`` is the
    backend instance the *parent* resolved: worker processes don't inherit
    ``set_backend``/``use_backend`` state, so it is re-applied here to keep
    the compute tier — and therefore the counted errors — identical for
    every worker count (instances pickle with an empty workspace, and
    custom/unregistered backends work as long as they pickle).  A demapper
    pinned to its own backend still wins.
    """
    k = constellation.bits_per_symbol
    # the whole chunk — channel build, forward, demap — runs under the
    # parent's tier so backend-sensitive channels stay worker-invariant too
    with use_backend(backend):
        channel = channel_factory(noise_rng)
        idx = bits_rng.integers(0, constellation.order, size=n)
        received = channel.forward(constellation.points[idx])
        hat = np.asarray(demap_bits(received))
    if hat.shape != (n, k):
        raise ValueError(f"demapper returned shape {hat.shape}, expected ({n}, {k})")
    errors = int(np.count_nonzero(hat != constellation.bit_matrix[idx]))
    return errors, n * k, n


def _simulate_chunked(
    constellation: Constellation,
    channel_factory: Callable[[np.random.Generator], Channel],
    demap_bits: Callable[[np.ndarray], np.ndarray],
    n_symbols: int,
    rng: np.random.Generator,
    batch_size: int,
    max_errors: int | None,
    n_workers: int,
) -> BERResult:
    """Deterministic chunk plan; worker count never changes the counts."""
    sizes = [batch_size] * (n_symbols // batch_size)
    if n_symbols % batch_size:
        sizes.append(n_symbols % batch_size)
    backend = get_backend()

    def chunk_args_iter():
        # Two independent child generators per chunk (bits, noise), spawned
        # lazily in deterministic order — spawning 2 at a time yields the
        # exact same child streams as one upfront rng.spawn(2*n_chunks)
        # (the spawn counter advances identically), so early-stopped runs
        # skip the setup cost of chunks that never execute without changing
        # a single counted bit.
        for n in sizes:
            bits_rng, noise_rng = rng.spawn(2)
            yield (constellation, channel_factory, demap_bits, n, bits_rng, noise_rng, backend)

    totals = [0, 0, 0]  # errors, bits, symbols

    def consume(result) -> bool:
        e, b, s = result
        totals[0] += e
        totals[1] += b
        totals[2] += s
        return max_errors is None or totals[0] < max_errors

    run_chunks_in_order(_ber_chunk, chunk_args_iter(), consume, n_workers)
    errors, bits_done, symbols_done = totals
    lo, hi = wilson_interval(errors, bits_done)
    return BERResult(bit_errors=errors, bits=bits_done, symbols=symbols_done, ci_low=lo, ci_high=hi)


def simulate_ber(
    constellation: Constellation,
    channel: Channel | None,
    demap_bits: Callable[[np.ndarray], np.ndarray],
    n_symbols: int,
    *,
    rng: np.random.Generator | int | None = None,
    batch_size: int = 65536,
    max_errors: int | None = None,
    n_workers: int = 1,
    channel_factory: Callable[[np.random.Generator], Channel] | None = None,
) -> BERResult:
    """Measure the BER of a demapper over a channel.

    Parameters
    ----------
    constellation:
        Transmit constellation (labels = bits).
    channel:
        Channel model applied to the transmitted symbols (legacy streaming
        mode; may be ``None`` when ``channel_factory`` is given).
    demap_bits:
        ``(N,) complex -> (N, k) bits`` receiver function.  In chunked mode
        it must be **stateless** (pure per call): each chunk may run on an
        independent pickled snapshot, so a receiver that mutates internal
        state across calls (e.g. decision-directed tracking) would diverge
        between worker counts — use the legacy streaming mode for those.
        Must be picklable (e.g. a bound method of a demapper) for
        ``n_workers > 1``; the argument tuple is re-pickled per chunk, so
        keep multi-megabyte receivers out of the parallel path or use
        large ``batch_size`` chunks.
    n_symbols:
        Maximum symbols to simulate.
    rng:
        Seed/generator for the source bits.  In chunked mode this master
        generator also spawns the per-chunk channel-noise generators, making
        the whole run replayable from one integer.
    batch_size:
        Symbols per vectorised batch (= chunk size in chunked mode; part of
        the reproducibility key).
    max_errors:
        Early-stop once this many bit errors accumulate (None = never).
        Chunked mode stops at a chunk boundary, identically for any
        ``n_workers``.
    n_workers:
        Worker processes for chunk fan-out (requires ``channel_factory``).
        ``1`` = in-process.
    channel_factory:
        ``rng -> Channel`` builder enabling the deterministic chunked mode
        (see module docstring); each chunk gets a freshly built channel with
        its own spawned noise generator.  :mod:`repro.channels.factories`
        covers the whole channel zoo — :class:`AWGNFactory` for the common
        AWGN case, ``RayleighFactory``/``RicianFactory`` (block fading),
        ``PhaseNoiseFactory`` (Wiener phase noise), ``CFOFactory``,
        ``IQImbalanceFactory``, ``RappPAFactory``, and ``CompositeFactory``
        to stack stages (e.g. fading + AWGN) with per-stage spawned
        generators.  Every factory is picklable, so every scenario runs
        through the ``n_workers > 1`` path with worker-invariant counts.

    See also
    --------
    repro.link.sweep.sweep_ber :
        Batched multi-SNR engine — evaluates a whole SNR sweep per chunk
        from one shared symbol/noise draw (common random numbers) through
        the multi-sigma backend kernels; use it instead of S separate
        ``simulate_ber`` calls when only the SNR varies.  Sharing the noise
        across the axis is also a variance-reduction technique: per-point
        estimates become positively correlated, so the BER *curve* comes out
        much smoother (low-variance point-to-point differences) at the same
        sample budget.
    """
    if n_symbols < 1:
        raise ValueError("n_symbols must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    rng = as_generator(rng)

    if channel_factory is not None:
        if channel is not None:
            raise ValueError(
                "pass either channel (streaming mode) or channel_factory "
                "(chunked mode), not both — the factory would silently win"
            )
        return _simulate_chunked(
            constellation, channel_factory, demap_bits, n_symbols, rng,
            batch_size, max_errors, n_workers,
        )
    if n_workers > 1:
        raise ValueError(
            "n_workers > 1 requires channel_factory= (per-chunk channels are "
            "what make parallel noise streams reproducible)"
        )
    if channel is None:
        raise ValueError("channel is required when channel_factory is not given")

    k = constellation.bits_per_symbol
    order = constellation.order
    points = constellation.points
    bit_matrix = constellation.bit_matrix

    errors = 0
    bits_done = 0
    symbols_done = 0
    remaining = n_symbols
    while remaining > 0:
        n = min(batch_size, remaining)
        remaining -= n
        idx = rng.integers(0, order, size=n)
        received = channel.forward(points[idx])
        hat = np.asarray(demap_bits(received))
        if hat.shape != (n, k):
            raise ValueError(f"demapper returned shape {hat.shape}, expected ({n}, {k})")
        errors += int(np.count_nonzero(hat != bit_matrix[idx]))
        bits_done += n * k
        symbols_done += n
        if max_errors is not None and errors >= max_errors:
            break
    lo, hi = wilson_interval(errors, bits_done)
    return BERResult(bit_errors=errors, bits=bits_done, symbols=symbols_done, ci_low=lo, ci_high=hi)


def sweep_snr(
    snr_dbs: Sequence[float],
    runner: Callable[[float], BERResult],
    *,
    n_workers: int = 1,
) -> Mapping[float, BERResult]:
    """Evaluate ``runner(snr_db)`` over a list of SNRs (ordered dict).

    With ``n_workers > 1`` the SNR points run concurrently on a thread pool
    (runners are usually closures, which don't pickle; NumPy releases the
    GIL in the hot kernels, so threads overlap well).  Results keep the
    input order, and each point's result is whatever its runner computes —
    parallelism never reorders or reseeds anything.  Each runner executes
    in a copy of the caller's context, so a surrounding
    :func:`repro.backend.use_backend` scope applies inside the workers.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    snrs = [float(s) for s in snr_dbs]
    if n_workers == 1 or len(snrs) <= 1:
        return {snr: runner(snr) for snr in snrs}
    with ThreadPoolExecutor(max_workers=n_workers) as ex:
        futures = [
            ex.submit(contextvars.copy_context().run, runner, snr) for snr in snrs
        ]
        results = [f.result() for f in futures]
    return dict(zip(snrs, results))
