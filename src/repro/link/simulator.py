"""Batched Monte-Carlo BER engine.

Streams random symbols through ``constellation -> channel -> demapper`` in
large batches (vectorised end to end), stops early once ``max_errors`` bit
errors have been observed (relative BER accuracy ~1/sqrt(max_errors)), and
reports a Wilson confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.channels.base import Channel
from repro.modulation.constellations import Constellation
from repro.utils.rng import as_generator
from repro.utils.stats import wilson_interval

__all__ = ["BERResult", "simulate_ber", "sweep_snr"]


@dataclass(frozen=True)
class BERResult:
    """Outcome of a Monte-Carlo BER run."""

    bit_errors: int
    bits: int
    symbols: int
    ci_low: float
    ci_high: float

    @property
    def ber(self) -> float:
        """Point estimate of the bit error rate."""
        return self.bit_errors / self.bits if self.bits else float("nan")

    def __str__(self) -> str:  # pragma: no cover
        return f"BER {self.ber:.3e} [{self.ci_low:.2e}, {self.ci_high:.2e}] ({self.bits} bits)"


def simulate_ber(
    constellation: Constellation,
    channel: Channel,
    demap_bits: Callable[[np.ndarray], np.ndarray],
    n_symbols: int,
    *,
    rng: np.random.Generator | int | None = None,
    batch_size: int = 65536,
    max_errors: int | None = None,
) -> BERResult:
    """Measure the BER of a demapper over a channel.

    Parameters
    ----------
    constellation:
        Transmit constellation (labels = bits).
    channel:
        Channel model applied to the transmitted symbols.
    demap_bits:
        ``(N,) complex -> (N, k) bits`` receiver function.
    n_symbols:
        Maximum symbols to simulate.
    rng:
        Seed/generator for the source bits (the channel owns its own noise
        generator).
    batch_size:
        Symbols per vectorised batch.
    max_errors:
        Early-stop once this many bit errors accumulate (None = never).
    """
    if n_symbols < 1:
        raise ValueError("n_symbols must be >= 1")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    rng = as_generator(rng)
    k = constellation.bits_per_symbol
    order = constellation.order
    points = constellation.points
    bit_matrix = constellation.bit_matrix

    errors = 0
    bits_done = 0
    symbols_done = 0
    remaining = n_symbols
    while remaining > 0:
        n = min(batch_size, remaining)
        remaining -= n
        idx = rng.integers(0, order, size=n)
        received = channel.forward(points[idx])
        hat = np.asarray(demap_bits(received))
        if hat.shape != (n, k):
            raise ValueError(f"demapper returned shape {hat.shape}, expected ({n}, {k})")
        errors += int(np.count_nonzero(hat != bit_matrix[idx]))
        bits_done += n * k
        symbols_done += n
        if max_errors is not None and errors >= max_errors:
            break
    lo, hi = wilson_interval(errors, bits_done)
    return BERResult(bit_errors=errors, bits=bits_done, symbols=symbols_done, ci_low=lo, ci_high=hi)


def sweep_snr(
    snr_dbs: Sequence[float],
    runner: Callable[[float], BERResult],
) -> Mapping[float, BERResult]:
    """Evaluate ``runner(snr_db)`` over a list of SNRs (ordered dict)."""
    return {float(snr): runner(float(snr)) for snr in snr_dbs}
