"""Link-level simulation: Monte-Carlo BER, framing, adaptive receiver.

* :mod:`repro.link.simulator` — batched Monte-Carlo BER engine with
  early stopping and Wilson confidence intervals;
* :mod:`repro.link.sweep` — batched multi-SNR sweep engine: one shared
  symbol/noise draw per chunk (common random numbers) evaluated at every
  SNR point through the multi-sigma backend kernels;
* :mod:`repro.link.frames` — pilot/payload framing;
* :mod:`repro.link.adaptive` — the full closed loop of the paper: hybrid
  demapping, pilot/ECC monitoring, triggered retraining and centroid
  re-extraction on a drifting channel.
"""

from repro.link.adaptive import AdaptiveReceiver, AdaptiveReceiverConfig, FrameReport
from repro.link.estimation import (
    PhaseSyncReceiver,
    estimate_complex_gain,
    estimate_noise_sigma2,
    estimate_noise_sigma2_batch,
    estimate_phase,
)
from repro.link.frames import Frame, FrameConfig, build_frame, frame_bers
from repro.link.ofdm import (
    MultipathChannel,
    OFDMConfig,
    OFDMReceiver,
    ofdm_demodulate,
    ofdm_modulate,
    subcarrier_gains,
)
from repro.link.simulator import AWGNFactory, BERResult, simulate_ber, sweep_snr
from repro.link.sweep import (
    AnnBitsReceiver,
    ExtractedCentroidFactory,
    HardBitsReceiver,
    PerPointReceiver,
    SoftBitsReceiver,
    sweep_ber,
)

__all__ = [
    "AWGNFactory",
    "BERResult",
    "simulate_ber",
    "sweep_snr",
    "sweep_ber",
    "HardBitsReceiver",
    "SoftBitsReceiver",
    "AnnBitsReceiver",
    "PerPointReceiver",
    "ExtractedCentroidFactory",
    "Frame",
    "FrameConfig",
    "build_frame",
    "frame_bers",
    "AdaptiveReceiver",
    "AdaptiveReceiverConfig",
    "FrameReport",
    "PhaseSyncReceiver",
    "estimate_phase",
    "estimate_complex_gain",
    "estimate_noise_sigma2",
    "estimate_noise_sigma2_batch",
    "OFDMConfig",
    "OFDMReceiver",
    "MultipathChannel",
    "ofdm_modulate",
    "ofdm_demodulate",
    "subcarrier_gains",
]
