"""OFDM over frequency-selective (multipath) channels.

The paper's motivation is adaptability to "varying channel conditions";
the canonical varying channel is frequency-selective multipath.  This
module provides the standard cyclic-prefix OFDM machinery that turns a
multipath channel into independent flat subchannels, so the hybrid
demapper applies per subcarrier:

* :func:`ofdm_modulate` / :func:`ofdm_demodulate` — unitary IFFT/FFT with
  cyclic prefix;
* :class:`MultipathChannel` — FIR channel + AWGN (stream-stateful: the
  filter tail carries across calls, exactly as a physical channel);
* :func:`subcarrier_gains` — the diagonalisation ``Y_k = H_k·X_k + N_k``
  (exact when the CP covers the channel memory — property-tested);
* :class:`OFDMReceiver` — pilot-based per-subcarrier LS estimation, one-tap
  equalisation, and demapping through any flat demapper (conventional or
  hybrid) with the correct post-equalisation noise scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.utils.rng import as_generator

__all__ = [
    "OFDMConfig",
    "ofdm_modulate",
    "ofdm_demodulate",
    "MultipathChannel",
    "subcarrier_gains",
    "OFDMReceiver",
]


@dataclass(frozen=True)
class OFDMConfig:
    """OFDM frame geometry: FFT size and cyclic-prefix length."""

    n_subcarriers: int = 64
    cp_length: int = 16

    def __post_init__(self) -> None:
        if self.n_subcarriers < 2 or (self.n_subcarriers & (self.n_subcarriers - 1)) != 0:
            raise ValueError("n_subcarriers must be a power of two >= 2")
        if not 0 <= self.cp_length < self.n_subcarriers:
            raise ValueError("cp_length must lie in [0, n_subcarriers)")

    @property
    def frame_length(self) -> int:
        """Time samples per OFDM frame (FFT + CP)."""
        return self.n_subcarriers + self.cp_length

    @property
    def efficiency(self) -> float:
        """Useful fraction of airtime (CP overhead excluded)."""
        return self.n_subcarriers / self.frame_length


def ofdm_modulate(symbols: np.ndarray, config: OFDMConfig) -> np.ndarray:
    """Frequency-domain symbols ``(F, n_sc)`` -> time samples ``(F·(n_sc+cp),)``.

    Unitary IFFT (``norm="ortho"``) keeps average power identical in both
    domains; the last ``cp_length`` samples of each frame are prepended as
    the cyclic prefix.
    """
    x = np.asarray(symbols, dtype=np.complex128)
    if x.ndim == 1:
        if x.size % config.n_subcarriers != 0:
            raise ValueError(
                f"symbol count {x.size} not a multiple of {config.n_subcarriers}"
            )
        x = x.reshape(-1, config.n_subcarriers)
    if x.ndim != 2 or x.shape[1] != config.n_subcarriers:
        raise ValueError(f"expected (frames, {config.n_subcarriers}), got {x.shape}")
    time = np.fft.ifft(x, axis=1, norm="ortho")
    if config.cp_length:
        time = np.concatenate([time[:, -config.cp_length :], time], axis=1)
    return time.ravel()


def ofdm_demodulate(samples: np.ndarray, config: OFDMConfig) -> np.ndarray:
    """Time samples -> frequency-domain symbols ``(F, n_sc)`` (CP stripped)."""
    s = np.asarray(samples, dtype=np.complex128).ravel()
    if s.size % config.frame_length != 0:
        raise ValueError(f"sample count {s.size} not a multiple of {config.frame_length}")
    frames = s.reshape(-1, config.frame_length)[:, config.cp_length :]
    return np.fft.fft(frames, axis=1, norm="ortho")


def subcarrier_gains(taps: np.ndarray, n_subcarriers: int) -> np.ndarray:
    """Per-subcarrier complex gains ``H_k`` of an FIR channel (zero-padded FFT)."""
    h = np.asarray(taps, dtype=np.complex128).ravel()
    if h.size > n_subcarriers:
        raise ValueError("channel longer than the FFT — CP cannot cover it")
    return np.fft.fft(h, n=n_subcarriers)


class MultipathChannel:
    """FIR multipath + AWGN on a continuous sample stream.

    The filter state persists across calls (the physical channel has
    memory); :meth:`reset` clears it.  ``sigma2`` is the per-real-dimension
    noise variance at the *sample* level — with unitary OFDM transforms the
    same value applies per subcarrier.
    """

    def __init__(
        self,
        taps: np.ndarray,
        sigma2: float = 0.0,
        *,
        rng: np.random.Generator | int | None = None,
    ):
        h = np.asarray(taps, dtype=np.complex128).ravel()
        if h.size < 1:
            raise ValueError("need at least one tap")
        if sigma2 < 0:
            raise ValueError("sigma2 must be >= 0")
        self.taps = h
        self.sigma2 = float(sigma2)
        self.rng = as_generator(rng)
        self._tail = np.zeros(h.size - 1, dtype=np.complex128)

    def forward(self, samples: np.ndarray) -> np.ndarray:
        """Filter + add noise; same length out as in (streaming overlap-add)."""
        x = np.asarray(samples, dtype=np.complex128).ravel()
        full = np.convolve(x, self.taps)
        out = full[: x.size].copy()
        n_tail = self._tail.size
        if n_tail:
            take = min(n_tail, x.size)
            out[:take] += self._tail[:take]
            new_tail = np.zeros(n_tail, dtype=np.complex128)
            # leftover of the old tail shifts past this (possibly short) block
            leftover = self._tail[take:]
            new_tail[: leftover.size] += leftover
            new_tail += full[x.size :]
            self._tail = new_tail
        if self.sigma2 > 0:
            sigma = np.sqrt(self.sigma2)
            out += self.rng.normal(0, sigma, x.size) + 1j * self.rng.normal(0, sigma, x.size)
        return out

    def reset(self) -> None:
        """Clear the filter memory."""
        self._tail[...] = 0.0

    @staticmethod
    def exponential_profile(
        n_taps: int,
        decay: float = 1.0,
        *,
        rng: np.random.Generator | int | None = None,
        normalize: bool = True,
    ) -> np.ndarray:
        """Random Rayleigh taps with an exponential power-delay profile."""
        if n_taps < 1:
            raise ValueError("n_taps must be >= 1")
        if decay <= 0:
            raise ValueError("decay must be positive")
        rng = as_generator(rng)
        power = np.exp(-decay * np.arange(n_taps))
        taps = np.sqrt(power / 2) * (rng.normal(size=n_taps) + 1j * rng.normal(size=n_taps))
        if normalize:
            taps /= np.linalg.norm(taps)
        return taps


class OFDMReceiver:
    """Per-subcarrier equalise-then-demap over any flat demapper.

    Parameters
    ----------
    config:
        OFDM geometry.
    llr_fn:
        Flat-channel soft demapper ``(received, sigma2) -> (N, k)`` — e.g.
        ``MaxLogDemapper(...).llrs`` or a bound
        :meth:`repro.extraction.hybrid.HybridDemapper` with
        ``lambda y, s2: hybrid.with_sigma2(s2).llrs(y)``.
    sigma2:
        Per-dimension noise variance at the subcarrier level.

    After one-tap equalisation ``Y_k/H_k`` the noise on subcarrier ``k`` is
    scaled by ``1/|H_k|²``; LLRs are computed per subcarrier with that
    effective variance (max-log stays exact under this whitening).
    """

    def __init__(
        self,
        config: OFDMConfig,
        llr_fn: Callable[[np.ndarray, float], np.ndarray],
        sigma2: float,
    ):
        if sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        self.config = config
        self.llr_fn = llr_fn
        self.sigma2 = float(sigma2)
        self._h: np.ndarray | None = None

    @property
    def gains(self) -> np.ndarray | None:
        """Current per-subcarrier channel estimate (None before estimation)."""
        return self._h

    def estimate(self, tx_pilot_frames: np.ndarray, rx_pilot_frames: np.ndarray) -> np.ndarray:
        """LS per-subcarrier estimate from matched pilot frames ``(F, n_sc)``."""
        x = np.asarray(tx_pilot_frames, dtype=np.complex128)
        y = np.asarray(rx_pilot_frames, dtype=np.complex128)
        if x.shape != y.shape or x.ndim != 2 or x.shape[1] != self.config.n_subcarriers:
            raise ValueError("pilot frames must be matched (F, n_subcarriers) arrays")
        num = np.sum(np.conj(x) * y, axis=0)
        den = np.sum(np.abs(x) ** 2, axis=0)
        if np.any(den == 0):
            raise ValueError("every subcarrier needs pilot energy")
        self._h = num / den
        return self._h

    def demap_llrs(self, rx_frames: np.ndarray) -> np.ndarray:
        """Equalise and demap ``(F, n_sc)`` received frames -> ``(F·n_sc, k)``."""
        if self._h is None:
            raise RuntimeError("call estimate() before demapping")
        y = np.asarray(rx_frames, dtype=np.complex128)
        if y.ndim != 2 or y.shape[1] != self.config.n_subcarriers:
            raise ValueError(f"expected (frames, {self.config.n_subcarriers})")
        eq = y / self._h[None, :]
        k_bits = None
        out = []
        for sc in range(self.config.n_subcarriers):
            eff_sigma2 = self.sigma2 / max(np.abs(self._h[sc]) ** 2, 1e-12)
            llrs = self.llr_fn(eq[:, sc], eff_sigma2)
            if k_bits is None:
                k_bits = llrs.shape[1]
            out.append(llrs)
        # interleave back to transmission order (frame-major, subcarrier-minor)
        stacked = np.stack(out, axis=1)  # (F, n_sc, k)
        return stacked.reshape(-1, k_bits)

    def demap_bits(self, rx_frames: np.ndarray) -> np.ndarray:
        """Hard bits in transmission order."""
        return (self.demap_llrs(rx_frames) > 0).astype(np.int8)
