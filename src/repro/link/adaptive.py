"""The closed adaptive loop: TRACK -> (degrade) -> RETRAIN -> EXTRACT -> TRACK.

This stitches the paper's three steps into a running receiver:

1. **TRACK** — payload symbols are demapped by the cheap
   :class:`~repro.extraction.hybrid.HybridDemapper`; each frame's pilots
   measure the live BER, which feeds a
   :class:`~repro.extraction.monitor.DegradationMonitor`.
2. **RETRAIN** — when the monitor fires, the demapper ANN is retrained on
   pilot transmissions over the *current* channel
   (:class:`~repro.autoencoder.training.ReceiverFinetuner` — on the FPGA
   this is the reconfigured training design of Table 2).
3. **EXTRACT** — centroids are re-extracted from the retrained ANN and the
   hybrid demapper swapped in; the monitor resets.

``AdaptiveReceiver.run`` drives this over a (typically time-varying)
channel and returns one :class:`FrameReport` per frame — the data behind
the adaptive-tracking example and integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autoencoder.system import AESystem
from repro.autoencoder.training import ReceiverFinetuner, TrainingConfig
from repro.channels.base import Channel
from repro.extraction.hybrid import HybridDemapper
from repro.extraction.monitor import DegradationMonitor
from repro.link.frames import FrameConfig, build_frame, frame_bers
from repro.modulation.constellations import Constellation
from repro.utils.rng import as_generator

__all__ = ["AdaptiveReceiverConfig", "FrameReport", "AdaptiveReceiver"]


@dataclass(frozen=True)
class AdaptiveReceiverConfig:
    """Tunables of the adaptive loop.

    With ``tracking=True`` the receiver adds a cheap first tier: when the
    monitor fires, it first attempts a *rigid centroid update* from the
    frame's pilots (:class:`~repro.extraction.tracking.CentroidTracker` —
    a handful of multiplies, no ANN, no reconfiguration) and only escalates
    to full retraining + re-extraction when the tracker reports the
    impairment is not a rigid motion.
    """

    frame: FrameConfig = field(default_factory=FrameConfig)
    retrain: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(steps=600, batch_size=512, lr=2e-3)
    )
    extraction_method: str = "lsq"
    extraction_extent: float = 1.5
    extraction_resolution: int = 192
    tracking: bool = False


@dataclass(frozen=True)
class FrameReport:
    """Per-frame telemetry of the adaptive receiver."""

    frame_index: int
    pilot_ber: float
    payload_ber: float
    retrained: bool
    monitor_level: float
    tracked: bool = False


class AdaptiveReceiver:
    """Hybrid receiver with pilot-triggered retraining and re-extraction."""

    def __init__(
        self,
        system: AESystem,
        constellation: Constellation,
        sigma2: float,
        monitor: DegradationMonitor,
        config: AdaptiveReceiverConfig | None = None,
    ):
        if sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        self.system = system
        self.constellation = constellation
        self.sigma2 = sigma2
        self.monitor = monitor
        self.config = config if config is not None else AdaptiveReceiverConfig()
        self.hybrid = self._extract()
        self.retrain_count = 0
        self.track_count = 0

    def _extract(self) -> HybridDemapper:
        cfg = self.config
        return HybridDemapper.extract(
            self.system.demapper,
            self.sigma2,
            extent=cfg.extraction_extent,
            resolution=cfg.extraction_resolution,
            method=cfg.extraction_method,
            fallback=self.constellation,
        )

    def _retrain(self, channel: Channel, rng: np.random.Generator) -> None:
        finetuner = ReceiverFinetuner(
            self.system, self.config.retrain, constellation=self.constellation
        )
        finetuner.run(channel, rng)
        self.hybrid = self._extract()
        self.monitor.reset()
        self.retrain_count += 1

    def _try_track(self, frame, received) -> bool:
        """Tier-1 adaptation: rigid centroid update from this frame's pilots.

        Returns True if the tracker accepted the rigid model (the updated
        centroids are installed either way — a rigid fit never hurts, and
        the caller escalates when it was insufficient).
        """
        from repro.extraction.tracking import CentroidTracker

        tracker = CentroidTracker(self.hybrid)
        rigid_ok = tracker.update(frame.pilot_indices, received[frame.pilot_mask])
        self.hybrid = tracker.current
        self.track_count += 1
        if rigid_ok:
            self.monitor.reset()
        return rigid_ok

    def process_frame(
        self,
        frame_index: int,
        channel: Channel,
        rng: np.random.Generator,
    ) -> FrameReport:
        """Transmit and receive one frame; adapt if the monitor fires.

        Adaptation policy: with ``config.tracking`` the first response is a
        rigid centroid update (cheap); full retraining runs only when the
        tracker flags a non-rigid impairment.  Without tracking, every
        trigger retrains (the paper's two-tier loop).
        """
        cfg = self.config
        frame = build_frame(cfg.frame, self.constellation.order, rng)
        received = channel.forward(self.constellation.points[frame.indices])
        true_bits = self.constellation.bit_matrix[frame.indices]

        hat = self.hybrid.demap_bits(received)
        pilot_ber, payload_ber = frame_bers(hat, true_bits, frame.pilot_mask)

        fired = self.monitor.observe(pilot_ber)
        level = self.monitor.current_level
        tracked = False
        retrained = False
        if fired:
            if cfg.tracking and self._try_track(frame, received):
                tracked = True
            else:
                self._retrain(channel, rng)
                retrained = True
        return FrameReport(
            frame_index=frame_index,
            pilot_ber=pilot_ber,
            payload_ber=payload_ber,
            retrained=retrained,
            monitor_level=level,
            tracked=tracked,
        )

    def run(
        self,
        channel: Channel,
        n_frames: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[FrameReport]:
        """Process ``n_frames`` frames over ``channel``; returns telemetry."""
        if n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        rng = as_generator(rng)
        return [self.process_frame(i, channel, rng) for i in range(n_frames)]
