"""Serving observability: tracing, unified metrics, round profiling.

Three passive layers over the serving runtime, all off by default and all
observe-only (attaching any of them changes no per-session output bit —
the determinism contract extends to observability):

* :mod:`repro.serving.observability.tracing` — a bounded ring-buffer
  :class:`Tracer` of typed frame-lifecycle / round-phase / fault events on
  the simulated symbol clock, exportable as Chrome ``trace_event`` JSON or
  a plain event log (``ServingEngine(tracer=...)``);
* :mod:`repro.serving.observability.metrics` — a :class:`MetricsRegistry`
  unifying counters, gauges and latency histograms behind one named,
  labelled interface with Prometheus-text and JSON exporters and a
  shard-combining ``merge()`` (``engine.register_metrics(registry)``);
* :mod:`repro.serving.observability.profiling` — a :class:`RoundProfiler`
  of per-phase and per-launch-width wall-clock timings
  (``ServingEngine(profiler=...)``).

``python -m repro.serving.obs_report run.json`` renders an exported run
(:func:`repro.serving.obs_report.export_run`) as a text dashboard.
"""

from repro.serving.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.serving.observability.profiling import ENGINE_PHASES, RoundProfiler
from repro.serving.observability.tracing import TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ENGINE_PHASES",
    "RoundProfiler",
    "TraceEvent",
    "Tracer",
]
