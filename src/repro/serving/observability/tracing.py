"""Frame-lifecycle tracing: a bounded ring buffer of typed serving events.

The serving runtime's counters (:mod:`repro.serving.telemetry`) answer
"how many?"; the :class:`Tracer` answers "when, and in what order?": every
frame's lifecycle (``frame.submit`` → ``frame.batched`` →
``frame.decoded`` (+ ``frame.crc_fail`` on a failed CRC, coded sessions
only) → ``frame.served`` / ``frame.dropped`` / ``frame.quarantined``),
every engine round phase
(``phase.absorb-outcomes`` / ``phase.schedule`` / ``phase.coalesce`` /
``phase.demap-launch`` / ``phase.control-plane`` /
``phase.retrain-submit``), the retrain lifecycle (``retrain.install`` /
``retrain.retry`` / ``retrain.hung``), every failure record (``fault.*``)
and every health transition (``session.health``) land here as
:class:`TraceEvent` entries.

**Clock.**  Events are stamped on the engine's *simulated symbol clock*
(``EngineStats.now`` — total symbols served), the only clock the
deterministic runtime has: with a fixed traffic seed the event stream is a
pure function of the run, reproducible bit-for-bit.  ``wall_clock=True``
additionally stamps ``time.perf_counter()`` on each event — useful for
real profiling, excluded from :meth:`Tracer.snapshot` by default precisely
because wall time is *not* deterministic.

**Passivity contract.**  The tracer only ever observes: the engine emits
events strictly *after* the state change they describe, from the engine
thread only, and nothing in the serving path reads the tracer back.
Attaching one changes no per-session output bit (pinned by
``tests/serving/test_observability.py``).

**Bounding.**  The buffer is a ring of ``capacity`` events: a long soak
keeps the *latest* events and counts the overwritten ones in
:attr:`Tracer.dropped` — observability must never grow without bound
inside a serving loop.

Exports: :meth:`Tracer.to_chrome` emits Chrome ``trace_event`` JSON (load
it in ``chrome://tracing`` / Perfetto: one track per session plus an
engine track; 1 symbol tick is rendered as 1 µs) and :meth:`Tracer.to_log`
a plain, grep-friendly event log.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from time import perf_counter

__all__ = ["TraceEvent", "Tracer"]


@dataclass(slots=True)
class TraceEvent:
    """One typed event on the serving timeline.

    ``ts`` is the simulated symbol-clock tick; ``ph`` follows Chrome's
    ``trace_event`` phases (``"i"`` instant, ``"X"`` complete span with
    ``dur`` ticks).  ``round`` / ``session_id`` / ``seq`` locate the event
    on the engine round counter, a session's track and a frame's sequence
    number; ``args`` carries event-specific payload (deterministic values
    only — BERs, tiers, counts).  ``wall`` is the optional
    ``perf_counter()`` stamp (None unless the tracer runs with
    ``wall_clock=True``).
    """

    name: str
    ts: int
    ph: str = "i"
    dur: int = 0
    round: int | None = None
    session_id: str | None = None
    seq: int | None = None
    args: dict | None = None
    wall: float | None = None

    def as_dict(self, *, deterministic: bool = True) -> dict:
        """Plain-dict form (None fields omitted); ``deterministic=True``
        drops the wall-clock stamp so two traced runs of one seed compare
        equal."""
        d: dict = {"name": self.name, "ts": self.ts, "ph": self.ph}
        if self.ph == "X":
            d["dur"] = self.dur
        if self.round is not None:
            d["round"] = self.round
        if self.session_id is not None:
            d["session_id"] = self.session_id
        if self.seq is not None:
            d["seq"] = self.seq
        if self.args:
            d["args"] = dict(self.args)
        if not deterministic and self.wall is not None:
            d["wall"] = self.wall
        return d


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent` entries.

    Parameters
    ----------
    capacity:
        Ring size: once full, each new event evicts the oldest (counted in
        :attr:`dropped`).  Eviction is passive — a bounded tracer on a long
        soak changes no output, it just forgets the distant past.
    wall_clock:
        Stamp ``time.perf_counter()`` on every event.  Off by default —
        wall stamps are excluded from deterministic snapshots either way,
        but off means not even the call is paid.

    Single-writer: the engine emits from its own thread only (retrain
    worker threads never touch the tracer — their outcomes are absorbed,
    and traced, at the top of the next round), so no lock is needed.

    ``emit`` sits on the engine's per-frame hot path, so the ring holds
    packed field tuples and :class:`TraceEvent` objects are materialized
    lazily by the accessors (:attr:`events`, :meth:`session_events`) and
    the exports — recording stays cheap, reading pays the object cost.
    """

    def __init__(self, capacity: int = 65536, *, wall_clock: bool = False):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self.wall_clock = bool(wall_clock)
        # packed (name, ts, ph, dur, round, session_id, seq, args, wall)
        # tuples in TraceEvent field order — see class docstring
        self._events: deque[tuple] = deque(maxlen=self.capacity)
        #: events evicted by the ring since the last :meth:`clear`
        self.dropped = 0

    def emit(
        self,
        name: str,
        *,
        ts: int,
        ph: str = "i",
        dur: int = 0,
        round: int | None = None,
        session_id: str | None = None,
        seq: int | None = None,
        **args,
    ) -> None:
        """Record one event (keyword extras land in ``event.args``).

        ``ts`` and ``dur`` are symbol-clock ticks and must already be ints
        — this path runs per served frame, so it stores and never coerces.
        """
        events = self._events
        if len(events) == self.capacity:
            self.dropped += 1
        events.append(
            (
                name,
                ts,
                ph,
                dur,
                round,
                session_id,
                seq,
                args or None,
                perf_counter() if self.wall_clock else None,
            )
        )

    def emit_instant(
        self,
        name: str,
        ts: int,
        round: int | None = None,
        session_id: str | None = None,
        seq: int | None = None,
        args: dict | None = None,
    ) -> None:
        """Allocation-light variant of :meth:`emit` for instant events.

        Positional parameters and an explicit ``args`` dict (instead of
        ``**kwargs`` packing) roughly halve the per-call cost — this is
        what the engine's per-frame loop calls, a few hundred times per
        round.  Semantically identical to ``emit(name, ts=ts, ...)`` with
        ``ph="i"``.
        """
        events = self._events
        if len(events) == self.capacity:
            self.dropped += 1
        events.append(
            (
                name,
                ts,
                "i",
                0,
                round,
                session_id,
                seq,
                args,
                perf_counter() if self.wall_clock else None,
            )
        )

    def __len__(self) -> int:
        return len(self._events)

    def _iter(self):
        """Materialize the buffered tuples as :class:`TraceEvent`, oldest
        first (field order in the ring matches the dataclass)."""
        return (TraceEvent(*packed) for packed in self._events)

    @property
    def events(self) -> tuple[TraceEvent, ...]:
        """The buffered events, oldest first."""
        return tuple(self._iter())

    def session_events(self, session_id: str) -> list[TraceEvent]:
        """Events on one session's track, in emission order."""
        return [TraceEvent(*p) for p in self._events if p[5] == session_id]

    def clear(self) -> None:
        """Drop every buffered event and reset the dropped counter."""
        self._events.clear()
        self.dropped = 0

    # -- exports -------------------------------------------------------------
    def snapshot(self, *, deterministic: bool = True) -> dict:
        """JSON-ready dict of the buffer (the plain event log).

        ``deterministic=True`` (default) excludes wall-clock stamps, so
        snapshots of two same-seed runs — traced at any worker count with
        retrain-free traffic — compare equal; pass False to keep them for
        wall-time analysis.
        """
        return {
            "schema": 1,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "events": [e.as_dict(deterministic=deterministic) for e in self._iter()],
        }

    def to_chrome(self) -> dict:
        """Chrome ``trace_event`` JSON object (``{"traceEvents": [...]}``).

        One pid, one thread per track: tid 0 is the engine (round phases,
        fleet events), tids 1+ are sessions in first-appearance order, each
        named via ``thread_name`` metadata.  Symbol ticks map 1:1 onto the
        format's microseconds, so span widths read as service times.
        """
        tids: dict[str, int] = {}
        out: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": "engine"},
            }
        ]
        body: list[dict] = []
        for e in self._iter():
            if e.session_id is None:
                tid = 0
            elif e.session_id in tids:
                tid = tids[e.session_id]
            else:
                tid = tids[e.session_id] = len(tids) + 1
                out.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": e.session_id},
                    }
                )
            args = dict(e.args) if e.args else {}
            if e.round is not None:
                args["round"] = e.round
            if e.seq is not None:
                args["seq"] = e.seq
            entry = {"name": e.name, "ph": e.ph, "ts": e.ts, "pid": 1, "tid": tid}
            if e.ph == "X":
                entry["dur"] = e.dur
            else:
                entry["s"] = "t"  # instant scoped to its thread/track
            if args:
                entry["args"] = args
            body.append(entry)
        return {"traceEvents": out + body, "displayTimeUnit": "ms"}

    def chrome_json(self, *, indent: int | None = None) -> str:
        """:meth:`to_chrome` serialized (the file you load in a viewer)."""
        return json.dumps(self.to_chrome(), indent=indent)

    def to_log(self) -> list[str]:
        """Plain event-log lines, oldest first (grep-friendly)."""
        lines = []
        for e in self._iter():
            parts = [f"[{e.ts:>10}]"]
            if e.round is not None:
                parts.append(f"r{e.round:<4}")
            parts.append(f"{e.name:<24}")
            if e.session_id is not None:
                parts.append(e.session_id)
            if e.seq is not None:
                parts.append(f"seq={e.seq}")
            if e.ph == "X":
                parts.append(f"dur={e.dur}")
            if e.args:
                parts.append(" ".join(f"{k}={v}" for k, v in e.args.items()))
            lines.append(" ".join(parts))
        return lines

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"Tracer(events={len(self._events)}/{self.capacity}, "
            f"dropped={self.dropped})"
        )
