"""Per-stage wall-clock profiling of the serving round.

Where the :class:`~repro.serving.observability.tracing.Tracer` orders
events on the deterministic symbol clock, the :class:`RoundProfiler`
answers the one question that clock cannot: *where does the wall time go?*
Attached via ``ServingEngine(profiler=...)`` it accumulates
``perf_counter`` timings per round phase (``absorb-outcomes`` /
``schedule`` / ``coalesce`` / ``demap-launch`` / ``control-plane`` /
``retrain-submit``) and per-batch kernel-launch timings keyed by launch
width — the data that says whether coalescing is amortizing launch
overhead or the control plane is eating the round.

Observe-only and off by default: the engine consults nothing here, wall
timings never reach the deterministic state, and with no profiler attached
the hot path's only cost is a ``None`` check (the phase context manager is
a shared no-op).  Wall numbers are inherently machine/noise dependent —
they belong in dashboards and ``obs_report``, never in deterministic
snapshots or test assertions.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

__all__ = ["RoundProfiler"]

#: The engine's round phases, in round order (the profiler accepts any
#: name — this is the set the engine emits).
ENGINE_PHASES = (
    "absorb-outcomes",
    "schedule",
    "coalesce",
    "demap-launch",
    "control-plane",
    "retrain-submit",
)


class _StageStat:
    """count/total/min/max accumulator for one phase or launch width."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.total / self.count if self.count else float("nan"),
            "min_s": self.min if self.count else float("nan"),
            "max_s": self.max,
        }


class RoundProfiler:
    """Accumulates wall-clock per-phase and per-launch-width timings."""

    def __init__(self) -> None:
        self.phases: dict[str, _StageStat] = {}
        #: kernel-launch timings keyed by coalesced width (frames/launch)
        self.launches: dict[int, _StageStat] = {}

    @contextmanager
    def phase(self, name: str):
        """Time one phase occurrence (context manager)."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.account(name, perf_counter() - t0)

    def account(self, name: str, seconds: float) -> None:
        """Add one timed occurrence of a phase."""
        stat = self.phases.get(name)
        if stat is None:
            stat = self.phases[name] = _StageStat()
        stat.add(seconds)

    def record_launch(self, width: int, seconds: float) -> None:
        """Add one kernel-launch timing under its coalesced width."""
        stat = self.launches.get(width)
        if stat is None:
            stat = self.launches[width] = _StageStat()
        stat.add(seconds)

    def clear(self) -> None:
        self.phases.clear()
        self.launches.clear()

    def snapshot(self) -> dict:
        """Plain-dict copy: per-phase and per-width count/total/mean/min/max.

        Wall-clock data — keep it out of deterministic comparisons.
        """
        return {
            "phases": {
                name: self.phases[name].snapshot() for name in sorted(self.phases)
            },
            "launches": {
                width: self.launches[width].snapshot()
                for width in sorted(self.launches)
            },
        }

    def register_metrics(self, registry, *, prefix: str = "serving_profile_") -> None:
        """Expose phase/launch totals as live callback counters.

        Registers the phases and widths seen *so far* (idempotent —
        re-call after a run, or whenever new phases may have appeared, to
        pick up the rest).
        """
        for name in self.phases:
            labels = {"phase": name}
            registry.counter(
                prefix + "seconds_total", labels,
                fn=lambda n=name: self.phases[n].total,
            )
            registry.counter(
                prefix + "calls_total", labels,
                fn=lambda n=name: self.phases[n].count,
            )
        for width in self.launches:
            labels = {"width": str(width)}
            registry.counter(
                prefix + "launch_seconds_total", labels,
                fn=lambda w=width: self.launches[w].total,
            )
            registry.counter(
                prefix + "launches_total", labels,
                fn=lambda w=width: self.launches[w].count,
            )

    def __repr__(self) -> str:  # pragma: no cover
        return f"RoundProfiler(phases={sorted(self.phases)})"
