"""A unified metrics registry: named, labelled counters/gauges/histograms.

The serving stack's telemetry lives as plain attributes on
``EngineStats``/``SessionStats``/``RetrainWorker`` — ideal for tests, opaque
to a monitoring system.  :class:`MetricsRegistry` puts one interface in
front of all of it:

* **counters** — monotone totals (frames served, retrains started);
* **gauges** — point-in-time values (queue depth, live weight, σ²);
* **histograms** — :class:`~repro.serving.telemetry.LatencyHistogram`
  distributions (queue wait, service time), exported in Prometheus's
  cumulative-bucket form.

Instruments are keyed by ``(name, labels)`` — asking again returns the
same instrument, so registration is idempotent — and a name's kind is
fixed at first registration (a ``counter`` cannot later come back as a
``gauge``: one ``# TYPE`` per name, the Prometheus rule).

**Callback instruments.**  Passing ``fn=`` (or ``source=`` for
histograms) registers a *live view* over existing state instead of a new
accumulator — ``EngineStats.register_metrics`` re-registers every existing
field this way without breaking a single ``snapshot()`` consumer, and a
scrape always reads current values.  Re-registering a labelled callback
rebinds it (last writer wins), which is what lets a churned-out session id
be reused by a later arrival without an error.

**Exporters.**  :meth:`MetricsRegistry.to_prometheus` renders the
text-based exposition format; :meth:`MetricsRegistry.to_json` a schema'd
JSON dict.  Both materialize callbacks at call time.

**Sharding.**  :meth:`MetricsRegistry.merge` folds another registry's
*values* into this one — counters add, gauges take the incoming value,
histograms bucket-merge exactly (``LatencyHistogram.merge``) — so N
per-shard registries combine into one fleet view identical to having
recorded everything in one place (the contract a future sharded engine
leans on, tested like the histogram merge suite).
"""

from __future__ import annotations

import re
from typing import Callable

from repro.serving.telemetry import LatencyHistogram

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")


def _label_key(labels: dict | None) -> tuple:
    return tuple(sorted((labels or {}).items()))


def _escape(value) -> str:
    """Prometheus label-value escaping (backslash, quote, newline)."""
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_labels(labels: dict, extra: tuple[str, str] | None = None) -> str:
    items = sorted(labels.items())
    if extra is not None:
        items.append(extra)
    if not items:
        return ""
    return "{" + ",".join(f'{k}="{_escape(v)}"' for k, v in items) + "}"


def _fmt_value(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    v = float(value)
    if v != v:
        return "NaN"
    return repr(v)


class _Instrument:
    """Name + labels shared by every instrument kind."""

    kind = ""
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = dict(labels)

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.name!r}, labels={self.labels})"


class Counter(_Instrument):
    """Monotone total: either a stored accumulator or a live ``fn`` view."""

    kind = "counter"
    __slots__ = ("_fn", "_value")

    def __init__(self, name: str, labels: dict, fn: Callable[[], float] | None = None):
        super().__init__(name, labels)
        self._fn = fn
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if self._fn is not None:
            raise TypeError(
                f"counter {self.name!r} is callback-backed; it reads live state "
                "and cannot be incremented"
            )
        if amount < 0:
            raise ValueError("counters only go up (amount must be >= 0)")
        self._value += amount

    @property
    def value(self):
        return self._fn() if self._fn is not None else self._value


class Gauge(_Instrument):
    """Point-in-time value: either stored via :meth:`set` or a live ``fn``."""

    kind = "gauge"
    __slots__ = ("_fn", "_value")

    def __init__(self, name: str, labels: dict, fn: Callable[[], float] | None = None):
        super().__init__(name, labels)
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise TypeError(
                f"gauge {self.name!r} is callback-backed; it reads live state "
                "and cannot be set"
            )
        self._value = value

    @property
    def value(self):
        return self._fn() if self._fn is not None else self._value


class Histogram(_Instrument):
    """A labelled :class:`LatencyHistogram` — owned, or a live ``source``."""

    kind = "histogram"
    __slots__ = ("_source", "_hist")

    def __init__(
        self,
        name: str,
        labels: dict,
        source: Callable[[], LatencyHistogram] | None = None,
    ):
        super().__init__(name, labels)
        self._source = source
        self._hist = LatencyHistogram() if source is None else None

    def record(self, ticks: int) -> None:
        if self._source is not None:
            raise TypeError(
                f"histogram {self.name!r} is source-backed; it views live state "
                "and cannot record directly"
            )
        self._hist.record(ticks)

    @property
    def hist(self) -> LatencyHistogram:
        return self._source() if self._source is not None else self._hist


class MetricsRegistry:
    """Get-or-create registry of labelled instruments with exporters.

    ``counter(name, labels)`` / ``gauge(...)`` / ``histogram(...)`` return
    the instrument for that exact ``(name, labels)`` pair, creating it on
    first use.  Passing ``fn=``/``source=`` registers (or rebinds — last
    writer wins) a live callback view instead of an accumulator.
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple, _Instrument] = {}
        self._kinds: dict[str, str] = {}

    # -- registration --------------------------------------------------------
    def _get(self, cls, name: str, labels: dict | None, callback):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        labels = dict(labels or {})
        for k in labels:
            if not _LABEL_RE.match(k):
                raise ValueError(f"invalid label name {k!r} on metric {name!r}")
        kind = self._kinds.get(name)
        if kind is not None and kind != cls.kind:
            raise ValueError(
                f"metric {name!r} is already registered as a {kind}, "
                f"not a {cls.kind}"
            )
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is not None:
            if callback is not None:
                # rebind the live view: a re-registered session id (churn
                # then reuse) must point at the *new* object's state
                if cls is Histogram:
                    inst._source = callback
                    inst._hist = None
                else:
                    inst._fn = callback
            return inst
        inst = cls(name, labels, callback)
        self._instruments[key] = inst
        self._kinds[name] = cls.kind
        return inst

    def counter(
        self, name: str, labels: dict | None = None, *, fn: Callable | None = None
    ) -> Counter:
        """Get or create the counter for ``(name, labels)``."""
        return self._get(Counter, name, labels, fn)

    def gauge(
        self, name: str, labels: dict | None = None, *, fn: Callable | None = None
    ) -> Gauge:
        """Get or create the gauge for ``(name, labels)``."""
        return self._get(Gauge, name, labels, fn)

    def histogram(
        self, name: str, labels: dict | None = None, *, source: Callable | None = None
    ) -> Histogram:
        """Get or create the histogram for ``(name, labels)``."""
        return self._get(Histogram, name, labels, source)

    def collect(self) -> list[_Instrument]:
        """Every instrument, sorted by ``(name, labels)`` — export order."""
        return [
            self._instruments[k]
            for k in sorted(self._instruments, key=lambda k: (k[0], k[1]))
        ]

    def __len__(self) -> int:
        return len(self._instruments)

    # -- exporters -----------------------------------------------------------
    def to_prometheus(self) -> str:
        """The Prometheus text exposition format (one ``# TYPE`` per name).

        Histograms render in the standard cumulative form:
        ``<name>_bucket{le="..."}`` per power-of-two upper bound plus
        ``le="+Inf"``, then ``<name>_sum`` and ``<name>_count``.
        """
        lines: list[str] = []
        last_name = None
        for inst in self.collect():
            if inst.name != last_name:
                lines.append(f"# TYPE {inst.name} {inst.kind}")
                last_name = inst.name
            if inst.kind == "histogram":
                snap = inst.hist.snapshot()
                cum = 0
                for ub in sorted(snap["buckets"]):
                    cum += snap["buckets"][ub]
                    lines.append(
                        f"{inst.name}_bucket"
                        f"{_fmt_labels(inst.labels, ('le', str(ub)))} {cum}"
                    )
                lines.append(
                    f"{inst.name}_bucket"
                    f"{_fmt_labels(inst.labels, ('le', '+Inf'))} {snap['count']}"
                )
                lines.append(
                    f"{inst.name}_sum{_fmt_labels(inst.labels)} {snap['total']}"
                )
                lines.append(
                    f"{inst.name}_count{_fmt_labels(inst.labels)} {snap['count']}"
                )
            else:
                lines.append(
                    f"{inst.name}{_fmt_labels(inst.labels)} {_fmt_value(inst.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> dict:
        """Schema'd JSON dict of every instrument's current value.

        Histogram bucket keys are stringified so a ``json.dumps`` →
        ``json.loads`` round trip reproduces the dict exactly.
        """
        metrics = []
        for inst in self.collect():
            entry: dict = {
                "name": inst.name,
                "kind": inst.kind,
                "labels": dict(inst.labels),
            }
            if inst.kind == "histogram":
                snap = inst.hist.snapshot()
                snap["buckets"] = {str(k): v for k, v in snap["buckets"].items()}
                entry.update(snap)
            else:
                entry["value"] = inst.value
            metrics.append(entry)
        return {"schema": 1, "metrics": metrics}

    # -- sharding ------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's current values into this one (in place).

        Counters add, gauges take the incoming value (last writer wins),
        histograms bucket-merge exactly — so merging per-shard registries
        equals having recorded everything in one registry.  The *other*
        registry is read (callbacks materialized), never mutated.  The
        merge targets in ``self`` must be plain accumulators — merging
        onto a callback-backed instrument raises, because a live view has
        no storage to fold into.  Returns ``self`` for chaining.
        """
        for inst in other.collect():
            if inst.kind == "counter":
                self.counter(inst.name, inst.labels).inc(inst.value)
            elif inst.kind == "gauge":
                self.gauge(inst.name, inst.labels).set(inst.value)
            else:
                mine = self.histogram(inst.name, inst.labels)
                if mine._source is not None:
                    raise TypeError(
                        f"histogram {inst.name!r} is source-backed here; "
                        "merge needs an owned accumulator"
                    )
                mine._hist.merge(inst.hist)
        return self
