"""The multi-session streaming demapper runtime.

``ServingEngine`` is the software analogue of the paper's deployed receiver
fabric scaled out to many streams: after (re)training, every session serves
traffic through a cheap centroid demapper, and the runtime's job is to keep
the fused kernels full *and* every session's receiver state tracking its
channel.  One serving *round* (:meth:`ServingEngine.step`):

1. install any retrained demappers the background worker has finished
   (atomic per-session swap — no global pause);
2. ask the deficit-round-robin scheduler (:mod:`repro.serving.scheduler`)
   for this round's per-session frame quotas (QoS weights: heavy sessions
   may take several frames per round from deep queues);
3. serve the quotas in *waves* — each wave pulls at most one frame per
   session and coalesces across sessions into micro-batches
   (:mod:`repro.serving.batching`): sessions sharing a centroid set/frame
   length ride one ``maxlog_llrs_multi`` launch with a per-session σ²
   vector;
4. per frame: threshold the LLRs, measure pilot/payload BER
   (:func:`repro.link.frames.frame_bers`), fold the pilots' noise estimate
   into the session's σ² (:func:`repro.link.estimation.
   estimate_noise_sigma2`, EWMA), feed the session's monitor, and on a
   trigger climb the adaptation ladder: a rigid centroid-tracking update
   first (engine-thread, session stays live), a retrain+re-extract job
   (:mod:`repro.serving.worker`) only when the impairment is non-rigid or
   degradation persists — the retraining session pauses, everyone else
   keeps streaming.

Sessions declaring a :class:`~repro.serving.coding.CodedFrameConfig` add a
decode stage to step 4: the frame's payload LLRs are routed through
deinterleave → soft Viterbi (the ``viterbi_decode`` backend kernel, one
launch per coded group so sessions sharing a code share the trellis
tables) → CRC check.  The verdict feeds a second degradation monitor —
payload integrity can fire the adaptation ladder even when pilots look
clean — and per-session FER / post-FEC BER join the telemetry.  A failed
CRC marks the frame *served-with-decode-failure*: it stays in the served
leg of the conservation ledger, never silently dropped.

Waves are what reconcile multi-frame quotas with per-frame state: a
session's *n*-th frame of a round is always demapped with the σ², centroid
and monitor state left by its frame *n−1*, exactly as if the frames had
been served in separate rounds.  That is why per-session output timelines
are invariant to scheduler weights.

The engine also survives **session churn** under load: sessions may join a
live engine at any time (:meth:`ServingEngine.add_session` — the newcomer
starts from zero scheduler credit) and leave it
(:meth:`ServingEngine.remove_session`) either gracefully — *draining*:
served until its queue empties, accepting no new submissions, never
escalating to retrain — or hard: queued frames dropped, an in-flight
retrain orphaned on the worker.  Churn is fully accounted
(``EngineStats`` join/leave/drain counters and the fleet-size timeline),
and an optional :class:`~repro.serving.weights.WeightController` closes
the loop from per-session queue-wait histograms to the scheduler's live
weights (sessions missing their SLO get boosted, healthy ones decay back
to the configured base).

Determinism contract (pinned by ``tests/serving/``): with a fixed traffic
seed, per-session LLRs, σ² trajectories and the trigger/tier timeline are
identical regardless of micro-batch width, queue depth, retrain worker
count or scheduler weights — batching only shares the kernels' distance
stage (bit-identical rows on the default tier), every per-frame state
update is a pure function of the session's own frame order, and a
retraining session is never served by stale centroids.  Churn extends the
contract: a surviving session's timelines are bit-identical whether or not
unrelated sessions join, drain or are hard-removed around it
(``tests/serving/test_churn.py``).
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from time import perf_counter
from typing import Callable

import numpy as np

from repro.backend import get_backend
from repro.backend.dispatch import batched_maxlog_llrs
from repro.backend.numpy_backend import NumpyBackend
from repro.extraction.monitor import TIER_RETRAIN, TIER_TRACK
from repro.link.estimation import estimate_noise_sigma2_batch
from repro.serving.batching import MicroBatch, coalesce
from repro.serving.coding import coded_layout
from repro.serving.config import EngineConfig
from repro.serving.faults import (
    FailureRecord,
    RetrainHungError,
    RetrainSupervisor,
)
from repro.serving.scheduler import DeficitRoundRobin
from repro.serving.session import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    RETRAINING,
    SERVING,
    DemapperSession,
    ServingFrame,
)
from repro.serving.telemetry import EngineStats, ServedFrame
from repro.serving.weights import WeightController
from repro.serving.worker import RetrainWorker

__all__ = ["ServingEngine"]

#: shared no-op context — the cost of profiling when no profiler is attached
_NULL_CTX = nullcontext()

#: sentinel distinguishing "keyword not passed" from an explicit None —
#: ``backend=None`` etc. are meaningful legacy values
_UNSET = object()


class ServingEngine:
    """Pulls frames from per-session queues and serves them in micro-batches.

    Construct with a single frozen config::

        engine = ServingEngine(config=EngineConfig(max_batch=32))

    The historical keyword form (``ServingEngine(max_batch=32, ...)``)
    still works through a deprecation shim — the keywords are folded into
    an :class:`~repro.serving.config.EngineConfig` with a single
    ``DeprecationWarning`` — but mixing ``config=`` with legacy keywords
    is an error.  The resolved config is kept as ``engine.config``.

    Parameters
    ----------
    config:
        The :class:`~repro.serving.config.EngineConfig` describing every
        construction knob below.
    max_batch:
        Maximum frames coalesced into one kernel launch.
    retrain_workers:
        Thread count of the background retrain worker (``0`` = run retrain
        jobs inline on the engine thread — the determinism reference).
    backend:
        Compute backend instance (default: the process-wide selection).
    scheduler:
        Frame scheduler (default: a fresh :class:`DeficitRoundRobin` with
        quantum 1.0 — one frame per weight-1 session per round).
    weight_controller:
        Optional :class:`~repro.serving.weights.WeightController` closing
        the queue-wait-SLO → scheduler-weight loop (``None`` = static
        weights, the PR-4 behaviour).  Consulted once per round.
    supervisor:
        The :class:`~repro.serving.faults.RetrainSupervisor` deciding a
        failed retrain job's fate: retry with exponential backoff (in
        engine rounds), declare an over-deadline job hung, and after
        ``max_failures`` open the circuit breaker — the session moves to
        DEGRADED, keeps serving on its last-good demapper (the paper's
        hybrid fallback) and stops escalating triggers.  Default: a fresh
        supervisor with stock knobs (3 failures, backoff 1·2^n rounds, no
        hung deadline).
    on_frame:
        Optional per-frame hook ``(session, frame, llrs, report)``; ``llrs``
        is an engine-owned buffer valid only during the call (copy to keep).
    tracer:
        Optional :class:`~repro.serving.observability.Tracer` receiving the
        frame-lifecycle / round-phase / fault event stream on the simulated
        symbol clock.  Strictly observe-only: attaching one changes no
        per-session output bit (the passivity contract pinned by
        ``tests/serving/test_observability.py``).
    profiler:
        Optional :class:`~repro.serving.observability.RoundProfiler`
        accumulating wall-clock per-phase and per-launch-width timings.
        Observe-only like the tracer; with neither attached the hot path
        pays only ``None`` checks.
    """

    def __init__(
        self,
        *,
        config: EngineConfig | None = None,
        max_batch: int = _UNSET,
        retrain_workers: int = _UNSET,
        backend: NumpyBackend | None = _UNSET,
        scheduler: DeficitRoundRobin | None = _UNSET,
        weight_controller: WeightController | None = _UNSET,
        supervisor: RetrainSupervisor | None = _UNSET,
        on_frame: Callable[[DemapperSession, ServingFrame, np.ndarray, ServedFrame], None]
        | None = _UNSET,
        tracer=_UNSET,
        profiler=_UNSET,
    ):
        legacy = {
            name: value
            for name, value in (
                ("max_batch", max_batch),
                ("retrain_workers", retrain_workers),
                ("backend", backend),
                ("scheduler", scheduler),
                ("weight_controller", weight_controller),
                ("supervisor", supervisor),
                ("on_frame", on_frame),
                ("tracer", tracer),
                ("profiler", profiler),
            )
            if value is not _UNSET
        }
        if legacy and config is not None:
            raise TypeError(
                "pass either config=EngineConfig(...) or legacy keywords, "
                f"not both (got config= and {sorted(legacy)})"
            )
        if legacy:
            warnings.warn(
                "ServingEngine(**kwargs) is deprecated; use "
                "ServingEngine(config=EngineConfig(...))",
                DeprecationWarning,
                stacklevel=2,
            )
            config = EngineConfig(**legacy)
        elif config is None:
            config = EngineConfig()
        #: the resolved (frozen) construction config
        self.config = config
        self.max_batch = int(config.max_batch)
        self._backend = config.backend
        self.on_frame = config.on_frame
        self.worker = RetrainWorker(config.retrain_workers)
        self.scheduler = (
            config.scheduler if config.scheduler is not None else DeficitRoundRobin()
        )
        self.weight_controller = config.weight_controller
        self.supervisor = (
            config.supervisor if config.supervisor is not None else RetrainSupervisor()
        )
        self._sessions: dict[str, DemapperSession] = {}
        self.telemetry = EngineStats()
        self.tracer = config.tracer
        self.profiler = config.profiler
        #: the registry handed to :meth:`register_metrics` (None until then);
        #: kept so sessions joining later are registered automatically
        self.registry = None
        #: label set attached to every metric this engine registers (the
        #: fleet sets ``{"shard": i}`` so merged registries stay distinct)
        self._metric_labels: dict[str, str] | None = None

    # -- observability -------------------------------------------------------
    def _phase(self, name: str):
        """Context manager timing one phase (shared no-op when unprofiled)."""
        return _NULL_CTX if self.profiler is None else self.profiler.phase(name)

    def _trace_failure(self, record) -> None:
        """Mirror one :class:`FailureRecord` onto the trace (if tracing)."""
        if self.tracer is not None:
            self.tracer.emit(
                f"fault.{record.kind}",
                ts=self.telemetry.now,
                round=self.telemetry.rounds,
                session_id=record.session_id,
                action=record.action,
                failures=record.failures,
            )

    def register_metrics(self, registry, *, labels: dict[str, str] | None = None):
        """Expose the engine's whole telemetry surface through ``registry``.

        Registers live callback views for the engine counters/histograms,
        the retrain worker's queue gauges, the supervisor's per-state
        session counts, a fleet-size gauge and every current session
        (newcomers via :meth:`add_session` are registered automatically
        once a registry is attached).  ``labels`` (e.g. ``{"shard": "2"}``
        from the fleet front-end) are attached to every instrument so
        per-shard registries merge without collisions.  Returns the
        registry for chaining.
        """
        self.registry = registry
        self._metric_labels = dict(labels) if labels else None
        self.telemetry.register_metrics(registry, labels=self._metric_labels)
        self.worker.register_metrics(registry, labels=self._metric_labels)
        self.supervisor.register_metrics(registry, labels=self._metric_labels)
        registry.gauge(
            "serving_engine_sessions",
            self._metric_labels,
            fn=lambda: len(self._sessions),
        )
        for session in self._sessions.values():
            session.register_metrics(registry, labels=self._metric_labels)
        return registry

    # -- session registry ----------------------------------------------------
    @property
    def backend(self) -> NumpyBackend:
        return self._backend if self._backend is not None else get_backend()

    @property
    def sessions(self) -> tuple[DemapperSession, ...]:
        """Registered sessions in registration order (= serving order)."""
        return tuple(self._sessions.values())

    def add_session(self, session: DemapperSession) -> DemapperSession:
        """Register a session; serving order is registration order.

        Hot-path safe: sessions may join a live engine between (or during
        producer phases of) rounds — the newcomer starts from zero
        scheduler credit and a fresh control-plane state, and existing
        sessions' timelines are untouched (batch composition changes, but
        batched rows are bit-identical to sequential demaps, which is the
        churn-invariance contract pinned by ``tests/serving/test_churn``).
        An id is unique among *live* sessions — a departed session's id may
        be reused by a later arrival.
        """
        if session.session_id in self._sessions:
            raise ValueError(f"duplicate session id {session.session_id!r}")
        if session.draining:
            raise ValueError(
                f"session {session.session_id!r} is draining — it would never "
                "accept traffic; build a fresh session instead"
            )
        self._sessions[session.session_id] = session
        self.telemetry.joins += 1
        self.telemetry.record_fleet_size(len(self._sessions))
        if self.registry is not None:
            session.register_metrics(self.registry, labels=self._metric_labels)
        if self.tracer is not None:
            self.tracer.emit(
                "session.join",
                ts=self.telemetry.now,
                round=self.telemetry.rounds,
                session_id=session.session_id,
                fleet=len(self._sessions),
            )
        return session

    def remove_session(self, session_id: str, *, drain: bool = True) -> int:
        """Deregister a session; returns the number of frames dropped.

        ``drain=True`` (graceful): the session stops accepting submissions
        immediately (``submit`` returns False, counted as a drain refusal)
        but keeps being served — every frame it already accepted will be
        demapped, never dropped — and leaves the engine once its queue is
        empty and no retrain is in flight.  Monitor triggers stop
        escalating to retrain for a draining session.  Idempotent: draining
        an already-draining session is a no-op.  Returns 0.

        ``drain=False`` (hard): the session leaves *now* — queued frames
        are discarded (returned count, also in telemetry), an in-flight
        retrain job is orphaned on the worker (its result discarded, its
        failure swallowed), and the scheduler/controller forget it.  Hard
        removal of a draining session is allowed (a drain that must not
        wait any longer).

        Either way the scheduler's ``forget`` runs exactly once per
        removal, so a departed session leaks no credit.
        """
        session = self.session(session_id)
        if drain:
            if not session.draining:
                session.draining = True
                self.telemetry.drains_started += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "session.drain",
                        ts=self.telemetry.now,
                        round=self.telemetry.rounds,
                        session_id=session_id,
                        pending=session.pending,
                    )
                self._finish_drains()
            return 0
        dropped = session.discard_queue()
        session.draining = True  # late producers see a final refusal, not a queue
        self._remove_now(session, dropped=dropped)
        return dropped

    def _remove_now(self, session: DemapperSession, *, dropped: int = 0) -> None:
        """Registry/scheduler/worker teardown shared by both removal paths."""
        del self._sessions[session.session_id]
        self.scheduler.forget(session.session_id)
        self.supervisor.forget(session.session_id)
        if self.weight_controller is not None:
            self.weight_controller.forget(session.session_id)
        self.telemetry.retrains_orphaned += self.worker.discard(session)
        self.telemetry.frames_dropped += dropped
        self.telemetry.leaves += 1
        self.telemetry.record_fleet_size(len(self._sessions))
        if self.tracer is not None:
            if dropped:
                self.tracer.emit(
                    "frame.dropped",
                    ts=self.telemetry.now,
                    round=self.telemetry.rounds,
                    session_id=session.session_id,
                    count=dropped,
                )
            self.tracer.emit(
                "session.leave",
                ts=self.telemetry.now,
                round=self.telemetry.rounds,
                session_id=session.session_id,
                fleet=len(self._sessions),
            )

    def _finish_drains(self) -> None:
        """Remove every draining session that has nothing left to serve."""
        for session in [s for s in self._sessions.values() if s.draining]:
            if session.pending == 0 and session.state != RETRAINING:
                self._remove_now(session)
                self.telemetry.drains_completed += 1

    # -- live migration ------------------------------------------------------
    def export_session(self, session_id: str):
        """Detach a session for migration; returns ``(session, carried)``.

        The handover sibling of hard removal: the session leaves this
        engine *now*, but nothing is dropped — its queue rides along inside
        the session object, its scheduler credit, supervision state
        (failure count / breaker / backoff, rebased to the destination's
        round clock) and any in-flight or undelivered retrain job outcomes
        are packed into ``carried`` for :meth:`import_session` on the
        destination.  A draining session is refused (``ValueError``): a
        drain is a promise to finish *here*, and migrating it would race
        the drain bookkeeping.
        """
        session = self.session(session_id)
        if session.draining:
            raise ValueError(
                f"session {session_id!r} is draining — finish the drain "
                "instead of migrating it"
            )
        carried = {
            "now": int(self.telemetry.now),
            "credit": self.scheduler.credit(session_id),
            "supervision": self.supervisor.export(
                session_id, now=self.telemetry.rounds
            ),
            "jobs": self.worker.transfer(session),
        }
        del self._sessions[session_id]
        self.scheduler.forget(session_id)
        self.supervisor.forget(session_id)
        if self.weight_controller is not None:
            self.weight_controller.forget(session_id)
        self.telemetry.migrations_out += 1
        self.telemetry.leaves += 1
        self.telemetry.record_fleet_size(len(self._sessions))
        if self.tracer is not None:
            self.tracer.emit(
                "session.migrate-out",
                ts=self.telemetry.now,
                round=self.telemetry.rounds,
                session_id=session_id,
                pending=session.pending,
            )
        return session, carried

    def import_session(self, session: DemapperSession, carried=None) -> DemapperSession:
        """Adopt a session exported from another shard.

        Queued frames travel inside the session (served here in order —
        zero frame loss), scheduler credit is restored, the supervision
        state is adopted onto this engine's round clock, and handed-over
        retrain futures/outcomes are re-homed on this engine's worker so
        an install or failure resolves *here*, never on the source.
        """
        if session.session_id in self._sessions:
            raise ValueError(f"duplicate session id {session.session_id!r}")
        if session.draining:
            raise ValueError(
                f"session {session.session_id!r} is draining — it cannot "
                "be imported"
            )
        self._sessions[session.session_id] = session
        self.telemetry.migrations_in += 1
        self.telemetry.joins += 1
        self.telemetry.record_fleet_size(len(self._sessions))
        if carried:
            if "now" in carried:
                # the shards' symbol clocks are unrelated; shifting each
                # queued frame's enqueue stamp by the clock difference
                # preserves the wait it has already accrued (and keeps
                # queue_wait non-negative when this clock runs behind)
                session.rebase_queue(int(self.telemetry.now) - carried["now"])
            self.scheduler.restore(session.session_id, carried.get("credit", 0.0))
            supervision = carried.get("supervision")
            if supervision is not None:
                self.supervisor.adopt(
                    session.session_id, supervision, now=self.telemetry.rounds
                )
            jobs = carried.get("jobs")
            if jobs:
                self.worker.adopt(session, jobs)
        if self.registry is not None:
            session.register_metrics(self.registry, labels=self._metric_labels)
        if self.tracer is not None:
            self.tracer.emit(
                "session.migrate-in",
                ts=self.telemetry.now,
                round=self.telemetry.rounds,
                session_id=session.session_id,
                pending=session.pending,
            )
        return session

    def session(self, session_id: str) -> DemapperSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown session id {session_id!r}") from None

    def has_session(self, session_id: str) -> bool:
        """True while ``session_id`` is registered (drivers poll this —
        a drained/removed session's id raising from :meth:`session` is the
        wrong failure mode for a producer loop)."""
        return session_id in self._sessions

    def submit(self, session_id: str, frame: ServingFrame) -> bool:
        """Enqueue a frame for a session; False = backpressure (queue full).

        An unregistered ``session_id`` raises :class:`KeyError` naming the
        id at the submission site — not a confusing failure rounds later,
        deep inside a serving batch.
        """
        session = self.session(session_id)
        now = self.telemetry.now
        if self.tracer is None:
            return session.submit(frame, now=now)
        # the refusal reason is derivable from which session counter moved —
        # diffing them keeps submit()'s bool contract and stays fully passive
        stats = session.stats
        before = (
            stats.rejects,
            stats.drain_refusals,
            stats.quarantine_refusals,
            stats.poison_rejected,
        )
        accepted = session.submit(frame, now=now)
        if accepted:
            self.tracer.emit_instant(
                "frame.submit",
                now,
                self.telemetry.rounds,
                session_id,
                frame.seq,
                {"queued": session.pending},
            )
        else:
            after = (
                stats.rejects,
                stats.drain_refusals,
                stats.quarantine_refusals,
                stats.poison_rejected,
            )
            reasons = ("backpressure", "draining", "quarantined", "poison")
            reason = next(
                (r for r, b, a in zip(reasons, before, after) if a > b), "unknown"
            )
            self.tracer.emit(
                "frame.reject",
                ts=now,
                round=self.telemetry.rounds,
                session_id=session_id,
                seq=frame.seq,
                reason=reason,
            )
        return accepted

    # -- serving -------------------------------------------------------------
    def _serve_batch(self, batch: MicroBatch, key: str = "serve") -> None:
        """Demap one micro-batch in a single launch, then account per frame.

        The accounting (hard bits, truth gather, pilot/payload error sums)
        is vectorised over the stacked ``(S, n, k)`` tensor — integer sums
        divided per frame, arithmetically identical to
        :func:`repro.link.frames.frame_bers` on each frame alone — so the
        engine's per-frame Python cost stays flat as frames shrink, which is
        exactly the regime micro-batching exists for.  The demap/accounting
        intermediates are backend workspace scratch, so that path allocates
        nothing per round in steady state; the per-frame control-plane
        updates (σ² EWMA, monitor, ladder) are scalar work, and the batched
        pilot noise estimate — only run when a session has
        ``sigma2_alpha > 0`` — allocates a handful of ``(S, n)`` temporaries
        per launch (measured: the full control plane still clears the
        ≥1.5×-sequential bar in ``bench_micro``).
        """
        be = self.backend
        s_count = batch.occupancy
        n = batch.frames[0].n_symbols
        first = batch.sessions[0].hybrid.constellation
        k = first.bits_per_symbol
        batch_start = self.telemetry.now
        service_time = batch.n_symbols
        if self.profiler is not None:
            t0 = perf_counter()
            llrs3, stacked_rx = batched_maxlog_llrs(
                batch.requests, backend=be, key=key, with_received=True
            )
            dt = perf_counter() - t0
            self.profiler.account("demap-launch", dt)
            self.profiler.record_launch(s_count, dt)
        else:
            llrs3, stacked_rx = batched_maxlog_llrs(
                batch.requests, backend=be, key=key, with_received=True
            )
        tracer = self.tracer
        rnd = self.telemetry.rounds
        if tracer is not None:
            tracer.emit(
                "phase.demap-launch",
                ts=batch_start,
                ph="X",
                dur=service_time,
                round=rnd,
                width=s_count,
                symbols=service_time,
            )
            emit = tracer.emit_instant
            for row, (session, frame) in enumerate(zip(batch.sessions, batch.frames)):
                emit(
                    "frame.batched",
                    batch_start,
                    rnd,
                    session.session_id,
                    frame.seq,
                    {"width": s_count, "row": row},
                )
        t_cp = perf_counter() if self.profiler is not None else 0.0
        # post-demap poison guard: a frame with a non-finite received sample
        # produces non-finite LLRs *in its own row only* (the kernels'
        # distance stage is row-local), so a per-row finite check fences the
        # poisoned frame off without touching its batchmates — the
        # fault-isolation contract.  Rows failing the check are quarantined
        # below: no BER/σ²/monitor update, no on_frame, not counted served.
        fin = be.workspace.scratch(key + "_fin", (s_count, n, k), dtype=np.bool_)
        np.isfinite(llrs3, out=fin)
        row_ok = fin.reshape(s_count, -1).all(axis=1)
        hat = be.workspace.scratch(key + "_hat", (s_count, n, k), dtype=np.bool_)
        np.greater(llrs3, 0.0, out=hat)
        idx = be.workspace.scratch(key + "_idx", (s_count, n), dtype=np.int64)
        pmask = be.workspace.scratch(key + "_pmask", (s_count, n), dtype=np.bool_)
        for row, frame in enumerate(batch.frames):
            np.copyto(idx[row], frame.indices, casting="same_kind")
            np.copyto(pmask[row], frame.pilot_mask, casting="same_kind")
        truth = be.workspace.scratch(key + "_truth", (s_count * n, k), dtype=np.int8)
        np.take(first.bit_matrix, idx.reshape(-1), axis=0, out=truth)
        err = be.workspace.scratch(key + "_err", (s_count, n, k), dtype=np.bool_)
        np.not_equal(hat, truth.reshape(s_count, n, k), out=err)
        err_sym = err.sum(axis=2, dtype=np.int64)          # (S, n) bit errors per symbol
        pilot_syms = pmask.sum(axis=1, dtype=np.int64)     # (S,)
        pilot_errs = np.where(pmask, err_sym, 0).sum(axis=1, dtype=np.int64)
        total_errs = err_sym.sum(axis=1, dtype=np.int64)
        sigma2_est = None
        if any(s.config.sigma2_alpha > 0.0 for s in batch.sessions):
            # batched pilot noise estimation: the reference positions are the
            # group's shared centroid set (row-local reductions — each row's
            # estimate is independent of batch composition)
            ref = be.workspace.scratch(key + "_ref", (s_count, n), dtype=np.complex128)
            np.take(first.points, idx.reshape(-1), out=ref.reshape(-1))
            sigma2_est = estimate_noise_sigma2_batch(ref, stacked_rx, pmask)
        # coded decode stage: group rows by (coded config, payload bit
        # budget) so every group shares one CodedLayout — hence one cached
        # trellis table set and one workspace branch-metric tensor per
        # launch.  Row-pure (each row's decode sees only its own LLRs), so
        # the decoded timeline inherits the batching-invariance contract.
        # Quarantined rows are excluded: non-finite LLRs never reach the ACS.
        decoded: dict[int, tuple[np.ndarray, bool, float]] = {}
        coded_groups: dict[tuple, list[int]] = {}
        for row, session in enumerate(batch.sessions):
            if session.config.coded is not None and row_ok[row]:
                plen = (n - int(pilot_syms[row])) * k
                coded_groups.setdefault((session.config.coded, plen), []).append(row)
        for gi, ((coded_cfg, plen), rows_) in enumerate(coded_groups.items()):
            layout = coded_layout(coded_cfg, plen)
            buf = be.workspace.scratch(
                f"{key}_coded{gi}", (len(rows_), plen), dtype=np.float64
            )
            for i, row in enumerate(rows_):
                # payload LLRs in symbol-major/bit-minor order — exactly the
                # order the load generator mapped the coded bits in
                buf[i] = llrs3[row][~pmask[row]].ravel()
            results = layout.decode_rows(buf, backend=be, key=f"{key}_vit{gi}")
            for i, row in enumerate(rows_):
                decoded[row] = results[i]
        served_frames = s_count
        served_symbols = batch.n_symbols
        for row, (session, frame) in enumerate(zip(batch.sessions, batch.frames)):
            if not row_ok[row]:
                self._quarantine(session, frame)
                served_frames -= 1
                served_symbols -= frame.n_symbols
                continue
            n_pilot = int(pilot_syms[row])
            n_payload = n - n_pilot
            pe, te = int(pilot_errs[row]), int(total_errs[row])
            pilot_ber = pe / (n_pilot * k) if n_pilot else float("nan")
            payload_ber = (te - pe) / (n_payload * k) if n_payload else float("nan")
            crc_ok: bool | None = None
            post_fec_ber = float("nan")
            if row in decoded:
                info_hat, crc_ok, _metric = decoded[row]
                if frame.info_bits is not None:
                    post_fec_ber = int(
                        np.count_nonzero(info_hat != np.asarray(frame.info_bits))
                    ) / info_hat.size
                self.telemetry.frames_decoded += 1
                if not crc_ok:
                    self.telemetry.crc_failures += 1
            fired, tier = self._control_plane(
                session, frame,
                pilot_ber,
                sigma2_est[row] if sigma2_est is not None else None,
                crc_ok=crc_ok,
            )
            session.stats.record_frame(
                frame.seq, n, pilot_ber, fired, tier=tier, sigma2=session.sigma2,
                crc_ok=crc_ok, post_fec_ber=post_fec_ber,
            )
            report = ServedFrame(
                session_id=session.session_id,
                seq=frame.seq,
                pilot_ber=pilot_ber,
                payload_ber=payload_ber,
                fired=fired,
                monitor_level=session.monitor.current_level,
                tier=tier,
                sigma2=session.sigma2,
                queue_wait=batch_start - batch.enqueued_at[row],
                service_time=service_time,
                crc_ok=crc_ok,
                post_fec_ber=post_fec_ber,
            )
            self.telemetry.queue_wait.record(report.queue_wait)
            self.telemetry.service_time.record(service_time)
            session.stats.queue_wait.record(report.queue_wait)
            if tracer is not None:
                if crc_ok is not None:
                    tracer.emit_instant(
                        "frame.decoded",
                        batch_start,
                        rnd,
                        session.session_id,
                        frame.seq,
                        {"crc_ok": crc_ok, "post_fec_ber": post_fec_ber},
                    )
                    if not crc_ok:
                        tracer.emit_instant(
                            "frame.crc_fail",
                            batch_start,
                            rnd,
                            session.session_id,
                            frame.seq,
                            {"post_fec_ber": post_fec_ber},
                        )
                tracer.emit_instant(
                    "frame.served",
                    batch_start,
                    rnd,
                    session.session_id,
                    frame.seq,
                    {
                        "pilot_ber": pilot_ber,
                        "fired": fired,
                        "tier": tier,
                        "sigma2": session.sigma2,
                        "queue_wait": report.queue_wait,
                    },
                )
            if self.on_frame is not None:
                self.on_frame(session, frame, llrs3[row], report)
        if self.profiler is not None:
            self.profiler.account("control-plane", perf_counter() - t_cp)
        if tracer is not None:
            tracer.emit(
                "phase.control-plane",
                ts=batch_start,
                round=rnd,
                frames=s_count,
            )
        # quarantined rows rode the launch (occupancy keys on the true
        # width) but are not credited as served — and the symbol clock only
        # advances for served work, so a fault-free run's clock is
        # untouched by what faults *would* have added
        self.telemetry.record_batch(served_frames, served_symbols, launched=s_count)

    def _control_plane(
        self,
        session: DemapperSession,
        frame: ServingFrame,
        pilot_ber: float,
        sigma2_est: float | None,
        *,
        crc_ok: bool | None = None,
    ) -> tuple[bool, str | None]:
        """Per-frame receiver-state updates: σ² loop, monitor, tier ladder.

        Returns ``(fired, tier)``: whether a trigger fired on this frame —
        the pilot-BER monitor OR (for coded sessions) the CRC-failure
        monitor, a payload-aware trigger that fires even when pilots look
        clean — and the adaptation tier chosen for it (``"track"`` /
        ``"retrain"``, or None when the trigger had no tier to respond
        with).  Runs on the engine thread in the session's own frame order
        — every update is a pure function of the session's traffic, which
        is what the determinism suite pins.
        """
        # 1. in-loop σ²: fold this frame's pilot noise estimate in *before*
        # the monitor response, so an escalation decision (the tracker's
        # rigid-vs-warp residual test) sees the freshest noise floor.  The
        # frame itself was demapped with the pre-update σ² — the estimate
        # can only influence later frames, keeping the LLR timeline causal.
        # (NaN = too few pilots for a gain-fit estimate: skip the update.)
        if (
            sigma2_est is not None
            and session.config.sigma2_alpha > 0.0
            and sigma2_est == sigma2_est
        ):
            session.observe_sigma2(sigma2_est)
        # 2. degradation monitors + tiered response.  Both monitors always
        # observe (their windows/cooldowns must advance frame-by-frame
        # regardless of the other's verdict), then the triggers are OR-ed:
        # a CRC-failure window answers with the same ladder as pilot BER.
        fired = session.monitor.observe(pilot_ber)
        crc_fired = session.observe_crc(crc_ok) if crc_ok is not None else False
        if not fired and not crc_fired:
            monitor = session.monitor
            if (
                session.config.tracking
                and monitor.window_fill >= monitor.window
                and monitor.current_level <= monitor.threshold
            ):
                # a full healthy window: the last track worked — re-arm the
                # ladder so the next degradation gets the cheap tier again
                session.note_healthy_window()
            return False, None
        tier = session.plan_adaptation()
        if tier == TIER_TRACK:
            rigid_ok = session.apply_track(frame)
            self.telemetry.tracks += 1
            if not rigid_ok and session.can_retrain:
                tier = TIER_RETRAIN  # non-rigid warp: escalate immediately
        if tier == TIER_RETRAIN and not self.supervisor.allows(session.session_id):
            # the supervisor owns this session's retrain path right now — a
            # backed-off retry is scheduled, a job is already in flight, or
            # the breaker is open (degraded).  The trigger is recorded but
            # must not jump the queue (nor double-submit).
            tier = None
        if tier == TIER_RETRAIN:
            self._submit_retrain(session)
        return True, tier

    def _submit_retrain(self, session: DemapperSession) -> None:
        """Hand one retrain job to the worker under supervision."""
        with self._phase("retrain-submit"):
            job_rng = session.begin_retrain()
            self.supervisor.on_submitted(session.session_id, self.telemetry.rounds)
            self.telemetry.retrains_completed += self.worker.submit(
                session, session.retrain, job_rng
            )
            self.telemetry.retrains_started += 1
        if self.tracer is not None:
            self.tracer.emit(
                "phase.retrain-submit",
                ts=self.telemetry.now,
                round=self.telemetry.rounds,
                session_id=session.session_id,
            )

    def _quarantine(self, session: DemapperSession, frame: ServingFrame) -> None:
        """Fence off a session whose demap produced non-finite LLRs."""
        now = self.telemetry.now
        lost = session.quarantine(now=now)
        self.telemetry.frames_quarantined += lost
        self.telemetry.sessions_quarantined += 1
        self.telemetry.health_timeline.append((now, session.session_id, QUARANTINED))
        record = FailureRecord(
            round=self.telemetry.rounds,
            session_id=session.session_id,
            kind="poison",
            error=f"non-finite LLRs from frame seq={frame.seq}",
            failures=0,
            action="quarantine",
        )
        self.telemetry.failure_log.append(record)
        if self.tracer is not None:
            self.tracer.emit(
                "frame.quarantined",
                ts=now,
                round=self.telemetry.rounds,
                session_id=session.session_id,
                seq=frame.seq,
                lost=lost,
            )
            self.tracer.emit(
                "session.health",
                ts=now,
                round=self.telemetry.rounds,
                session_id=session.session_id,
                health=QUARANTINED,
            )
        self._trace_failure(record)
        # a pending backoff/retry dies with the quarantine — the supervisor
        # must not re-launch a retrain for a fenced-off session
        self.supervisor.forget(session.session_id)
        # and its scheduler credit is forfeited immediately: a fenced-off
        # session must not sit in the credit table looking like a backlog
        self.scheduler.forget(session.session_id)

    def _absorb_worker_outcomes(self) -> None:
        """Feed resolved job outcomes (installs *and* failures) to the
        supervisor — every failure surfaced, none re-raised."""
        for session, error in self.worker.take_outcomes():
            sid = session.session_id
            if error is None:
                self.supervisor.on_installed(sid)
                if self.tracer is not None:
                    # worker threads never touch the tracer — the install is
                    # traced here, when the engine thread absorbs it
                    self.tracer.emit(
                        "retrain.install",
                        ts=self.telemetry.now,
                        round=self.telemetry.rounds,
                        session_id=sid,
                    )
                continue
            if sid not in self._sessions or self._sessions[sid] is not session:
                # the session left (or its id was reused) between the job's
                # resolution and this round: log the failure, touch nothing
                self.telemetry.retrain_failures += 1
                record = FailureRecord(
                    round=self.telemetry.rounds,
                    session_id=sid,
                    kind="error",
                    error=f"{type(error).__name__}: {error} (session departed)",
                    failures=0,
                    action="retry",
                )
                self.telemetry.failure_log.append(record)
                self._trace_failure(record)
                self.supervisor.forget(sid)
                continue
            self._handle_retrain_failure(session, error)

    def _handle_retrain_failure(
        self, session: DemapperSession, error: BaseException, *, kind: str | None = None
    ) -> None:
        """One failed/hung retrain: record, resume serving, retry or degrade.

        The failure path of the atomic-swap contract: the session returns
        to SERVING on its last-good demapper *immediately* (the paper's
        hybrid fallback — stale centroids beat a paused queue), while the
        supervisor decides whether a backed-off retry is scheduled or the
        circuit breaker opens (health → DEGRADED, triggers suppressed).
        """
        if kind is None:
            kind = "hung" if isinstance(error, RetrainHungError) else "error"
        record = self.supervisor.on_failure(
            session.session_id, self.telemetry.rounds, error, kind=kind
        )
        self.telemetry.retrain_failures += 1
        if kind == "hung":
            self.telemetry.retrains_hung += 1
        self.telemetry.failure_log.append(record)
        self._trace_failure(record)
        session.stats.retrain_failures += 1
        if session.state == RETRAINING:
            session.resume_serving()
        if record.action == "degrade" and session.health == HEALTHY:
            now = self.telemetry.now
            session.set_health(DEGRADED, now=now)
            self.telemetry.sessions_degraded += 1
            self.telemetry.health_timeline.append((now, session.session_id, DEGRADED))
            if self.tracer is not None:
                self.tracer.emit(
                    "session.health",
                    ts=now,
                    round=self.telemetry.rounds,
                    session_id=session.session_id,
                    health=DEGRADED,
                )

    def _expire_hung_jobs(self) -> None:
        """Abandon in-flight jobs older than the supervisor's deadline."""
        for sid in self.supervisor.overdue(self.telemetry.rounds):
            session = self._sessions.get(sid)
            if session is None:  # pragma: no cover — removal forgets first
                self.supervisor.forget(sid)
                continue
            self.worker.abandon(session)
            if self.tracer is not None:
                self.tracer.emit(
                    "retrain.hung",
                    ts=self.telemetry.now,
                    round=self.telemetry.rounds,
                    session_id=sid,
                    deadline_rounds=self.supervisor.deadline_rounds,
                )
            self._handle_retrain_failure(
                session,
                RetrainHungError(
                    f"retrain job for {sid!r} exceeded "
                    f"deadline_rounds={self.supervisor.deadline_rounds}; abandoned"
                ),
                kind="hung",
            )

    def _launch_due_retries(self) -> None:
        """Re-submit retrains whose backoff expired this round."""
        for sid in self.supervisor.due_retries(self.telemetry.rounds):
            session = self._sessions.get(sid)
            if session is None or not session.can_retrain or session.state != SERVING:
                # departed, draining, degraded/quarantined, or externally
                # held out of SERVING: the retry has nothing valid to do
                self.supervisor.forget(sid)
                continue
            self.telemetry.retrains_retried += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "retrain.retry",
                    ts=self.telemetry.now,
                    round=self.telemetry.rounds,
                    session_id=sid,
                )
            self._submit_retrain(session)

    def step(self) -> int:
        """One serving round; returns the number of frames served.

        Swaps land first, so a frame submitted after its session's retrain
        completed is always demapped by the new centroids.  Completed
        drains leave the registry next (an install may have been the last
        thing a draining session waited on).  The scheduler's quotas are
        then served in waves of at most one frame per session; a session
        pausing mid-round (trigger → retrain) simply drops out of later
        waves with its frames still queued.  The round ends by finishing
        any drains the waves emptied and letting the weight controller
        (when installed) steer next round's scheduler weights.

        Supervision slots in between swaps and serving: resolved job
        failures are absorbed (retry scheduled or breaker opened — the
        session resumes on its last-good demapper either way), over-deadline
        jobs are declared hung and abandoned, and due retries are
        re-submitted — inline retries resolve synchronously, so their
        outcome is absorbed again before allocation and a failing-fast
        session still serves its frames this very round.
        """
        tracer = self.tracer
        rnd = self.telemetry.rounds
        if tracer is not None:
            tracer.emit(
                "round.begin", ts=self.telemetry.now, round=rnd,
                sessions=len(self._sessions),
            )
        with self._phase("absorb-outcomes"):
            self.telemetry.retrains_completed += self.worker.poll()
            self._absorb_worker_outcomes()
            self._expire_hung_jobs()
            self._launch_due_retries()
            self._absorb_worker_outcomes()
            self._finish_drains()
        if tracer is not None:
            tracer.emit("phase.absorb-outcomes", ts=self.telemetry.now, round=rnd)
        with self._phase("schedule"):
            quotas = self.scheduler.allocate(self.sessions)
        if tracer is not None:
            tracer.emit(
                "phase.schedule", ts=self.telemetry.now, round=rnd,
                quota=sum(quotas.values()),
            )
        served = 0
        wave = 0
        while True:
            pulls = []
            with self._phase("coalesce"):
                for session in self.sessions:
                    if quotas.get(session.session_id, 0) > 0 and session.ready:
                        frame, tick = session.pop()
                        quotas[session.session_id] -= 1
                        pulls.append((session, frame, tick))
                batches = (
                    coalesce(pulls, max_batch=self.max_batch) if pulls else []
                )
            if not pulls:
                break
            if tracer is not None:
                tracer.emit(
                    "phase.coalesce", ts=self.telemetry.now, round=rnd,
                    wave=wave, pulls=len(pulls), batches=len(batches),
                )
            for i, batch in enumerate(batches):
                # per-(wave, position) scratch keys: rounds with several
                # differently shaped groups must not thrash the shape-keyed
                # workspace, and wave widths differ systematically
                self._serve_batch(batch, key=f"serve#{wave}#{i}")
            served += len(pulls)
            wave += 1
        self._finish_drains()
        with self._phase("control-plane"):
            if self.weight_controller is not None:
                self.weight_controller.on_round(self.sessions, now=self.telemetry.now)
        self.telemetry.rounds += 1
        if tracer is not None:
            tracer.emit(
                "round.end", ts=self.telemetry.now, round=rnd,
                served=served, waves=wave,
            )
        return served

    def _stuck_session_ids(self) -> list[str]:
        """Sessions that still hold work a drain must wait for."""
        return sorted(
            s.session_id
            for s in self.sessions
            if s.pending or s.state == RETRAINING
        )

    def drain(
        self, max_rounds: int | None = None, *, timeout: float | None = None
    ) -> int:
        """Serve until every queue is empty and no retrain is in flight.

        Returns the total frames served.  When nothing is servable but
        retrains are pending, blocks for their swaps instead of spinning.
        A round may serve zero frames while a fractional-weight session
        accrues scheduler credit — that still counts as progress.

        ``max_rounds`` bounds the loop: if the engine has not fully drained
        within that many rounds, a :class:`RuntimeError` naming the stuck
        session ids is raised instead of spinning forever (the guard for a
        session that can never make progress — e.g. one held outside
        SERVING by a caller, or a pathological custom scheduler).  A drain
        that completes in exactly ``max_rounds`` rounds returns normally —
        completion is checked before the guard.  Also removes any
        completed drains before returning, so a drained engine holds no
        departing sessions.

        ``timeout`` (seconds) bounds each blocking wait for in-flight
        retrains — the wall-clock sibling of the round-counting
        ``max_rounds`` guard: a job still unfinished at expiry is abandoned
        on the worker and surfaces as a hung failure on the next round
        (retried or degraded by the supervisor), so a hung retrain can
        slow a drain down but never wedge it.
        """
        if max_rounds is not None and max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        total = 0
        rounds = 0
        while True:
            served = self.step()
            rounds += 1
            total += served
            if not self.worker.pending and not any(s.pending for s in self.sessions):
                self._finish_drains()
                return total
            if max_rounds is not None and rounds >= max_rounds:
                raise RuntimeError(
                    f"drain did not finish within max_rounds={max_rounds}; "
                    f"stuck sessions: {self._stuck_session_ids()}"
                )
            if served:
                continue
            if self.worker.pending:
                self.telemetry.retrains_completed += self.worker.wait_all(timeout)
                continue
            if any(s.ready for s in self.sessions):
                continue  # scheduler credit accruing (weight < 1): not stuck
            # queued frames but no ready session and no in-flight job:
            # only possible for a retrain-less session stuck mid-state —
            # continuing would spin forever, so surface it
            raise RuntimeError(
                "frames pending but no session can make progress; "
                f"stuck sessions: {self._stuck_session_ids()}"
            )

    def close(self, timeout: float | None = None) -> None:
        """Finish in-flight retrains and release the worker pool.

        Swaps that land here are still credited to the telemetry, so a
        final snapshot after ``with engine: ...`` never under-reports
        completed retrains.  With a ``timeout``, jobs unfinished at expiry
        are abandoned (recorded as hung failures in the failure log) and
        the pool is released without waiting on their threads — shutdown
        can never wedge on a hung job.
        """
        try:
            self.telemetry.retrains_completed += self.worker.wait_all(timeout)
            self._absorb_worker_outcomes()
        finally:
            self.worker.close(timeout)

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
