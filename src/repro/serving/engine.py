"""The multi-session streaming demapper runtime.

``ServingEngine`` is the software analogue of the paper's deployed receiver
fabric scaled out to many streams: after (re)training, every session serves
traffic through a cheap centroid demapper, and the runtime's job is to keep
the fused kernels full.  One serving *round* (:meth:`ServingEngine.step`):

1. install any retrained demappers the background worker has finished
   (atomic per-session swap — no global pause);
2. pull the head frame of every ready session from its bounded queue and
   coalesce them into micro-batches (:mod:`repro.serving.batching`):
   sessions sharing a centroid set/frame length ride one
   ``maxlog_llrs_multi`` launch with a per-session σ² vector;
3. per frame: threshold the LLRs, measure pilot/payload BER
   (:func:`repro.link.frames.frame_bers`), feed the session's monitor, and
   on a trigger enqueue a retrain+re-extract job
   (:mod:`repro.serving.worker`) — the session pauses, everyone else keeps
   streaming.

Determinism contract (pinned by ``tests/serving/``): with a fixed traffic
seed, per-session LLRs and the trigger timeline are identical regardless of
micro-batch width, queue depth, or retrain worker count — batching only
shares the kernels' distance stage (bit-identical rows on the default
tier), and a retraining session is never served by stale centroids.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.backend import get_backend
from repro.backend.dispatch import batched_maxlog_llrs
from repro.backend.numpy_backend import NumpyBackend
from repro.serving.batching import MicroBatch, collect_microbatches
from repro.serving.session import DemapperSession, ServingFrame
from repro.serving.telemetry import EngineStats, ServedFrame
from repro.serving.worker import RetrainWorker

__all__ = ["ServingEngine"]


class ServingEngine:
    """Pulls frames from per-session queues and serves them in micro-batches.

    Parameters
    ----------
    max_batch:
        Maximum frames coalesced into one kernel launch.
    retrain_workers:
        Thread count of the background retrain worker (``0`` = run retrain
        jobs inline on the engine thread — the determinism reference).
    backend:
        Compute backend instance (default: the process-wide selection).
    on_frame:
        Optional per-frame hook ``(session, frame, llrs, report)``; ``llrs``
        is an engine-owned buffer valid only during the call (copy to keep).
    """

    def __init__(
        self,
        *,
        max_batch: int = 64,
        retrain_workers: int = 0,
        backend: NumpyBackend | None = None,
        on_frame: Callable[[DemapperSession, ServingFrame, np.ndarray, ServedFrame], None]
        | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = int(max_batch)
        self._backend = backend
        self.on_frame = on_frame
        self.worker = RetrainWorker(retrain_workers)
        self._sessions: dict[str, DemapperSession] = {}
        self.telemetry = EngineStats()

    # -- session registry ----------------------------------------------------
    @property
    def backend(self) -> NumpyBackend:
        return self._backend if self._backend is not None else get_backend()

    @property
    def sessions(self) -> tuple[DemapperSession, ...]:
        """Registered sessions in registration order (= serving order)."""
        return tuple(self._sessions.values())

    def add_session(self, session: DemapperSession) -> DemapperSession:
        """Register a session; serving order is registration order."""
        if session.session_id in self._sessions:
            raise ValueError(f"duplicate session id {session.session_id!r}")
        self._sessions[session.session_id] = session
        return session

    def session(self, session_id: str) -> DemapperSession:
        return self._sessions[session_id]

    def submit(self, session_id: str, frame: ServingFrame) -> bool:
        """Enqueue a frame for a session; False = backpressure (queue full)."""
        return self._sessions[session_id].submit(frame)

    # -- serving -------------------------------------------------------------
    def _serve_batch(self, batch: MicroBatch, key: str = "serve") -> None:
        """Demap one micro-batch in a single launch, then account per frame.

        The accounting (hard bits, truth gather, pilot/payload error sums)
        is vectorised over the stacked ``(S, n, k)`` tensor — integer sums
        divided per frame, arithmetically identical to
        :func:`repro.link.frames.frame_bers` on each frame alone — so the
        engine's per-frame Python cost stays flat as frames shrink, which is
        exactly the regime micro-batching exists for.  All intermediates are
        backend workspace scratch: a steady-state serving loop allocates
        nothing per round.
        """
        be = self.backend
        s_count = batch.occupancy
        n = batch.frames[0].n_symbols
        first = batch.sessions[0].hybrid.constellation
        k = first.bits_per_symbol
        llrs3 = batched_maxlog_llrs(batch.requests, backend=be, key=key)
        hat = be.workspace.scratch(key + "_hat", (s_count, n, k), dtype=np.bool_)
        np.greater(llrs3, 0.0, out=hat)
        idx = be.workspace.scratch(key + "_idx", (s_count, n), dtype=np.int64)
        pmask = be.workspace.scratch(key + "_pmask", (s_count, n), dtype=np.bool_)
        for row, frame in enumerate(batch.frames):
            np.copyto(idx[row], frame.indices, casting="same_kind")
            np.copyto(pmask[row], frame.pilot_mask, casting="same_kind")
        truth = be.workspace.scratch(key + "_truth", (s_count * n, k), dtype=np.int8)
        np.take(first.bit_matrix, idx.reshape(-1), axis=0, out=truth)
        err = be.workspace.scratch(key + "_err", (s_count, n, k), dtype=np.bool_)
        np.not_equal(hat, truth.reshape(s_count, n, k), out=err)
        err_sym = err.sum(axis=2, dtype=np.int64)          # (S, n) bit errors per symbol
        pilot_syms = pmask.sum(axis=1, dtype=np.int64)     # (S,)
        pilot_errs = np.where(pmask, err_sym, 0).sum(axis=1, dtype=np.int64)
        total_errs = err_sym.sum(axis=1, dtype=np.int64)
        for row, (session, frame) in enumerate(zip(batch.sessions, batch.frames)):
            n_pilot = int(pilot_syms[row])
            n_payload = n - n_pilot
            pe, te = int(pilot_errs[row]), int(total_errs[row])
            pilot_ber = pe / (n_pilot * k) if n_pilot else float("nan")
            payload_ber = (te - pe) / (n_payload * k) if n_payload else float("nan")
            fired = session.monitor.observe(pilot_ber)
            session.stats.record_frame(frame.seq, n, pilot_ber, fired)
            if fired and session.retrain is not None:
                job_rng = session.begin_retrain()
                self.telemetry.retrains_completed += self.worker.submit(
                    session, session.retrain, job_rng
                )
                self.telemetry.retrains_started += 1
            report = ServedFrame(
                session_id=session.session_id,
                seq=frame.seq,
                pilot_ber=pilot_ber,
                payload_ber=payload_ber,
                fired=fired,
                monitor_level=session.monitor.current_level,
            )
            if self.on_frame is not None:
                self.on_frame(session, frame, llrs3[row], report)
        self.telemetry.record_batch(batch.occupancy, batch.n_symbols)

    def step(self) -> int:
        """One serving round; returns the number of frames served.

        Swaps land first, so a frame submitted after its session's retrain
        completed is always demapped by the new centroids.
        """
        self.telemetry.retrains_completed += self.worker.poll()
        batches = collect_microbatches(self.sessions, max_batch=self.max_batch)
        for i, batch in enumerate(batches):
            # per-position scratch keys: a round with several differently
            # shaped groups must not thrash the shape-keyed workspace
            self._serve_batch(batch, key=f"serve#{i}")
        self.telemetry.rounds += 1
        return sum(b.occupancy for b in batches)

    def drain(self) -> int:
        """Serve until every queue is empty and no retrain is in flight.

        Returns the total frames served.  When nothing is servable but
        retrains are pending, blocks for their swaps instead of spinning.
        """
        total = 0
        while True:
            served = self.step()
            total += served
            if served:
                continue
            if self.worker.pending:
                self.telemetry.retrains_completed += self.worker.wait_all()
                continue
            if any(s.pending for s in self.sessions):
                # queued frames but no ready session and no in-flight job:
                # only possible for a retrain-less session stuck mid-state —
                # continuing would spin forever, so surface it
                raise RuntimeError("frames pending but no session can make progress")
            return total

    def close(self) -> None:
        """Finish in-flight retrains and release the worker pool.

        Swaps that land here are still credited to the telemetry, so a
        final snapshot after ``with engine: ...`` never under-reports
        completed retrains.
        """
        try:
            self.telemetry.retrains_completed += self.worker.wait_all()
        finally:
            self.worker.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
