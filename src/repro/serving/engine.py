"""The multi-session streaming demapper runtime.

``ServingEngine`` is the software analogue of the paper's deployed receiver
fabric scaled out to many streams: after (re)training, every session serves
traffic through a cheap centroid demapper, and the runtime's job is to keep
the fused kernels full *and* every session's receiver state tracking its
channel.  One serving *round* (:meth:`ServingEngine.step`):

1. install any retrained demappers the background worker has finished
   (atomic per-session swap — no global pause);
2. ask the deficit-round-robin scheduler (:mod:`repro.serving.scheduler`)
   for this round's per-session frame quotas (QoS weights: heavy sessions
   may take several frames per round from deep queues);
3. serve the quotas in *waves* — each wave pulls at most one frame per
   session and coalesces across sessions into micro-batches
   (:mod:`repro.serving.batching`): sessions sharing a centroid set/frame
   length ride one ``maxlog_llrs_multi`` launch with a per-session σ²
   vector;
4. per frame: threshold the LLRs, measure pilot/payload BER
   (:func:`repro.link.frames.frame_bers`), fold the pilots' noise estimate
   into the session's σ² (:func:`repro.link.estimation.
   estimate_noise_sigma2`, EWMA), feed the session's monitor, and on a
   trigger climb the adaptation ladder: a rigid centroid-tracking update
   first (engine-thread, session stays live), a retrain+re-extract job
   (:mod:`repro.serving.worker`) only when the impairment is non-rigid or
   degradation persists — the retraining session pauses, everyone else
   keeps streaming.

Waves are what reconcile multi-frame quotas with per-frame state: a
session's *n*-th frame of a round is always demapped with the σ², centroid
and monitor state left by its frame *n−1*, exactly as if the frames had
been served in separate rounds.  That is why per-session output timelines
are invariant to scheduler weights.

The engine also survives **session churn** under load: sessions may join a
live engine at any time (:meth:`ServingEngine.add_session` — the newcomer
starts from zero scheduler credit) and leave it
(:meth:`ServingEngine.remove_session`) either gracefully — *draining*:
served until its queue empties, accepting no new submissions, never
escalating to retrain — or hard: queued frames dropped, an in-flight
retrain orphaned on the worker.  Churn is fully accounted
(``EngineStats`` join/leave/drain counters and the fleet-size timeline),
and an optional :class:`~repro.serving.weights.WeightController` closes
the loop from per-session queue-wait histograms to the scheduler's live
weights (sessions missing their SLO get boosted, healthy ones decay back
to the configured base).

Determinism contract (pinned by ``tests/serving/``): with a fixed traffic
seed, per-session LLRs, σ² trajectories and the trigger/tier timeline are
identical regardless of micro-batch width, queue depth, retrain worker
count or scheduler weights — batching only shares the kernels' distance
stage (bit-identical rows on the default tier), every per-frame state
update is a pure function of the session's own frame order, and a
retraining session is never served by stale centroids.  Churn extends the
contract: a surviving session's timelines are bit-identical whether or not
unrelated sessions join, drain or are hard-removed around it
(``tests/serving/test_churn.py``).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.backend import get_backend
from repro.backend.dispatch import batched_maxlog_llrs
from repro.backend.numpy_backend import NumpyBackend
from repro.extraction.monitor import TIER_RETRAIN, TIER_TRACK
from repro.link.estimation import estimate_noise_sigma2_batch
from repro.serving.batching import MicroBatch, coalesce
from repro.serving.scheduler import DeficitRoundRobin
from repro.serving.session import RETRAINING, DemapperSession, ServingFrame
from repro.serving.telemetry import EngineStats, ServedFrame
from repro.serving.weights import WeightController
from repro.serving.worker import RetrainWorker

__all__ = ["ServingEngine"]


class ServingEngine:
    """Pulls frames from per-session queues and serves them in micro-batches.

    Parameters
    ----------
    max_batch:
        Maximum frames coalesced into one kernel launch.
    retrain_workers:
        Thread count of the background retrain worker (``0`` = run retrain
        jobs inline on the engine thread — the determinism reference).
    backend:
        Compute backend instance (default: the process-wide selection).
    scheduler:
        Frame scheduler (default: a fresh :class:`DeficitRoundRobin` with
        quantum 1.0 — one frame per weight-1 session per round).
    weight_controller:
        Optional :class:`~repro.serving.weights.WeightController` closing
        the queue-wait-SLO → scheduler-weight loop (``None`` = static
        weights, the PR-4 behaviour).  Consulted once per round.
    on_frame:
        Optional per-frame hook ``(session, frame, llrs, report)``; ``llrs``
        is an engine-owned buffer valid only during the call (copy to keep).
    """

    def __init__(
        self,
        *,
        max_batch: int = 64,
        retrain_workers: int = 0,
        backend: NumpyBackend | None = None,
        scheduler: DeficitRoundRobin | None = None,
        weight_controller: WeightController | None = None,
        on_frame: Callable[[DemapperSession, ServingFrame, np.ndarray, ServedFrame], None]
        | None = None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.max_batch = int(max_batch)
        self._backend = backend
        self.on_frame = on_frame
        self.worker = RetrainWorker(retrain_workers)
        self.scheduler = scheduler if scheduler is not None else DeficitRoundRobin()
        self.weight_controller = weight_controller
        self._sessions: dict[str, DemapperSession] = {}
        self.telemetry = EngineStats()

    # -- session registry ----------------------------------------------------
    @property
    def backend(self) -> NumpyBackend:
        return self._backend if self._backend is not None else get_backend()

    @property
    def sessions(self) -> tuple[DemapperSession, ...]:
        """Registered sessions in registration order (= serving order)."""
        return tuple(self._sessions.values())

    def add_session(self, session: DemapperSession) -> DemapperSession:
        """Register a session; serving order is registration order.

        Hot-path safe: sessions may join a live engine between (or during
        producer phases of) rounds — the newcomer starts from zero
        scheduler credit and a fresh control-plane state, and existing
        sessions' timelines are untouched (batch composition changes, but
        batched rows are bit-identical to sequential demaps, which is the
        churn-invariance contract pinned by ``tests/serving/test_churn``).
        An id is unique among *live* sessions — a departed session's id may
        be reused by a later arrival.
        """
        if session.session_id in self._sessions:
            raise ValueError(f"duplicate session id {session.session_id!r}")
        if session.draining:
            raise ValueError(
                f"session {session.session_id!r} is draining — it would never "
                "accept traffic; build a fresh session instead"
            )
        self._sessions[session.session_id] = session
        self.telemetry.joins += 1
        self.telemetry.record_fleet_size(len(self._sessions))
        return session

    def remove_session(self, session_id: str, *, drain: bool = True) -> int:
        """Deregister a session; returns the number of frames dropped.

        ``drain=True`` (graceful): the session stops accepting submissions
        immediately (``submit`` returns False, counted as a drain refusal)
        but keeps being served — every frame it already accepted will be
        demapped, never dropped — and leaves the engine once its queue is
        empty and no retrain is in flight.  Monitor triggers stop
        escalating to retrain for a draining session.  Idempotent: draining
        an already-draining session is a no-op.  Returns 0.

        ``drain=False`` (hard): the session leaves *now* — queued frames
        are discarded (returned count, also in telemetry), an in-flight
        retrain job is orphaned on the worker (its result discarded, its
        failure swallowed), and the scheduler/controller forget it.  Hard
        removal of a draining session is allowed (a drain that must not
        wait any longer).

        Either way the scheduler's ``forget`` runs exactly once per
        removal, so a departed session leaks no credit.
        """
        session = self.session(session_id)
        if drain:
            if not session.draining:
                session.draining = True
                self.telemetry.drains_started += 1
                self._finish_drains()
            return 0
        dropped = session.discard_queue()
        session.draining = True  # late producers see a final refusal, not a queue
        self._remove_now(session, dropped=dropped)
        return dropped

    def _remove_now(self, session: DemapperSession, *, dropped: int = 0) -> None:
        """Registry/scheduler/worker teardown shared by both removal paths."""
        del self._sessions[session.session_id]
        self.scheduler.forget(session.session_id)
        if self.weight_controller is not None:
            self.weight_controller.forget(session.session_id)
        self.telemetry.retrains_orphaned += self.worker.discard(session)
        self.telemetry.frames_dropped += dropped
        self.telemetry.leaves += 1
        self.telemetry.record_fleet_size(len(self._sessions))

    def _finish_drains(self) -> None:
        """Remove every draining session that has nothing left to serve."""
        for session in [s for s in self._sessions.values() if s.draining]:
            if session.pending == 0 and session.state != RETRAINING:
                self._remove_now(session)
                self.telemetry.drains_completed += 1

    def session(self, session_id: str) -> DemapperSession:
        try:
            return self._sessions[session_id]
        except KeyError:
            raise KeyError(f"unknown session id {session_id!r}") from None

    def submit(self, session_id: str, frame: ServingFrame) -> bool:
        """Enqueue a frame for a session; False = backpressure (queue full).

        An unregistered ``session_id`` raises :class:`KeyError` naming the
        id at the submission site — not a confusing failure rounds later,
        deep inside a serving batch.
        """
        return self.session(session_id).submit(frame, now=self.telemetry.now)

    # -- serving -------------------------------------------------------------
    def _serve_batch(self, batch: MicroBatch, key: str = "serve") -> None:
        """Demap one micro-batch in a single launch, then account per frame.

        The accounting (hard bits, truth gather, pilot/payload error sums)
        is vectorised over the stacked ``(S, n, k)`` tensor — integer sums
        divided per frame, arithmetically identical to
        :func:`repro.link.frames.frame_bers` on each frame alone — so the
        engine's per-frame Python cost stays flat as frames shrink, which is
        exactly the regime micro-batching exists for.  The demap/accounting
        intermediates are backend workspace scratch, so that path allocates
        nothing per round in steady state; the per-frame control-plane
        updates (σ² EWMA, monitor, ladder) are scalar work, and the batched
        pilot noise estimate — only run when a session has
        ``sigma2_alpha > 0`` — allocates a handful of ``(S, n)`` temporaries
        per launch (measured: the full control plane still clears the
        ≥1.5×-sequential bar in ``bench_micro``).
        """
        be = self.backend
        s_count = batch.occupancy
        n = batch.frames[0].n_symbols
        first = batch.sessions[0].hybrid.constellation
        k = first.bits_per_symbol
        batch_start = self.telemetry.now
        service_time = batch.n_symbols
        llrs3, stacked_rx = batched_maxlog_llrs(
            batch.requests, backend=be, key=key, with_received=True
        )
        hat = be.workspace.scratch(key + "_hat", (s_count, n, k), dtype=np.bool_)
        np.greater(llrs3, 0.0, out=hat)
        idx = be.workspace.scratch(key + "_idx", (s_count, n), dtype=np.int64)
        pmask = be.workspace.scratch(key + "_pmask", (s_count, n), dtype=np.bool_)
        for row, frame in enumerate(batch.frames):
            np.copyto(idx[row], frame.indices, casting="same_kind")
            np.copyto(pmask[row], frame.pilot_mask, casting="same_kind")
        truth = be.workspace.scratch(key + "_truth", (s_count * n, k), dtype=np.int8)
        np.take(first.bit_matrix, idx.reshape(-1), axis=0, out=truth)
        err = be.workspace.scratch(key + "_err", (s_count, n, k), dtype=np.bool_)
        np.not_equal(hat, truth.reshape(s_count, n, k), out=err)
        err_sym = err.sum(axis=2, dtype=np.int64)          # (S, n) bit errors per symbol
        pilot_syms = pmask.sum(axis=1, dtype=np.int64)     # (S,)
        pilot_errs = np.where(pmask, err_sym, 0).sum(axis=1, dtype=np.int64)
        total_errs = err_sym.sum(axis=1, dtype=np.int64)
        sigma2_est = None
        if any(s.config.sigma2_alpha > 0.0 for s in batch.sessions):
            # batched pilot noise estimation: the reference positions are the
            # group's shared centroid set (row-local reductions — each row's
            # estimate is independent of batch composition)
            ref = be.workspace.scratch(key + "_ref", (s_count, n), dtype=np.complex128)
            np.take(first.points, idx.reshape(-1), out=ref.reshape(-1))
            sigma2_est = estimate_noise_sigma2_batch(ref, stacked_rx, pmask)
        for row, (session, frame) in enumerate(zip(batch.sessions, batch.frames)):
            n_pilot = int(pilot_syms[row])
            n_payload = n - n_pilot
            pe, te = int(pilot_errs[row]), int(total_errs[row])
            pilot_ber = pe / (n_pilot * k) if n_pilot else float("nan")
            payload_ber = (te - pe) / (n_payload * k) if n_payload else float("nan")
            fired, tier = self._control_plane(
                session, frame,
                pilot_ber,
                sigma2_est[row] if sigma2_est is not None else None,
            )
            session.stats.record_frame(
                frame.seq, n, pilot_ber, fired, tier=tier, sigma2=session.sigma2
            )
            report = ServedFrame(
                session_id=session.session_id,
                seq=frame.seq,
                pilot_ber=pilot_ber,
                payload_ber=payload_ber,
                fired=fired,
                monitor_level=session.monitor.current_level,
                tier=tier,
                sigma2=session.sigma2,
                queue_wait=batch_start - batch.enqueued_at[row],
                service_time=service_time,
            )
            self.telemetry.queue_wait.record(report.queue_wait)
            self.telemetry.service_time.record(service_time)
            session.stats.queue_wait.record(report.queue_wait)
            if self.on_frame is not None:
                self.on_frame(session, frame, llrs3[row], report)
        self.telemetry.record_batch(batch.occupancy, batch.n_symbols)

    def _control_plane(
        self,
        session: DemapperSession,
        frame: ServingFrame,
        pilot_ber: float,
        sigma2_est: float | None,
    ) -> tuple[bool, str | None]:
        """Per-frame receiver-state updates: σ² loop, monitor, tier ladder.

        Returns ``(fired, tier)``: whether the monitor fired on this frame,
        and the adaptation tier chosen for the trigger (``"track"`` /
        ``"retrain"``, or None when the trigger had no tier to respond
        with).  Runs on the engine thread in the session's own frame order
        — every update is a pure function of the session's traffic, which
        is what the determinism suite pins.
        """
        # 1. in-loop σ²: fold this frame's pilot noise estimate in *before*
        # the monitor response, so an escalation decision (the tracker's
        # rigid-vs-warp residual test) sees the freshest noise floor.  The
        # frame itself was demapped with the pre-update σ² — the estimate
        # can only influence later frames, keeping the LLR timeline causal.
        # (NaN = too few pilots for a gain-fit estimate: skip the update.)
        if (
            sigma2_est is not None
            and session.config.sigma2_alpha > 0.0
            and sigma2_est == sigma2_est
        ):
            session.observe_sigma2(sigma2_est)
        # 2. degradation monitor + tiered response
        fired = session.monitor.observe(pilot_ber)
        if not fired:
            monitor = session.monitor
            if (
                session.config.tracking
                and monitor.window_fill >= monitor.window
                and monitor.current_level <= monitor.threshold
            ):
                # a full healthy window: the last track worked — re-arm the
                # ladder so the next degradation gets the cheap tier again
                session.note_healthy_window()
            return False, None
        tier = session.plan_adaptation()
        if tier == TIER_TRACK:
            rigid_ok = session.apply_track(frame)
            self.telemetry.tracks += 1
            if not rigid_ok and session.can_retrain:
                tier = TIER_RETRAIN  # non-rigid warp: escalate immediately
        if tier == TIER_RETRAIN:
            job_rng = session.begin_retrain()
            self.telemetry.retrains_completed += self.worker.submit(
                session, session.retrain, job_rng
            )
            self.telemetry.retrains_started += 1
        return True, tier

    def step(self) -> int:
        """One serving round; returns the number of frames served.

        Swaps land first, so a frame submitted after its session's retrain
        completed is always demapped by the new centroids.  Completed
        drains leave the registry next (an install may have been the last
        thing a draining session waited on).  The scheduler's quotas are
        then served in waves of at most one frame per session; a session
        pausing mid-round (trigger → retrain) simply drops out of later
        waves with its frames still queued.  The round ends by finishing
        any drains the waves emptied and letting the weight controller
        (when installed) steer next round's scheduler weights.
        """
        self.telemetry.retrains_completed += self.worker.poll()
        self._finish_drains()
        quotas = self.scheduler.allocate(self.sessions)
        served = 0
        wave = 0
        while True:
            pulls = []
            for session in self.sessions:
                if quotas.get(session.session_id, 0) > 0 and session.ready:
                    frame, tick = session.pop()
                    quotas[session.session_id] -= 1
                    pulls.append((session, frame, tick))
            if not pulls:
                break
            for i, batch in enumerate(coalesce(pulls, max_batch=self.max_batch)):
                # per-(wave, position) scratch keys: rounds with several
                # differently shaped groups must not thrash the shape-keyed
                # workspace, and wave widths differ systematically
                self._serve_batch(batch, key=f"serve#{wave}#{i}")
            served += len(pulls)
            wave += 1
        self._finish_drains()
        if self.weight_controller is not None:
            self.weight_controller.on_round(self.sessions, now=self.telemetry.now)
        self.telemetry.rounds += 1
        return served

    def _stuck_session_ids(self) -> list[str]:
        """Sessions that still hold work a drain must wait for."""
        return sorted(
            s.session_id
            for s in self.sessions
            if s.pending or s.state == RETRAINING
        )

    def drain(self, max_rounds: int | None = None) -> int:
        """Serve until every queue is empty and no retrain is in flight.

        Returns the total frames served.  When nothing is servable but
        retrains are pending, blocks for their swaps instead of spinning.
        A round may serve zero frames while a fractional-weight session
        accrues scheduler credit — that still counts as progress.

        ``max_rounds`` bounds the loop: if the engine has not fully drained
        within that many rounds, a :class:`RuntimeError` naming the stuck
        session ids is raised instead of spinning forever (the guard for a
        session that can never make progress — e.g. one held outside
        SERVING by a caller, or a pathological custom scheduler).  A drain
        that completes in exactly ``max_rounds`` rounds returns normally —
        completion is checked before the guard.  Also removes any
        completed drains before returning, so a drained engine holds no
        departing sessions.
        """
        if max_rounds is not None and max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        total = 0
        rounds = 0
        while True:
            served = self.step()
            rounds += 1
            total += served
            if not self.worker.pending and not any(s.pending for s in self.sessions):
                self._finish_drains()
                return total
            if max_rounds is not None and rounds >= max_rounds:
                raise RuntimeError(
                    f"drain did not finish within max_rounds={max_rounds}; "
                    f"stuck sessions: {self._stuck_session_ids()}"
                )
            if served:
                continue
            if self.worker.pending:
                self.telemetry.retrains_completed += self.worker.wait_all()
                continue
            if any(s.ready for s in self.sessions):
                continue  # scheduler credit accruing (weight < 1): not stuck
            # queued frames but no ready session and no in-flight job:
            # only possible for a retrain-less session stuck mid-state —
            # continuing would spin forever, so surface it
            raise RuntimeError(
                "frames pending but no session can make progress; "
                f"stuck sessions: {self._stuck_session_ids()}"
            )

    def close(self) -> None:
        """Finish in-flight retrains and release the worker pool.

        Swaps that land here are still credited to the telemetry, so a
        final snapshot after ``with engine: ...`` never under-reports
        completed retrains.
        """
        try:
            self.telemetry.retrains_completed += self.worker.wait_all()
        finally:
            self.worker.close()

    def __enter__(self) -> "ServingEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
