"""Fault tolerance for the serving stack: supervision, quarantine, chaos.

The paper's hybrid demapper exists precisely so the receiver keeps
demapping with conventional/stale centroids while the ANN path adapts
(§II-C); this module makes the serving runtime honor that guarantee under
*failure*.  Three pieces:

**Session health** (:data:`HEALTHY` / :data:`DEGRADED` / :data:`QUARANTINED`,
re-exported from :mod:`repro.serving.session`).  Orthogonal to the
SERVING/RETRAINING state machine: a DEGRADED session keeps serving on its
last-good demapper with retrain triggers suppressed (the hybrid fallback —
stale centroids beat no centroids); a QUARANTINED session produced
non-finite LLRs and is fenced off entirely (no serving, no credit, no new
submissions) until an operator intervenes.

**:class:`RetrainSupervisor`** — the retry/backoff/circuit-breaker policy
the engine consults around every retrain job.  Time is measured in *engine
rounds* (the only clock the deterministic runtime has):

* a failed job is retried after an exponential backoff
  (``backoff_base · backoff_factor^(n-1)`` rounds after the *n*-th failure);
* an in-flight job older than ``deadline_rounds`` is declared hung,
  abandoned on the worker, and counted as a failure;
* after ``max_failures`` consecutive failures the breaker opens: the
  session is moved to DEGRADED and no further retrains are attempted.
  A successful install re-arms the breaker (failure count resets).

**:class:`FaultPlan`** — the seeded chaos-injection harness.  Wraps retrain
policies to inject exceptions and artificial hangs, and corrupts traffic
with poison (non-finite) samples.  Every injection decision is a pure
function of ``(seed, session_id, invocation index)`` — independent of
thread scheduling — so a fault storm is exactly reproducible, which is what
lets the chaos soak assert that *unaffected* sessions' timelines are
bit-identical to a fault-free run.
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import asdict, dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.serving.session import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    ServingFrame,
)

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "RetrainHungError",
    "InjectedRetrainError",
    "FailureRecord",
    "RetrainSupervisor",
    "FaultPlan",
]


class RetrainHungError(RuntimeError):
    """A retrain job exceeded its deadline (or was abandoned at a timeout)."""


class InjectedRetrainError(RuntimeError):
    """A retrain failure injected by a :class:`FaultPlan` (chaos harness)."""


@dataclass(frozen=True)
class FailureRecord:
    """One entry in the engine's failure log.

    ``kind`` is ``"error"`` (the job raised), ``"hung"`` (deadline expired
    or the job was abandoned at a timeout) or ``"poison"`` (a non-finite
    frame tripped the post-demap guard).  ``failures`` is the session's
    consecutive-failure count *including* this one; ``action`` is what the
    supervisor decided: ``"retry"`` (backoff scheduled), ``"degrade"``
    (breaker opened) or ``"quarantine"``.
    """

    round: int
    session_id: str
    kind: str
    error: str
    failures: int
    action: str

    def as_dict(self) -> dict:
        return asdict(self)


# Supervisor per-session states (internal, exposed via ``state()``).
_IDLE = "idle"
_IN_FLIGHT = "in_flight"
_BACKOFF = "backoff"
_OPEN = "open"


@dataclass
class _Supervision:
    """Per-session breaker bookkeeping (supervisor-internal)."""

    state: str = _IDLE
    failures: int = 0          # consecutive failures since the last install
    submitted_at: int = 0      # round of the in-flight job's submission
    retry_at: float = 0.0      # earliest round a backed-off retry may launch


class RetrainSupervisor:
    """Retry / deadline / circuit-breaker policy for retrain jobs.

    Pure state machine over engine rounds — no wall clocks, no randomness —
    so the supervised failure timeline is as deterministic as the traffic.
    The engine drives it::

        on_submitted(sid, now)      job handed to the worker
        on_installed(sid)           swap landed: breaker re-arms
        on_failure(sid, now, err)   job raised / hung: schedule retry
                                    or open the breaker -> FailureRecord
        due_retries(now)            sessions whose backoff has expired
        overdue(now)                in-flight jobs past deadline_rounds
        allows(sid)                 may a *new* trigger start a retrain?

    Parameters
    ----------
    max_failures:
        Consecutive failures after which the breaker opens and the session
        is degraded (must be >= 1).
    backoff_base:
        Backoff after the first failure, in engine rounds.  0 retries on
        the very next round.
    backoff_factor:
        Exponential growth of the backoff per consecutive failure
        (``backoff_base · backoff_factor^(n-1)`` rounds after failure *n*).
    deadline_rounds:
        In-flight job age (rounds since submission) after which the job is
        declared hung.  ``None`` disables hung detection — a job may take
        arbitrarily long, the pre-supervision behaviour.
    """

    def __init__(
        self,
        *,
        max_failures: int = 3,
        backoff_base: int = 1,
        backoff_factor: float = 2.0,
        deadline_rounds: int | None = None,
    ):
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if not backoff_factor >= 1.0:
            raise ValueError("backoff_factor must be >= 1.0")
        if deadline_rounds is not None and deadline_rounds < 1:
            raise ValueError("deadline_rounds must be >= 1 (or None)")
        self.max_failures = int(max_failures)
        self.backoff_base = int(backoff_base)
        self.backoff_factor = float(backoff_factor)
        self.deadline_rounds = None if deadline_rounds is None else int(deadline_rounds)
        self._sessions: dict[str, _Supervision] = {}

    # -- engine hooks --------------------------------------------------------
    def allows(self, session_id: str) -> bool:
        """May a *fresh* monitor trigger start a retrain for this session?

        False while a job is in flight (the session is already retraining),
        while a retry is backed off (the supervisor owns the retrain path —
        a trigger must not jump the backoff queue), and once the breaker is
        open (the session is degraded; triggers are suppressed).
        """
        sup = self._sessions.get(session_id)
        return sup is None or sup.state == _IDLE

    def on_submitted(self, session_id: str, now: int) -> None:
        """A retrain job for this session was handed to the worker."""
        sup = self._sessions.setdefault(session_id, _Supervision())
        sup.state = _IN_FLIGHT
        sup.submitted_at = int(now)

    def on_installed(self, session_id: str) -> None:
        """A retrained demapper landed: the breaker re-arms from zero."""
        sup = self._sessions.get(session_id)
        if sup is not None:
            sup.state = _IDLE
            sup.failures = 0

    def on_failure(
        self, session_id: str, now: int, error: BaseException, *, kind: str = "error"
    ) -> FailureRecord:
        """A job failed (raised or hung); decide retry vs. degrade.

        Returns the :class:`FailureRecord` for the engine's failure log;
        ``record.action`` tells the engine what to do (``"retry"`` —
        nothing, a backed-off retry is scheduled; ``"degrade"`` — move the
        session to DEGRADED).
        """
        sup = self._sessions.setdefault(session_id, _Supervision())
        sup.failures += 1
        if sup.failures >= self.max_failures:
            sup.state = _OPEN
            action = "degrade"
        else:
            sup.state = _BACKOFF
            sup.retry_at = now + self.backoff(sup.failures)
            action = "retry"
        return FailureRecord(
            round=int(now),
            session_id=session_id,
            kind=kind,
            error=f"{type(error).__name__}: {error}",
            failures=sup.failures,
            action=action,
        )

    def backoff(self, n_failures: int) -> float:
        """Backoff in rounds after the ``n_failures``-th consecutive failure."""
        if n_failures < 1:
            raise ValueError("n_failures must be >= 1")
        return self.backoff_base * self.backoff_factor ** (n_failures - 1)

    def due_retries(self, now: int) -> list[str]:
        """Backed-off sessions whose retry may launch at round ``now``.

        Sorted by session id — the engine iterates this directly, so the
        retry launch order must not depend on dict insertion history.
        """
        return sorted(
            sid
            for sid, sup in self._sessions.items()
            if sup.state == _BACKOFF and now >= sup.retry_at
        )

    def overdue(self, now: int) -> list[str]:
        """In-flight jobs older than ``deadline_rounds`` (sorted; [] if off)."""
        if self.deadline_rounds is None:
            return []
        return sorted(
            sid
            for sid, sup in self._sessions.items()
            if sup.state == _IN_FLIGHT and now - sup.submitted_at >= self.deadline_rounds
        )

    def forget(self, session_id: str) -> None:
        """Drop a session's supervision (removal/quarantine hook)."""
        self._sessions.pop(session_id, None)

    # -- migration -----------------------------------------------------------
    def export(self, session_id: str, *, now: int) -> dict | None:
        """Pack a session's supervision for migration (None if untracked).

        Round clocks differ per shard, so the absolute ``submitted_at`` /
        ``retry_at`` rounds are rebased to *relative* ages/delays
        (``job_age`` rounds since submission, ``retry_in`` rounds until the
        retry is due) that :meth:`adopt` re-anchors on the destination's
        clock — the breaker state, failure count, remaining backoff and
        hung-deadline progress all travel intact.
        """
        sup = self._sessions.get(session_id)
        if sup is None:
            return None
        return {
            "state": sup.state,
            "failures": sup.failures,
            "job_age": int(now) - sup.submitted_at,
            "retry_in": sup.retry_at - int(now),
        }

    def adopt(self, session_id: str, exported: dict, *, now: int) -> None:
        """Re-anchor supervision exported from another shard at round ``now``."""
        self._sessions[session_id] = _Supervision(
            state=exported["state"],
            failures=exported["failures"],
            submitted_at=int(now) - exported["job_age"],
            retry_at=int(now) + exported["retry_in"],
        )

    # -- telemetry -----------------------------------------------------------
    def state(self, session_id: str) -> str:
        """Supervision state: ``idle`` / ``in_flight`` / ``backoff`` / ``open``."""
        sup = self._sessions.get(session_id)
        return _IDLE if sup is None else sup.state

    def failures(self, session_id: str) -> int:
        """Consecutive failures since the session's last successful install."""
        sup = self._sessions.get(session_id)
        return 0 if sup is None else sup.failures

    def snapshot(self) -> dict:
        """Plain-dict copy of every supervised session (telemetry/JSON)."""
        return {
            sid: {"state": sup.state, "failures": sup.failures}
            for sid, sup in sorted(self._sessions.items())
        }

    def register_metrics(
        self,
        registry,
        *,
        labels: dict | None = None,
        prefix: str = "serving_supervisor_",
    ) -> None:
        """Expose per-state supervised-session counts as live gauges.

        One ``<prefix>sessions{state=...}`` gauge per supervision state —
        the circuit-breaker population at a glance (``open`` = breakers
        tripped, ``backoff`` = retries scheduled).  Extra ``labels`` (e.g.
        a fleet shard id) are merged into each gauge's label set.
        """
        base = dict(labels or {})
        for st in (_IDLE, _IN_FLIGHT, _BACKOFF, _OPEN):
            registry.gauge(
                prefix + "sessions",
                {**base, "state": st},
                fn=lambda s=st: sum(
                    1 for sup in self._sessions.values() if sup.state == s
                ),
            )


class _FaultyRetrain:
    """A retrain policy wrapped with seeded fault injection (plan-internal)."""

    def __init__(self, plan: "FaultPlan", session_id: str, inner: Callable):
        self._plan = plan
        self.session_id = session_id
        self.inner = inner

    def __call__(self, rng: np.random.Generator):
        plan = self._plan
        k = plan._next_invocation(self.session_id)
        mode = plan._decide_retrain(self.session_id, k)
        if mode == "fail":
            plan._count("fail")
            raise InjectedRetrainError(
                f"injected retrain failure for {self.session_id!r} (invocation {k})"
            )
        if mode == "hang":
            plan._count("hang")
            released = plan._hang(timeout=plan.hang_timeout)
            why = "released" if released else f"timed out after {plan.hang_timeout}s"
            raise RetrainHungError(
                f"injected retrain hang for {self.session_id!r} "
                f"(invocation {k}, {why})"
            )
        return self.inner(rng)


@dataclass
class FaultPlan:
    """Seeded chaos: inject retrain failures, hangs, and poison frames.

    Injection decisions are a pure function of ``(seed, session id,
    invocation/frame index)`` — keyed through ``zlib.crc32`` into a
    dedicated ``np.random.default_rng`` per decision — so the same plan
    replays the same fault storm regardless of thread scheduling, worker
    count, or batch width.  That reproducibility is load-bearing: the chaos
    soak asserts fault-free sessions are bit-identical to a no-fault run,
    which only means something if the faults themselves are pinned.

    ``fail_sessions`` / ``hang_sessions`` unconditionally fail/hang every
    retrain of the named sessions (targeted injection for examples/tests);
    the ``*_rate`` knobs inject probabilistically everywhere else.

    Hangs: with ``blocking_hangs=True`` the job genuinely blocks on an
    event (a stuck thread, the real failure mode — release it with
    :meth:`release_hangs`, or it self-reports as hung after
    ``hang_timeout`` seconds so a test can never wedge); with ``False`` it
    raises :class:`RetrainHungError` immediately (the inline-worker mode,
    where a blocking job would block the engine thread itself).
    """

    seed: int = 0
    fail_rate: float = 0.0
    hang_rate: float = 0.0
    poison_rate: float = 0.0
    fail_sessions: tuple[str, ...] = ()
    hang_sessions: tuple[str, ...] = ()
    poison_sessions: tuple[str, ...] | None = None
    blocking_hangs: bool = True
    hang_timeout: float = 30.0
    injected: dict = field(default_factory=lambda: {"fail": 0, "hang": 0, "poison": 0})

    def __post_init__(self) -> None:
        for name in ("fail_rate", "hang_rate", "poison_rate"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.fail_rate + self.hang_rate > 1.0:
            raise ValueError("fail_rate + hang_rate must be <= 1")
        self.fail_sessions = tuple(self.fail_sessions)
        self.hang_sessions = tuple(self.hang_sessions)
        if self.poison_sessions is not None:
            self.poison_sessions = tuple(self.poison_sessions)
        self._lock = threading.Lock()
        self._invocations: dict[str, int] = {}
        self._hang_events: list[threading.Event] = []

    # -- seeded decisions ----------------------------------------------------
    def _rng(self, session_id: str, stream: str, index: int) -> np.random.Generator:
        return np.random.default_rng(
            [self.seed, zlib.crc32(session_id.encode()), zlib.crc32(stream.encode()), index]
        )

    def _next_invocation(self, session_id: str) -> int:
        with self._lock:
            k = self._invocations.get(session_id, 0)
            self._invocations[session_id] = k + 1
            return k

    def _decide_retrain(self, session_id: str, invocation: int) -> str:
        if session_id in self.fail_sessions:
            return "fail"
        if session_id in self.hang_sessions:
            return "hang"
        if self.fail_rate == 0.0 and self.hang_rate == 0.0:
            return "run"
        u = float(self._rng(session_id, "retrain", invocation).random())
        if u < self.fail_rate:
            return "fail"
        if u < self.fail_rate + self.hang_rate:
            return "hang"
        return "run"

    def _count(self, kind: str) -> None:
        with self._lock:
            self.injected[kind] += 1

    def _hang(self, *, timeout: float) -> bool:
        """Block (or not) one injected hang; True if released by the plan."""
        event = threading.Event()
        with self._lock:
            self._hang_events.append(event)
        if not self.blocking_hangs:
            return False
        return event.wait(timeout)

    # -- harness surface -----------------------------------------------------
    def wrap_retrain(self, session_id: str, policy: Callable | None) -> Callable | None:
        """Wrap one session's retrain policy with seeded injection.

        The wrapper decides fail / hang / run per invocation (in trigger
        order — the only order retrains of one session can run in) and only
        on "run" calls through to the inner policy.  ``None`` stays None
        (no retrain tier to fault).
        """
        if policy is None:
            return None
        return _FaultyRetrain(self, session_id, policy)

    def poisons(self, session_id: str, seq: int) -> bool:
        """Seeded per-frame poison decision (pure, safe to call repeatedly)."""
        if self.poison_rate <= 0.0:
            return False
        if self.poison_sessions is not None and session_id not in self.poison_sessions:
            return False
        return float(self._rng(session_id, "poison", seq).random()) < self.poison_rate

    def corrupt(self, session_id: str, frame: ServingFrame) -> ServingFrame:
        """Return the frame, poisoned iff the seeded decision says so.

        Poisoning replaces one received sample (seeded position) with NaN —
        the minimal corruption that must still fence the whole frame and
        session off from the σ²/BER state.
        """
        if not self.poisons(session_id, frame.seq):
            return frame
        self._count("poison")
        received = np.array(frame.received, copy=True)
        pos = int(self._rng(session_id, "poison-pos", frame.seq).integers(received.size))
        received[pos] = complex(float("nan"), float("nan"))
        return ServingFrame(
            seq=frame.seq,
            indices=frame.indices,
            pilot_mask=frame.pilot_mask,
            received=received,
            info_bits=frame.info_bits,
        )

    def corrupt_traffic(
        self, session_id: str, frames: Iterable[ServingFrame]
    ) -> list[ServingFrame]:
        """Apply :meth:`corrupt` across a session's traffic list."""
        return [self.corrupt(session_id, f) for f in frames]

    def release_hangs(self) -> int:
        """Unblock every injected blocking hang (they raise and finish).

        Call from test teardown so abandoned hang threads die instead of
        keeping the pool (and interpreter exit) waiting; returns the number
        of events released.
        """
        with self._lock:
            events, self._hang_events = self._hang_events, []
        for event in events:
            event.set()
        return len(events)
