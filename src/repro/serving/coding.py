"""Coded frames as a serving workload: FEC layout shared across sessions.

The paper's pipeline is judged on *coded* performance — the demapper's soft
outputs only matter insofar as a downstream decoder can turn them into
error-free payloads.  This module makes that path a first-class serving
concern: a :class:`CodedFrameConfig` on
:class:`~repro.serving.session.SessionConfig` declares that a session's
payload symbols carry an interleaved, CRC-protected convolutional codeword,
and the engine routes every served frame's payload LLRs through
deinterleave → soft Viterbi → CRC check.

Two pieces live here:

``CodedFrameConfig``
    The frozen, hashable *declaration* — generator polynomials, constraint
    length, CRC choice, interleaver seed, and the knobs of the CRC-failure
    degradation monitor that feeds the adaptation ladder.  Hashability is
    load-bearing: the engine groups coalesced frames by their config, and
    :func:`coded_layout` memoises per ``(config, payload bits)`` pair.

``CodedLayout``
    The derived *geometry* — code, CRC, interleaver and bit budget for one
    (config, frame shape) pair — plus the encode/decode transforms.  All
    sessions sharing a config and frame geometry share one layout object,
    which means one cached trellis table set and one interleaver
    permutation for the whole fleet.

Bit budget (``n_payload_bits`` available payload LLRs per frame)::

    n_info  = largest multiple of 8 with
              (n_info + crc.width + K - 1) * n_out <= n_payload_bits
    n_steps = n_info + crc.width + K - 1        # trellis steps incl. tail
    coded_len = n_steps * n_out                 # interleaved coded bits
    pad     = n_payload_bits - coded_len        # known-zero filler bits

The multiple-of-8 constraint comes from :class:`repro.ecc.crc.Crc`
(byte-aligned messages); the pad bits are transmitted as zeros and excluded
from FEC — the decoder simply ignores their LLRs.

Determinism: encode and decode are pure functions of their inputs (the
interleaver permutation is fixed by ``interleaver_seed`` at layout build),
and :meth:`CodedLayout.decode_rows` is row-pure — each frame's decoded bits
are bit-identical to a solo :meth:`CodedLayout.decode` call, which is what
lets the serving determinism contract extend to coded sessions unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.backend.dispatch import grouped_viterbi_decode
from repro.ecc.convolutional import ConvolutionalCode
from repro.ecc.crc import CRC8_CCITT, CRC16_CCITT, Crc
from repro.ecc.interleaver import RandomInterleaver

__all__ = ["CodedFrameConfig", "CodedLayout", "coded_layout"]

#: CRC presets selectable by name on :class:`CodedFrameConfig`.
_CRC_PRESETS: dict[str, Crc] = {"crc8": CRC8_CCITT, "crc16": CRC16_CCITT}


@dataclass(frozen=True)
class CodedFrameConfig:
    """Declares a session's payload as coded traffic.

    Attributes
    ----------
    generators:
        Generator polynomials of the rate-1/n convolutional code
        (default: the classic K=3 octal (7, 5) pair).
    constraint_length:
        Constraint length K of the code; states = ``2^(K-1)``.
    crc:
        Payload integrity check appended before encoding: ``"crc8"``
        (CRC-8 CCITT) or ``"crc16"`` (CRC-16 CCITT, the default).
    interleave:
        Whether coded bits pass through a seeded random interleaver
        before mapping (breaks up burst errors from deep fades).
    interleaver_seed:
        Seed fixing the interleaver permutation — part of the config
        identity, so sender and decoder derive the same permutation.
    crc_fail_threshold / crc_fail_window / crc_fail_cooldown:
        Knobs of the per-session CRC-failure
        :class:`~repro.extraction.monitor.DegradationMonitor`: each
        decoded frame contributes 0.0 (pass) or 1.0 (fail), and a
        windowed failure rate above the threshold fires the adaptation
        ladder exactly like a pilot-BER degradation.
    """

    generators: tuple[int, ...] = (0b111, 0b101)
    constraint_length: int = 3
    crc: str = "crc16"
    interleave: bool = True
    interleaver_seed: int = 0x5EED
    crc_fail_threshold: float = 0.5
    crc_fail_window: int = 4
    crc_fail_cooldown: int = 8

    def __post_init__(self) -> None:
        object.__setattr__(self, "generators", tuple(int(g) for g in self.generators))
        # delegate polynomial/K validation to the code's own constructor
        ConvolutionalCode(self.generators, self.constraint_length)
        if self.crc not in _CRC_PRESETS:
            raise ValueError(
                f"crc must be one of {sorted(_CRC_PRESETS)}, got {self.crc!r}"
            )
        if not 0.0 < self.crc_fail_threshold <= 1.0:
            # the monitor only ever observes 0.0/1.0 verdicts, so a threshold
            # outside (0, 1] could never fire (or would fire on every frame)
            raise ValueError(
                f"crc_fail_threshold must be in (0, 1], got {self.crc_fail_threshold}"
            )
        if self.crc_fail_window < 1:
            raise ValueError(f"crc_fail_window must be >= 1, got {self.crc_fail_window}")
        if self.crc_fail_cooldown < 0:
            raise ValueError(
                f"crc_fail_cooldown must be >= 0, got {self.crc_fail_cooldown}"
            )


class CodedLayout:
    """Concrete encode/decode geometry for one (config, frame shape) pair.

    Built via :func:`coded_layout` (cached) — do not construct directly in
    hot paths.  Exposes the derived bit budget as attributes:

    ``n_info``
        Information bits carried per frame (multiple of 8).
    ``n_steps``
        Trellis steps per block (info + CRC + termination tail).
    ``coded_len``
        Coded (and interleaved) bits mapped onto payload symbols.
    ``pad``
        Known-zero filler bits after the codeword (excluded from FEC).
    """

    def __init__(self, config: CodedFrameConfig, n_payload_bits: int) -> None:
        self.config = config
        self.n_payload_bits = int(n_payload_bits)
        self.code = ConvolutionalCode(config.generators, config.constraint_length)
        self.crc = _CRC_PRESETS[config.crc]
        overhead = self.crc.width + self.code.k - 1
        n_info = ((self.n_payload_bits // self.code.n_out) - overhead) // 8 * 8
        if n_info < 8:
            raise ValueError(
                f"{self.n_payload_bits} payload bits cannot carry a coded frame: "
                f"rate-1/{self.code.n_out} code + {self.crc.width}-bit CRC + "
                f"{self.code.k - 1}-bit tail leave < 8 information bits"
            )
        self.n_info = int(n_info)
        self.n_steps = self.n_info + overhead
        self.coded_len = self.n_steps * self.code.n_out
        self.pad = self.n_payload_bits - self.coded_len
        self.interleaver = (
            RandomInterleaver(self.coded_len, np.random.default_rng(config.interleaver_seed))
            if config.interleave
            else None
        )

    # -- encode ---------------------------------------------------------------
    def encode(self, info: np.ndarray) -> np.ndarray:
        """``(n_info,)`` information bits → ``(n_payload_bits,)`` payload bits.

        Appends the CRC, convolutionally encodes (terminated), interleaves,
        and zero-pads up to the payload bit budget.
        """
        bits = np.asarray(info)
        if bits.shape != (self.n_info,):
            raise ValueError(f"info must have shape ({self.n_info},), got {bits.shape}")
        coded = self.code.encode(self.crc.append(bits))
        if self.interleaver is not None:
            coded = self.interleaver.interleave(coded)
        if self.pad:
            coded = np.concatenate([coded, np.zeros(self.pad, dtype=np.int8)])
        return coded.astype(np.int8, copy=False)

    # -- decode ---------------------------------------------------------------
    def _frame_bits(self, decoded: np.ndarray) -> tuple[np.ndarray, bool]:
        """Split a decoded trellis path into (info bits, CRC verdict)."""
        frame_bits = decoded[: self.n_info + self.crc.width]
        crc_ok = bool(self.crc.check(frame_bits))
        return frame_bits[: self.n_info].copy(), crc_ok

    def decode(self, llrs: np.ndarray, *, backend=None) -> tuple[np.ndarray, bool, float]:
        """``(n_payload_bits,)`` payload LLRs → ``(info, crc_ok, path_metric)``.

        Slices off the pad, deinterleaves, runs the soft Viterbi (through
        ``backend.viterbi_decode`` when a backend is given) and checks the
        CRC.  ``info`` is returned regardless of the verdict — a failed CRC
        marks the frame served-with-decode-failure, never dropped.
        """
        l = np.asarray(llrs, dtype=np.float64).ravel()
        if l.size != self.n_payload_bits:
            raise ValueError(
                f"expected {self.n_payload_bits} payload LLRs, got {l.size}"
            )
        l = l[: self.coded_len]
        if self.interleaver is not None:
            l = self.interleaver.deinterleave(l)
        res = self.code.decode_soft(
            l.reshape(self.n_steps, self.code.n_out), backend=backend
        )
        info, crc_ok = self._frame_bits(res.data)
        return info, crc_ok, res.path_metric

    def decode_rows(
        self, llr_rows: np.ndarray, *, backend=None, key: str = "coded"
    ) -> list[tuple[np.ndarray, bool, float]]:
        """Batched :meth:`decode` over an ``(R, n_payload_bits)`` LLR stack.

        The serving engine's entry point: rows are frames of sessions that
        share this layout, so one launch shares the trellis tables and the
        workspace branch-metric tensor (see
        :func:`repro.backend.dispatch.grouped_viterbi_decode`).  Row-pure:
        each row's ``(info, crc_ok, path_metric)`` is bit-identical to a
        solo :meth:`decode` on that row.
        """
        rows = np.asarray(llr_rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self.n_payload_bits:
            raise ValueError(
                f"llr_rows must be (R, {self.n_payload_bits}), got shape {rows.shape}"
            )
        blocks = rows[:, : self.coded_len]
        if self.interleaver is not None:
            # block-wise permutation: operates on each coded_len row alike
            blocks = self.interleaver.deinterleave(blocks)
        blocks = blocks.reshape(rows.shape[0], self.n_steps, self.code.n_out)
        decoded = grouped_viterbi_decode(self.code, blocks, backend=backend, key=key)
        tail = self.code.k - 1
        results: list[tuple[np.ndarray, bool, float]] = []
        for bits, path_metric in decoded:
            info, crc_ok = self._frame_bits(bits[: self.n_steps - tail])
            results.append((info, crc_ok, float(path_metric)))
        return results


@lru_cache(maxsize=None)
def coded_layout(config: CodedFrameConfig, n_payload_bits: int) -> CodedLayout:
    """Memoised :class:`CodedLayout` factory.

    Keyed on the (hashable) config and the frame's payload bit budget —
    every session, load generator and engine launch sharing that pair gets
    the *same* layout object, hence one trellis table set and one
    interleaver permutation fleet-wide.
    """
    return CodedLayout(config, n_payload_bits)
