"""Background retrain/re-extract worker with atomic demapper swaps.

Paper §II-C: when degradation calls for it, the demapper ANN is retrained
on pilots over the live channel and the centroids re-extracted.  Under the
tiered control plane this is the *last* rung — the engine only enqueues a
job here when the cheap rigid tracking tier was insufficient (non-rigid
warp, or degradation persisting past the ladder's track budget), or
immediately when tracking is disabled.  In a serving runtime that work
must not stall the other sessions, so it runs on a small thread pool; the
triggering session alone pauses (its frames stay queued) until
:meth:`RetrainWorker.poll` installs the finished demapper via
``session.install`` — an atomic swap under the session lock.

**Failure semantics.**  The worker never raises on behalf of a job.  Every
job resolves into an *outcome* — ``(session, None)`` for an install,
``(session, exception)`` for a failure — collected by the caller via
:meth:`take_outcomes`; no outcome is ever dropped, merged or re-raised
(the old contract surfaced only the *first* failure per poll and left the
rest silently paused).  Deciding a failed session's fate — retry, degrade,
resume on its last-good demapper — is the engine supervisor's job
(:mod:`repro.serving.faults`), not the worker's.

**Bounded waits.**  :meth:`wait_all` and :meth:`close` accept a timeout;
jobs unfinished at expiry are *abandoned*: moved off the pending list with
a :class:`~repro.serving.faults.RetrainHungError` outcome, never installed
even if they finish later, and never blocked on again — shutdown cannot
wedge on a hung thread.  (``discard`` — churn's *orphan* path — is
different: an orphan's result is merely unwanted, so ``close`` may still
wait for it; an abandoned job is presumed stuck, so nothing ever waits.)

Determinism: the job's generator is spawned by the *engine thread* at
trigger time (``session.begin_retrain()``), so the retrained demapper is a
pure function of the session seed and the trigger timeline.  Worker threads
only decide *when* the swap lands, and since the session is not served in
between, per-session outputs are identical for every worker count —
``n_workers=0`` (run jobs inline on the engine thread) is the reference.

NumPy releases the GIL inside training's matmuls, so retraining genuinely
overlaps with the engine's demap launches.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from concurrent.futures import wait as _futures_wait
from typing import Callable

import numpy as np

from repro.extraction.hybrid import HybridDemapper
from repro.serving.faults import RetrainHungError
from repro.serving.session import DemapperSession

__all__ = ["RetrainWorker"]


class RetrainWorker:
    """Runs ``session.retrain`` jobs and installs the results.

    Parameters
    ----------
    n_workers:
        ``0`` runs each job synchronously at submission (inline mode — the
        determinism reference and the mode loadgen benchmarks use when
        isolating demap throughput); ``>= 1`` uses a thread pool.
    """

    def __init__(self, n_workers: int = 0):
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.n_workers = int(n_workers)
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=n_workers, thread_name_prefix="repro-retrain")
            if n_workers > 0
            else None
        )
        self._pending: list[tuple[DemapperSession, Future]] = []
        #: jobs whose session was removed mid-flight: the thread keeps
        #: running (we cannot yank it), but the result is discarded instead
        #: of installed, and a failure is swallowed — nobody is serving on
        #: that demapper, so there is no one to surface the error to
        self._orphaned: list[Future] = []
        #: jobs presumed hung (deadline expiry / wait timeout): like
        #: orphans their result is dropped, but *nothing ever blocks on
        #: them* — a stuck thread must not be able to wedge close()
        self._abandoned: list[Future] = []
        #: resolved job outcomes awaiting the engine: ``(session, None)``
        #: per install, ``(session, exc)`` per failure — every failure
        #: surfaced, none re-raised
        self._outcomes: list[tuple[DemapperSession, BaseException | None]] = []
        #: lifetime totals (monotone, unlike the point-in-time ``pending``/
        #: ``orphaned``/``abandoned`` properties) — the worker's own ledger
        #: for a metrics scrape
        self.jobs_submitted = 0
        self.jobs_installed = 0
        self.jobs_failed = 0
        self.jobs_abandoned = 0

    def submit(
        self,
        session: DemapperSession,
        job: Callable[[np.random.Generator], HybridDemapper],
        rng: np.random.Generator,
    ) -> int:
        """Schedule one retrain job; returns how many swaps landed *now*
        (1 for an inline success, where the job runs and installs
        synchronously; an inline *failure* returns 0 and records the
        outcome instead of raising — same contract as the threaded path,
        one poll later).
        """
        self.jobs_submitted += 1
        if self._pool is None:
            try:
                hybrid = job(rng)
            except BaseException as exc:  # noqa: BLE001 — surfaced as outcome
                self.jobs_failed += 1
                self._outcomes.append((session, exc))
                return 0
            session.install(hybrid)
            self.jobs_installed += 1
            self._outcomes.append((session, None))
            return 1
        self._pending.append((session, self._pool.submit(job, rng)))
        return 0

    def discard(self, session: DemapperSession) -> int:
        """Orphan every in-flight job for a removed session; returns count.

        The churn hook: ``remove_session`` must not leave a pending job
        that would later install a demapper into a session the engine no
        longer serves — nor may it block removal on a slow retrain.  The
        job's thread keeps running; its eventual result (or exception) is
        consumed and dropped by :meth:`poll` / :meth:`wait_all`.  Orphaned
        jobs do not count as :attr:`pending` — they can never produce a
        swap, so nothing should wait on them except :meth:`close`.
        """
        keep: list[tuple[DemapperSession, Future]] = []
        orphaned = 0
        for owner, fut in self._pending:
            if owner is session:
                self._orphaned.append(fut)
                orphaned += 1
            else:
                keep.append((owner, fut))
        self._pending = keep
        return orphaned

    def abandon(self, session: DemapperSession) -> int:
        """Abandon every in-flight job for a session presumed hung.

        The supervision hook (deadline expiry): like :meth:`discard` the
        job can never install, but unlike an orphan nothing will ever
        *block* on it — not even :meth:`close` — because a hung thread is
        exactly what a bounded shutdown must survive.  Returns the count
        abandoned; the caller records the hung failure (the worker does
        not synthesize an outcome — the engine already knows why).
        """
        keep: list[tuple[DemapperSession, Future]] = []
        abandoned = 0
        for owner, fut in self._pending:
            if owner is session:
                fut.cancel()  # a queued-not-started job can still be yanked
                self._abandoned.append(fut)
                abandoned += 1
            else:
                keep.append((owner, fut))
        self._pending = keep
        self.jobs_abandoned += abandoned
        return abandoned

    def transfer(self, session: DemapperSession) -> dict:
        """Hand a migrating session's jobs over; returns the carried state.

        The migration sibling of :meth:`discard`: instead of orphaning an
        in-flight job, its future is *moved* to the destination worker
        (:meth:`adopt`) so the retrained demapper still installs — into the
        same session object, now living on another shard — and its outcome
        resolves there, never here.  Undelivered outcomes for the session
        travel too (an inline job may have installed this very round and
        its outcome must reach the *destination* supervisor).  The returned
        dict is opaque to everything but :meth:`adopt`.
        """
        keep: list[tuple[DemapperSession, Future]] = []
        moved: list[Future] = []
        for owner, fut in self._pending:
            if owner is session:
                moved.append(fut)
            else:
                keep.append((owner, fut))
        self._pending = keep
        kept_outcomes: list[tuple[DemapperSession, BaseException | None]] = []
        moved_outcomes: list[BaseException | None] = []
        for owner, exc in self._outcomes:
            if owner is session:
                moved_outcomes.append(exc)
            else:
                kept_outcomes.append((owner, exc))
        self._outcomes = kept_outcomes
        return {"pending": moved, "outcomes": moved_outcomes}

    def adopt(self, session: DemapperSession, carried: dict) -> None:
        """Adopt jobs/outcomes handed over by another worker's ``transfer``.

        Pending futures join this worker's pending list (their threads keep
        running on the source pool — only bookkeeping moves; a future is a
        thread-safe handle) and undelivered outcomes are re-queued so this
        engine's next ``take_outcomes`` delivers them.
        """
        for fut in carried.get("pending", ()):
            self._pending.append((session, fut))
        for exc in carried.get("outcomes", ()):
            self._outcomes.append((session, exc))

    def _reap_orphans(self, *, wait: bool = False) -> None:
        """Drop finished orphaned/abandoned futures (swallowing exceptions).

        ``wait=True`` blocks for *orphans only* — abandoned (hung) jobs are
        reaped opportunistically if done and otherwise left behind.
        """
        still: list[Future] = []
        for fut in self._orphaned:
            if not wait and not fut.done():
                still.append(fut)
                continue
            try:
                fut.result()
            except BaseException:  # noqa: BLE001 — orphan: nobody to tell
                pass
        self._orphaned = still
        still = []
        for fut in self._abandoned:
            if not fut.done():
                still.append(fut)
                continue
            try:
                fut.result()
            except BaseException:  # noqa: BLE001 — abandoned: nobody to tell
                pass
        self._abandoned = still

    def take_outcomes(self) -> list[tuple[DemapperSession, BaseException | None]]:
        """Drain the resolved-outcome list (engine supervision hook).

        Returns every job resolution since the last call, in resolution
        order: ``(session, None)`` for each installed swap, ``(session,
        exception)`` for each failure.  The caller owns the returned list.
        """
        outcomes, self._outcomes = self._outcomes, []
        return outcomes

    def poll(self) -> int:
        """Install every finished job; returns how many swaps landed.

        Called from the engine thread at the top of each serving round.
        Never raises on a job's behalf: every finished job resolves into an
        outcome (install or failure) for :meth:`take_outcomes`, every
        failure is surfaced (not just the first), nothing is installed
        twice, and a failed job's session stays paused only until the
        engine's supervisor decides its fate.
        """
        self._reap_orphans()
        installed = 0
        still_pending = []
        for session, fut in self._pending:
            if not fut.done():
                still_pending.append((session, fut))
                continue
            try:
                hybrid = fut.result()
            except BaseException as exc:  # noqa: BLE001 — surfaced as outcome
                self.jobs_failed += 1
                self._outcomes.append((session, exc))
                continue
            session.install(hybrid)
            installed += 1
            self.jobs_installed += 1
            self._outcomes.append((session, None))
        self._pending = still_pending
        return installed

    def wait_all(self, timeout: float | None = None) -> int:
        """Block until every pending job resolved; returns installs landed.

        Failures become outcomes (never raised).  With a ``timeout`` (in
        seconds, over the whole call): jobs still unfinished at expiry are
        *abandoned* — a :class:`RetrainHungError` outcome is recorded for
        each, they can never install, and nothing ever blocks on them
        again — so a hung job cannot wedge a drain or shutdown.  Orphaned
        (churn-discarded) jobs are awaited too within the same budget.
        """
        installed = 0
        if self._pending:
            if timeout is None:
                _futures_wait([fut for _, fut in self._pending])
            else:
                _futures_wait([fut for _, fut in self._pending], timeout=timeout)
            still_hung: list[tuple[DemapperSession, Future]] = []
            for session, fut in self._pending:
                if not fut.done():
                    still_hung.append((session, fut))
                    continue
                try:
                    hybrid = fut.result()
                except BaseException as exc:  # noqa: BLE001 — surfaced as outcome
                    self.jobs_failed += 1
                    self._outcomes.append((session, exc))
                    continue
                session.install(hybrid)
                installed += 1
                self.jobs_installed += 1
                self._outcomes.append((session, None))
            self._pending = []
            for session, fut in still_hung:
                fut.cancel()
                self._abandoned.append(fut)
                self.jobs_abandoned += 1
                self._outcomes.append(
                    (
                        session,
                        RetrainHungError(
                            f"retrain job for {session.session_id!r} still running "
                            f"after wait_all(timeout={timeout}); abandoned"
                        ),
                    )
                )
        if timeout is None:
            self._reap_orphans(wait=True)
        else:
            # bounded reap: give orphans the same grace, then walk away
            deadline = time.monotonic() + timeout
            while self._orphaned and time.monotonic() < deadline:
                if all(fut.done() for fut in self._orphaned):
                    break
                time.sleep(0.005)
            self._reap_orphans()
        return installed

    @property
    def pending(self) -> int:
        """Installable jobs submitted but not yet resolved (excludes orphans)."""
        return len(self._pending)

    @property
    def orphaned(self) -> int:
        """Discarded in-flight jobs not yet reaped."""
        return len(self._orphaned)

    @property
    def in_flight(self) -> int:
        """Pending jobs actually executing on a thread right now (a subset
        of :attr:`pending` — the rest are queued behind the pool)."""
        return sum(1 for _, fut in self._pending if fut.running())

    @property
    def abandoned(self) -> int:
        """Hung jobs walked away from (never waited on, never installed)."""
        return len(self._abandoned)

    def register_metrics(
        self,
        registry,
        *,
        labels: dict | None = None,
        prefix: str = "serving_retrain_",
    ) -> None:
        """Expose queue depth, in-flight count and job totals as live views.

        Gauges read the point-in-time properties (queue depth rises and
        falls); counters read the monotone ``jobs_*`` ledger.  ``labels``
        (e.g. a fleet shard id) are attached to every instrument.
        """
        labels = dict(labels or {})
        registry.gauge(prefix + "queue_depth", labels, fn=lambda: self.pending)
        registry.gauge(prefix + "in_flight", labels, fn=lambda: self.in_flight)
        registry.gauge(prefix + "orphaned", labels, fn=lambda: self.orphaned)
        registry.gauge(prefix + "abandoned", labels, fn=lambda: self.abandoned)
        registry.counter(prefix + "jobs_submitted", labels, fn=lambda: self.jobs_submitted)
        registry.counter(prefix + "jobs_installed", labels, fn=lambda: self.jobs_installed)
        registry.counter(prefix + "jobs_failed", labels, fn=lambda: self.jobs_failed)
        registry.counter(prefix + "jobs_abandoned", labels, fn=lambda: self.jobs_abandoned)

    def close(self, timeout: float | None = None) -> None:
        """Finish outstanding jobs and shut the pool down.

        With a ``timeout``, hung jobs are abandoned at expiry and the pool
        is shut down without waiting for their threads (``cancel_futures``
        yanks queued-not-started work) — shutdown can never wedge.  Without
        one, pending and orphaned jobs are awaited in full (the legacy
        contract) but already-*abandoned* jobs are still never blocked on.
        """
        try:
            self.wait_all(timeout)
        finally:
            if self._pool is not None:
                lingering = any(not fut.done() for fut in self._abandoned)
                self._pool.shutdown(wait=not lingering, cancel_futures=lingering)

    def __enter__(self) -> "RetrainWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
