"""Background retrain/re-extract worker with atomic demapper swaps.

Paper §II-C: when degradation calls for it, the demapper ANN is retrained
on pilots over the live channel and the centroids re-extracted.  Under the
tiered control plane this is the *last* rung — the engine only enqueues a
job here when the cheap rigid tracking tier was insufficient (non-rigid
warp, or degradation persisting past the ladder's track budget), or
immediately when tracking is disabled.  In a serving runtime that work
must not stall the other sessions, so it runs on a small thread pool; the
triggering session alone pauses (its frames stay queued) until
:meth:`RetrainWorker.poll` installs the finished demapper via
``session.install`` — an atomic swap under the session lock.

Determinism: the job's generator is spawned by the *engine thread* at
trigger time (``session.begin_retrain()``), so the retrained demapper is a
pure function of the session seed and the trigger timeline.  Worker threads
only decide *when* the swap lands, and since the session is not served in
between, per-session outputs are identical for every worker count —
``n_workers=0`` (run jobs inline on the engine thread) is the reference.

NumPy releases the GIL inside training's matmuls, so retraining genuinely
overlaps with the engine's demap launches.
"""

from __future__ import annotations

from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable

import numpy as np

from repro.extraction.hybrid import HybridDemapper
from repro.serving.session import DemapperSession

__all__ = ["RetrainWorker"]


class RetrainWorker:
    """Runs ``session.retrain`` jobs and installs the results.

    Parameters
    ----------
    n_workers:
        ``0`` runs each job synchronously at submission (inline mode — the
        determinism reference and the mode loadgen benchmarks use when
        isolating demap throughput); ``>= 1`` uses a thread pool.
    """

    def __init__(self, n_workers: int = 0):
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.n_workers = int(n_workers)
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=n_workers, thread_name_prefix="repro-retrain")
            if n_workers > 0
            else None
        )
        self._pending: list[tuple[DemapperSession, Future]] = []
        #: jobs whose session was removed mid-flight: the thread keeps
        #: running (we cannot yank it), but the result is discarded instead
        #: of installed, and a failure is swallowed — nobody is serving on
        #: that demapper, so there is no one to surface the error to
        self._orphaned: list[Future] = []

    def submit(
        self,
        session: DemapperSession,
        job: Callable[[np.random.Generator], HybridDemapper],
        rng: np.random.Generator,
    ) -> int:
        """Schedule one retrain job; returns how many swaps landed *now*
        (1 in inline mode, where the job runs and installs synchronously)."""
        if self._pool is None:
            session.install(job(rng))
            return 1
        self._pending.append((session, self._pool.submit(job, rng)))
        return 0

    def discard(self, session: DemapperSession) -> int:
        """Orphan every in-flight job for a removed session; returns count.

        The churn hook: ``remove_session`` must not leave a pending job
        that would later install a demapper into a session the engine no
        longer serves — nor may it block removal on a slow retrain.  The
        job's thread keeps running; its eventual result (or exception) is
        consumed and dropped by :meth:`poll` / :meth:`wait_all`.  Orphaned
        jobs do not count as :attr:`pending` — they can never produce a
        swap, so nothing should wait on them except :meth:`close`.
        """
        keep: list[tuple[DemapperSession, Future]] = []
        orphaned = 0
        for owner, fut in self._pending:
            if owner is session:
                self._orphaned.append(fut)
                orphaned += 1
            else:
                keep.append((owner, fut))
        self._pending = keep
        return orphaned

    def _reap_orphans(self, *, wait: bool = False) -> None:
        """Drop finished orphaned futures (swallowing their exceptions)."""
        still: list[Future] = []
        for fut in self._orphaned:
            if not wait and not fut.done():
                still.append(fut)
                continue
            try:
                fut.result()
            except BaseException:  # noqa: BLE001 — orphan: nobody to tell
                pass
        self._orphaned = still

    def poll(self) -> int:
        """Install every finished job; returns how many swaps landed.

        Called from the engine thread at the top of each serving round.  A
        failed job re-raises here (on the engine thread, with the worker
        traceback chained) rather than silently leaving the session paused —
        but only after the pending list is consistent again: the failed job
        is dropped (its session stays paused), every other finished job is
        installed exactly once, and nothing is ever installed twice.
        """
        self._reap_orphans()
        installed = 0
        still_pending = []
        error: BaseException | None = None
        for session, fut in self._pending:
            if not fut.done():
                still_pending.append((session, fut))
                continue
            try:
                hybrid = fut.result()
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                if error is None:
                    error = exc
                continue
            session.install(hybrid)
            installed += 1
        self._pending = still_pending
        if error is not None:
            raise error
        return installed

    def wait_all(self) -> int:
        """Block until every pending job has finished and been installed.

        Each job is popped before its result is read, so a raising job is
        consumed exactly once (no re-install, no re-raise on a later call).
        Orphaned jobs are awaited too (their results dropped) so callers
        get the quiesced worker they asked for.
        """
        installed = 0
        while self._pending:
            session, fut = self._pending.pop(0)
            session.install(fut.result())
            installed += 1
        self._reap_orphans(wait=True)
        return installed

    @property
    def pending(self) -> int:
        """Installable jobs submitted but not yet installed (excludes orphans)."""
        return len(self._pending)

    @property
    def orphaned(self) -> int:
        """Discarded in-flight jobs not yet reaped."""
        return len(self._orphaned)

    def close(self) -> None:
        """Finish outstanding jobs and shut the pool down.

        The pool is shut down even when an outstanding job raises — no
        thread leak on the error path.
        """
        try:
            self.wait_all()
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)

    def __enter__(self) -> "RetrainWorker":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
