"""Per-session receiver state machines behind the serving engine.

Each live stream ("session") owns exactly what the paper's receiver owns:
a :class:`~repro.extraction.hybrid.HybridDemapper` (the cheap centroid
demapper serving traffic), a
:class:`~repro.extraction.monitor.DegradationMonitor` watching pilot BER,
its frame/pilot geometry, and its own σ² estimate.  The engine pulls frames
from the session's *bounded* queue — a full queue pushes back on the
producer instead of growing without bound — and coalesces frames across
sessions into micro-batches.

The control plane adds three per-session behaviours, all off by default:

* **in-loop σ² tracking** (``sigma2_alpha > 0``): each served frame's
  pilot-residual noise estimate (:func:`repro.link.estimation.
  estimate_noise_sigma2`) is EWMA-folded into the session's σ², so LLR
  scaling follows a drifting SNR without touching the demapper;
* **tiered adaptation** (``tracking=True``): a monitor trigger is first
  answered by the cheap rigid tier (:class:`~repro.extraction.tracking.
  CentroidTracker` — the same update as ``AdaptiveReceiver(tracking=True)``),
  escalating to retrain+re-extract only when the tracker reports a
  non-rigid warp or degradation persists past the
  :class:`~repro.extraction.monitor.AdaptationLadder`'s track budget;
* **QoS weight** (``weight``): the session's share in the engine's
  deficit-round-robin scheduler (:mod:`repro.serving.scheduler`).

State machine::

    SERVING ──monitor fires──▶ RETRAINING ──swap installed──▶ SERVING
       └──────── tracking tier: rigid update, stays SERVING ──────┘

While RETRAINING the session's frames stay queued (they are *not* demapped
by the stale centroids), so every frame after a trigger deterministically
sees the retrained demapper — that is what makes the per-session output
timeline independent of how fast the background worker happens to run.
Other sessions keep being served in the meantime; nothing stalls globally.
A tracking-tier response swaps the rigidly-updated centroids in place on
the engine thread — the session never leaves SERVING and the very next
frame sees the tracked centroids.

**Churn.**  Orthogonal to the serving state, a session can be *draining*
(``ServingEngine.remove_session(sid, drain=True)``): it keeps being served
— every frame already accepted will leave through the demapper, never be
dropped — but :meth:`submit` refuses new traffic (counted in
``stats.drain_refusals``; unlike backpressure rejects, retrying is futile)
and monitor triggers no longer escalate to retraining (a full retrain for
a leaving session is wasted work; the cheap tracking tier still applies).
Once its queue is empty and no retrain is in flight, the engine deletes it
from the registry.  ``remove_session(sid, drain=False)`` is the hard path:
queued frames are discarded (:meth:`discard_queue`) and an in-flight
retrain is orphaned on the worker.

**Adaptive weight.**  ``session.weight`` is the *live* deficit-round-robin
share the scheduler reads; it starts at ``config.weight`` (the static QoS
contract) and is steered at runtime by the engine's
:class:`~repro.serving.weights.WeightController` via :meth:`set_weight`
(changes land in ``stats.weight_timeline``).  Weights change *when* frames
are served, never *what* they contain — per-session output timelines stay
weight-invariant.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.extraction.hybrid import HybridDemapper
from repro.extraction.monitor import (
    TIER_RETRAIN,
    TIER_TRACK,
    AdaptationLadder,
    DegradationMonitor,
    MonitorState,
)
from repro.extraction.tracking import CentroidTracker
from repro.link.frames import FrameConfig
from repro.serving.coding import CodedFrameConfig
from repro.serving.telemetry import SessionStats
from repro.utils.rng import as_generator

__all__ = [
    "SERVING",
    "RETRAINING",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "SessionConfig",
    "ServingFrame",
    "DemapperSession",
]

#: Session states (plain strings — cheap to compare, obvious in telemetry).
SERVING = "serving"
RETRAINING = "retraining"

#: Session *health*, orthogonal to the serving state machine.  HEALTHY is
#: the full control plane; DEGRADED keeps serving on the last-good demapper
#: with retrain triggers suppressed (the circuit breaker opened — the
#: paper's hybrid fallback: stale centroids beat no centroids); QUARANTINED
#: is fenced off entirely (produced non-finite LLRs — no serving, no
#: scheduler credit, no new submissions).
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"

#: Floor for in-loop σ² updates: a zero-noise pilot block must not poison
#: the estimate with an (invalid) non-positive variance.
_SIGMA2_FLOOR = 1e-12


@dataclass(frozen=True)
class SessionConfig:
    """Per-session serving tunables.

    ``queue_depth`` bounds the frame queue (backpressure: ``submit`` returns
    False when full); ``frame`` records the session's pilot/payload geometry
    for producers that build traffic from it.

    Control-plane knobs (all default to the PR-3 behaviour):

    ``weight``
        QoS share in the engine's deficit-round-robin scheduler.  A
        weight-3 session may pull up to 3 frames per round from a deep
        queue; a weight-0.5 session serves every other round.  Floor 0.01
        (one frame per 100 rounds at quantum 1): a backlogged session must
        make progress on a timescale the engine's drain loop can live with.
    ``sigma2_alpha``
        EWMA weight of the in-loop pilot noise estimate
        (``σ² ← (1-α)·σ² + α·σ̂²`` per served frame).  0 disables in-loop
        σ² tracking.
    ``tracking``
        Enable the tiered adaptation ladder: monitor triggers are answered
        with a rigid centroid update first, retraining only on escalation.
    ``track_attempts``
        Consecutive tracking responses allowed before a persisting
        degradation escalates to retrain (see
        :class:`~repro.extraction.monitor.AdaptationLadder`).
    ``track_residual``
        Residual threshold of the rigid fit (forwarded to
        :class:`~repro.extraction.tracking.CentroidTracker`): relative
        excess over the 2σ²N noise floor above which the impairment is
        declared non-rigid and the trigger escalates immediately.
    ``validate_frames``
        Opt-in finite check at :meth:`DemapperSession.submit`: a frame with
        a NaN/Inf received sample is refused at the door (counted in
        ``stats.poison_rejected``) instead of reaching the kernels.  Off by
        default — the check walks every sample, and the post-demap guard
        already quarantines anything that slips through.
    ``coded``
        Declare this session's payload symbols as coded traffic
        (:class:`~repro.serving.coding.CodedFrameConfig`): the engine
        routes each served frame's payload LLRs through deinterleave →
        soft Viterbi → CRC check, CRC failures feed a second degradation
        monitor alongside pilot BER, and per-session FER / post-FEC BER
        join the telemetry.  ``None`` (the default) serves uncoded.
    """

    frame: FrameConfig = FrameConfig()
    queue_depth: int = 8
    weight: float = 1.0
    sigma2_alpha: float = 0.0
    tracking: bool = False
    track_attempts: int = 1
    track_residual: float = 0.35
    validate_frames: bool = False
    coded: CodedFrameConfig | None = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if not (math.isfinite(self.weight) and self.weight >= 0.01):
            raise ValueError("weight must be finite and >= 0.01")
        if not 0.0 <= self.sigma2_alpha <= 1.0:
            raise ValueError("sigma2_alpha must be in [0, 1]")
        if self.track_attempts < 0:
            raise ValueError("track_attempts must be >= 0")
        if self.track_residual <= 0:
            raise ValueError("track_residual must be positive")


@dataclass(frozen=True)
class ServingFrame:
    """One frame of traffic submitted to a session.

    ``indices`` are the transmitted symbol labels (known for pilots by
    design; known for payload only because this is a simulation — the engine
    uses payload truth solely for telemetry, never for demapping).

    ``info_bits`` carries the pre-encoding information bits of a *coded*
    frame (see :class:`~repro.serving.coding.CodedFrameConfig`), again
    simulation truth used only for post-FEC BER telemetry — the decoder
    works from LLRs and checks the CRC, never this field.  ``None`` for
    uncoded traffic.
    """

    seq: int
    indices: np.ndarray     # (n,) int symbol labels
    pilot_mask: np.ndarray  # (n,) bool, True where pilot
    received: np.ndarray    # (n,) complex received samples
    info_bits: np.ndarray | None = None  # coded traffic: transmitted info bits

    def __post_init__(self) -> None:
        n = np.asarray(self.received).size
        if np.asarray(self.indices).shape != (n,) or np.asarray(self.pilot_mask).shape != (n,):
            raise ValueError("indices, pilot_mask and received must be equal-length 1-D")

    @property
    def n_symbols(self) -> int:
        return int(np.asarray(self.received).size)


class DemapperSession:
    """One stream's receiver state: demapper + monitor + queue + σ² estimate.

    Parameters
    ----------
    session_id:
        Unique name within the engine.
    hybrid:
        The session's current centroid demapper.
    monitor:
        Degradation monitor fed with each frame's pilot BER.
    config:
        Queue/frame geometry and control-plane knobs (default
        :class:`SessionConfig`).
    retrain:
        Optional retrain policy ``rng -> HybridDemapper``: invoked on a
        background worker when the monitor fires; the returned demapper is
        atomically swapped in.  ``None`` means triggers are recorded but the
        session keeps serving with its current centroids (the tracking tier,
        if enabled, still applies).
    sigma2:
        The session's own noise-variance estimate (defaults to the hybrid's).
        Kept separate from the demapper so a σ² update never requires a
        swap, and so batched dispatch reads one per-session vector.
    rng:
        Seed/generator for the session's retrain jobs: one child generator is
        spawned per trigger, in trigger order, so the retrain outcome is a
        pure function of the seed and the trigger timeline — not of worker
        scheduling.
    """

    def __init__(
        self,
        session_id: str,
        hybrid: HybridDemapper,
        monitor: DegradationMonitor,
        *,
        config: SessionConfig | None = None,
        retrain: Callable[[np.random.Generator], HybridDemapper] | None = None,
        sigma2: float | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        self.session_id = str(session_id)
        self.monitor = monitor
        self.config = config if config is not None else SessionConfig()
        self.retrain = retrain
        self.sigma2 = float(sigma2 if sigma2 is not None else hybrid.sigma2)
        if self.sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        self._retrain_rng = as_generator(rng)
        self._hybrid = hybrid
        self._queue: deque[tuple[ServingFrame, int]] = deque()
        self._lock = threading.Lock()
        self.state = SERVING
        #: HEALTHY / DEGRADED / QUARANTINED — orthogonal to ``state`` (a
        #: DEGRADED session still cycles SERVING normally; a QUARANTINED one
        #: is fenced off).  Transitions go through :meth:`set_health`.
        self.health = HEALTHY
        #: set by the engine's graceful ``remove_session``: served, but
        #: accepting no new submissions and never escalating to retrain
        self.draining = False
        #: live deficit-round-robin share (starts at the ``config.weight``
        #: contract; steered by an engine-level ``WeightController``)
        self.weight = float(self.config.weight)
        self.stats = SessionStats()
        self.ladder = AdaptationLadder(track_attempts=self.config.track_attempts)
        #: CRC-failure monitor for coded sessions (None when uncoded): each
        #: decoded frame contributes 0/1 (pass/fail), windowed exactly like
        #: pilot BER, so payload integrity can fire the adaptation ladder
        #: even when pilots still look clean.
        coded = self.config.coded
        self.crc_monitor = (
            DegradationMonitor(
                coded.crc_fail_threshold,
                window=coded.crc_fail_window,
                cooldown=coded.crc_fail_cooldown,
            )
            if coded is not None
            else None
        )

    # -- demapper access / atomic swap --------------------------------------
    @property
    def hybrid(self) -> HybridDemapper:
        """The demapper currently serving this session's traffic."""
        return self._hybrid

    def install(self, hybrid: HybridDemapper) -> None:
        """Atomically swap in a (re)trained demapper and resume serving.

        Called by the swap worker; the lock orders it against a concurrent
        ``install``/``update_sigma2`` and the monitor reset is idempotent,
        so double-installation is safe (last writer wins).  A completed
        retrain also re-arms the adaptation ladder: the next degradation
        starts at the cheap tracking tier again.
        """
        with self._lock:
            self._hybrid = hybrid
            self.monitor.reset()
            if self.crc_monitor is not None:
                self.crc_monitor.reset()
            self.ladder.reset()
            self.state = SERVING
            self.stats.retrains += 1

    def update_sigma2(self, sigma2: float) -> None:
        """Replace the session's σ² estimate (no demapper swap needed)."""
        if sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        with self._lock:
            self.sigma2 = float(sigma2)

    def observe_sigma2(self, estimate: float) -> float:
        """EWMA-fold one pilot noise estimate into the session's σ².

        ``σ² ← (1-α)·σ² + α·max(σ̂², floor)`` with ``α =
        config.sigma2_alpha``; returns the updated value.  Called by the
        engine once per served frame, in frame order, so the σ² trajectory
        is a pure function of the session's own traffic — independent of
        batching, scheduling and worker count.  A no-op when α = 0.
        """
        alpha = self.config.sigma2_alpha
        if alpha <= 0.0:
            return self.sigma2
        estimate = max(float(estimate), _SIGMA2_FLOOR)
        with self._lock:
            self.sigma2 = (1.0 - alpha) * self.sigma2 + alpha * estimate
            return self.sigma2

    def observe_crc(self, crc_ok: bool) -> bool:
        """Feed one decoded frame's CRC verdict into the payload monitor.

        Contributes 0.0 (pass) or 1.0 (fail) to the session's CRC-failure
        :class:`~repro.extraction.monitor.DegradationMonitor`; returns True
        when the windowed failure rate fires — the payload-aware trigger
        the engine ORs with the pilot-BER trigger.  Called by the engine
        once per decoded frame, in frame order, so the trigger timeline is
        a pure function of the session's own traffic.  Always False for
        uncoded sessions.
        """
        if self.crc_monitor is None:
            return False
        return self.crc_monitor.observe(0.0 if crc_ok else 1.0)

    def set_weight(self, weight: float, *, now: int = 0) -> float:
        """Update the live scheduler weight; records the change in stats.

        Clamped to the same floor as ``SessionConfig.weight`` (0.01 — a
        backlogged session must make progress on a timescale the drain loop
        can live with).  ``now`` is the engine tick stamped into
        ``stats.weight_timeline``.  Returns the applied weight.
        """
        if not math.isfinite(weight):
            raise ValueError("weight must be finite")
        weight = max(float(weight), 0.01)
        if weight != self.weight:
            self.weight = weight
            self.stats.weight_timeline.append((int(now), weight))
        return self.weight

    # -- health --------------------------------------------------------------
    def set_health(self, health: str, *, now: int = 0) -> str:
        """Transition the session's health; records it in the timeline.

        ``now`` is the engine's simulated tick stamped into
        ``stats.health_timeline``.  Idempotent (re-setting the current
        health logs nothing).  Returns the applied health.
        """
        if health not in (HEALTHY, DEGRADED, QUARANTINED):
            raise ValueError(f"unknown health state {health!r}")
        if health != self.health:
            self.health = health
            self.stats.health_timeline.append((int(now), health))
        return self.health

    def resume_serving(self) -> None:
        """Return to SERVING *without* an install (the retrain failed/hung).

        The failure path of the atomic-swap contract: the last-good
        demapper keeps serving — the paper's hybrid fallback — and the
        monitor/ladder state is left exactly as the trigger left it, so a
        later successful retry still answers the same degradation event.
        """
        with self._lock:
            self.state = SERVING

    def quarantine(self, *, now: int = 0) -> int:
        """Fence the session off after a poison frame; returns frames lost.

        Called by the engine when this session's demap produced non-finite
        LLRs: the offending frame (already popped — the ``+ 1``) and every
        queued frame are counted into ``stats.frames_quarantined`` and the
        queue is cleared — none of them may reach the σ²/BER state.  The
        session stops serving (``ready`` is False for QUARANTINED) and
        refuses all new submissions.
        """
        with self._lock:
            lost = len(self._queue) + 1
            self._queue.clear()
            self.stats.frames_quarantined += lost
        self.set_health(QUARANTINED, now=now)
        return lost

    # -- tiered adaptation ----------------------------------------------------
    @property
    def can_retrain(self) -> bool:
        """True when a trigger may escalate to the retrain tier.

        Requires a retrain policy, a session that is sticking around — a
        draining session never retrains (the work would be thrown away with
        the session), it rides its current centroids out — and HEALTHY
        health: a DEGRADED session's circuit breaker opened (triggers are
        suppressed, it serves on its last-good demapper) and a QUARANTINED
        session is fenced off entirely.
        """
        return self.retrain is not None and not self.draining and self.health == HEALTHY

    def plan_adaptation(self) -> str | None:
        """Pick this trigger's tier: track, retrain, or nothing.

        Tracking first while the ladder has attempts left (always, when no
        retrain tier exists to escalate to); retrain when the budget is
        exhausted; None when neither tier is available (trigger recorded
        only — the PR-3 behaviour).
        """
        if self.config.tracking and (not self.can_retrain or self.ladder.wants_track()):
            return TIER_TRACK
        return TIER_RETRAIN if self.can_retrain else None

    def apply_track(self, frame: ServingFrame) -> bool:
        """Tracking-tier response: rigid centroid update from this frame's
        pilots, swapped in under the session lock.

        Returns the tracker's verdict — True if the rigid model explains
        the pilots at the session's *live* σ² (the updated centroids are
        installed either way; a rigid fit never hurts, and the caller
        escalates when it was insufficient).  The monitor is reset so the
        next window measures the tracked centroids — a tracking trigger
        must not consume the retrain cooldown.
        """
        mask = np.asarray(frame.pilot_mask, dtype=bool)
        tracker = CentroidTracker(
            self._hybrid, residual_threshold=self.config.track_residual
        )
        rigid_ok = tracker.update(
            np.asarray(frame.indices)[mask],
            np.asarray(frame.received)[mask],
            sigma2=self.sigma2,
        )
        with self._lock:
            self._hybrid = tracker.current
            self.monitor.reset()
            self.stats.tracks += 1
        self.ladder.note_track()
        return rigid_ok

    def note_healthy_window(self) -> None:
        """Engine-side report of a full monitor window below threshold.

        Re-arms the adaptation ladder: the last tracking response
        demonstrably worked, so the next degradation event gets the cheap
        tier again instead of escalating.
        """
        self.ladder.note_recovered()

    def begin_retrain(self) -> np.random.Generator:
        """Enter RETRAINING and mint the job's deterministic generator."""
        self.state = RETRAINING
        (job_rng,) = self._retrain_rng.spawn(1)
        return job_rng

    # -- frame queue ---------------------------------------------------------
    def submit(self, frame: ServingFrame, *, now: int = 0) -> bool:
        """Enqueue one frame; returns False (and counts a reject) when full.

        A draining session also returns False — it is leaving the engine
        and accepts no new traffic (counted in ``stats.drain_refusals``;
        unlike a backpressure reject, retrying cannot succeed — check
        ``session.draining`` instead of spinning).

        A quarantined session likewise returns False for every submission
        (counted in ``stats.quarantine_refusals``; final, like drain
        refusals — check ``session.health`` instead of retrying).  With
        ``config.validate_frames`` a frame containing a non-finite received
        sample is refused at the door (``stats.poison_rejected``) — it is
        never accepted, so it appears in no conservation ledger.

        ``now`` is the submission timestamp in engine simulated-clock ticks
        (the engine stamps it; direct callers may leave the default, which
        simply dates the frame from clock zero).
        """
        if self.health == QUARANTINED:
            self.stats.quarantine_refusals += 1
            return False
        if self.draining:
            self.stats.drain_refusals += 1
            return False
        if self.config.validate_frames and not np.isfinite(frame.received).all():
            self.stats.poison_rejected += 1
            return False
        if len(self._queue) >= self.config.queue_depth:
            self.stats.rejects += 1
            return False
        self._queue.append((frame, int(now)))
        return True

    def discard_queue(self) -> int:
        """Drop every queued frame (hard removal); returns the count dropped.

        The drops are recorded in ``stats.frames_dropped`` — the one place
        in the serving stack where an accepted frame is *not* eventually
        demapped, which is why the churn soak's conservation invariant is
        ``accepted == served + dropped + still-queued``.
        """
        dropped = len(self._queue)
        self._queue.clear()
        self.stats.frames_dropped += dropped
        return dropped

    def rebase_queue(self, delta: int) -> None:
        """Shift every queued frame's enqueue stamp by ``delta`` ticks.

        Live migration hands the session to an engine whose simulated
        symbol clock is unrelated to the source's; the importing engine
        shifts each stamp by (its now − source now) so the wait a frame
        has already accrued carries over instead of going negative (or
        ballooning) against the new clock.
        """
        if delta and self._queue:
            self._queue = deque((f, t + delta) for f, t in self._queue)

    @property
    def pending(self) -> int:
        """Frames waiting in the queue."""
        return len(self._queue)

    @property
    def ready(self) -> bool:
        """True when the engine may serve this session's head frame.

        A QUARANTINED session is never ready (its queue is cleared at
        quarantine time anyway — the guard makes the fence structural).
        """
        return self.state == SERVING and self.health != QUARANTINED and bool(self._queue)

    def pop(self) -> tuple[ServingFrame, int]:
        """Dequeue ``(head frame, enqueue tick)`` (caller checked ``ready``)."""
        return self._queue.popleft()

    # -- telemetry -----------------------------------------------------------
    def monitor_state(self) -> MonitorState:
        """Snapshot of the session's monitor (no private-deque reaching)."""
        return self.monitor.state()

    def register_metrics(
        self,
        registry,
        *,
        labels: dict | None = None,
        prefix: str = "serving_session_",
    ) -> None:
        """Expose this session's stats plus live queue/weight/σ² gauges.

        Everything is labelled ``{"session": <id>}`` (extra ``labels``, e.g.
        a fleet shard id, are merged in); re-registering after churn (a
        reused id) rebinds the views to the new session object.
        """
        labels = {**(labels or {}), "session": self.session_id}
        self.stats.register_metrics(registry, labels=labels, prefix=prefix)
        registry.gauge(prefix + "queue_depth", labels, fn=lambda: self.pending)
        registry.gauge(prefix + "weight", labels, fn=lambda: self.weight)
        registry.gauge(prefix + "sigma2", labels, fn=lambda: self.sigma2)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DemapperSession({self.session_id!r}, state={self.state}, "
            f"pending={self.pending}, retrains={self.stats.retrains})"
        )
