"""Per-session receiver state machines behind the serving engine.

Each live stream ("session") owns exactly what the paper's receiver owns:
a :class:`~repro.extraction.hybrid.HybridDemapper` (the cheap centroid
demapper serving traffic), a
:class:`~repro.extraction.monitor.DegradationMonitor` watching pilot BER,
its frame/pilot geometry, and its own σ² estimate.  The engine pulls frames
from the session's *bounded* queue — a full queue pushes back on the
producer instead of growing without bound — and coalesces frames across
sessions into micro-batches.

State machine::

    SERVING ──monitor fires──▶ RETRAINING ──swap installed──▶ SERVING

While RETRAINING the session's frames stay queued (they are *not* demapped
by the stale centroids), so every frame after a trigger deterministically
sees the retrained demapper — that is what makes the per-session output
timeline independent of how fast the background worker happens to run.
Other sessions keep being served in the meantime; nothing stalls globally.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.extraction.hybrid import HybridDemapper
from repro.extraction.monitor import DegradationMonitor, MonitorState
from repro.link.frames import FrameConfig
from repro.serving.telemetry import SessionStats
from repro.utils.rng import as_generator

__all__ = ["SERVING", "RETRAINING", "SessionConfig", "ServingFrame", "DemapperSession"]

#: Session states (plain strings — cheap to compare, obvious in telemetry).
SERVING = "serving"
RETRAINING = "retraining"


@dataclass(frozen=True)
class SessionConfig:
    """Per-session serving tunables.

    ``queue_depth`` bounds the frame queue (backpressure: ``submit`` returns
    False when full); ``frame`` records the session's pilot/payload geometry
    for producers that build traffic from it.
    """

    frame: FrameConfig = FrameConfig()
    queue_depth: int = 8

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")


@dataclass(frozen=True)
class ServingFrame:
    """One frame of traffic submitted to a session.

    ``indices`` are the transmitted symbol labels (known for pilots by
    design; known for payload only because this is a simulation — the engine
    uses payload truth solely for telemetry, never for demapping).
    """

    seq: int
    indices: np.ndarray     # (n,) int symbol labels
    pilot_mask: np.ndarray  # (n,) bool, True where pilot
    received: np.ndarray    # (n,) complex received samples

    def __post_init__(self) -> None:
        n = np.asarray(self.received).size
        if np.asarray(self.indices).shape != (n,) or np.asarray(self.pilot_mask).shape != (n,):
            raise ValueError("indices, pilot_mask and received must be equal-length 1-D")

    @property
    def n_symbols(self) -> int:
        return int(np.asarray(self.received).size)


class DemapperSession:
    """One stream's receiver state: demapper + monitor + queue + σ² estimate.

    Parameters
    ----------
    session_id:
        Unique name within the engine.
    hybrid:
        The session's current centroid demapper.
    monitor:
        Degradation monitor fed with each frame's pilot BER.
    config:
        Queue/frame geometry (default :class:`SessionConfig`).
    retrain:
        Optional retrain policy ``rng -> HybridDemapper``: invoked on a
        background worker when the monitor fires; the returned demapper is
        atomically swapped in.  ``None`` means triggers are recorded but the
        session keeps serving with its current centroids.
    sigma2:
        The session's own noise-variance estimate (defaults to the hybrid's).
        Kept separate from the demapper so a σ² update never requires a
        swap, and so batched dispatch reads one per-session vector.
    rng:
        Seed/generator for the session's retrain jobs: one child generator is
        spawned per trigger, in trigger order, so the retrain outcome is a
        pure function of the seed and the trigger timeline — not of worker
        scheduling.
    """

    def __init__(
        self,
        session_id: str,
        hybrid: HybridDemapper,
        monitor: DegradationMonitor,
        *,
        config: SessionConfig | None = None,
        retrain: Callable[[np.random.Generator], HybridDemapper] | None = None,
        sigma2: float | None = None,
        rng: np.random.Generator | int | None = None,
    ):
        self.session_id = str(session_id)
        self.monitor = monitor
        self.config = config if config is not None else SessionConfig()
        self.retrain = retrain
        self.sigma2 = float(sigma2 if sigma2 is not None else hybrid.sigma2)
        if self.sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        self._retrain_rng = as_generator(rng)
        self._hybrid = hybrid
        self._queue: deque[ServingFrame] = deque()
        self._lock = threading.Lock()
        self.state = SERVING
        self.stats = SessionStats()

    # -- demapper access / atomic swap --------------------------------------
    @property
    def hybrid(self) -> HybridDemapper:
        """The demapper currently serving this session's traffic."""
        return self._hybrid

    def install(self, hybrid: HybridDemapper) -> None:
        """Atomically swap in a (re)trained demapper and resume serving.

        Called by the swap worker; the lock orders it against a concurrent
        ``install``/``update_sigma2`` and the monitor reset is idempotent,
        so double-installation is safe (last writer wins).
        """
        with self._lock:
            self._hybrid = hybrid
            self.monitor.reset()
            self.state = SERVING
            self.stats.retrains += 1

    def update_sigma2(self, sigma2: float) -> None:
        """Replace the session's σ² estimate (no demapper swap needed)."""
        if sigma2 <= 0:
            raise ValueError("sigma2 must be positive")
        with self._lock:
            self.sigma2 = float(sigma2)

    def begin_retrain(self) -> np.random.Generator:
        """Enter RETRAINING and mint the job's deterministic generator."""
        self.state = RETRAINING
        (job_rng,) = self._retrain_rng.spawn(1)
        return job_rng

    # -- frame queue ---------------------------------------------------------
    def submit(self, frame: ServingFrame) -> bool:
        """Enqueue one frame; returns False (and counts a drop) when full."""
        if len(self._queue) >= self.config.queue_depth:
            self.stats.rejects += 1
            return False
        self._queue.append(frame)
        return True

    @property
    def pending(self) -> int:
        """Frames waiting in the queue."""
        return len(self._queue)

    @property
    def ready(self) -> bool:
        """True when the engine may serve this session's head frame."""
        return self.state == SERVING and bool(self._queue)

    def pop(self) -> ServingFrame:
        """Dequeue the head frame (engine-side; caller checked ``ready``)."""
        return self._queue.popleft()

    # -- telemetry -----------------------------------------------------------
    def monitor_state(self) -> MonitorState:
        """Snapshot of the session's monitor (no private-deque reaching)."""
        return self.monitor.state()

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"DemapperSession({self.session_id!r}, state={self.state}, "
            f"pending={self.pending}, retrains={self.stats.retrains})"
        )
