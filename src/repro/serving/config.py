"""Engine construction config: one frozen object instead of keyword sprawl.

``EngineConfig`` consolidates every :class:`~repro.serving.engine.
ServingEngine` construction knob into a single immutable value.  The fleet
front-end (:mod:`repro.serving.fleet`) replicates one config per shard —
``ServingEngine(config=...)`` is the one constructor path it uses — and a
frozen dataclass makes "same config on every shard" a checkable property
instead of a convention.

The legacy keyword form (``ServingEngine(max_batch=..., ...)``) keeps
working through a deprecation shim on the engine itself; this module is
deliberately dependency-light (no engine import) so the config can be
built, validated and compared without touching the runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable

__all__ = ["EngineConfig"]

#: config fields that hold live/stateful collaborators — a fleet must not
#: replicate one of these across shards (shared mutable state), so
#: :class:`~repro.serving.fleet.FleetFrontEnd` refuses a multi-shard
#: replication of a config with any of them set (use ``config_factory``).
STATEFUL_FIELDS = (
    "scheduler",
    "weight_controller",
    "supervisor",
    "tracer",
    "profiler",
    "on_frame",
)


@dataclass(frozen=True)
class EngineConfig:
    """Immutable construction-time configuration of a ``ServingEngine``.

    Parameters mirror the engine's historical keywords one-for-one —
    see :class:`~repro.serving.engine.ServingEngine` for the semantics of
    each field.  Validation happens here (at config build time) so a bad
    knob fails before any engine state exists.
    """

    max_batch: int = 64
    retrain_workers: int = 0
    backend: Any = None
    scheduler: Any = None
    weight_controller: Any = None
    supervisor: Any = None
    on_frame: Callable | None = None
    tracer: Any = None
    profiler: Any = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.retrain_workers < 0:
            raise ValueError("n_workers must be >= 0")

    def stateful_fields_set(self) -> tuple[str, ...]:
        """Names of the live-collaborator fields that are non-None.

        A config with any of these set cannot be replicated across fleet
        shards — the shards would share one scheduler/supervisor/tracer.
        """
        return tuple(f for f in STATEFUL_FIELDS if getattr(self, f) is not None)

    def build(self):
        """Construct a :class:`~repro.serving.engine.ServingEngine`."""
        from repro.serving.engine import ServingEngine

        return ServingEngine(config=self)

    def as_kwargs(self) -> dict[str, Any]:
        """The config as a keyword dict (field order preserved)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
