"""QoS-weighted frame scheduling: deficit round robin over session queues.

The PR-3 engine pulled exactly one head frame per ready session per round —
fair, but blind to QoS: a session with a deep queue and a latency budget
could not trade occupancy for latency, and a best-effort session could not
be deprioritised.  This module replaces that fixed pull with classic
*deficit round robin* (Shreedhar & Varghese) at frame granularity:

* every round, each **backlogged** session accrues ``quantum × weight``
  credit (``SessionConfig.weight``, default 1.0);
* a session may serve as many whole frames as it has credit (so a weight-3
  session pulls up to 3 frames per round from a deep queue, a weight-½
  session serves every other round);
* leftover credit carries to the next round **only while backlogged** — an
  idle or paused (RETRAINING) session forfeits its credit, the standard DRR
  rule that prevents a returning session from bursting stale credit.

Determinism: credit is a pure function of the (seed-determined) sequence of
queue states and the configured weights — no clocks, no randomness — so
per-session serving order, and therefore every per-session output timeline,
is reproducible bit-for-bit.  With all weights at 1 and non-empty queues the
schedule degenerates to exactly the old one-frame-per-session round robin.

The scheduler only *allocates* quotas; the engine pops frames lazily in
serving waves (one frame per session per wave) so that a session pausing
mid-round — a monitor trigger escalating to retrain — never has a frame
popped that cannot be served.  Quota charged for frames a pause left
unserved is forfeited with the rest of the session's credit.
"""

from __future__ import annotations

from typing import Sequence

from repro.serving.session import DemapperSession

__all__ = ["DeficitRoundRobin"]


class DeficitRoundRobin:
    """Per-session credit accounting for QoS-weighted frame pulls.

    Parameters
    ----------
    quantum:
        Credit (in frames) a weight-1.0 backlogged session accrues per
        round.  The default of 1.0 preserves the historical
        one-frame-per-session-per-round pacing for uniform fleets.
    """

    def __init__(self, quantum: float = 1.0):
        if not quantum > 0:
            raise ValueError("quantum must be positive")
        self.quantum = float(quantum)
        self._credit: dict[str, float] = {}

    def allocate(self, sessions: Sequence[DemapperSession]) -> dict[str, int]:
        """Accrue one round of credit and return this round's frame quotas.

        Returns ``{session_id: frames}`` for sessions that may serve at
        least one frame this round.  Sessions that are not ready (paused or
        empty-queued) are treated as non-backlogged: their stored credit is
        dropped.  A backlogged session whose credit is still below one
        frame (weight < 1) keeps its fractional credit for next round.
        """
        quotas: dict[str, int] = {}
        for session in sessions:
            if not session.ready:
                # non-backlogged: forfeit credit (standard DRR, bounds bursts)
                self._credit.pop(session.session_id, None)
                continue
            credit = self._credit.get(session.session_id, 0.0)
            credit += self.quantum * session.config.weight
            take = min(int(credit), session.pending)
            if take:
                quotas[session.session_id] = take
                credit -= take
            # queue emptied by this allocation => non-backlogged next round
            self._credit[session.session_id] = credit if session.pending > take else 0.0
        return quotas

    def forget(self, session_id: str) -> None:
        """Drop a session's credit unconditionally.

        The hook for engine-level session removal (a ROADMAP rung — the
        engine has no ``remove_session`` yet); until then ``allocate``
        already drops credit for any session that stops being ready.
        """
        self._credit.pop(session_id, None)

    def credit(self, session_id: str) -> float:
        """Current stored credit (0.0 for unknown sessions) — telemetry."""
        return self._credit.get(session_id, 0.0)
