"""QoS-weighted frame scheduling: deficit round robin over session queues.

The PR-3 engine pulled exactly one head frame per ready session per round —
fair, but blind to QoS: a session with a deep queue and a latency budget
could not trade occupancy for latency, and a best-effort session could not
be deprioritised.  This module replaces that fixed pull with classic
*deficit round robin* (Shreedhar & Varghese) at frame granularity:

* every round, each **backlogged** session accrues ``quantum × weight``
  credit (``session.weight`` — the live share, seeded from
  ``SessionConfig.weight`` and steerable at runtime by a
  :class:`~repro.serving.weights.WeightController`);
* a session may serve as many whole frames as it has credit (so a weight-3
  session pulls up to 3 frames per round from a deep queue, a weight-½
  session serves every other round);
* leftover credit carries to the next round **only while backlogged** — an
  idle or paused (RETRAINING) session forfeits its credit, the standard DRR
  rule that prevents a returning session from bursting stale credit;
* carried credit is **burst-capped** at ``max(1, burst × quantum ×
  weight)``: the bounded-burst guarantee holds *by construction*, not by
  accident of the carry logic.  (Today's carry is always the fractional
  part of a spent credit — under one frame — so the clamp only binds for
  slow-accrual configurations; its job is to keep the invariant structural
  if the carry rules ever change.  The floor of one whole frame is what
  lets a fractional ``quantum × weight`` accrual ever reach a servable
  frame.)

Determinism: credit is a pure function of the (seed-determined) sequence of
queue states and the weights in effect — no clocks, no randomness — so
per-session serving order, and therefore every per-session output timeline,
is reproducible bit-for-bit.  With all weights at 1 and non-empty queues the
schedule degenerates to exactly the old one-frame-per-session round robin.

The scheduler only *allocates* quotas; the engine pops frames lazily in
serving waves (one frame per session per wave) so that a session pausing
mid-round — a monitor trigger escalating to retrain — never has a frame
popped that cannot be served.  Quota charged for frames a pause left
unserved is forfeited with the rest of the session's credit.
"""

from __future__ import annotations

from typing import Sequence

from repro.serving.session import QUARANTINED, DemapperSession

__all__ = ["DeficitRoundRobin"]


class DeficitRoundRobin:
    """Per-session credit accounting for QoS-weighted frame pulls.

    Parameters
    ----------
    quantum:
        Credit (in frames) a weight-1.0 backlogged session accrues per
        round.  The default of 1.0 preserves the historical
        one-frame-per-session-per-round pacing for uniform fleets.
    burst:
        Cap on *carried* credit, in units of one round's accrual: a session
        may bank at most ``max(1, burst × quantum × weight)`` between
        rounds.  The floor of 1 (one whole frame) keeps slow-accrual
        sessions (``quantum × weight < 1``) able to reach a servable frame
        — capping below a frame would starve them forever; the cap itself
        bounds the burst a heavy session could unleash after a backlog
        hiccup.  Default 2.0 — one banked round on top of the live one.
    """

    def __init__(self, quantum: float = 1.0, *, burst: float = 2.0):
        if not quantum > 0:
            raise ValueError("quantum must be positive")
        if not burst >= 1.0:
            raise ValueError("burst must be >= 1.0")
        self.quantum = float(quantum)
        self.burst = float(burst)
        self._credit: dict[str, float] = {}

    def _carry_cap(self, weight: float) -> float:
        return max(1.0, self.burst * self.quantum * weight)

    def allocate(self, sessions: Sequence[DemapperSession]) -> dict[str, int]:
        """Accrue one round of credit and return this round's frame quotas.

        Returns ``{session_id: frames}`` for sessions that may serve at
        least one frame this round.  Sessions that are not ready (paused or
        empty-queued) are treated as non-backlogged: their stored credit is
        dropped.  A **quarantined** session forfeits its credit outright —
        it will never be ready again, and a fenced-off session must not sit
        in the credit table looking like a backlog (the fault-isolation
        contract: quarantine frees its share for the rest of the fleet).  A
        backlogged session whose credit is still below one frame
        (weight < 1) keeps its fractional credit for next round, subject to
        the burst cap.
        """
        quotas: dict[str, int] = {}
        for session in sessions:
            if session.health == QUARANTINED or not session.ready:
                # non-backlogged (or fenced off): forfeit credit
                # (standard DRR, bounds bursts)
                self._credit.pop(session.session_id, None)
                continue
            credit = self._credit.get(session.session_id, 0.0)
            credit += self.quantum * session.weight
            take = min(int(credit), session.pending)
            if take:
                quotas[session.session_id] = take
                credit -= take
            if session.pending > take:
                # still backlogged: carry leftover credit, burst-capped
                self._credit[session.session_id] = min(
                    credit, self._carry_cap(session.weight)
                )
            else:
                # queue emptied by this allocation => non-backlogged next round
                self._credit[session.session_id] = 0.0
        return quotas

    def forget(self, session_id: str) -> None:
        """Drop a session's credit unconditionally.

        The engine calls this exactly once when a session leaves
        (``remove_session``, after a drain completes or immediately on hard
        removal), so a departed session leaks no credit and a later session
        re-admitted under the same id starts from zero.
        """
        self._credit.pop(session_id, None)

    def restore(self, session_id: str, credit: float) -> None:
        """Seed a session's credit directly (the migration adoption hook).

        A migrated session carries its earned-but-unspent credit to the
        destination shard so the handover neither grants a free burst nor
        taxes the session a round of accrual.  The burst cap is re-applied
        at the next ``allocate`` (credit accrues through the normal path);
        restoring zero or a negative value is a no-op.
        """
        if credit > 0.0:
            self._credit[session_id] = float(credit)

    def credit(self, session_id: str) -> float:
        """Current stored credit (0.0 for unknown sessions) — telemetry."""
        return self._credit.get(session_id, 0.0)

    def credits(self) -> dict[str, float]:
        """Snapshot of every stored credit entry (telemetry / invariants).

        Churn soaks assert conservation against this: every key must be a
        live session id (departed sessions leave nothing behind) and every
        value must respect the burst cap.
        """
        return dict(self._credit)
