"""Deterministic seeded load generator for the serving engine.

Drives N sessions of frame traffic over the channel-zoo factories
(:mod:`repro.channels.factories`) with the same spawn discipline as the
Monte-Carlo engines: per-frame ``(bits, noise)`` generators are spawned in
frame order from a per-session master generator, so every frame's content is
a pure function of ``(seed, session, seq)`` — independent of queue depth,
batching, serving order, or how often backpressure forced a retry.  That is
the property the serving determinism tests lean on: the *traffic* never
changes, so any output difference would have to come from the engine.

Building blocks:

* :class:`SteadyChannel` / :class:`SteppedChannel` — per-frame channel
  builders over plain picklable factories (``SteppedChannel`` switches
  factories at a frame index: the paper's "channel suddenly changes,
  monitor fires, retrain" scenario);
* :func:`generate_traffic` — one session's frame list;
* :func:`build_fleet` — register N uniform sessions on an engine (shared
  centroid set ⇒ cross-session batching);
* :class:`AnnRetrainPolicy` — the paper's full RETRAIN → EXTRACT step as a
  background-worker job;
* :func:`run_load` — submit with backpressure-aware retries and serve
  until drained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.autoencoder.system import AESystem
from repro.autoencoder.training import ReceiverFinetuner, TrainingConfig
from repro.channels.base import Channel
from repro.extraction.hybrid import HybridDemapper
from repro.extraction.monitor import DegradationMonitor
from repro.link.frames import build_frame
from repro.modulation.constellations import Constellation
from repro.serving.engine import ServingEngine
from repro.serving.session import DemapperSession, ServingFrame, SessionConfig
from repro.serving.telemetry import EngineStats
from repro.utils.rng import as_generator

__all__ = [
    "SteadyChannel",
    "SteppedChannel",
    "AnnRetrainPolicy",
    "generate_traffic",
    "build_fleet",
    "run_load",
]


@dataclass(frozen=True)
class SteadyChannel:
    """Frame-channel builder that applies one factory to every frame."""

    factory: Callable[[np.random.Generator], Channel]

    def __call__(self, rng: np.random.Generator, seq: int) -> Channel:
        return self.factory(rng)


@dataclass(frozen=True)
class SteppedChannel:
    """Channel that switches factory at ``step_seq`` (a sudden impairment).

    Frames with ``seq < step_seq`` use ``before``, the rest ``after`` —
    e.g. AWGN that acquires a π/4 phase offset mid-run, the Table 1
    adaptation scenario as live traffic.
    """

    before: Callable[[np.random.Generator], Channel]
    after: Callable[[np.random.Generator], Channel]
    step_seq: int

    def __call__(self, rng: np.random.Generator, seq: int) -> Channel:
        return (self.before if seq < self.step_seq else self.after)(rng)


def generate_traffic(
    constellation: Constellation,
    frame_config,
    n_frames: int,
    channel,
    rng: np.random.Generator | int | None,
    *,
    start_seq: int = 0,
) -> list[ServingFrame]:
    """Build one session's deterministic frame sequence.

    ``channel`` is a ``(rng, seq) -> Channel`` builder (wrap a plain factory
    in :class:`SteadyChannel`).  Two generators are spawned per frame in seq
    order — identical streams whether or not earlier frames were ever
    served, so traffic content never depends on engine behaviour.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    rng = as_generator(rng)
    frames: list[ServingFrame] = []
    for seq in range(start_seq, start_seq + n_frames):
        bits_rng, noise_rng = rng.spawn(2)
        frame = build_frame(frame_config, constellation.order, bits_rng)
        ch = channel(noise_rng, seq)
        received = ch.forward(constellation.points[frame.indices])
        frames.append(
            ServingFrame(
                seq=seq,
                indices=frame.indices,
                pilot_mask=frame.pilot_mask,
                received=received,
            )
        )
    return frames


@dataclass
class AnnRetrainPolicy:
    """The paper's RETRAIN → EXTRACT step as a background-worker job.

    Owns this session's demapper ANN (an :class:`AESystem` — sessions must
    not share one, retraining mutates it) and the live-channel factory to
    train against.  Called with the job generator minted at trigger time;
    returns the freshly extracted :class:`HybridDemapper` the worker swaps
    in.  Deterministic: same generator ⇒ same retrained weights ⇒ same
    centroids, regardless of which worker thread runs it.
    """

    system: AESystem
    channel_factory: Callable[[np.random.Generator], Channel]
    sigma2: float
    constellation: Constellation  #: frozen transmit set (extraction fallback)
    training: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(steps=600, batch_size=512, lr=2e-3)
    )
    extraction_method: str = "lsq"
    extraction_extent: float = 1.5
    extraction_resolution: int = 192

    def __call__(self, rng: np.random.Generator) -> HybridDemapper:
        channel = self.channel_factory(rng)
        ReceiverFinetuner(
            self.system, self.training, constellation=self.constellation
        ).run(channel, rng)
        return HybridDemapper.extract(
            self.system.demapper,
            self.sigma2,
            extent=self.extraction_extent,
            resolution=self.extraction_resolution,
            method=self.extraction_method,
            fallback=self.constellation,
        )


def build_fleet(
    engine: ServingEngine,
    n_sessions: int,
    hybrid: HybridDemapper,
    *,
    monitor_factory: Callable[[], DegradationMonitor],
    config: SessionConfig | None = None,
    config_factory: Callable[[int], SessionConfig] | None = None,
    retrain_factory: Callable[[int], Callable | None] | None = None,
    seed: int = 0,
    prefix: str = "s",
) -> list[DemapperSession]:
    """Register ``n_sessions`` uniform sessions sharing one centroid set.

    Sharing ``hybrid`` is what makes the fleet batchable — every session's
    frames coalesce into the same multi-sigma launches until one of them
    retrains onto its own centroids.  Each session gets its own monitor
    (``monitor_factory()``), its own spawned retrain generator, and —
    optionally — its own retrain policy via ``retrain_factory(i)``.

    ``config_factory(i)`` builds a per-session config (heterogeneous QoS
    weights, σ²-loop and tracking knobs); it overrides ``config``, which
    applies one config to the whole fleet.
    """
    if n_sessions < 1:
        raise ValueError("n_sessions must be >= 1")
    master = np.random.default_rng(seed)
    sessions = []
    for i in range(n_sessions):
        (session_rng,) = master.spawn(1)
        retrain = retrain_factory(i) if retrain_factory is not None else None
        session_config = config_factory(i) if config_factory is not None else config
        sessions.append(
            engine.add_session(
                DemapperSession(
                    f"{prefix}{i:03d}",
                    hybrid,
                    monitor_factory(),
                    config=session_config,
                    retrain=retrain,
                    rng=session_rng,
                )
            )
        )
    return sessions


def run_load(
    engine: ServingEngine,
    traffic: Mapping[str, Sequence[ServingFrame]],
    *,
    max_rounds: int | None = None,
) -> EngineStats:
    """Feed per-session traffic through the engine until fully drained.

    Each round submits as many frames per session as its bounded queue
    accepts (rejected submissions are retried next round — backpressure
    slows the producer, it never loses frames), then serves one engine
    round.  Returns the engine telemetry once every frame is served and no
    retrain is in flight (or after ``max_rounds``).
    """
    offsets = {sid: 0 for sid in traffic}
    rounds = 0
    while True:
        for sid, frames in traffic.items():
            o = offsets[sid]
            while o < len(frames) and engine.submit(sid, frames[o]):
                o += 1
            offsets[sid] = o
        served = engine.step()
        rounds += 1
        if max_rounds is not None and rounds >= max_rounds:
            return engine.telemetry
        if served:
            continue
        if engine.worker.pending:
            engine.telemetry.retrains_completed += engine.worker.wait_all()
            continue
        if all(offsets[sid] == len(traffic[sid]) for sid in traffic) and not any(
            s.pending for s in engine.sessions
        ):
            return engine.telemetry
        if any(s.ready for s in engine.sessions):
            # a zero-served round while a fractional-weight session accrues
            # scheduler credit is still progress — keep pumping rounds
            continue
        # Nothing served, nothing in flight, frames remain: a session is
        # stuck outside SERVING with no job to wait for — fail loudly.
        raise RuntimeError("load generator stalled: frames pending but nothing servable")
