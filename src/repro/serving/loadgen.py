"""Deterministic seeded load generator for the serving engine.

Drives N sessions of frame traffic over the channel-zoo factories
(:mod:`repro.channels.factories`) with the same spawn discipline as the
Monte-Carlo engines: per-frame ``(bits, noise)`` generators are spawned in
frame order from a per-session master generator, so every frame's content is
a pure function of ``(seed, session, seq)`` — independent of queue depth,
batching, serving order, or how often backpressure forced a retry.  That is
the property the serving determinism tests lean on: the *traffic* never
changes, so any output difference would have to come from the engine.

Building blocks:

* :class:`SteadyChannel` / :class:`SteppedChannel` — per-frame channel
  builders over plain picklable factories (``SteppedChannel`` switches
  factories at a frame index: the paper's "channel suddenly changes,
  monitor fires, retrain" scenario);
* :func:`generate_traffic` — one session's frame list;
* :func:`build_fleet` — register N uniform sessions on an engine (shared
  centroid set ⇒ cross-session batching);
* :class:`AnnRetrainPolicy` — the paper's full RETRAIN → EXTRACT step as a
  background-worker job;
* :func:`run_load` — submit with backpressure-aware retries and serve
  until drained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.autoencoder.system import AESystem
from repro.autoencoder.training import ReceiverFinetuner, TrainingConfig
from repro.channels.base import Channel
from repro.extraction.hybrid import HybridDemapper
from repro.extraction.monitor import DegradationMonitor
from repro.link.frames import build_frame
from repro.modulation.bits import bits_to_indices, random_bits
from repro.modulation.constellations import Constellation
from repro.serving.coding import CodedFrameConfig, coded_layout
from repro.serving.engine import ServingEngine
from repro.serving.faults import FaultPlan
from repro.serving.session import QUARANTINED, DemapperSession, ServingFrame, SessionConfig
from repro.serving.telemetry import EngineStats
from repro.utils.rng import as_generator

__all__ = [
    "SteadyChannel",
    "SteppedChannel",
    "AnnRetrainPolicy",
    "generate_traffic",
    "build_fleet",
    "run_load",
    "SessionPlan",
    "run_churn_load",
    "MigrationPlan",
    "run_fleet_load",
]


@dataclass(frozen=True)
class SteadyChannel:
    """Frame-channel builder that applies one factory to every frame."""

    factory: Callable[[np.random.Generator], Channel]

    def __call__(self, rng: np.random.Generator, seq: int) -> Channel:
        return self.factory(rng)


@dataclass(frozen=True)
class SteppedChannel:
    """Channel that switches factory at ``step_seq`` (a sudden impairment).

    Frames with ``seq < step_seq`` use ``before``, the rest ``after`` —
    e.g. AWGN that acquires a π/4 phase offset mid-run, the Table 1
    adaptation scenario as live traffic.
    """

    before: Callable[[np.random.Generator], Channel]
    after: Callable[[np.random.Generator], Channel]
    step_seq: int

    def __call__(self, rng: np.random.Generator, seq: int) -> Channel:
        return (self.before if seq < self.step_seq else self.after)(rng)


def generate_traffic(
    constellation: Constellation,
    frame_config,
    n_frames: int,
    channel,
    rng: np.random.Generator | int | None,
    *,
    start_seq: int = 0,
    coded: CodedFrameConfig | None = None,
) -> list[ServingFrame]:
    """Build one session's deterministic frame sequence.

    ``channel`` is a ``(rng, seq) -> Channel`` builder (wrap a plain factory
    in :class:`SteadyChannel`).  Two generators are spawned per frame in seq
    order — identical streams whether or not earlier frames were ever
    served, so traffic content never depends on engine behaviour.

    With a ``coded`` config the payload symbols carry an interleaved,
    CRC-protected convolutional codeword instead of uniform random labels:
    per frame, random information bits are drawn (from the same per-frame
    bits generator, after the frame build — the spawn discipline is
    untouched), encoded through the shared
    :class:`~repro.serving.coding.CodedLayout`, and mapped onto the payload
    positions symbol-major/bit-minor.  Pilot symbols keep their
    frame-builder labels.  The transmitted information bits ride along in
    ``ServingFrame.info_bits`` for post-FEC BER telemetry.  Pass the same
    config on the sessions' :class:`~repro.serving.session.SessionConfig`
    so the engine decodes what was encoded.
    """
    if n_frames < 1:
        raise ValueError("n_frames must be >= 1")
    rng = as_generator(rng)
    k = constellation.bits_per_symbol
    frames: list[ServingFrame] = []
    for seq in range(start_seq, start_seq + n_frames):
        bits_rng, noise_rng = rng.spawn(2)
        frame = build_frame(frame_config, constellation.order, bits_rng)
        indices = frame.indices
        info = None
        if coded is not None:
            payload_mask = ~frame.pilot_mask
            layout = coded_layout(coded, int(payload_mask.sum()) * k)
            info = random_bits(bits_rng, layout.n_info)
            payload = layout.encode(info)
            indices = indices.copy()
            indices[payload_mask] = bits_to_indices(payload.reshape(-1, k))
        ch = channel(noise_rng, seq)
        received = ch.forward(constellation.points[indices])
        frames.append(
            ServingFrame(
                seq=seq,
                indices=indices,
                pilot_mask=frame.pilot_mask,
                received=received,
                info_bits=info,
            )
        )
    return frames


@dataclass
class AnnRetrainPolicy:
    """The paper's RETRAIN → EXTRACT step as a background-worker job.

    Owns this session's demapper ANN (an :class:`AESystem` — sessions must
    not share one, retraining mutates it) and the live-channel factory to
    train against.  Called with the job generator minted at trigger time;
    returns the freshly extracted :class:`HybridDemapper` the worker swaps
    in.  Deterministic: same generator ⇒ same retrained weights ⇒ same
    centroids, regardless of which worker thread runs it.
    """

    system: AESystem
    channel_factory: Callable[[np.random.Generator], Channel]
    sigma2: float
    constellation: Constellation  #: frozen transmit set (extraction fallback)
    training: TrainingConfig = field(
        default_factory=lambda: TrainingConfig(steps=600, batch_size=512, lr=2e-3)
    )
    extraction_method: str = "lsq"
    extraction_extent: float = 1.5
    extraction_resolution: int = 192

    def __call__(self, rng: np.random.Generator) -> HybridDemapper:
        channel = self.channel_factory(rng)
        ReceiverFinetuner(
            self.system, self.training, constellation=self.constellation
        ).run(channel, rng)
        return HybridDemapper.extract(
            self.system.demapper,
            self.sigma2,
            extent=self.extraction_extent,
            resolution=self.extraction_resolution,
            method=self.extraction_method,
            fallback=self.constellation,
        )


def build_fleet(
    engine: ServingEngine,
    n_sessions: int,
    hybrid: HybridDemapper,
    *,
    monitor_factory: Callable[[], DegradationMonitor],
    config: SessionConfig | None = None,
    config_factory: Callable[[int], SessionConfig] | None = None,
    retrain_factory: Callable[[int], Callable | None] | None = None,
    fault_plan: FaultPlan | None = None,
    seed: int = 0,
    prefix: str = "s",
) -> list[DemapperSession]:
    """Register ``n_sessions`` uniform sessions sharing one centroid set.

    Sharing ``hybrid`` is what makes the fleet batchable — every session's
    frames coalesce into the same multi-sigma launches until one of them
    retrains onto its own centroids.  Each session gets its own monitor
    (``monitor_factory()``), its own spawned retrain generator, and —
    optionally — its own retrain policy via ``retrain_factory(i)``.

    ``config_factory(i)`` builds a per-session config (heterogeneous QoS
    weights, σ²-loop and tracking knobs); it overrides ``config``, which
    applies one config to the whole fleet.

    ``fault_plan`` wraps every session's retrain policy with the plan's
    seeded injection (:meth:`~repro.serving.faults.FaultPlan.wrap_retrain`)
    — the chaos-soak hook.  Traffic poisoning is separate (corrupt the
    frame lists with :meth:`~repro.serving.faults.FaultPlan.corrupt_traffic`
    before submitting them).
    """
    if n_sessions < 1:
        raise ValueError("n_sessions must be >= 1")
    master = np.random.default_rng(seed)
    sessions = []
    for i in range(n_sessions):
        (session_rng,) = master.spawn(1)
        retrain = retrain_factory(i) if retrain_factory is not None else None
        if fault_plan is not None:
            retrain = fault_plan.wrap_retrain(f"{prefix}{i:03d}", retrain)
        session_config = config_factory(i) if config_factory is not None else config
        sessions.append(
            engine.add_session(
                DemapperSession(
                    f"{prefix}{i:03d}",
                    hybrid,
                    monitor_factory(),
                    config=session_config,
                    retrain=retrain,
                    rng=session_rng,
                )
            )
        )
    return sessions


def _drive(
    engine: ServingEngine,
    *,
    produce,
    complete,
    idle_ok,
    max_rounds: int | None,
    label: str,
    wait_timeout: float | None = None,
) -> EngineStats:
    """The one serve/stall pump shared by both load drivers.

    Per round: ``produce(round_index)`` feeds the engine (submissions,
    joins, removals), one engine round runs, then, in order: *completion*
    (``complete()`` true and no retrain in flight — checked before the
    guard, so a run finishing exactly on ``max_rounds`` returns instead of
    raising), the ``max_rounds`` safety bound (:class:`RuntimeError` — the
    same semantics as ``ServingEngine.drain``), and progress/stall
    classification: a served frame, an in-flight retrain (blocked on, not
    spun on), a ready session accruing fractional scheduler credit, or a
    producer-side reason to idle (``idle_ok()`` — e.g. a join/leave still
    scheduled) all count as progress; anything else is a stall and raises.
    Keeping this state machine in one place is what keeps the two drivers'
    ``max_rounds``/stall semantics identical by construction.

    ``wait_timeout`` (seconds) bounds each blocking wait for in-flight
    retrains (same semantics as ``ServingEngine.drain(timeout=)``): a job
    unfinished at expiry is abandoned and surfaces as a hung failure on the
    next round — a hung retrain slows the driver down but never wedges it.
    """
    rounds = 0
    while True:
        produce(rounds)
        served = engine.step()
        rounds += 1
        if complete() and not engine.worker.pending:
            return engine.telemetry
        if max_rounds is not None and rounds >= max_rounds:
            raise RuntimeError(
                f"{label} did not complete within max_rounds={max_rounds}"
            )
        if served:
            continue
        if engine.worker.pending:
            if engine.tracer is not None:
                engine.tracer.emit(
                    "driver.wait-retrains",
                    ts=engine.telemetry.now,
                    round=engine.telemetry.rounds,
                    pending=engine.worker.pending,
                )
            engine.telemetry.retrains_completed += engine.worker.wait_all(wait_timeout)
            continue
        if any(s.ready for s in engine.sessions):
            # a zero-served round while a fractional-weight session accrues
            # scheduler credit is still progress — keep pumping rounds
            continue
        if idle_ok():
            continue
        # Nothing served, nothing in flight, nothing scheduled: a session is
        # stuck outside SERVING with no job to wait for — fail loudly.
        raise RuntimeError(f"{label} stalled: frames pending but nothing servable")


def run_load(
    engine: ServingEngine,
    traffic: Mapping[str, Sequence[ServingFrame]],
    *,
    max_rounds: int | None = None,
    wait_timeout: float | None = None,
) -> EngineStats:
    """Feed per-session traffic through the engine until fully drained.

    Each round submits as many frames per session as its bounded queue
    accepts (rejected submissions are retried next round — backpressure
    slows the producer, it never loses frames), then serves one engine
    round.  Returns the engine telemetry once every frame is served and no
    retrain is in flight.  ``max_rounds`` is a safety bound with the same
    semantics as ``ServingEngine.drain`` and :func:`run_churn_load`: a run
    that has not completed within it raises :class:`RuntimeError` instead
    of looping forever (completing *exactly on* the bound is fine);
    ``wait_timeout`` bounds each blocking wait for in-flight retrains.

    A session that gets **quarantined** mid-run (poison frame) stops
    accepting traffic permanently, so its producer abandons the remainder
    of its list — the run completes with that traffic unsubmitted rather
    than stalling on a fenced-off queue.  Same for a session that left the
    registry entirely.
    """
    offsets = {sid: 0 for sid in traffic}

    def fenced(sid):
        return (
            not engine.has_session(sid)
            or engine.session(sid).health == QUARANTINED
        )

    def produce(_round):
        for sid, frames in traffic.items():
            if fenced(sid):
                continue
            o = offsets[sid]
            while o < len(frames) and engine.submit(sid, frames[o]):
                o += 1
            offsets[sid] = o

    def complete():
        return all(
            offsets[sid] == len(traffic[sid]) or fenced(sid) for sid in traffic
        ) and not any(s.pending for s in engine.sessions)

    return _drive(
        engine,
        produce=produce,
        complete=complete,
        idle_ok=lambda: False,
        max_rounds=max_rounds,
        label="load generator",
        wait_timeout=wait_timeout,
    )


@dataclass(frozen=True)
class SessionPlan:
    """One session's lifecycle in a churn schedule.

    The session is built (not yet registered) and joins the engine at
    ``join_round``; its producer submits ``frames`` in order with
    backpressure-aware retries from then on.  A plan with a
    ``leave_round`` departs at that round: the producer stops submitting
    (frames not yet accepted are abandoned with the producer) and
    :meth:`~repro.serving.engine.ServingEngine.remove_session` is called
    with the plan's ``drain`` flag — graceful (every accepted frame is
    still served) or hard (queued frames dropped).  Plans without a
    ``leave_round`` stay resident and are served to completion.
    """

    session: DemapperSession
    frames: Sequence[ServingFrame]
    join_round: int = 0
    leave_round: int | None = None
    drain: bool = True

    def __post_init__(self) -> None:
        if self.join_round < 0:
            raise ValueError("join_round must be >= 0")
        if self.leave_round is not None and self.leave_round <= self.join_round:
            raise ValueError("leave_round must be > join_round")


@dataclass(frozen=True)
class MigrationPlan:
    """One scheduled live migration in a fleet run.

    At the start of ``round`` (before that round's submissions),
    :func:`run_fleet_load` moves ``session_id`` to ``dest_shard`` via
    :meth:`~repro.serving.fleet.FleetFrontEnd.migrate`.  A migration whose
    session has already left (or was quarantined and removed) is skipped —
    the schedule is advisory about sessions, strict about rounds.
    """

    session_id: str
    round: int
    dest_shard: int

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError("round must be >= 0")
        if self.dest_shard < 0:
            raise ValueError("dest_shard must be >= 0")


def run_fleet_load(
    fleet,
    traffic: Mapping[str, Sequence[ServingFrame]],
    *,
    migrations: Sequence[MigrationPlan] = (),
    max_rounds: int | None = None,
    wait_timeout: float | None = None,
) -> EngineStats:
    """Feed per-session traffic through a fleet until fully drained.

    The fleet sibling of :func:`run_load`: each round first applies every
    migration due this round (in ``(round, session_id)`` order — a total
    order, so the run is a pure function of the schedule), then submits as
    much traffic per session as backpressure allows, then serves one fleet
    round (all shards).  Returns the merged fleet-wide
    :class:`EngineStats` once every frame is served, no retrain is in
    flight on any shard, and no migration remains scheduled.  Sessions
    that get quarantined or leave mid-run abandon their remaining traffic,
    exactly as in :func:`run_load`.
    """
    offsets = {sid: 0 for sid in traffic}
    due: dict[int, list[MigrationPlan]] = {}
    for plan in migrations:
        due.setdefault(plan.round, []).append(plan)
    for round_plans in due.values():
        round_plans.sort(key=lambda p: p.session_id)
    remaining_migrations = len(migrations)

    def fenced(sid):
        return (
            not fleet.has_session(sid)
            or fleet.session(sid).health == QUARANTINED
        )

    rounds = 0
    while True:
        for plan in due.pop(rounds, ()):
            remaining_migrations -= 1
            if fleet.has_session(plan.session_id):
                fleet.migrate(plan.session_id, plan.dest_shard)
        for sid, frames in traffic.items():
            if fenced(sid):
                continue
            o = offsets[sid]
            while o < len(frames) and fleet.submit(sid, frames[o]):
                o += 1
            offsets[sid] = o
        served = fleet.step()
        rounds += 1
        done = all(
            offsets[sid] == len(traffic[sid]) or fenced(sid) for sid in traffic
        ) and not any(s.pending for s in fleet.sessions)
        if done and not fleet.pending_retrains() and not remaining_migrations:
            return fleet.stats()
        if max_rounds is not None and rounds >= max_rounds:
            raise RuntimeError(
                f"fleet load did not complete within max_rounds={max_rounds}"
            )
        if served:
            continue
        if fleet.pending_retrains():
            for shard in fleet.shards:
                if shard.worker.pending:
                    shard.telemetry.retrains_completed += shard.worker.wait_all(
                        wait_timeout
                    )
            continue
        if any(s.ready for s in fleet.sessions) or remaining_migrations:
            continue  # credit accruing, or the schedule still has events
        raise RuntimeError("fleet load stalled: frames pending but nothing servable")


def run_churn_load(
    engine: ServingEngine,
    plans: Sequence[SessionPlan],
    *,
    max_rounds: int | None = None,
    wait_timeout: float | None = None,
) -> EngineStats:
    """Drive a churn schedule: sessions arrive, stream, and depart under load.

    Each round, in order: due arrivals join the engine, live producers
    submit as much traffic as their bounded queues accept (rejected
    submissions are retried next round), due departures request removal
    (graceful or hard per the plan), then one engine round is served.
    Returns the engine telemetry once every plan has run its course —
    residents fully served, leavers fully removed — and no retrain is in
    flight.  ``max_rounds`` bounds the loop (RuntimeError beyond it).

    Determinism: traffic content is fixed by :func:`generate_traffic`
    before the run, and join/leave rounds are part of the schedule — so
    the whole run, churn included, is a pure function of the plans.  A
    resident plan whose session gets **quarantined** mid-run counts as
    settled with its remaining traffic abandoned (the producer has no live
    queue left to feed) — the fault analogue of a leaver.
    """
    offsets = [0] * len(plans)
    joined = [False] * len(plans)
    leave_requested = [False] * len(plans)

    def produce(rounds):
        for i, plan in enumerate(plans):
            if not joined[i] and rounds >= plan.join_round:
                engine.add_session(plan.session)
                joined[i] = True
            if not joined[i] or leave_requested[i]:
                continue
            if plan.leave_round is not None and rounds >= plan.leave_round:
                engine.remove_session(plan.session.session_id, drain=plan.drain)
                leave_requested[i] = True
                continue
            if plan.session.health == QUARANTINED:
                continue  # fenced off: every further submit is a refusal
            o = offsets[i]
            frames = plan.frames
            while o < len(frames) and engine.submit(plan.session.session_id, frames[o]):
                o += 1
            offsets[i] = o

    def settled(i, plan):
        # a leaver is settled only once its leave *happened* and it is out
        # of the registry — even if its traffic ran dry before leave_round,
        # the schedule says it departs at that round, so the loop idles
        # until then instead of returning with a phantom resident
        if plan.leave_round is not None:
            return leave_requested[i] and all(
                s.session_id != plan.session.session_id for s in engine.sessions
            )
        if joined[i] and plan.session.health == QUARANTINED:
            return True  # fenced off: remaining traffic is abandoned
        return (
            joined[i]
            and offsets[i] == len(plan.frames)
            and plan.session.pending == 0
        )

    def pending_schedule(i, plan):
        return not joined[i] or (plan.leave_round is not None and not leave_requested[i])

    return _drive(
        engine,
        produce=produce,
        complete=lambda: all(settled(i, p) for i, p in enumerate(plans)),
        idle_ok=lambda: any(pending_schedule(i, p) for i, p in enumerate(plans)),
        max_rounds=max_rounds,
        label="churn load",
        wait_timeout=wait_timeout,
    )
