"""Cross-session micro-batching: coalesce pending frames into kernel launches.

One serving round takes the head frame of every ready session (at most one
frame per session per round, preserving each session's frame order) and
partitions them into :class:`MicroBatch` groups via the backend's
group-by-constellation dispatch (:mod:`repro.backend.dispatch`): frames
whose sessions share a centroid point set, bit labelling and frame length
ride one fused ``maxlog_llrs_multi`` launch with a per-session σ² vector.

Batch composition therefore varies with queue fill, ``max_batch`` and which
sessions happen to be retraining — but on the default backend tier the
multi-sigma kernel's rows are bit-identical to sequential per-frame calls,
so *what* each session receives never depends on *who it was batched with*.
That is the invariance the serving determinism tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.backend.dispatch import DemapRequest, group_requests
from repro.serving.session import DemapperSession, ServingFrame

__all__ = ["MicroBatch", "collect_microbatches"]


def _session_request(session: DemapperSession, frame: ServingFrame) -> DemapRequest:
    """The one place a (session, frame) pair becomes a dispatch request —
    grouping keys and the dispatched work can never diverge."""
    return DemapRequest(
        received=frame.received,
        points=session.hybrid.constellation.points,
        bitsets=session.hybrid.core.bitsets,
        sigma2=session.sigma2,
    )


@dataclass(frozen=True)
class MicroBatch:
    """Frames (one per session) sharing a point set, labelling and length.

    ``requests`` are the dispatch requests the batch was *grouped by*,
    built once at collect time (row order = batch order).
    """

    sessions: tuple[DemapperSession, ...]
    frames: tuple[ServingFrame, ...]
    requests: tuple[DemapRequest, ...]

    @property
    def occupancy(self) -> int:
        """Frames coalesced into this batch's kernel launch."""
        return len(self.frames)

    @property
    def n_symbols(self) -> int:
        return sum(f.n_symbols for f in self.frames)


def collect_microbatches(
    sessions: Sequence[DemapperSession],
    *,
    max_batch: int = 64,
) -> list[MicroBatch]:
    """Pull one head frame per ready session and group into micro-batches.

    Sessions are visited in the given (registration) order; a session that
    is RETRAINING or has an empty queue contributes nothing this round.
    Groups larger than ``max_batch`` are split, preserving order, so one
    launch never exceeds the configured coalescing width.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    ready = [s for s in sessions if s.ready]
    if not ready:
        return []
    frames = [s.pop() for s in ready]
    requests = [_session_request(s, f) for s, f in zip(ready, frames)]
    batches: list[MicroBatch] = []
    for members in group_requests(requests):
        for start in range(0, len(members), max_batch):
            part = members[start : start + max_batch]
            batches.append(
                MicroBatch(
                    sessions=tuple(ready[i] for i in part),
                    frames=tuple(frames[i] for i in part),
                    requests=tuple(requests[i] for i in part),
                )
            )
    return batches
