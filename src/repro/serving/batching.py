"""Cross-session micro-batching: coalesce pending frames into kernel launches.

A serving round's scheduler (:mod:`repro.serving.scheduler`) decides *which*
frames leave which queues; this module decides *how they share kernels*:
:func:`coalesce` partitions the pulled ``(session, frame, enqueue-tick)``
triples into :class:`MicroBatch` groups via the backend's
group-by-constellation dispatch (:mod:`repro.backend.dispatch`): frames
whose sessions share a centroid point set, bit labelling and frame length
ride one fused ``maxlog_llrs_multi`` launch with a per-session σ² vector.

Batch composition therefore varies with queue fill, ``max_batch``,
scheduler weights and which sessions happen to be retraining — but on the
default backend tier the multi-sigma kernel's rows are bit-identical to
sequential per-frame calls, so *what* each session receives never depends
on *who it was batched with*.  That is the invariance the serving
determinism tests pin down.

:func:`collect_microbatches` is the one-frame-per-ready-session pull of the
pre-scheduler engine, kept as a convenience for tests and direct users; the
engine itself pops frames according to scheduler quotas and calls
:func:`coalesce` per serving wave (a wave holds at most one frame per
session, preserving each session's frame order *and* its per-frame state
updates — σ², monitor, tier ladder — between consecutive frames).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.backend.dispatch import DemapRequest, group_requests
from repro.serving.session import DemapperSession, ServingFrame

__all__ = ["MicroBatch", "coalesce", "collect_microbatches"]


def _session_request(session: DemapperSession, frame: ServingFrame) -> DemapRequest:
    """The one place a (session, frame) pair becomes a dispatch request —
    grouping keys and the dispatched work can never diverge."""
    return DemapRequest(
        received=frame.received,
        points=session.hybrid.constellation.points,
        bitsets=session.hybrid.core.bitsets,
        sigma2=session.sigma2,
    )


@dataclass(frozen=True)
class MicroBatch:
    """Frames (one per session) sharing a point set, labelling and length.

    ``requests`` are the dispatch requests the batch was *grouped by*,
    built once at collect time (row order = batch order); ``enqueued_at``
    holds each frame's submission tick on the engine's simulated clock (for
    the queue-wait histogram).
    """

    sessions: tuple[DemapperSession, ...]
    frames: tuple[ServingFrame, ...]
    requests: tuple[DemapRequest, ...]
    enqueued_at: tuple[int, ...]

    @property
    def occupancy(self) -> int:
        """Frames coalesced into this batch's kernel launch."""
        return len(self.frames)

    @property
    def n_symbols(self) -> int:
        return sum(f.n_symbols for f in self.frames)


def coalesce(
    pulls: Sequence[tuple[DemapperSession, ServingFrame, int]],
    *,
    max_batch: int = 64,
) -> list[MicroBatch]:
    """Group already-pulled ``(session, frame, enqueue-tick)`` triples.

    Requests are grouped by constellation content/labelling/length in pull
    order; groups larger than ``max_batch`` are split, preserving order, so
    one launch never exceeds the configured coalescing width.  The caller
    guarantees at most one frame per session per call (the engine's wave
    loop; violating that would let one launch serve two frames of a session
    with identical — stale — σ² and centroid state).
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    if not pulls:
        return []
    requests = [_session_request(s, f) for s, f, _ in pulls]
    batches: list[MicroBatch] = []
    for members in group_requests(requests):
        for start in range(0, len(members), max_batch):
            part = members[start : start + max_batch]
            batches.append(
                MicroBatch(
                    sessions=tuple(pulls[i][0] for i in part),
                    frames=tuple(pulls[i][1] for i in part),
                    requests=tuple(requests[i] for i in part),
                    enqueued_at=tuple(pulls[i][2] for i in part),
                )
            )
    return batches


def collect_microbatches(
    sessions: Sequence[DemapperSession],
    *,
    max_batch: int = 64,
) -> list[MicroBatch]:
    """Pull one head frame per ready session and group into micro-batches.

    Sessions are visited in the given (registration) order; a session that
    is RETRAINING or has an empty queue contributes nothing this round.
    This is the unweighted pull of the pre-scheduler engine — the engine
    now allocates via deficit round robin and calls :func:`coalesce`
    directly, but the semantics for a uniform weight-1 fleet are identical.
    """
    if max_batch < 1:
        raise ValueError("max_batch must be >= 1")
    pulls = [(s, *s.pop()) for s in sessions if s.ready]
    return coalesce(pulls, max_batch=max_batch)
