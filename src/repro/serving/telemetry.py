"""Serving counters — per-session and engine-level observability.

The serving engine is the first subsystem where throughput and the paper's
adaptation loop meet, so its telemetry spans both worlds: per-session link
quality (pilot-BER trajectory, retrain events — the §II-C monitoring story)
and engine-level efficiency (frames/symbols served, micro-batch occupancy —
whether cross-session coalescing is actually filling the fused kernels).

Everything here is plain counters updated from the engine thread; snapshots
are cheap dict copies safe to hand to logging/benchmark code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ServedFrame", "SessionStats", "EngineStats"]


@dataclass(frozen=True)
class ServedFrame:
    """Per-frame serving report (the serving analogue of ``FrameReport``)."""

    session_id: str
    seq: int
    pilot_ber: float
    payload_ber: float
    fired: bool          #: monitor trigger on this frame
    monitor_level: float


@dataclass
class SessionStats:
    """Lifetime counters of one session.

    ``pilot_ber_trajectory`` holds one entry per served frame in frame
    order — together with ``trigger_seqs`` it is the session's adaptation
    timeline (the determinism tests assert it is invariant to batching,
    queue depth and worker count).
    """

    frames_served: int = 0
    symbols_served: int = 0
    retrains: int = 0
    #: submissions rejected by backpressure (queue full); producers may
    #: retry, so this counts *rejection events*, not lost frames
    rejects: int = 0
    trigger_seqs: list[int] = field(default_factory=list)
    pilot_ber_trajectory: list[float] = field(default_factory=list)

    def record_frame(self, seq: int, n_symbols: int, pilot_ber: float, fired: bool) -> None:
        self.frames_served += 1
        self.symbols_served += n_symbols
        self.pilot_ber_trajectory.append(pilot_ber)
        if fired:
            self.trigger_seqs.append(seq)

    def snapshot(self) -> dict:
        """Plain-dict copy (lists copied) for logging/JSON."""
        return {
            "frames_served": self.frames_served,
            "symbols_served": self.symbols_served,
            "retrains": self.retrains,
            "rejects": self.rejects,
            "trigger_seqs": list(self.trigger_seqs),
            "pilot_ber_trajectory": list(self.pilot_ber_trajectory),
        }


@dataclass
class EngineStats:
    """Engine-level counters.

    ``occupancy`` maps micro-batch size (frames coalesced into one kernel
    launch) to how many launches had that size — the histogram that tells
    whether cross-session batching is working (all-ones means every launch
    served a single session and the multi-sigma kernel bought nothing).
    """

    rounds: int = 0
    batches: int = 0
    frames_served: int = 0
    symbols_served: int = 0
    retrains_started: int = 0
    retrains_completed: int = 0
    occupancy: dict[int, int] = field(default_factory=dict)

    def record_batch(self, n_frames: int, n_symbols: int) -> None:
        self.batches += 1
        self.frames_served += n_frames
        self.symbols_served += n_symbols
        self.occupancy[n_frames] = self.occupancy.get(n_frames, 0) + 1

    @property
    def mean_occupancy(self) -> float:
        """Average frames per kernel launch (NaN before the first batch)."""
        return self.frames_served / self.batches if self.batches else float("nan")

    def snapshot(self) -> dict:
        """Plain-dict copy for logging/JSON (occupancy keys sorted)."""
        return {
            "rounds": self.rounds,
            "batches": self.batches,
            "frames_served": self.frames_served,
            "symbols_served": self.symbols_served,
            "retrains_started": self.retrains_started,
            "retrains_completed": self.retrains_completed,
            "mean_occupancy": self.mean_occupancy,
            "occupancy": {k: self.occupancy[k] for k in sorted(self.occupancy)},
        }
