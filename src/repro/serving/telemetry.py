"""Serving counters — per-session and engine-level observability.

The serving engine is the first subsystem where throughput and the paper's
adaptation loop meet, so its telemetry spans both worlds: per-session link
quality (pilot-BER trajectory, σ² trajectory, adaptation-tier timeline —
the §II-C monitoring story) and engine-level efficiency (frames/symbols
served, micro-batch occupancy, queue-wait / service-time latency
histograms — whether cross-session coalescing is actually filling the
fused kernels, and what the tail looks like while it does).

**Simulated clock.**  Latency is measured in *symbol ticks*: the engine's
clock is the cumulative number of symbols it has served (the work-conserving
clock of a fixed-rate hardware demapper).  A frame's ``queue_wait`` is the
symbols the engine served between the frame's submission and the start of
its batch; its ``service_time`` is the symbols of the launch that carried it
(a frame riding a wide coalesced batch completes with its whole batch).
Both are pure functions of the seeded traffic, the weights and the batch
composition — histograms are reproducible run to run, which is what makes
them assertable in tests and comparable across benchmark commits.

Everything here is plain counters updated from the engine thread; snapshots
are cheap dict copies safe to hand to logging/benchmark code.

**Snapshot schema.**  Every serving snapshot — ``EngineStats.snapshot()``,
``SessionStats.snapshot()``, ``obs_report.export_run`` and
``FleetFrontEnd.snapshot()`` — carries the one shared
:data:`SCHEMA_VERSION` so exporters and ``check_bench.py`` can evolve the
contract without guessing.  Both stats classes also re-register every
field through a :class:`~repro.serving.observability.metrics.
MetricsRegistry` via :meth:`register_metrics` (live callback views —
nothing is double-counted and no ``snapshot()`` consumer changes).

**Coded traffic.**  Sessions declaring a
:class:`~repro.serving.coding.CodedFrameConfig` add a decode dimension:
``frames_decoded``/``crc_failures`` counters, the per-frame post-FEC BER
trajectory, the CRC-failure sequence list, and the derived
``frame_error_rate`` — all per-session in frame order (so they are part of
the determinism contract) plus fleet-wide on :class:`EngineStats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "SCHEMA_VERSION",
    "ServedFrame",
    "SessionStats",
    "EngineStats",
    "LatencyHistogram",
]

#: The one snapshot/export schema version shared by ``EngineStats``,
#: ``SessionStats``, ``obs_report.export_run`` and
#: ``FleetFrontEnd.snapshot()``: 1 = PR 3 counters, 2 = churn/control-plane
#: era, 3 = fault era (failure summary, health counters, quarantine
#: counts), 4 = fleet era (migration counters, merged fleet snapshots, one
#: unified version across engine snapshots and run exports), 5 = coded era
#: (decode counters, FER, post-FEC BER trajectory, CRC-failure seqs).
SCHEMA_VERSION = 5

#: Backwards-compatible alias (pre-fleet name for the same constant).
SNAPSHOT_SCHEMA = SCHEMA_VERSION

#: SessionStats integer counters, in snapshot order — the fields
#: :meth:`SessionStats.register_metrics` exposes as live counters.
_SESSION_COUNTER_FIELDS = (
    "frames_served",
    "symbols_served",
    "retrains",
    "tracks",
    "rejects",
    "drain_refusals",
    "frames_dropped",
    "frames_quarantined",
    "retrain_failures",
    "quarantine_refusals",
    "poison_rejected",
    "frames_decoded",
    "crc_failures",
)

#: EngineStats integer counters, in snapshot order.
_ENGINE_COUNTER_FIELDS = (
    "rounds",
    "batches",
    "frames_served",
    "symbols_served",
    "retrains_started",
    "retrains_completed",
    "retrains_orphaned",
    "retrain_failures",
    "retrains_hung",
    "retrains_retried",
    "sessions_degraded",
    "sessions_quarantined",
    "frames_quarantined",
    "tracks",
    "joins",
    "leaves",
    "drains_started",
    "drains_completed",
    "frames_dropped",
    "migrations_in",
    "migrations_out",
    "frames_decoded",
    "crc_failures",
)


@dataclass(frozen=True)
class ServedFrame:
    """Per-frame serving report (the serving analogue of ``FrameReport``).

    ``tier`` is the adaptation tier the frame's monitor trigger escalated
    to (``"track"``/``"retrain"``), or None when nothing fired; ``sigma2``
    is the session's noise estimate *after* this frame's in-loop pilot
    update.  ``queue_wait``/``service_time`` are simulated-clock symbol
    ticks (see the module docstring).

    Coded sessions additionally carry the decode verdict: ``crc_ok`` is
    the frame's CRC check (None for uncoded traffic) and ``post_fec_ber``
    the information-bit error rate after FEC (NaN when uncoded or when the
    frame carried no truth bits).  A failed CRC does *not* make the frame
    dropped — it is served-with-decode-failure and stays in the served leg
    of the conservation ledger.
    """

    session_id: str
    seq: int
    pilot_ber: float
    payload_ber: float
    fired: bool          #: monitor trigger on this frame
    monitor_level: float
    tier: str | None = None
    sigma2: float = float("nan")
    queue_wait: int = 0
    service_time: int = 0
    crc_ok: bool | None = None
    post_fec_ber: float = float("nan")


class LatencyHistogram:
    """Power-of-two bucketed histogram of simulated-clock tick counts.

    Bucket ``b`` counts observations in ``[2^(b-1), 2^b)`` (bucket 0 counts
    exact zeros), so a histogram over millions of frames stays a handful of
    integers while preserving the shape of the tail.  Exact mean and count
    are tracked alongside; :meth:`quantile` returns the conservative upper
    bound of the bucket containing the requested rank.
    """

    __slots__ = ("_buckets", "count", "total")

    def __init__(self) -> None:
        self._buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0

    def record(self, ticks: int) -> None:
        if ticks < 0:
            raise ValueError("ticks must be >= 0")
        b = int(ticks).bit_length()
        self._buckets[b] = self._buckets.get(b, 0) + 1
        self.count += 1
        self.total += int(ticks)

    @property
    def mean(self) -> float:
        """Exact mean of recorded ticks (NaN while empty)."""
        return self.total / self.count if self.count else float("nan")

    def quantile(self, q: float) -> int:
        """Upper bound of the bucket holding the ``q``-quantile observation.

        Conservative (never under-reports): the true quantile lies at or
        below the returned tick count.  Returns 0 for an empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.count:
            return 0
        rank = q * self.count
        seen = 0
        for b in sorted(self._buckets):
            seen += self._buckets[b]
            if seen >= rank:
                return (1 << b) - 1 if b else 0
        return (1 << max(self._buckets)) - 1  # pragma: no cover — q=1 hits above

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram's observations into this one (in place).

        Equivalent to having recorded the other histogram's observations
        here (bucket-exactly: both use the same power-of-two bucketing), so
        per-shard snapshots can be combined into a fleet-wide view without
        re-observing.  Returns ``self`` for chaining.
        """
        for b, n in other._buckets.items():
            self._buckets[b] = self._buckets.get(b, 0) + n
        self.count += other.count
        self.total += other.total
        return self

    def snapshot(self) -> dict:
        """Plain-dict copy: count, total, mean, p50/p99, bucket upper bounds."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": {
                ((1 << b) - 1 if b else 0): self._buckets[b]
                for b in sorted(self._buckets)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover
        return f"LatencyHistogram(count={self.count}, mean={self.mean:.1f})"


@dataclass
class SessionStats:
    """Lifetime counters of one session.

    ``pilot_ber_trajectory`` and ``sigma2_trajectory`` hold one entry per
    served frame in frame order — together with ``trigger_seqs`` and
    ``tier_timeline`` they are the session's adaptation timeline (the
    determinism tests assert all four are invariant to batching, queue
    depth, worker count and scheduler weights).
    """

    frames_served: int = 0
    symbols_served: int = 0
    retrains: int = 0
    #: rigid centroid-tracking updates applied (the cheap adaptation tier)
    tracks: int = 0
    #: submissions rejected by backpressure (queue full); producers may
    #: retry, so this counts *rejection events*, not lost frames
    rejects: int = 0
    #: submissions refused because the session was draining (leaving the
    #: engine); unlike ``rejects`` these are final — retrying cannot help
    drain_refusals: int = 0
    #: queued frames discarded by a hard ``remove_session(drain=False)``
    frames_dropped: int = 0
    #: frames fenced off by a quarantine: the poison frame that tripped the
    #: post-demap guard plus every frame queued behind it — accepted but
    #: never demapped, the third leg of the conservation ledger
    frames_quarantined: int = 0
    #: retrain jobs for this session that raised or hung (each one also has
    #: a :class:`FailureRecord` in ``EngineStats.failure_log``)
    retrain_failures: int = 0
    #: submissions refused because the session is quarantined (final, like
    #: drain refusals — the frame was never accepted)
    quarantine_refusals: int = 0
    #: submissions refused by the opt-in ``validate_frames`` finite check
    poison_rejected: int = 0
    #: served frames that went through the FEC decode path (coded sessions
    #: only — equals ``frames_served`` there, 0 for uncoded traffic)
    frames_decoded: int = 0
    #: decoded frames whose CRC check failed — served-with-decode-failure,
    #: still in the served leg of the conservation ledger, never dropped
    crc_failures: int = 0
    trigger_seqs: list[int] = field(default_factory=list)
    #: ``(seq, tier)`` per trigger that got an adaptation response
    tier_timeline: list[tuple[int, str]] = field(default_factory=list)
    pilot_ber_trajectory: list[float] = field(default_factory=list)
    #: session σ² estimate after each served frame's in-loop pilot update
    sigma2_trajectory: list[float] = field(default_factory=list)
    #: seqs of decoded frames whose CRC failed (frame order, like
    #: ``trigger_seqs`` — part of the coded determinism contract)
    crc_fail_seqs: list[int] = field(default_factory=list)
    #: post-FEC information-bit error rate per decoded frame, frame order
    post_fec_ber_trajectory: list[float] = field(default_factory=list)
    #: this session's own queue-wait histogram (symbol ticks) — the signal
    #: the engine's :class:`~repro.serving.weights.WeightController` steers
    #: scheduler weights from
    queue_wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    #: ``(engine tick, new weight)`` per adaptive-weight change applied to
    #: this session (empty when no controller is installed)
    weight_timeline: list[tuple[int, float]] = field(default_factory=list)
    #: ``(engine tick, health)`` per health transition (HEALTHY is implicit
    #: at birth — the timeline only logs changes)
    health_timeline: list[tuple[int, str]] = field(default_factory=list)

    def record_frame(
        self,
        seq: int,
        n_symbols: int,
        pilot_ber: float,
        fired: bool,
        *,
        tier: str | None = None,
        sigma2: float = float("nan"),
        crc_ok: bool | None = None,
        post_fec_ber: float = float("nan"),
    ) -> None:
        self.frames_served += 1
        self.symbols_served += n_symbols
        self.pilot_ber_trajectory.append(pilot_ber)
        self.sigma2_trajectory.append(sigma2)
        if fired:
            self.trigger_seqs.append(seq)
        if tier is not None:
            self.tier_timeline.append((seq, tier))
        if crc_ok is not None:
            self.frames_decoded += 1
            self.post_fec_ber_trajectory.append(post_fec_ber)
            if not crc_ok:
                self.crc_failures += 1
                self.crc_fail_seqs.append(seq)

    @property
    def frame_error_rate(self) -> float:
        """Post-FEC FER: CRC failures per decoded frame (NaN before any)."""
        return (
            self.crc_failures / self.frames_decoded
            if self.frames_decoded
            else float("nan")
        )

    def register_metrics(
        self,
        registry,
        *,
        labels: dict | None = None,
        prefix: str = "serving_session_",
    ) -> None:
        """Expose every counter through a ``MetricsRegistry`` as live views.

        Callback-backed registration: scrapes read current values straight
        off this object, nothing is double-counted, and ``snapshot()``
        consumers are untouched.  Re-registering (e.g. a reused session id
        after churn) rebinds the views to the new object.
        """
        labels = dict(labels or {})
        for name in _SESSION_COUNTER_FIELDS:
            registry.counter(prefix + name, labels, fn=lambda f=name: getattr(self, f))
        registry.histogram(prefix + "queue_wait", labels, source=lambda: self.queue_wait)
        registry.gauge(prefix + "triggers", labels, fn=lambda: len(self.trigger_seqs))
        registry.gauge(prefix + "fer", labels, fn=lambda: self.frame_error_rate)

    def snapshot(self) -> dict:
        """Plain-dict copy (lists copied) for logging/JSON."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "frames_served": self.frames_served,
            "symbols_served": self.symbols_served,
            "retrains": self.retrains,
            "tracks": self.tracks,
            "rejects": self.rejects,
            "drain_refusals": self.drain_refusals,
            "frames_dropped": self.frames_dropped,
            "frames_quarantined": self.frames_quarantined,
            "retrain_failures": self.retrain_failures,
            "quarantine_refusals": self.quarantine_refusals,
            "poison_rejected": self.poison_rejected,
            "frames_decoded": self.frames_decoded,
            "crc_failures": self.crc_failures,
            "frame_error_rate": self.frame_error_rate,
            "trigger_seqs": list(self.trigger_seqs),
            "tier_timeline": list(self.tier_timeline),
            "pilot_ber_trajectory": list(self.pilot_ber_trajectory),
            "sigma2_trajectory": list(self.sigma2_trajectory),
            "crc_fail_seqs": list(self.crc_fail_seqs),
            "post_fec_ber_trajectory": list(self.post_fec_ber_trajectory),
            "queue_wait": self.queue_wait.snapshot(),
            "weight_timeline": list(self.weight_timeline),
            "health_timeline": list(self.health_timeline),
        }


@dataclass
class EngineStats:
    """Engine-level counters.

    ``occupancy`` maps micro-batch size (frames coalesced into one kernel
    launch) to how many launches had that size — the histogram that tells
    whether cross-session batching is working (all-ones means every launch
    served a single session and the multi-sigma kernel bought nothing).
    ``queue_wait``/``service_time`` are per-frame latency histograms in
    simulated symbol ticks; ``symbols_served`` doubles as the simulated
    clock (see the module docstring).
    """

    rounds: int = 0
    batches: int = 0
    frames_served: int = 0
    symbols_served: int = 0
    retrains_started: int = 0
    retrains_completed: int = 0
    #: retrain jobs whose session was removed before the job landed — the
    #: result is discarded instead of installed (hard churn during retrain)
    retrains_orphaned: int = 0
    #: retrain jobs that raised or hung, fleet-wide (every one also appends
    #: a record to ``failure_log`` — the satellite fix for the old poll()
    #: keeping only the first exception)
    retrain_failures: int = 0
    #: the subset of failures that were hung jobs (deadline expiry or a
    #: wait-timeout abandonment) rather than raising jobs
    retrains_hung: int = 0
    #: supervised retry submissions (backed-off re-launches after a failure)
    retrains_retried: int = 0
    #: sessions whose circuit breaker opened (moved to DEGRADED)
    sessions_degraded: int = 0
    #: sessions fenced off by the post-demap non-finite guard
    sessions_quarantined: int = 0
    #: frames fenced off fleet-wide (poison frames + frames queued behind them)
    frames_quarantined: int = 0
    #: tracking-tier responses applied across the fleet
    tracks: int = 0
    #: sessions registered over the engine's lifetime (incl. the initial fleet)
    joins: int = 0
    #: sessions fully removed (drained sessions count here once the drain ends)
    leaves: int = 0
    #: graceful removals requested (``remove_session(drain=True)``)
    drains_started: int = 0
    #: graceful removals whose queue fully drained and left the engine
    drains_completed: int = 0
    #: queued frames discarded by hard removals across the fleet
    frames_dropped: int = 0
    #: sessions adopted from another shard (``import_session``) — counted
    #: as a join too, so join/leave conservation still balances per shard
    migrations_in: int = 0
    #: sessions handed over to another shard (``export_session``) — counted
    #: as a leave too; nothing is dropped on this path
    migrations_out: int = 0
    #: served frames routed through the FEC decode path, fleet-wide
    frames_decoded: int = 0
    #: decoded frames whose CRC failed, fleet-wide (served, never dropped)
    crc_failures: int = 0
    #: ``(engine tick, live session count)`` per join/leave — the fleet-size
    #: timeline; churn soaks assert against it, dashboards plot it
    fleet_timeline: list[tuple[int, int]] = field(default_factory=list)
    #: every retrain failure / hang / poison event as a
    #: :class:`~repro.serving.faults.FailureRecord` — the complete fault
    #: ledger, in engine order (deterministic under a seeded FaultPlan)
    failure_log: list = field(default_factory=list)
    #: ``(engine tick, session id, health)`` per fleet health transition —
    #: the engine-level mirror of each session's own ``health_timeline``
    health_timeline: list[tuple[int, str, str]] = field(default_factory=list)
    occupancy: dict[int, int] = field(default_factory=dict)
    queue_wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    service_time: LatencyHistogram = field(default_factory=LatencyHistogram)

    @property
    def now(self) -> int:
        """The simulated clock: total symbol ticks served so far."""
        return self.symbols_served

    def record_batch(
        self, n_frames: int, n_symbols: int, *, launched: int | None = None
    ) -> None:
        """Account one kernel launch.

        ``n_frames``/``n_symbols`` are the frames *credited as served* (a
        quarantined row is launched but never served); ``launched`` keys the
        occupancy histogram with the true launch width when the two differ.
        """
        self.batches += 1
        self.frames_served += n_frames
        self.symbols_served += n_symbols
        width = n_frames if launched is None else launched
        self.occupancy[width] = self.occupancy.get(width, 0) + 1

    def record_fleet_size(self, size: int) -> None:
        """Append one fleet-size sample at the current simulated tick.

        Consecutive joins/leaves within one tick each get their own entry
        (the timeline is an event log, not a deduplicated series) so a soak
        can reconstruct the exact churn order.
        """
        self.fleet_timeline.append((self.now, size))

    @property
    def mean_occupancy(self) -> float:
        """Average frames per kernel launch (NaN before the first batch)."""
        return self.frames_served / self.batches if self.batches else float("nan")

    def failure_summary(self) -> dict:
        """The failure log aggregated: total plus per-kind/per-action counts.

        The compact form for dashboards and snapshots — the full per-record
        ledger stays in ``failure_log``.
        """
        by_kind: dict[str, int] = {}
        by_action: dict[str, int] = {}
        for r in self.failure_log:
            d = r.as_dict() if hasattr(r, "as_dict") else dict(r)
            kind = str(d.get("kind"))
            action = str(d.get("action"))
            by_kind[kind] = by_kind.get(kind, 0) + 1
            by_action[action] = by_action.get(action, 0) + 1
        return {
            "total": len(self.failure_log),
            "by_kind": {k: by_kind[k] for k in sorted(by_kind)},
            "by_action": {k: by_action[k] for k in sorted(by_action)},
        }

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Fold another engine's stats into this one (in place).

        The fleet aggregation primitive: counters add, the occupancy
        histogram adds bucket-wise, latency histograms merge bucket-exactly
        (:meth:`LatencyHistogram.merge`), and the event ledgers
        (fleet/health timelines, failure log) concatenate — each shard's
        ledger is internally ordered on its own simulated clock, so the
        concatenation is a per-shard-ordered union, not a global total
        order.  Returns ``self`` for chaining.
        """
        for name in _ENGINE_COUNTER_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        for width, n in other.occupancy.items():
            self.occupancy[width] = self.occupancy.get(width, 0) + n
        self.queue_wait.merge(other.queue_wait)
        self.service_time.merge(other.service_time)
        self.fleet_timeline.extend(other.fleet_timeline)
        self.failure_log.extend(other.failure_log)
        self.health_timeline.extend(other.health_timeline)
        return self

    def register_metrics(
        self,
        registry,
        *,
        labels: dict | None = None,
        prefix: str = "serving_engine_",
    ) -> None:
        """Expose every engine counter/histogram through a ``MetricsRegistry``.

        Live callback views over this object (see
        ``SessionStats.register_metrics``); the latency histograms are
        source-backed so a scrape sees the same buckets ``snapshot()`` does.
        """
        labels = dict(labels or {})
        for name in _ENGINE_COUNTER_FIELDS:
            registry.counter(prefix + name, labels, fn=lambda f=name: getattr(self, f))
        registry.counter(prefix + "failures", labels, fn=lambda: len(self.failure_log))
        registry.gauge(prefix + "mean_occupancy", labels, fn=lambda: self.mean_occupancy)
        registry.histogram(prefix + "queue_wait", labels, source=lambda: self.queue_wait)
        registry.histogram(
            prefix + "service_time", labels, source=lambda: self.service_time
        )

    def snapshot(self) -> dict:
        """Plain-dict copy for logging/JSON (occupancy keys sorted)."""
        return {
            "schema": SNAPSHOT_SCHEMA,
            "rounds": self.rounds,
            "batches": self.batches,
            "frames_served": self.frames_served,
            "symbols_served": self.symbols_served,
            "retrains_started": self.retrains_started,
            "retrains_completed": self.retrains_completed,
            "retrains_orphaned": self.retrains_orphaned,
            "retrain_failures": self.retrain_failures,
            "retrains_hung": self.retrains_hung,
            "retrains_retried": self.retrains_retried,
            "sessions_degraded": self.sessions_degraded,
            "sessions_quarantined": self.sessions_quarantined,
            "frames_quarantined": self.frames_quarantined,
            "tracks": self.tracks,
            "joins": self.joins,
            "leaves": self.leaves,
            "drains_started": self.drains_started,
            "drains_completed": self.drains_completed,
            "frames_dropped": self.frames_dropped,
            "migrations_in": self.migrations_in,
            "migrations_out": self.migrations_out,
            "frames_decoded": self.frames_decoded,
            "crc_failures": self.crc_failures,
            "fleet_timeline": list(self.fleet_timeline),
            "failure_log": [
                r.as_dict() if hasattr(r, "as_dict") else dict(r)
                for r in self.failure_log
            ],
            "failure_summary": self.failure_summary(),
            "health_timeline": list(self.health_timeline),
            "mean_occupancy": self.mean_occupancy,
            "occupancy": {k: self.occupancy[k] for k in sorted(self.occupancy)},
            "queue_wait": self.queue_wait.snapshot(),
            "service_time": self.service_time.snapshot(),
        }
