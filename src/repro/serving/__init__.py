"""Multi-session streaming demapper runtime with cross-session micro-batching.

The paper's deployment story at fleet scale: after (re)training, each live
stream is served by a cheap centroid-driven conventional demapper while
pilot/ECC monitors decide when to retrain (§II-C).  This package turns that
into an online, *self-adapting* serving system:

* :mod:`repro.serving.session` — per-session receiver state machines
  (demapper + monitor + bounded frame queue + own σ² estimate + tiered
  adaptation ladder);
* :mod:`repro.serving.scheduler` — QoS-weighted deficit-round-robin frame
  scheduling (per-session ``SessionConfig.weight``, burst-capped credit);
* :mod:`repro.serving.weights` — SLO-driven adaptive weights: a
  ``WeightController`` steers each session's live scheduler share from its
  own queue-wait histogram (boost on missed SLO, decay back when healthy);
* :mod:`repro.serving.batching` — cross-session micro-batching onto the
  multi-sigma backend kernels (sessions sharing a centroid set share one
  fused launch);
* :mod:`repro.serving.config` — ``EngineConfig``, the one frozen
  construction config an engine (or every shard of a fleet) is built from;
* :mod:`repro.serving.coding` — coded traffic: ``CodedFrameConfig``
  declares a session's payload as an interleaved, CRC-protected
  convolutional codeword; the shared ``CodedLayout`` (via
  ``coded_layout``) owns the encode/decode geometry — one trellis table
  set and one interleaver permutation per (config, frame shape) fleet-wide;
* :mod:`repro.serving.engine` — the serving loop: schedule, coalesce,
  demap, estimate σ², monitor, climb the adaptation ladder
  (track → retrain);
* :mod:`repro.serving.fleet` — ``FleetFrontEnd``: N engine shards behind
  one facade, with constellation-affinity placement, live migration
  (drain-handover, zero frame loss) and fleet-merged telemetry;
* :mod:`repro.serving.worker` — background retrain/re-extract jobs with
  atomic per-session demapper swaps (no global stall); every job failure
  surfaces as an outcome, never a raise, and waits are boundable;
* :mod:`repro.serving.faults` — the fault-tolerance layer: session health
  (HEALTHY / DEGRADED / QUARANTINED), the ``RetrainSupervisor``
  retry/backoff/circuit-breaker policy, poison-frame quarantine, and the
  seeded ``FaultPlan`` chaos-injection harness;
* :mod:`repro.serving.loadgen` — deterministic seeded traffic over the
  channel-zoo factories, including churn schedules (``SessionPlan`` /
  ``run_churn_load``) and fleet runs with scheduled migrations
  (``MigrationPlan`` / ``run_fleet_load``);
* :mod:`repro.serving.telemetry` — per-session and engine-level counters
  (frames, symbols/s, batch-occupancy histogram, retrain/track events,
  join/leave/drain/migration counters with a fleet-size timeline,
  pilot-BER and σ² trajectories, queue-wait / service-time latency
  histograms on a simulated symbol clock), all snapshotted under the one
  ``SCHEMA_VERSION``;
* :mod:`repro.serving.observability` — the passive observability layer:
  frame-lifecycle tracing on the symbol clock (``Tracer``, Chrome
  ``trace_event`` + event-log exports), a unified ``MetricsRegistry``
  (counters/gauges/histograms, Prometheus/JSON exporters, shard
  ``merge()``) and per-stage round profiling (``RoundProfiler``) — none of
  which changes a single per-session output bit;
* :mod:`repro.serving.obs_report` — ``python -m repro.serving.obs_report``:
  a text dashboard over an exported run (latency quantiles, health/tier
  timelines, phase breakdown).

Quick start (see ``examples/serving_multisession.py`` for the full demo)::

    engine = ServingEngine(config=EngineConfig(max_batch=64, retrain_workers=2))
    build_fleet(engine, 64, hybrid,
                monitor_factory=lambda: PilotBERMonitor(0.08),
                config=SessionConfig(sigma2_alpha=0.3, tracking=True))
    traffic = {s.session_id: generate_traffic(...) for s in engine.sessions}
    stats = run_load(engine, traffic)

Sharded, with live migration::

    fleet = FleetFrontEnd(4, config=EngineConfig(max_batch=64))
    for session in sessions:
        fleet.add_session(session)          # constellation-affinity placement
    stats = run_fleet_load(fleet, traffic,
                           migrations=[MigrationPlan("s001", round=3, dest_shard=2)])

Coded traffic (CRC-triggered adaptation, per-session FER telemetry)::

    coded = CodedFrameConfig()              # K=3 (7,5) code, CRC-16, interleaved
    config = SessionConfig(coded=coded)
    build_fleet(engine, 8, hybrid, monitor_factory=..., config=config)
    traffic = {s.session_id: generate_traffic(..., coded=coded)
               for s in engine.sessions}
    stats = run_load(engine, traffic)
    engine.session("s000").stats.frame_error_rate   # post-FEC FER

The engine routes each coded frame's payload LLRs through deinterleave →
soft Viterbi (the ``viterbi_decode`` backend kernel, batched per code) →
CRC check.  A window of CRC failures fires the adaptation ladder exactly
like pilot-BER degradation — payload-aware triggering — and a failed CRC
marks the frame *served-with-decode-failure* (still the served leg of the
conservation ledger, never silently dropped), with ``frame.decoded`` /
``frame.crc_fail`` trace events and FER / post-FEC-BER telemetry.

``from repro.serving import *`` is a supported, stable surface: ``__all__``
below is the package's public API, tiered by subsystem.
"""

from repro.serving.batching import MicroBatch, coalesce, collect_microbatches
from repro.serving.coding import CodedFrameConfig, CodedLayout, coded_layout
from repro.serving.config import EngineConfig
from repro.serving.engine import ServingEngine
from repro.serving.faults import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    FailureRecord,
    FaultPlan,
    InjectedRetrainError,
    RetrainHungError,
    RetrainSupervisor,
)
from repro.serving.fleet import FleetFrontEnd
from repro.serving.loadgen import (
    AnnRetrainPolicy,
    MigrationPlan,
    SessionPlan,
    SteadyChannel,
    SteppedChannel,
    build_fleet,
    generate_traffic,
    run_churn_load,
    run_fleet_load,
    run_load,
)
from repro.serving.observability import (
    MetricsRegistry,
    RoundProfiler,
    TraceEvent,
    Tracer,
)
from repro.serving.scheduler import DeficitRoundRobin
from repro.serving.session import (
    RETRAINING,
    SERVING,
    DemapperSession,
    ServingFrame,
    SessionConfig,
)
from repro.serving.telemetry import (
    SCHEMA_VERSION,
    EngineStats,
    LatencyHistogram,
    ServedFrame,
    SessionStats,
)
from repro.serving.weights import WeightController
from repro.serving.worker import RetrainWorker

#: The public API, tiered by subsystem.  ``from repro.serving import *``
#: imports exactly this surface — internal helpers stay underscore-private
#: in their modules (``engine._phase``, the tracer's packed-tuple ring,
#: ``batching._session_request``).
__all__ = [
    # engine + fleet
    "ServingEngine",
    "FleetFrontEnd",
    "EngineConfig",
    # session state machine
    "SERVING",
    "RETRAINING",
    "HEALTHY",
    "DEGRADED",
    "QUARANTINED",
    "SessionConfig",
    "ServingFrame",
    "DemapperSession",
    # coded traffic (FEC layout shared across sessions)
    "CodedFrameConfig",
    "CodedLayout",
    "coded_layout",
    # scheduling + batching
    "MicroBatch",
    "coalesce",
    "collect_microbatches",
    "DeficitRoundRobin",
    "WeightController",
    "RetrainWorker",
    # load generation (traffic, churn, fleet migration)
    "SteadyChannel",
    "SteppedChannel",
    "AnnRetrainPolicy",
    "generate_traffic",
    "build_fleet",
    "run_load",
    "SessionPlan",
    "run_churn_load",
    "MigrationPlan",
    "run_fleet_load",
    # faults
    "FailureRecord",
    "FaultPlan",
    "InjectedRetrainError",
    "RetrainHungError",
    "RetrainSupervisor",
    # telemetry + observability
    "SCHEMA_VERSION",
    "ServedFrame",
    "SessionStats",
    "EngineStats",
    "LatencyHistogram",
    "Tracer",
    "TraceEvent",
    "MetricsRegistry",
    "RoundProfiler",
]
