"""Sharded serving: a fleet front-end over N independent ``ServingEngine``s.

The paper's deployment story (§II-C) is a fabric of cheap centroid
demappers serving live streams; a single :class:`~repro.serving.engine.
ServingEngine` tops out at one Python thread's worth of control plane.
:class:`FleetFrontEnd` scales past that by hashing sessions across N
engine *shards*, each a full engine (own scheduler, supervisor, worker
pool, telemetry, simulated clock) built from one replicated
:class:`~repro.serving.config.EngineConfig`.

**Constellation-affinity placement.**  Cross-session coalescing only pays
when co-tenants share a centroid set (:func:`repro.serving.batching.
coalesce` groups by constellation content), so the placement hash keys on
the session's constellation *content* — points and bit labelling, the
same identity :mod:`repro.backend.dispatch` groups launches by — not the
session id.  Sessions sharing a centroid set land on one shard and keep
riding wide fused launches; ``placement_seed`` reshuffles the
constellation→shard map without touching any per-session output.

**Live migration.**  :meth:`migrate` moves a session between shards using
the engines' export/import handover (built from the PR 5 drain machinery):
queued frames travel inside the session object and are served on the
destination in submission order — zero frame loss — while scheduler
credit, supervision state (breaker/backoff, rebased between the shards'
round clocks) and in-flight retrain jobs ride along.  Draining sessions
refuse migration (a drain is a promise to finish on its shard).

**Determinism.**  A session's LLR/trigger/σ²/tier timelines are a pure
function of its own frame order — never of co-tenants — so they are
bit-identical at any shard count, any placement seed and any migration
schedule (``tests/serving/test_fleet.py`` pins this).  Shard *telemetry*
(occupancy, clocks) naturally differs with placement; per-session outputs
do not.

**Parallelism.**  ``parallel=True`` steps shards on a thread pool — NumPy
releases the GIL inside the fused demap kernels, so shards genuinely
overlap on a multi-core host (the ``serving_fleet[numpy]`` bench gates
the aggregate speedup).  Tracers/profilers stay single-writer per shard:
a shard's observability objects are only ever touched by the thread
stepping that shard.
"""

from __future__ import annotations

import zlib
from concurrent.futures import ThreadPoolExecutor

from repro.serving.config import EngineConfig
from repro.serving.engine import ServingEngine
from repro.serving.session import DemapperSession, ServingFrame
from repro.serving.telemetry import SCHEMA_VERSION, EngineStats

__all__ = ["FleetFrontEnd"]


def _constellation_key(session: DemapperSession) -> int:
    """Stable content hash of the session's centroid set + bit labelling.

    Mirrors the identity :func:`repro.backend.dispatch.group_requests`
    coalesces by (points bytes + bitset table bytes), so two sessions that
    would share a fused launch always hash to the same placement key.
    """
    const = session.hybrid.constellation
    bitsets = session.hybrid.core.bitsets
    key = zlib.crc32(const.points.tobytes())
    return zlib.crc32(bitsets.table.tobytes(), key)


class FleetFrontEnd:
    """Routes sessions/frames across N engine shards; one facade, N engines.

    Parameters
    ----------
    n_shards:
        Number of independent ``ServingEngine`` shards (>= 1).
    config:
        The :class:`EngineConfig` replicated onto every shard.  With
        ``n_shards > 1`` it must not carry live collaborators (scheduler,
        supervisor, weight controller, tracer, profiler, ``on_frame``) —
        shards sharing one mutable object is a bug, not a fleet; use
        ``config_factory`` to build per-shard instances.
    config_factory:
        ``shard_index -> EngineConfig`` alternative to ``config`` when
        shards need distinct collaborators (mutually exclusive with it).
    placement_seed:
        Mixed into the constellation-affinity hash: different seeds spread
        the same constellations differently across shards (placement is
        output-invariant, so any seed is correct).
    weight_controller:
        Optional fleet-level :class:`~repro.serving.weights.
        WeightController` steering scheduler weights across *all* shards'
        sessions on the fleet clock (the sum of shard clocks).  Kept at
        the front-end — per-shard controllers would each see only their
        slice of the SLO picture.
    parallel:
        Step shards concurrently on a thread pool (default).  ``False``
        steps them sequentially in shard order — the reference mode for
        tests that want single-threaded reproducibility of *engine-level*
        telemetry too.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        config: EngineConfig | None = None,
        config_factory=None,
        placement_seed: int = 0,
        weight_controller=None,
        parallel: bool = True,
    ):
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if config is not None and config_factory is not None:
            raise ValueError("pass either config or config_factory, not both")
        self.n_shards = int(n_shards)
        self.placement_seed = int(placement_seed)
        self.weight_controller = weight_controller
        if config_factory is None:
            config = config if config is not None else EngineConfig()
            if n_shards > 1:
                stateful = config.stateful_fields_set()
                if stateful:
                    raise ValueError(
                        f"config carries live collaborators {list(stateful)} — "
                        "replicating them would share mutable state across "
                        f"{n_shards} shards; use config_factory to build "
                        "per-shard instances"
                    )
            self.shards: tuple[ServingEngine, ...] = tuple(
                ServingEngine(config=config) for _ in range(self.n_shards)
            )
        else:
            self.shards = tuple(
                ServingEngine(config=config_factory(i)) for i in range(self.n_shards)
            )
        self._shard_of: dict[str, int] = {}
        self._pool: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="repro-shard"
            )
            if parallel and self.n_shards > 1
            else None
        )
        #: completed :meth:`migrate` calls (the fleet-level ledger; each
        #: shard's own migrations_in/out counters hold the per-shard view)
        self.migrations = 0
        self._registries: tuple | None = None

    # -- placement -----------------------------------------------------------
    def place(self, session: DemapperSession) -> int:
        """The shard index affinity placement picks for this session."""
        key = _constellation_key(session)
        seeded = zlib.crc32(
            self.placement_seed.to_bytes(8, "little", signed=True),
            key,
        )
        return seeded % self.n_shards

    def add_session(
        self, session: DemapperSession, *, shard: int | None = None
    ) -> DemapperSession:
        """Register a session on its affinity shard (or an explicit one).

        ``shard`` overrides placement (an operator pinning a session);
        either way the front-end remembers the routing so :meth:`submit`
        finds the session without a fleet-wide search.
        """
        if session.session_id in self._shard_of:
            raise ValueError(f"duplicate session id {session.session_id!r}")
        idx = self.place(session) if shard is None else int(shard)
        if not 0 <= idx < self.n_shards:
            raise ValueError(f"shard must be in [0, {self.n_shards})")
        self.shards[idx].add_session(session)
        self._shard_of[session.session_id] = idx
        return session

    def shard_of(self, session_id: str) -> int:
        """The shard currently serving ``session_id`` (KeyError if absent)."""
        try:
            return self._shard_of[session_id]
        except KeyError:
            raise KeyError(f"unknown session id {session_id!r}") from None

    @property
    def sessions(self) -> tuple[DemapperSession, ...]:
        """Every live session, in shard order then registration order."""
        return tuple(s for shard in self.shards for s in shard.sessions)

    def has_session(self, session_id: str) -> bool:
        return (
            session_id in self._shard_of
            and self.shards[self._shard_of[session_id]].has_session(session_id)
        )

    def session(self, session_id: str) -> DemapperSession:
        return self.shards[self.shard_of(session_id)].session(session_id)

    # -- traffic -------------------------------------------------------------
    def submit(self, session_id: str, frame: ServingFrame) -> bool:
        """Route one frame to its session's shard (False = backpressure)."""
        return self.shards[self.shard_of(session_id)].submit(session_id, frame)

    def remove_session(self, session_id: str, *, drain: bool = True) -> int:
        """Deregister a session on its shard (see ``ServingEngine``)."""
        idx = self.shard_of(session_id)
        dropped = self.shards[idx].remove_session(session_id, drain=drain)
        if not self.shards[idx].has_session(session_id):
            del self._shard_of[session_id]
        return dropped

    # -- migration -----------------------------------------------------------
    def migrate(self, session_id: str, dest: int) -> DemapperSession:
        """Move a live session to shard ``dest`` with zero frame loss.

        Queued frames travel inside the session and are served on the
        destination in order; scheduler credit, supervision state and
        in-flight retrain jobs ride along (see
        :meth:`ServingEngine.export_session`).  Migrating onto the current
        shard is a no-op.  A draining session is refused (ValueError).
        """
        dest = int(dest)
        if not 0 <= dest < self.n_shards:
            raise ValueError(f"dest must be in [0, {self.n_shards})")
        src = self.shard_of(session_id)
        session = self.shards[src].session(session_id)
        if dest == src:
            return session
        session, carried = self.shards[src].export_session(session_id)
        self.shards[dest].import_session(session, carried)
        self._shard_of[session_id] = dest
        self.migrations += 1
        return session

    # -- serving -------------------------------------------------------------
    def step(self) -> int:
        """One round on every shard; returns total frames served.

        Shards step concurrently when ``parallel`` (each engine's state is
        shard-private, so the only shared mutation — this front-end's
        bookkeeping — happens after the barrier), then departed sessions
        are dropped from the routing table and the fleet-level weight
        controller (if any) observes the whole fleet on the fleet clock.
        """
        if self._pool is not None:
            served = sum(self._pool.map(lambda shard: shard.step(), self.shards))
        else:
            served = sum(shard.step() for shard in self.shards)
        self._reconcile()
        if self.weight_controller is not None:
            self.weight_controller.on_round(self.sessions, now=self.now)
        return served

    def _reconcile(self) -> None:
        """Drop routing entries whose session left its shard (drain ended)."""
        for sid in [
            sid
            for sid, idx in self._shard_of.items()
            if not self.shards[idx].has_session(sid)
        ]:
            del self._shard_of[sid]

    def drain(
        self, max_rounds: int | None = None, *, timeout: float | None = None
    ) -> int:
        """Drain every shard (sequentially); returns total frames served."""
        total = sum(
            shard.drain(max_rounds, timeout=timeout) for shard in self.shards
        )
        self._reconcile()
        return total

    @property
    def now(self) -> int:
        """The fleet clock: total symbol ticks served across all shards."""
        return sum(shard.telemetry.now for shard in self.shards)

    def pending_retrains(self) -> int:
        """In-flight retrain jobs fleet-wide (drivers poll this)."""
        return sum(shard.worker.pending for shard in self.shards)

    # -- observability -------------------------------------------------------
    def register_metrics(self, registry_factory=None):
        """Attach one shard-labelled registry per shard; returns the tuple.

        Each shard gets its *own* registry (single-writer, like the rest of
        a shard's observability) labelled ``{"shard": str(i)}``;
        :meth:`metrics` merges them into one fleet view on demand.
        ``registry_factory`` defaults to
        :class:`~repro.serving.observability.MetricsRegistry`.
        """
        if registry_factory is None:
            from repro.serving.observability import MetricsRegistry

            registry_factory = MetricsRegistry
        self._registries = tuple(
            shard.register_metrics(registry_factory(), labels={"shard": str(i)})
            for i, shard in enumerate(self.shards)
        )
        return self._registries

    def metrics(self):
        """Merge the per-shard registries into one fleet-wide registry.

        Requires :meth:`register_metrics` first.  The merge target is a
        fresh owned registry (callback-backed shard instruments merge into
        plain accumulators), so the result is a point-in-time scrape.
        """
        if self._registries is None:
            raise RuntimeError("call register_metrics() before metrics()")
        from repro.serving.observability import MetricsRegistry

        merged = MetricsRegistry()
        for registry in self._registries:
            merged.merge(registry)
        return merged

    def stats(self) -> EngineStats:
        """Fleet-wide :class:`EngineStats`: every shard merged into one."""
        merged = EngineStats()
        for shard in self.shards:
            merged.merge(shard.telemetry)
        return merged

    def snapshot(self) -> dict:
        """Merged fleet stats plus the per-shard breakdown (one schema).

        ``"merged"`` is the fleet-wide :meth:`EngineStats.snapshot`;
        ``"shards"`` holds each shard's own snapshot in shard order —
        both under the same :data:`~repro.serving.telemetry.
        SCHEMA_VERSION` as every other serving snapshot.
        """
        return {
            "schema": SCHEMA_VERSION,
            "n_shards": self.n_shards,
            "placement_seed": self.placement_seed,
            "migrations": self.migrations,
            "sessions": len(self._shard_of),
            "merged": self.stats().snapshot(),
            "shards": [shard.telemetry.snapshot() for shard in self.shards],
        }

    # -- lifecycle -----------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Close every shard and release the step pool."""
        try:
            for shard in self.shards:
                shard.close(timeout)
        finally:
            if self._pool is not None:
                self._pool.shutdown(wait=True)

    def __enter__(self) -> "FleetFrontEnd":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
