"""Export a serving run and render it as a text dashboard.

Two halves:

* :func:`export_run` — collect one :class:`~repro.serving.engine.
  ServingEngine`'s full observable state (telemetry snapshots, supervisor
  state, and — when attached — the trace buffer, profile and metrics dump)
  into one JSON-serializable dict, optionally written to disk;
* :func:`render_dashboard` — turn that dict (live or re-loaded from the
  JSON file) into a plain-text dashboard: engine headline numbers,
  per-session latency quantiles and health, tier/health timelines, the
  round-phase breakdown and the failure summary.

The CLI ties them together for post-hoc analysis::

    python -m repro.serving.obs_report run.json            # dashboard
    python -m repro.serving.obs_report run.json --section sessions

Everything here reads snapshots only — running it never touches engine
state, in keeping with the observability layer's passivity contract.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.serving.telemetry import SCHEMA_VERSION

__all__ = ["export_run", "render_dashboard", "main"]

#: schema version of the exported run document — the one serving-wide
#: constant (engine/session snapshots and fleet snapshots carry it too)
EXPORT_SCHEMA = SCHEMA_VERSION


def export_run(engine, *, sessions=None, path=None, indent=None) -> dict:
    """Snapshot one engine's observable state into a JSON-ready dict.

    ``sessions`` optionally extends/overrides the engine's current registry
    — pass it when drained or hard-removed sessions should still appear in
    the report (their stats objects outlive the engine registration).
    ``path`` writes the document as JSON (``indent`` forwarded); the dict
    is returned either way.
    """
    by_id = {s.session_id: s for s in engine.sessions}
    if sessions is not None:
        for s in sessions:
            by_id.setdefault(s.session_id, s)
    run = {
        "schema": EXPORT_SCHEMA,
        "engine": engine.telemetry.snapshot(),
        "supervisor": engine.supervisor.snapshot(),
        "sessions": {sid: by_id[sid].stats.snapshot() for sid in sorted(by_id)},
        "health": {sid: by_id[sid].health for sid in sorted(by_id)},
    }
    tracer = getattr(engine, "tracer", None)
    if tracer is not None:
        run["trace"] = tracer.snapshot()
    profiler = getattr(engine, "profiler", None)
    if profiler is not None:
        run["profile"] = profiler.snapshot()
    registry = getattr(engine, "registry", None)
    if registry is not None:
        run["metrics"] = registry.to_json()
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(run, fh, indent=indent)
    return run


def _fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def _engine_section(run: dict) -> list[str]:
    eng = run["engine"]
    lines = ["== engine =="]
    lines.append(
        f"rounds={eng['rounds']} batches={eng['batches']} "
        f"frames={eng['frames_served']} symbols={eng['symbols_served']} "
        f"mean_occupancy={eng['mean_occupancy']:.2f}"
    )
    lines.append(
        f"joins={eng['joins']} leaves={eng['leaves']} "
        f"drains={eng['drains_completed']}/{eng['drains_started']} "
        f"dropped={eng['frames_dropped']} quarantined={eng['frames_quarantined']}"
    )
    qw, st = eng["queue_wait"], eng["service_time"]
    lines.append(
        f"queue_wait p50={qw['p50']} p99={qw['p99']} mean={qw['mean']:.1f}  "
        f"service_time p50={st['p50']} p99={st['p99']}  (symbol ticks)"
    )
    lines.append(
        f"retrains started={eng['retrains_started']} "
        f"completed={eng['retrains_completed']} retried={eng['retrains_retried']} "
        f"failed={eng['retrain_failures']} hung={eng['retrains_hung']} "
        f"tracks={eng['tracks']}"
    )
    return lines


def _sessions_section(run: dict) -> list[str]:
    lines = ["== sessions =="]
    lines.append(
        f"{'session':<12} {'frames':>7} {'p50':>6} {'p99':>6} {'mean':>8} "
        f"{'retr':>5} {'trk':>4} {'trig':>5} health"
    )
    health = run.get("health", {})
    for sid in sorted(run["sessions"]):
        s = run["sessions"][sid]
        qw = s["queue_wait"]
        mean = qw["mean"]
        lines.append(
            f"{sid:<12} {s['frames_served']:>7} {qw['p50']:>6} {qw['p99']:>6} "
            f"{mean:>8.1f} {s['retrains']:>5} {s['tracks']:>4} "
            f"{len(s['trigger_seqs']):>5} {health.get(sid, '?')}"
        )
    return lines


def _timelines_section(run: dict) -> list[str]:
    lines = ["== timelines =="]
    for sid in sorted(run["sessions"]):
        tiers = run["sessions"][sid].get("tier_timeline", [])
        if tiers:
            steps = " ".join(f"{seq}:{tier}" for seq, tier in tiers)
            lines.append(f"tier   {sid:<12} {steps}")
    for tick, sid, health in run["engine"].get("health_timeline", []):
        lines.append(f"health [{tick:>8}] {sid:<12} -> {health}")
    if len(lines) == 1:
        lines.append("(no tier or health transitions)")
    return lines


def _phases_section(run: dict) -> list[str]:
    lines = ["== round phases =="]
    profile = run.get("profile")
    if profile and profile.get("phases"):
        lines.append(f"{'phase':<18} {'calls':>8} {'total':>12} {'mean':>12}")
        for name in sorted(profile["phases"]):
            st = profile["phases"][name]
            lines.append(
                f"{name:<18} {st['count']:>8} {_fmt_ms(st['total_s']):>12} "
                f"{_fmt_ms(st['mean_s']):>12}"
            )
        launches = profile.get("launches") or {}
        for width in sorted(launches, key=lambda w: int(w)):
            st = launches[width]
            lines.append(
                f"{'launch w=' + str(width):<18} {st['count']:>8} "
                f"{_fmt_ms(st['total_s']):>12} {_fmt_ms(st['mean_s']):>12}"
            )
        return lines
    trace = run.get("trace")
    if trace:
        counts: dict[str, int] = {}
        for e in trace["events"]:
            if e["name"].startswith("phase."):
                counts[e["name"]] = counts.get(e["name"], 0) + 1
        if counts:
            lines.append("(no profiler attached — trace event counts only)")
            for name in sorted(counts):
                lines.append(f"{name:<24} {counts[name]:>8}")
            return lines
    lines.append("(no profiler or trace attached)")
    return lines


def _failures_section(run: dict) -> list[str]:
    summary = run["engine"].get("failure_summary", {"total": 0})
    lines = ["== failures =="]
    if not summary.get("total"):
        lines.append("(none)")
        return lines
    lines.append(f"total={summary['total']}")
    for kind in sorted(summary.get("by_kind", {})):
        lines.append(f"kind   {kind:<12} {summary['by_kind'][kind]}")
    for action in sorted(summary.get("by_action", {})):
        lines.append(f"action {action:<12} {summary['by_action'][action]}")
    return lines


def _trace_section(run: dict) -> list[str]:
    trace = run.get("trace")
    lines = ["== trace =="]
    if not trace:
        lines.append("(no tracer attached)")
        return lines
    lines.append(
        f"events={len(trace['events'])} capacity={trace['capacity']} "
        f"dropped={trace['dropped']}"
    )
    return lines


_SECTIONS = {
    "engine": _engine_section,
    "sessions": _sessions_section,
    "timelines": _timelines_section,
    "phases": _phases_section,
    "failures": _failures_section,
    "trace": _trace_section,
}


def render_dashboard(run: dict, *, sections=None) -> str:
    """Render an exported run (or its JSON re-load) as a text dashboard."""
    chosen = list(_SECTIONS) if sections is None else list(sections)
    blocks = []
    for name in chosen:
        try:
            renderer = _SECTIONS[name]
        except KeyError:
            raise ValueError(
                f"unknown section {name!r}; choose from {sorted(_SECTIONS)}"
            ) from None
        blocks.append("\n".join(renderer(run)))
    return "\n\n".join(blocks) + "\n"


def main(argv=None) -> int:
    """CLI entry point: load an exported run file, print the dashboard."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serving.obs_report",
        description="Render a text dashboard from an exported serving run "
        "(see repro.serving.obs_report.export_run).",
    )
    parser.add_argument("run", help="path to the exported run JSON")
    parser.add_argument(
        "--section",
        action="append",
        choices=sorted(_SECTIONS),
        help="render only these sections (repeatable; default: all)",
    )
    args = parser.parse_args(argv)
    with open(args.run, encoding="utf-8") as fh:
        run = json.load(fh)
    sys.stdout.write(render_dashboard(run, sections=args.section))
    return 0


if __name__ == "__main__":  # pragma: no cover — exercised via main() directly
    raise SystemExit(main())
