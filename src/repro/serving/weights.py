"""SLO-driven adaptive scheduler weights: close the latency → QoS loop.

PR 4 gave the engine queue-wait telemetry (per-frame symbol-clock ticks
between submission and batch start, bucketed in
:class:`~repro.serving.telemetry.LatencyHistogram`) and a weighted
deficit-round-robin scheduler; until now the weights were static
configuration.  This module closes the loop: a :class:`WeightController`
installed on the engine watches each session's *own* queue-wait histogram
(``SessionStats.queue_wait``) and steers its live ``session.weight``:

* a session whose recent mean queue wait exceeds the SLO gets its weight
  **raised** multiplicatively (``raise_factor``), capped at ``max_boost ×``
  its configured base weight — backlog is burned down at the expense of
  sessions with latency headroom;
* a session meeting the SLO **decays** geometrically back toward its base
  weight (``decay`` per control action) — boosts are loans, not grants, so
  the static QoS contract (``SessionConfig.weight``) is what the fleet
  reverts to at steady state.

Control actions run every ``interval`` engine rounds over the *delta*
window since the previous action (tracked as (count, total) marks per
session — O(1) memory, no histogram copies).  Everything the controller
reads is a pure function of the seeded traffic and the weights in effect,
and everything it writes changes only *when* frames are served, never what
they contain — so weight adaptation is deterministic given seeds and
per-session output timelines stay bit-identical with or without it
(the invariance pinned by ``tests/serving/test_control_plane.py``).
"""

from __future__ import annotations

from typing import Sequence

from repro.serving.session import DemapperSession

__all__ = ["WeightController"]


class WeightController:
    """Steer live DRR weights from per-session queue-wait SLOs.

    Parameters
    ----------
    slo:
        Queue-wait service-level objective in simulated symbol ticks: a
        session whose mean queue wait over the last control window exceeds
        this gets boosted.
    interval:
        Engine rounds between control actions (the engine calls
        :meth:`on_round` every round; the controller acts every
        ``interval``-th call).  Longer intervals average over more frames —
        steadier, slower control.
    raise_factor:
        Multiplicative weight increase per missed-SLO control action.
    decay:
        Fraction of the *excess over base* retained per met-SLO control
        action (``w ← base + decay · (w − base)``); 0 snaps straight back,
        values near 1 release boosts slowly.
    max_boost:
        Cap on ``weight / base_weight`` — one pathological session can
        never starve the fleet by compounding boosts without bound.
    """

    def __init__(
        self,
        slo: int,
        *,
        interval: int = 4,
        raise_factor: float = 1.5,
        decay: float = 0.5,
        max_boost: float = 8.0,
    ):
        if slo <= 0:
            raise ValueError("slo must be positive (symbol ticks)")
        if interval < 1:
            raise ValueError("interval must be >= 1")
        if not raise_factor > 1.0:
            raise ValueError("raise_factor must be > 1.0")
        if not 0.0 <= decay < 1.0:
            raise ValueError("decay must be in [0, 1)")
        if not max_boost >= 1.0:
            raise ValueError("max_boost must be >= 1.0")
        self.slo = int(slo)
        self.interval = int(interval)
        self.raise_factor = float(raise_factor)
        self.decay = float(decay)
        self.max_boost = float(max_boost)
        self._rounds = 0
        #: per-session (count, total) mark into its queue-wait histogram at
        #: the last control action — the next action reads only the delta
        self._marks: dict[str, tuple[int, int]] = {}

    def on_round(self, sessions: Sequence[DemapperSession], *, now: int = 0) -> int:
        """One engine round elapsed; act every ``interval``-th call.

        Returns the number of sessions whose weight changed (0 on
        non-action rounds).  ``now`` is the engine tick stamped into each
        session's ``stats.weight_timeline``.
        """
        self._rounds += 1
        if self._rounds % self.interval:
            return 0
        changed = 0
        live_ids = set()
        for session in sessions:
            live_ids.add(session.session_id)
            hist = session.stats.queue_wait
            count0, total0 = self._marks.get(session.session_id, (0, 0))
            window = hist.count - count0
            self._marks[session.session_id] = (hist.count, hist.total)
            base = session.config.weight
            if window > 0 and (hist.total - total0) / window > self.slo:
                target = min(session.weight * self.raise_factor, base * self.max_boost)
            else:
                # met the SLO (or served nothing — no evidence of pressure):
                # release part of the boost geometrically; once the residual
                # is below 1% of base, snap to base exactly so the weight
                # timeline quiesces instead of logging asymptotic crumbs
                target = base + self.decay * (session.weight - base)
                if abs(target - base) < 0.01 * base:
                    target = base
            if target != session.weight:
                session.set_weight(target, now=now)
                changed += 1
        # sessions that churned out must not leak marks (nor resurrect
        # stale ones if the id is reused by a later session)
        for sid in list(self._marks):
            if sid not in live_ids:
                del self._marks[sid]
        return changed

    def forget(self, session_id: str) -> None:
        """Drop a departed session's control mark (engine removal hook)."""
        self._marks.pop(session_id, None)
