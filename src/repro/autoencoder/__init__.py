"""The autoencoder (AE) communication system — the paper's trainable core.

* :class:`MapperANN` — "trainable embedding layer with 16 inputs and two
  outputs as well as an average power normalization layer" (paper §III-A).
* :class:`DemapperANN` — "two inputs ... three fully connected layers with 16
  neurons each, followed by ReLU ... and a final sigmoid layer to receive
  output probabilities for each of the four bits".
* :class:`AESystem` — mapper + channel + demapper with a differentiable
  end-to-end path (gradients flow through the channel models).
* :class:`E2ETrainer` — paper step 1 (joint E2E training over AWGN).
* :class:`ReceiverFinetuner` — paper step 2 (fix the mapper, retrain the
  demapper over the *real* channel).
* :mod:`repro.autoencoder.metrics` — BER / BLER / bitwise mutual information.
"""

from repro.autoencoder.demapper_ann import DemapperANN
from repro.autoencoder.mapper_ann import MapperANN
from repro.autoencoder.metrics import (
    bit_error_rate,
    bitwise_mutual_information,
    block_error_rate,
)
from repro.autoencoder.symbolwise import SymbolwiseDemapperANN, train_symbolwise_receiver
from repro.autoencoder.system import AESystem
from repro.autoencoder.training import (
    E2ETrainer,
    ReceiverFinetuner,
    TrainingConfig,
    TrainingHistory,
)

__all__ = [
    "MapperANN",
    "DemapperANN",
    "AESystem",
    "E2ETrainer",
    "ReceiverFinetuner",
    "TrainingConfig",
    "TrainingHistory",
    "bit_error_rate",
    "block_error_rate",
    "bitwise_mutual_information",
    "SymbolwiseDemapperANN",
    "train_symbolwise_receiver",
]
