"""Communication metrics: BER, BLER, bitwise mutual information.

The bitwise MI estimate is the quantity the E2E training maximises (paper
§II-A: "trained ... to increase the bitwise mutual information by minimizing
the binary cross-entropy loss"): for each bit position,

``MI_k ≈ 1 − E[BCE_k] / log(2)``  (bits per channel use),

so the sum over bit positions lower-bounds the achievable rate of the
mapper/demapper pair (the "BMI" / generalised mutual information).
"""

from __future__ import annotations

import numpy as np

__all__ = ["bit_error_rate", "block_error_rate", "bitwise_mutual_information"]


def bit_error_rate(bits_hat: np.ndarray, bits_true: np.ndarray) -> float:
    """Fraction of differing bits between two equal-shape 0/1 arrays."""
    a = np.asarray(bits_hat)
    b = np.asarray(bits_true)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("empty bit arrays")
    return float(np.mean(a != b))


def block_error_rate(bits_hat: np.ndarray, bits_true: np.ndarray) -> float:
    """Fraction of rows (symbols/blocks) containing at least one bit error."""
    a = np.asarray(bits_hat)
    b = np.asarray(bits_true)
    if a.shape != b.shape or a.ndim != 2:
        raise ValueError("expected equal (N, k) arrays")
    return float(np.mean(np.any(a != b, axis=1)))


def bitwise_mutual_information(
    probs: np.ndarray,
    bits_true: np.ndarray,
    *,
    eps: float = 1e-12,
) -> float:
    """Estimate the sum bitwise MI (bits/channel use) from P(b=1|y) samples.

    ``probs`` and ``bits_true`` have shape ``(N, k)``.  Returns
    ``Σ_k (1 − E[BCE_k]/ln 2)`` clipped below at 0.  A perfect demapper on a
    noiseless channel approaches k; random guessing gives 0.
    """
    p = np.clip(np.asarray(probs, dtype=np.float64), eps, 1.0 - eps)
    t = np.asarray(bits_true, dtype=np.float64)
    if p.shape != t.shape or p.ndim != 2:
        raise ValueError("probs and bits_true must both be (N, k)")
    bce_per_bit = -(t * np.log(p) + (1.0 - t) * np.log(1.0 - p)).mean(axis=0)  # nats
    mi_per_bit = 1.0 - bce_per_bit / np.log(2.0)
    return float(np.maximum(mi_per_bit, 0.0).sum())
