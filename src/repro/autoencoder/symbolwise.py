"""Symbol-wise (categorical) demapper head — the AE literature's alternative.

The paper's demapper outputs one sigmoid per *bit* (bitwise BCE, maximising
bitwise MI — the right objective when a bit-interleaved FEC follows).  Much
of the AE literature (O'Shea & Hoydis 2017) instead uses a softmax over the
M *symbols* trained with cross-entropy.  This module implements that
variant so the two heads can be compared:

* symbol posteriors are exact sufficient statistics — bit LLRs derived from
  them (`log Σ_{b_k=1} p_i − log Σ_{b_k=0} p_i`) correspond to exact
  bitwise marginalisation of the learned posterior;
* the symbol head needs M outputs instead of log2(M) (16 vs 4 here — a
  hardware cost the paper's choice avoids);
* hard symbol decisions minimise SER, while the paper's head targets BER.

``tests/autoencoder/test_symbolwise.py`` verifies both heads reach the same
BER on the paper's setup, and the extraction pipeline works unchanged on
the categorical head through :meth:`SymbolwiseDemapperANN.bit_probability_fn`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np
from scipy.special import logsumexp

from repro.modulation.bits import indices_to_bits
from repro.nn.layers import ReLU, Sequential
from repro.nn.losses import CrossEntropyLoss
from repro.nn.module import Module
from repro.nn.optim import Adam
from repro.utils.complexmath import complex_to_real2

__all__ = ["SymbolwiseDemapperANN", "train_symbolwise_receiver"]


class SymbolwiseDemapperANN(Module):
    """MLP demapper with a categorical (softmax) symbol head.

    Topology mirrors the paper's bitwise demapper (2 → three hidden ReLU
    layers → M logits).
    """

    def __init__(
        self,
        order: int = 16,
        hidden: Sequence[int] = (16, 16, 16),
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if order < 2 or (order & (order - 1)) != 0:
            raise ValueError("order must be a power of two >= 2")
        self.order = order
        self.bits_per_symbol = int(np.log2(order))
        widths = [2, *hidden, order]
        self.net = Sequential.mlp(widths, hidden_activation=ReLU, rng=rng)
        bm = indices_to_bits(np.arange(order), self.bits_per_symbol)
        self._one_sets = [np.flatnonzero(bm[:, j] == 1) for j in range(self.bits_per_symbol)]
        self._zero_sets = [np.flatnonzero(bm[:, j] == 0) for j in range(self.bits_per_symbol)]

    def forward(self, received: np.ndarray) -> np.ndarray:
        """Received 2-D symbols -> symbol logits ``(B, M)``."""
        return self.net.forward(received)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        return self.net.backward(grad_logits)

    # -- inference views ---------------------------------------------------------
    def symbol_posteriors(self, received: np.ndarray) -> np.ndarray:
        """Softmax posteriors over symbols, shape ``(B, M)``."""
        z = self.forward(received)
        z = z - z.max(axis=1, keepdims=True)
        e = np.exp(z)
        return e / e.sum(axis=1, keepdims=True)

    def symbol_labels(self, received: np.ndarray) -> np.ndarray:
        """MAP symbol decisions (minimise SER)."""
        return np.argmax(self.forward(received), axis=1)

    def bit_llrs(self, received: np.ndarray) -> np.ndarray:
        """Exact bitwise LLRs by marginalising the symbol posterior.

        ``llr_k = logsumexp_{i: b_k=1}(z_i) − logsumexp_{i: b_k=0}(z_i)``
        (softmax normalisation cancels).  Convention: llr > 0 ⇒ bit 1.
        """
        z = self.forward(received)
        k = self.bits_per_symbol
        out = np.empty((z.shape[0], k))
        for j in range(k):
            out[:, j] = logsumexp(z[:, self._one_sets[j]], axis=1) - logsumexp(
                z[:, self._zero_sets[j]], axis=1
            )
        return out

    def hard_bits(self, received: np.ndarray) -> np.ndarray:
        """Hard bits from the marginalised LLRs."""
        return (self.bit_llrs(received) > 0).astype(np.int8)

    def bit_probability_fn(self) -> Callable[[np.ndarray], np.ndarray]:
        """Extractor-compatible handle: P(b_k = 1 | y) per bit."""

        def probs(pts: np.ndarray) -> np.ndarray:
            llrs = self.bit_llrs(pts)
            return 1.0 / (1.0 + np.exp(-np.clip(llrs, -60, 60)))

        return probs


def train_symbolwise_receiver(
    demapper: SymbolwiseDemapperANN,
    constellation_points: np.ndarray,
    channel,
    *,
    steps: int = 1500,
    batch_size: int = 512,
    lr: float = 2e-3,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """Receiver-only training of the categorical head over a live channel.

    The transmitter (``constellation_points``, complex ``(M,)``) is frozen —
    the categorical analogue of :class:`~repro.autoencoder.training
    .ReceiverFinetuner`.  Returns the loss trace (one value per 100 steps).
    """
    rng = rng if rng is not None else np.random.default_rng()
    points = np.asarray(constellation_points, dtype=np.complex128)
    loss_fn = CrossEntropyLoss()
    opt = Adam(demapper.parameters(), lr=lr)
    trace: list[float] = []
    for step in range(steps):
        idx = rng.integers(0, demapper.order, size=batch_size)
        received = channel.forward(points[idx])
        logits = demapper.forward(complex_to_real2(received))
        loss, dlogits = loss_fn(logits, idx)
        opt.zero_grad()
        demapper.backward(dlogits)
        opt.step()
        if step % 100 == 0 or step == steps - 1:
            trace.append(loss)
    return trace
