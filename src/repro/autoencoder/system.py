"""AESystem: mapper ANN + channel + demapper ANN, differentiable end to end.

One object owns the full forward/backward path of paper step 1:

``labels -> MapperANN -> complex symbols -> Channel -> DemapperANN -> logits``

``train_step`` runs a full joint update; ``receiver_step`` updates only the
demapper from externally supplied received samples (the retraining path,
where the transmitter is frozen and physically remote).
"""

from __future__ import annotations

import numpy as np

from repro.autoencoder.demapper_ann import DemapperANN
from repro.autoencoder.mapper_ann import MapperANN
from repro.autoencoder.metrics import bit_error_rate, bitwise_mutual_information
from repro.channels.base import Channel
from repro.modulation.bits import indices_to_bits
from repro.nn.losses import BCEWithLogitsLoss
from repro.utils.complexmath import complex_to_real2, real2_to_complex

__all__ = ["AESystem"]


class AESystem:
    """End-to-end trainable communication system (mapper/channel/demapper)."""

    def __init__(self, mapper: MapperANN, demapper: DemapperANN, channel: Channel):
        if demapper.bits_per_symbol != mapper.bits_per_symbol:
            raise ValueError(
                f"mapper carries {mapper.bits_per_symbol} bits/symbol but demapper "
                f"outputs {demapper.bits_per_symbol}"
            )
        self.mapper = mapper
        self.demapper = demapper
        self.channel = channel
        self.loss = BCEWithLogitsLoss()

    @property
    def order(self) -> int:
        return self.mapper.order

    @property
    def bits_per_symbol(self) -> int:
        return self.mapper.bits_per_symbol

    # -- forward paths ---------------------------------------------------------
    def transmit(self, indices: np.ndarray) -> np.ndarray:
        """Map labels to complex symbols and push them through the channel."""
        x2 = self.mapper.forward(np.asarray(indices))
        return self.channel.forward(real2_to_complex(x2))

    def receive_logits(self, received: np.ndarray) -> np.ndarray:
        """Complex received samples -> demapper logits ``(N, k)``."""
        return self.demapper.forward(complex_to_real2(np.asarray(received)))

    # -- training --------------------------------------------------------------
    def train_step(self, rng: np.random.Generator, batch_size: int) -> float:
        """One joint E2E update pass; returns the batch BCE loss.

        Gradients flow  loss -> demapper -> channel.backward -> mapper,
        exactly the chain of paper step 1.  The caller owns the optimizer
        (zero_grad before, step after).
        """
        idx = rng.integers(0, self.order, size=batch_size)
        bits = indices_to_bits(idx, self.bits_per_symbol)
        x2 = self.mapper.forward(idx)
        y = self.channel.forward(real2_to_complex(x2))
        logits = self.demapper.forward(complex_to_real2(y))
        loss_val, dlogits = self.loss(logits, bits)
        dy2 = self.demapper.backward(dlogits)
        dx2 = self.channel.backward(dy2)
        self.mapper.backward(dx2)
        return loss_val

    def receiver_step(self, received: np.ndarray, pilot_bits: np.ndarray) -> float:
        """One demapper-only update from received pilots (paper step 2).

        ``received`` are complex channel outputs of *known* pilot symbols;
        ``pilot_bits`` their true bits.  Only demapper gradients accumulate.
        """
        logits = self.demapper.forward(complex_to_real2(np.asarray(received)))
        loss_val, dlogits = self.loss(logits, np.asarray(pilot_bits))
        self.demapper.backward(dlogits)
        return loss_val

    # -- evaluation --------------------------------------------------------------
    def evaluate(
        self,
        rng: np.random.Generator,
        n_symbols: int,
        *,
        batch_size: int = 65536,
    ) -> dict[str, float]:
        """Monte-Carlo BER / BCE / bitwise-MI of the current AE over its channel."""
        if n_symbols < 1:
            raise ValueError("n_symbols must be >= 1")
        errors = 0
        total_bits = 0
        bce_sum = 0.0
        mi_sum = 0.0
        n_batches = 0
        remaining = n_symbols
        while remaining > 0:
            n = min(batch_size, remaining)
            remaining -= n
            idx = rng.integers(0, self.order, size=n)
            bits = indices_to_bits(idx, self.bits_per_symbol)
            y = self.transmit(idx)
            y2 = complex_to_real2(y)
            logits = self.demapper.forward(y2)
            hard = (logits > 0).astype(np.int8)
            errors += int(np.count_nonzero(hard != bits))
            total_bits += bits.size
            probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
            bce_sum += BCEWithLogitsLoss.from_probabilities(probs, bits)
            mi_sum += bitwise_mutual_information(probs, bits)
            n_batches += 1
        return {
            "ber": errors / total_bits,
            "bce": bce_sum / n_batches,
            "mutual_information": mi_sum / n_batches,
            "bit_errors": float(errors),
            "bits": float(total_bits),
        }
