"""The demapper ANN (paper §III-A topology, configurable).

A small MLP from the received 2-D symbol to one probability per bit:
input 2 -> three hidden Dense(16) + ReLU -> Dense(k) logits -> sigmoid.
Training operates on logits (with :class:`~repro.nn.losses.BCEWithLogitsLoss`)
for numerical stability; inference exposes probabilities, LLR-compatible
log-odds, and hard bits.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.layers import Dense, ReLU, Sequential, Sigmoid
from repro.nn.module import Module

__all__ = ["DemapperANN"]


class DemapperANN(Module):
    """MLP demapper producing per-bit probabilities.

    Parameters
    ----------
    bits_per_symbol:
        Number of output bits k (4 for 16-QAM).
    hidden:
        Hidden-layer widths; paper uses ``(16, 16, 16)``.
    rng:
        Generator for weight initialisation.
    """

    def __init__(
        self,
        bits_per_symbol: int = 4,
        hidden: Sequence[int] = (16, 16, 16),
        *,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if bits_per_symbol < 1:
            raise ValueError("bits_per_symbol must be >= 1")
        if not hidden:
            raise ValueError("need at least one hidden layer")
        self.bits_per_symbol = int(bits_per_symbol)
        self.hidden = tuple(int(h) for h in hidden)
        widths = [2, *self.hidden, self.bits_per_symbol]
        self.net = Sequential.mlp(widths, hidden_activation=ReLU, rng=rng)
        # MSB-first bit weights for symbol packing, hoisted out of
        # symbol_labels' per-call path
        self._bit_weights = (
            1 << np.arange(self.bits_per_symbol - 1, -1, -1)
        ).astype(np.int64)

    # -- differentiable path (logits) -----------------------------------------
    def forward(self, received: np.ndarray) -> np.ndarray:
        """Received 2-D symbols ``(B, 2)`` -> bit logits ``(B, k)``."""
        return self.net.forward(received)

    def backward(self, grad_logits: np.ndarray) -> np.ndarray:
        """Backprop through the MLP; returns dL/d(received) of shape ``(B, 2)``."""
        return self.net.backward(grad_logits)

    # -- inference views -------------------------------------------------------
    def logits(self, received: np.ndarray) -> np.ndarray:
        """Alias of :meth:`forward` for readability at call sites."""
        return self.forward(received)

    def infer_logits(self, received: np.ndarray, *, out: np.ndarray | None = None) -> np.ndarray:
        """Inference-only logits through the workspace path: ``(B, k)``.

        Unlike :meth:`forward`, no per-layer activations are cached and every
        intermediate comes from per-layer backend scratch, so a steady-state
        loop over fixed-size batches allocates nothing (pass ``out=`` to own
        the result; otherwise it is workspace scratch valid until the next
        ``infer`` on this thread).
        """
        return self.net.infer(received, out=out)

    def probabilities(self, received: np.ndarray) -> np.ndarray:
        """Per-bit probabilities P(b=1 | y) in [0, 1], shape ``(B, k)``."""
        return Sigmoid.stable_sigmoid(self.infer_logits(received))

    def hard_bits(self, received: np.ndarray) -> np.ndarray:
        """Hard bit decisions (threshold 0 on logits), shape ``(B, k)``, int8."""
        return (self.infer_logits(received) > 0).astype(np.int8)

    def symbol_labels(self, received: np.ndarray) -> np.ndarray:
        """Most-likely symbol label per sample (packing of the hard bits).

        This is the quantity sampled over the 2-D plane by the extraction
        step — "the learned symbol (ANN-output) for each complex input
        sample" (paper §II-C).
        """
        return self.hard_bits(received).astype(np.int64) @ self._bit_weights

    def bit_probability_fn(self) -> Callable[[np.ndarray], np.ndarray]:
        """A plain function handle ``(N, 2) -> (N, k)`` for the extractor."""
        return self.probabilities

    def clone_untrained(self, rng: np.random.Generator | None = None) -> "DemapperANN":
        """Fresh demapper with the same topology and new random weights."""
        return DemapperANN(self.bits_per_symbol, self.hidden, rng=rng)

    def copy(self) -> "DemapperANN":
        """Deep copy (same topology and weights) — used to snapshot a trained
        receiver before retraining experiments."""
        dup = DemapperANN(self.bits_per_symbol, self.hidden)
        dup.load_state_dict(self.state_dict())
        return dup
