"""Training loops: joint E2E training and receiver-only retraining.

:class:`E2ETrainer` is paper step 1 — joint optimisation of mapper and
demapper over an abstract (AWGN) channel model, per target SNR.
:class:`ReceiverFinetuner` is paper step 2 — the mapper is frozen and only
the demapper adapts to the *actual* channel using known pilot symbols (this
is the part the paper implements as a trainable-ANN FPGA architecture).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autoencoder.system import AESystem
from repro.channels.base import Channel
from repro.modulation.bits import indices_to_bits
from repro.modulation.constellations import Constellation
from repro.nn.optim import Adam
from repro.nn.schedulers import ConstantLR, CosineAnnealingLR
from repro.utils.complexmath import real2_to_complex
from repro.utils.rng import as_generator

__all__ = ["TrainingConfig", "TrainingHistory", "E2ETrainer", "ReceiverFinetuner"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters for either training phase.

    Defaults are tuned so the paper's 16-QAM system converges reliably in a
    few seconds on a laptop (see benchmarks/bench_micro_training.py).
    """

    steps: int = 2000
    batch_size: int = 512
    lr: float = 2e-3
    scheduler: str = "cosine"  # "cosine" | "constant"
    log_every: int = 100

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.lr <= 0:
            raise ValueError("lr must be positive")
        if self.scheduler not in ("cosine", "constant"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")


@dataclass
class TrainingHistory:
    """Loss trace of a training run (sampled every ``log_every`` steps)."""

    steps: list[int] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)

    def record(self, step: int, loss: float) -> None:
        self.steps.append(step)
        self.losses.append(loss)

    @property
    def final_loss(self) -> float:
        if not self.losses:
            raise ValueError("empty history")
        return self.losses[-1]

    @property
    def initial_loss(self) -> float:
        if not self.losses:
            raise ValueError("empty history")
        return self.losses[0]


def _make_scheduler(opt: Adam, config: TrainingConfig):
    if config.scheduler == "cosine":
        return CosineAnnealingLR(opt, t_max=config.steps, eta_min=config.lr * 0.01)
    return ConstantLR(opt)


class E2ETrainer:
    """Joint mapper+demapper training over a differentiable channel model."""

    def __init__(self, system: AESystem, config: TrainingConfig | None = None):
        self.system = system
        self.config = config if config is not None else TrainingConfig()

    def run(self, rng: np.random.Generator | int | None = None) -> TrainingHistory:
        """Execute the configured number of Adam steps; returns the loss trace."""
        rng = as_generator(rng)
        cfg = self.config
        params = self.system.mapper.parameters() + self.system.demapper.parameters()
        opt = Adam(params, lr=cfg.lr)
        sched = _make_scheduler(opt, cfg)
        history = TrainingHistory()
        for step in range(cfg.steps):
            opt.zero_grad()
            loss = self.system.train_step(rng, cfg.batch_size)
            opt.step()
            sched.step()
            if step % cfg.log_every == 0 or step == cfg.steps - 1:
                history.record(step, loss)
        return history


class ReceiverFinetuner:
    """Demapper-only retraining from pilots over the live channel.

    The transmitter keeps sending symbols from its *frozen* constellation
    (paper: "we fix the constellations of the transmitter ANN after the E2E
    Training"); the receiver knows the pilot labels and minimises BCE on the
    received samples.  Only demapper parameters are updated.
    """

    def __init__(
        self,
        system: AESystem,
        config: TrainingConfig | None = None,
        *,
        constellation: Constellation | None = None,
    ):
        self.system = system
        self.config = config if config is not None else TrainingConfig()
        # Freeze the transmit constellation once, up front (the device would
        # have it in ROM).  Falls back to the mapper's current table.
        self.constellation = (
            constellation if constellation is not None else system.mapper.constellation()
        )

    def run(
        self,
        channel: Channel | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> TrainingHistory:
        """Retrain the demapper against ``channel`` (default: the system's).

        Each step transmits a fresh pilot batch through the channel and
        applies one Adam update to the demapper.
        """
        rng = as_generator(rng)
        cfg = self.config
        ch = channel if channel is not None else self.system.channel
        k = self.system.bits_per_symbol
        points = self.constellation.points
        opt = Adam(self.system.demapper.parameters(), lr=cfg.lr)
        sched = _make_scheduler(opt, cfg)
        history = TrainingHistory()
        for step in range(cfg.steps):
            idx = rng.integers(0, self.system.order, size=cfg.batch_size)
            pilot_bits = indices_to_bits(idx, k)
            received = ch.forward(points[idx])
            opt.zero_grad()
            loss = self.system.receiver_step(received, pilot_bits)
            opt.step()
            sched.step()
            if step % cfg.log_every == 0 or step == cfg.steps - 1:
                history.record(step, loss)
        return history
