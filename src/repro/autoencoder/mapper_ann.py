"""Trainable mapper: embedding table + average-power normalisation layer.

The mapper of the paper (§III-A) is a lookup table ``E ∈ R^{M×2}`` (one 2-D
point per symbol label) followed by normalisation to unit *average* power
over the whole table:

``y_b = E[idx_b] / sqrt(P)``,  ``P = (1/M) Σ_j ‖E_j‖²``.

Because ``P`` depends on *all* rows, the backward pass has a rank-one
correction beyond the plain embedding scatter:

``∂L/∂E = scatter(s·g) − (Σ_b g_b·E[idx_b]) / (M·P^{3/2}) · E``,  ``s = P^{−1/2}``

(derived in DESIGN.md §5 and verified by numerical gradient checks).
"""

from __future__ import annotations

import numpy as np

from repro.modulation.constellations import Constellation, qam_constellation
from repro.nn.module import Module, Parameter

__all__ = ["MapperANN"]


class MapperANN(Module):
    """Trainable constellation mapper with table-wide power normalisation.

    Parameters
    ----------
    order:
        Constellation size M (16 for the paper's case study).
    init:
        ``"qam"`` warm-starts the table from Gray M-QAM (stable, removes the
        seed lottery of joint training; the steady state is unchanged),
        ``"random"`` draws points from a small Gaussian (paper's from-scratch
        setting).
    rng:
        Generator for random initialisation.
    """

    def __init__(
        self,
        order: int = 16,
        *,
        init: str = "qam",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if order < 2 or (order & (order - 1)) != 0:
            raise ValueError(f"order must be a power of two >= 2, got {order}")
        self.order = order
        rng = rng if rng is not None else np.random.default_rng()
        if init == "qam":
            try:
                pts = qam_constellation(order).points
            except ValueError as exc:  # non-square orders fall back to a ring
                raise ValueError(
                    f"init='qam' requires a square-QAM order, got {order}: {exc}"
                ) from exc
            table = np.stack([pts.real, pts.imag], axis=1)
            # tiny jitter so symmetric saddle points are broken
            table = table + rng.normal(0.0, 1e-3, size=table.shape)
        elif init == "random":
            table = rng.normal(0.0, 1.0, size=(order, 2))
        else:
            raise ValueError(f"init must be 'qam' or 'random', got {init!r}")
        self.table = Parameter(table, name="constellation")
        self._idx: np.ndarray | None = None
        self._cache: tuple[float, float] | None = None  # (P, s)

    # -- forward/backward ----------------------------------------------------
    def forward(self, indices: np.ndarray) -> np.ndarray:
        """Labels ``(B,)`` -> normalised 2-D symbols ``(B, 2)``."""
        idx = np.asarray(indices)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError("mapper input must be integer labels")
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.order:
            raise IndexError("label out of range")
        e = self.table.data
        p = float(np.mean(np.sum(e * e, axis=1)))
        if p <= 0:
            raise FloatingPointError("constellation collapsed to zero power")
        s = p**-0.5
        self._idx = idx
        self._cache = (p, s)
        return s * e[idx]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate dL/dE; returns zeros (no gradient w.r.t. integer labels)."""
        if self._idx is None or self._cache is None:
            raise RuntimeError("backward called before forward")
        g = np.asarray(grad_out, dtype=np.float64)
        idx = self._idx
        p, s = self._cache
        e = self.table.data
        np.add.at(self.table.grad, idx, s * g)
        # rank-one correction from the normalisation: -(Σ g_b·e_idx) E / (M P^{3/2})
        coeff = float(np.sum(g * e[idx])) / (self.order * p**1.5)
        self.table.grad -= coeff * e
        return np.zeros(idx.shape, dtype=np.float64)

    # -- views ----------------------------------------------------------------
    def normalized_table(self) -> np.ndarray:
        """Current unit-average-power constellation as a real ``(M, 2)`` array."""
        e = self.table.data
        p = np.mean(np.sum(e * e, axis=1))
        return e / np.sqrt(p)

    def constellation(self) -> Constellation:
        """Current constellation as a labelled complex point set.

        This is what the paper "fixes" after E2E training and what the
        conventional transmitter uses from then on.
        """
        t = self.normalized_table()
        return Constellation.from_points(t[:, 0] + 1j * t[:, 1], name=f"AE-{self.order}")

    @property
    def bits_per_symbol(self) -> int:
        return int(np.log2(self.order))
