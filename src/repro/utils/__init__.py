"""Shared utilities: RNG management, complex/real views, statistics, plotting.

These helpers are deliberately dependency-light (NumPy + SciPy only) and are
used by every other subpackage.  Nothing in here is specific to the paper —
it is the generic toolbox the rest of the reproduction stands on.
"""

from repro.utils.complexmath import (
    complex_to_real2,
    db_to_linear,
    linear_to_db,
    real2_to_complex,
    rotate,
    rotation_matrix,
)
from repro.utils.numerics import stable_sigmoid
from repro.utils.rng import RngFactory, as_generator, spawn_generators
from repro.utils.stats import (
    gray_qam_ber_approx,
    q_function,
    q_function_inv,
    wilson_interval,
)
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_probability,
)

__all__ = [
    "RngFactory",
    "as_generator",
    "spawn_generators",
    "complex_to_real2",
    "real2_to_complex",
    "rotate",
    "rotation_matrix",
    "db_to_linear",
    "linear_to_db",
    "q_function",
    "q_function_inv",
    "gray_qam_ber_approx",
    "wilson_interval",
    "stable_sigmoid",
    "format_table",
    "check_positive",
    "check_in_range",
    "check_power_of_two",
    "check_probability",
]
