"""Complex/real-plane conversions and rotations used throughout the link.

Communication symbols live naturally in the complex plane; the neural network
operates on real 2-vectors ``(Re, Im)``.  These converters are used at the
boundary.  ``complex_to_real2`` / ``real2_to_complex`` are exact inverses and
allocate new contiguous arrays (the NN hot path relies on C-contiguity for
BLAS-backed matmuls — see the HPC guide notes on cache effects).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "complex_to_real2",
    "real2_to_complex",
    "rotate",
    "rotation_matrix",
    "db_to_linear",
    "linear_to_db",
]


def complex_to_real2(z: np.ndarray) -> np.ndarray:
    """Convert a complex array of shape ``(...,)`` to reals of shape ``(..., 2)``.

    The last axis holds ``(real, imag)``.  Output is float64 C-contiguous.
    """
    z = np.asarray(z)
    out = np.empty(z.shape + (2,), dtype=np.float64)
    out[..., 0] = z.real
    out[..., 1] = z.imag
    return out


def real2_to_complex(x: np.ndarray) -> np.ndarray:
    """Convert reals of shape ``(..., 2)`` back to complex of shape ``(...,)``."""
    x = np.asarray(x, dtype=np.float64)
    if x.shape[-1] != 2:
        raise ValueError(f"last axis must have length 2, got shape {x.shape}")
    return x[..., 0] + 1j * x[..., 1]


def rotation_matrix(phi: float) -> np.ndarray:
    """2x2 real rotation matrix for angle ``phi`` (counter-clockwise)."""
    c, s = np.cos(phi), np.sin(phi)
    return np.array([[c, -s], [s, c]], dtype=np.float64)


def rotate(x: np.ndarray, phi: float) -> np.ndarray:
    """Rotate points by ``phi``.

    Accepts either complex arrays (returns complex) or real ``(..., 2)``
    arrays (returns real ``(..., 2)``).
    """
    x = np.asarray(x)
    if np.iscomplexobj(x):
        return x * np.exp(1j * phi)
    return x @ rotation_matrix(phi).T


def db_to_linear(db: float | np.ndarray) -> float | np.ndarray:
    """Convert a power ratio in decibels to linear scale."""
    return 10.0 ** (np.asarray(db, dtype=np.float64) / 10.0)


def linear_to_db(lin: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear power ratio to decibels."""
    lin = np.asarray(lin, dtype=np.float64)
    if np.any(lin <= 0):
        raise ValueError("linear power ratio must be positive")
    return 10.0 * np.log10(lin)
