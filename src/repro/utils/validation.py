"""Small argument-validation helpers with consistent error messages."""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive",
    "check_in_range",
    "check_power_of_two",
    "check_probability",
]


def check_positive(name: str, value: float | int) -> None:
    """Raise ``ValueError`` unless ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(name: str, value: float, lo: float, hi: float, *, inclusive: bool = True) -> None:
    """Raise ``ValueError`` unless ``lo <= value <= hi`` (or strict if not inclusive)."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bounds = f"[{lo}, {hi}]" if inclusive else f"({lo}, {hi})"
        raise ValueError(f"{name} must lie in {bounds}, got {value!r}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive power of two."""
    if value < 1 or (value & (value - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {value!r}")


def check_probability(name: str, value: float | np.ndarray) -> None:
    """Raise ``ValueError`` unless all entries lie in [0, 1]."""
    arr = np.asarray(value, dtype=np.float64)
    if np.any(arr < 0) or np.any(arr > 1) or np.any(~np.isfinite(arr)):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
