"""Terminal visualisation: log-scale BER curves and decision-region maps.

The paper's Fig. 2 (BER curves) and Fig. 3 (decision regions + centroids) are
regenerated as data *and* as ASCII art so results are inspectable without a
display — the benchmark logs literally contain the figures.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["ber_curve_plot", "decision_region_plot", "scatter_plot"]

_SERIES_MARKS = "ox+*#@%&"
# Region glyphs: one per symbol label; '.' is reserved for "unclaimed".
_REGION_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyz"


def ber_curve_plot(
    snr_db: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 70,
    height: int = 22,
    min_ber: float = 1e-6,
    title: str = "BER vs SNR",
) -> str:
    """Render BER-vs-SNR curves on a log10 y-axis as ASCII art.

    ``series`` maps a legend label to one BER per entry of ``snr_db``.
    Zero/NaN BERs are clamped to ``min_ber`` (plotted at the floor).
    """
    snr = np.asarray(snr_db, dtype=np.float64)
    if snr.size < 2:
        raise ValueError("need at least two SNR points")
    all_bers = []
    for label, vals in series.items():
        vals = np.asarray(vals, dtype=np.float64)
        if vals.shape != snr.shape:
            raise ValueError(f"series {label!r} has shape {vals.shape}, expected {snr.shape}")
        all_bers.append(vals)
    if not all_bers:
        raise ValueError("no series given")

    stacked = np.concatenate(all_bers)
    stacked = stacked[np.isfinite(stacked) & (stacked > 0)]
    lo = math.floor(math.log10(max(min_ber, stacked.min() if stacked.size else min_ber)))
    hi = math.ceil(math.log10(max(stacked.max() if stacked.size else 1.0, 10 * min_ber)))
    hi = max(hi, lo + 1)

    grid = [[" "] * width for _ in range(height)]
    for si, (label, vals) in enumerate(series.items()):
        mark = _SERIES_MARKS[si % len(_SERIES_MARKS)]
        vals = np.clip(np.nan_to_num(np.asarray(vals, dtype=np.float64), nan=min_ber), min_ber, 1.0)
        for x_val, ber in zip(snr, vals):
            col = int(round((x_val - snr[0]) / (snr[-1] - snr[0]) * (width - 1)))
            frac = (math.log10(ber) - lo) / (hi - lo)
            row = height - 1 - int(round(np.clip(frac, 0, 1) * (height - 1)))
            grid[row][col] = mark

    lines = [title]
    for r in range(height):
        exp = hi - (hi - lo) * r / (height - 1)
        ylab = f"1e{exp:+5.1f} |" if r % 4 == 0 else "        |"
        lines.append(ylab + "".join(grid[r]))
    lines.append("        +" + "-" * width)
    xlab = "         "
    n_ticks = 6
    for t in range(n_ticks):
        pos = int(t * (width - 1) / (n_ticks - 1))
        val = snr[0] + (snr[-1] - snr[0]) * t / (n_ticks - 1)
        tick = f"{val:.3g}dB"
        xlab = xlab[: 9 + pos] + tick + xlab[9 + pos + len(tick) :]
    lines.append(xlab)
    legend = "  ".join(
        f"{_SERIES_MARKS[i % len(_SERIES_MARKS)]}={label}" for i, label in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def decision_region_plot(
    labels: np.ndarray,
    extent: float,
    *,
    centroids: np.ndarray | None = None,
    max_size: int = 48,
    title: str = "decision regions",
) -> str:
    """Render a decision-region label grid (and optional centroids) as ASCII.

    ``labels`` is the (res, res) integer grid from
    :func:`repro.extraction.sample_decision_regions` indexed as
    ``labels[iy, ix]`` with y increasing upwards; it is downsampled to at most
    ``max_size`` columns.  Centroids (complex array) are overlaid as ``*``.
    """
    labels = np.asarray(labels)
    if labels.ndim != 2:
        raise ValueError("labels must be a 2-D grid")
    res = labels.shape[0]
    step = max(1, res // max_size)
    sub = labels[::step, ::step]
    h, w = sub.shape

    rows = []
    for iy in range(h - 1, -1, -1):  # top of the plot = +imag
        row = [
            _REGION_GLYPHS[int(sub[iy, ix]) % len(_REGION_GLYPHS)] if sub[iy, ix] >= 0 else "."
            for ix in range(w)
        ]
        rows.append(row)

    if centroids is not None:
        cents = np.asarray(centroids)
        for c in cents:
            re, im = float(np.real(c)), float(np.imag(c))
            ix = int(round((re + extent) / (2 * extent) * (w - 1)))
            iy = int(round((im + extent) / (2 * extent) * (h - 1)))
            if 0 <= ix < w and 0 <= iy < h:
                rows[h - 1 - iy][ix] = "*"

    lines = [f"{title}  (extent ±{extent:g}, '*' = centroid)"]
    lines.extend("  " + "".join(r) for r in rows)
    return "\n".join(lines)


def scatter_plot(
    points: np.ndarray,
    *,
    extent: float | None = None,
    size: int = 40,
    labels: np.ndarray | None = None,
    title: str = "constellation",
) -> str:
    """Scatter complex points on an ASCII canvas (e.g. learned constellations)."""
    z = np.asarray(points).ravel()
    if extent is None:
        extent = float(max(np.abs(z.real).max(), np.abs(z.imag).max()) * 1.1 + 1e-12)
    canvas = [[" "] * size for _ in range(size)]
    for i, c in enumerate(z):
        ix = int(round((c.real + extent) / (2 * extent) * (size - 1)))
        iy = int(round((c.imag + extent) / (2 * extent) * (size - 1)))
        if 0 <= ix < size and 0 <= iy < size:
            glyph = _REGION_GLYPHS[int(labels[i]) % len(_REGION_GLYPHS)] if labels is not None else "*"
            canvas[size - 1 - iy][ix] = glyph
    lines = [f"{title}  (extent ±{extent:.3g})"]
    lines.extend("  " + "".join(r) for r in canvas)
    return "\n".join(lines)
