"""Reproducible random-number management.

Every stochastic component in this library takes an explicit
:class:`numpy.random.Generator`.  Experiments carry a single master seed and
derive independent, collision-free child generators with
:func:`numpy.random.SeedSequence.spawn` — the recommended pattern for parallel
and multi-stage stochastic simulations (no two stages share a stream, and the
whole experiment is replayable from one integer).
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["as_generator", "spawn_generators", "RngFactory"]


def as_generator(seed: int | np.random.Generator | np.random.SeedSequence | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an ``int`` seed, an existing generator (returned unchanged), a
    :class:`~numpy.random.SeedSequence`, or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def spawn_generators(seed: int | np.random.SeedSequence | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent generators from one master seed."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


class RngFactory:
    """Hands out named, independent generators derived from a master seed.

    The factory is deterministic: asking for the same sequence of names after
    re-creating the factory with the same master seed yields identical
    streams.  Names are only used for bookkeeping/debugging; independence
    comes from spawn order.

    Example
    -------
    >>> fac = RngFactory(1234)
    >>> rng_train = fac.get("train")
    >>> rng_eval = fac.get("eval")
    """

    def __init__(self, master_seed: int | np.random.SeedSequence | None = None):
        self._ss = (
            master_seed
            if isinstance(master_seed, np.random.SeedSequence)
            else np.random.SeedSequence(master_seed)
        )
        self._names: list[str] = []

    def get(self, name: str = "") -> np.random.Generator:
        """Return a fresh independent generator (one spawn per call)."""
        self._names.append(name)
        (child,) = self._ss.spawn(1)
        return np.random.default_rng(child)

    def get_many(self, names: Sequence[str]) -> list[np.random.Generator]:
        """Return one independent generator per name, in order."""
        return [self.get(n) for n in names]

    @property
    def issued(self) -> tuple[str, ...]:
        """Names of all generators issued so far (spawn order)."""
        return tuple(self._names)

    def __iter__(self) -> Iterator[np.random.Generator]:  # pragma: no cover - convenience
        while True:
            yield self.get()
