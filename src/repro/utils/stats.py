"""Statistical helpers: Gaussian tail, analytic BER references, intervals.

The analytic Gray-coded 16-QAM BER approximation is the ground truth used to
(1) validate the Monte-Carlo engine and (2) pin down the paper's SNR
convention (Eb/N0 — see DESIGN.md §1).
"""

from __future__ import annotations

import numpy as np
from scipy import special

__all__ = [
    "q_function",
    "q_function_inv",
    "gray_qam_ber_approx",
    "wilson_interval",
]


def q_function(x: float | np.ndarray) -> float | np.ndarray:
    """Gaussian tail probability ``Q(x) = P(N(0,1) > x)``."""
    return 0.5 * special.erfc(np.asarray(x, dtype=np.float64) / np.sqrt(2.0))


def q_function_inv(p: float | np.ndarray) -> float | np.ndarray:
    """Inverse of :func:`q_function` (valid for ``0 < p < 1``)."""
    p = np.asarray(p, dtype=np.float64)
    if np.any((p <= 0) | (p >= 1)):
        raise ValueError("p must lie strictly inside (0, 1)")
    return np.sqrt(2.0) * special.erfcinv(2.0 * p)


def gray_qam_ber_approx(ebn0_db: float | np.ndarray, order: int = 16) -> float | np.ndarray:
    """Approximate BER of Gray-coded square M-QAM over AWGN.

    Uses the standard nearest-neighbour union-bound approximation

    ``Pb ≈ (4/log2 M)(1 − 1/√M) · Q( sqrt(3·log2(M)/(M−1) · Eb/N0) )``

    which is tight for mid-to-high SNR and within a few percent elsewhere.
    ``ebn0_db`` is Eb/N0 in dB (the paper's "SNR" — Table 1's baseline values
    0.19 at −2 dB and 0.0103 at 8 dB match this formula for M = 16).
    """
    m = int(order)
    if m < 4 or (m & (m - 1)) != 0:
        raise ValueError(f"order must be a power of two >= 4, got {order}")
    k = np.log2(m)
    root_m = np.sqrt(m)
    if root_m != int(root_m):
        raise ValueError(f"only square QAM supported, got order {order}")
    ebn0 = 10.0 ** (np.asarray(ebn0_db, dtype=np.float64) / 10.0)
    arg = np.sqrt(3.0 * k / (m - 1.0) * ebn0)
    return (4.0 / k) * (1.0 - 1.0 / root_m) * q_function(arg)


def wilson_interval(errors: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion.

    Preferred over the normal approximation for the small error counts that
    occur at high SNR in BER simulations.  Returns ``(lo, hi)``.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= errors <= trials:
        raise ValueError("errors must lie in [0, trials]")
    p = errors / trials
    denom = 1.0 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (z / denom) * np.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
    return (max(0.0, center - half), min(1.0, center + half))
