"""Shared numerical primitives used across nn, modulation, and fpga layers."""

from __future__ import annotations

import numpy as np

__all__ = ["stable_sigmoid"]


def stable_sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Overflow-free logistic sigmoid ``1/(1+exp(-x))``, evaluated branch-wise.

    For ``x >= 0`` uses ``1/(1+exp(-x))``; for ``x < 0`` the algebraically
    identical ``exp(x)/(1+exp(x))`` so the exponential argument is never
    positive — no overflow for any finite input.  This is the single
    implementation behind :class:`repro.nn.layers.Sigmoid`, the BCE gradient,
    :func:`repro.modulation.demapper.llrs_to_probabilities`, and the FPGA
    sigmoid LUT builder.

    Parameters
    ----------
    x:
        Input array (coerced to float64 when an integer/lower-precision
        array is passed and ``out`` is None).
    out:
        Optional preallocated output (same shape as ``x``); enables
        allocation-free use inside workspace-managed kernels.
    """
    z = np.asarray(x)
    if not np.issubdtype(z.dtype, np.floating):
        z = z.astype(np.float64)
    if out is None:
        out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out
