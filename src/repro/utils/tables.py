"""Plain-text table rendering for experiment and benchmark reports.

Every experiment driver prints its results as a fixed-width table with a
"paper" column next to the "measured" column so reproduction quality is
visible at a glance in CI logs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _render_cell(value: object, float_fmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".4g",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    ``None`` cells render as ``-``; floats use ``float_fmt``.  Returns the
    table as a single string (no trailing newline).
    """
    str_rows = [[_render_cell(v, float_fmt) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[j]) for j, c in enumerate(cells)).rstrip()

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(sep))
    lines.append(fmt_line(list(headers)))
    lines.append(sep)
    lines.extend(fmt_line(row) for row in str_rows)
    return "\n".join(lines)
