"""Constellation labeling analysis — how Gray-like is a point set?

At mid-to-high SNR almost all symbol errors land on a nearest neighbour, so
the BER is governed by the average number of bit flips across
nearest-neighbour boundaries.  For a perfect Gray labeling that number is
exactly 1; learned (AE) constellations can drift from it, which is one
mechanism behind AE-vs-conventional BER gaps.

* :func:`neighbour_bit_distances` — Hamming distances across every
  nearest-neighbour pair;
* :func:`gray_penalty` — their mean (1.0 = perfect Gray labeling);
* :func:`union_bound_ber` — nearest-neighbour union bound on the BER for an
  arbitrary labelled constellation over AWGN (generalises the closed-form
  Gray-QAM approximation used as the Fig. 2 reference).
"""

from __future__ import annotations

import numpy as np

from repro.modulation.constellations import Constellation
from repro.utils.stats import q_function

__all__ = ["neighbour_bit_distances", "gray_penalty", "union_bound_ber"]


def neighbour_bit_distances(
    constellation: Constellation, *, tolerance: float = 1.05
) -> np.ndarray:
    """Hamming distances across all nearest-neighbour pairs.

    A pair (i, j) is a nearest-neighbour pair if their distance is within
    ``tolerance`` of min-distance *from either side* (handles slightly
    irregular learned constellations).  Returns one entry per unordered
    pair.
    """
    if tolerance < 1.0:
        raise ValueError("tolerance must be >= 1")
    pts = constellation.points
    bm = constellation.bit_matrix
    d = np.abs(pts[:, None] - pts[None, :])
    np.fill_diagonal(d, np.inf)
    nearest = d.min(axis=1)
    out = []
    m = constellation.order
    for i in range(m):
        for j in range(i + 1, m):
            if d[i, j] <= tolerance * min(nearest[i], nearest[j]):
                out.append(int(np.sum(bm[i] != bm[j])))
    if not out:
        raise ValueError("no nearest-neighbour pairs found (degenerate set)")
    return np.array(out)


def gray_penalty(constellation: Constellation, *, tolerance: float = 1.05) -> float:
    """Mean bit flips per nearest-neighbour error (1.0 = perfect Gray)."""
    return float(neighbour_bit_distances(constellation, tolerance=tolerance).mean())


def union_bound_ber(constellation: Constellation, sigma2: float) -> float:
    """Pairwise union bound on the BER over AWGN.

    ``BER <= (1/(M·k)) Σ_i Σ_{j≠i} d_H(i,j) · Q(‖p_i − p_j‖ / 2σ)``

    Tight at high SNR (nearest neighbours dominate); for Gray QAM it
    reduces to the familiar closed form within a few percent.
    """
    if sigma2 <= 0:
        raise ValueError("sigma2 must be positive")
    pts = constellation.points
    bm = constellation.bit_matrix
    m = constellation.order
    k = constellation.bits_per_symbol
    dist = np.abs(pts[:, None] - pts[None, :])
    hamming = (bm[:, None, :] != bm[None, :, :]).sum(axis=2)
    np.fill_diagonal(dist, np.inf)
    q_vals = q_function(dist / (2.0 * np.sqrt(sigma2)))
    return float((hamming * q_vals).sum() / (m * k))
