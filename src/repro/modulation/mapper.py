"""Conventional mapper: bit groups / labels -> complex constellation symbols."""

from __future__ import annotations

import numpy as np

from repro.modulation.bits import bits_to_indices
from repro.modulation.constellations import Constellation

__all__ = ["Mapper"]


class Mapper:
    """Maps integer labels or bit streams onto a constellation.

    This is the fixed transmitter used after E2E training (the paper freezes
    the mapper constellation before retraining) and the conventional-baseline
    transmitter (Gray QAM).
    """

    def __init__(self, constellation: Constellation):
        self.constellation = constellation

    @property
    def bits_per_symbol(self) -> int:
        return self.constellation.bits_per_symbol

    def map_indices(self, indices: np.ndarray) -> np.ndarray:
        """Labels ``(N,)`` -> complex symbols ``(N,)``."""
        idx = np.asarray(indices)
        if not np.issubdtype(idx.dtype, np.integer):
            raise TypeError("indices must be integers")
        if idx.min(initial=0) < 0 or idx.max(initial=0) >= self.constellation.order:
            raise ValueError("label out of range for this constellation")
        return self.constellation.points[idx]

    def map_bits(self, bits: np.ndarray) -> np.ndarray:
        """Bit array -> symbols.

        Accepts shape ``(N, k)`` (one row per symbol) or a flat ``(N*k,)``
        stream whose length is a multiple of k.
        """
        b = np.asarray(bits)
        k = self.bits_per_symbol
        if b.ndim == 1:
            if b.size % k != 0:
                raise ValueError(f"bit stream length {b.size} is not a multiple of {k}")
            b = b.reshape(-1, k)
        elif b.ndim != 2 or b.shape[1] != k:
            raise ValueError(f"expected (N, {k}) bits, got shape {b.shape}")
        return self.map_indices(bits_to_indices(b))

    def __call__(self, indices: np.ndarray) -> np.ndarray:
        return self.map_indices(indices)
