"""Bit-vector <-> integer-label conversions and bit utilities.

Convention: a symbol label is the MSB-first packing of its ``k`` bits, so
label ``0b1010 = 10`` carries bits ``(1, 0, 1, 0)``.  The AE's demapper
output order matches this (output 0 = MSB).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "indices_to_bits",
    "bits_to_indices",
    "random_bits",
    "random_indices",
    "count_bit_errors",
]


def indices_to_bits(indices: np.ndarray, k: int) -> np.ndarray:
    """Expand integer labels ``(N,)`` into bit rows ``(N, k)``, MSB first."""
    idx = np.asarray(indices)
    if not np.issubdtype(idx.dtype, np.integer):
        raise TypeError(f"indices must be integers, got dtype {idx.dtype}")
    if k < 1 or k > 62:
        raise ValueError(f"k must lie in [1, 62], got {k}")
    if idx.min(initial=0) < 0 or idx.max(initial=0) >= (1 << k):
        raise ValueError(f"labels out of range for k={k} bits")
    shifts = np.arange(k - 1, -1, -1)
    return ((idx[..., None] >> shifts) & 1).astype(np.int8)


def bits_to_indices(bits: np.ndarray) -> np.ndarray:
    """Pack bit rows ``(N, k)`` (MSB first) into integer labels ``(N,)``."""
    b = np.asarray(bits)
    if b.ndim < 1 or b.shape[-1] < 1:
        raise ValueError("bits must have a trailing bit axis")
    if not np.all((b == 0) | (b == 1)):
        raise ValueError("bits must be 0/1 valued")
    k = b.shape[-1]
    weights = (1 << np.arange(k - 1, -1, -1)).astype(np.int64)
    return (b.astype(np.int64) @ weights).astype(np.int64)


def random_bits(rng: np.random.Generator, shape: int | tuple[int, ...]) -> np.ndarray:
    """Uniform i.i.d. bits with the given shape (dtype int8)."""
    return rng.integers(0, 2, size=shape, dtype=np.int8)


def random_indices(rng: np.random.Generator, n: int, order: int) -> np.ndarray:
    """Uniform symbol labels in ``[0, order)`` (dtype int64)."""
    if order < 2:
        raise ValueError("order must be >= 2")
    return rng.integers(0, order, size=n, dtype=np.int64)


def count_bit_errors(a: np.ndarray, b: np.ndarray) -> int:
    """Number of differing bits between two equal-shape 0/1 arrays."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return int(np.count_nonzero(a != b))
