"""Constellation objects: point sets indexed by bit-label.

``Constellation.points[label]`` is the complex symbol whose transmitted bits
are the MSB-first binary expansion of ``label``.  Factories build Gray-coded
square QAM and Gray PSK; arbitrary point sets (e.g. learned AE
constellations or extracted centroids) use :meth:`Constellation.from_points`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.modulation.bits import indices_to_bits
from repro.modulation.gray import gray_decode, gray_encode

__all__ = ["Constellation", "qam_constellation", "psk_constellation"]


@dataclass(frozen=True)
class Constellation:
    """An ordered set of ``M = 2^k`` complex points with implicit bit labels.

    Attributes
    ----------
    points:
        Complex array of shape ``(M,)``; entry ``i`` is the symbol for
        label ``i``.
    name:
        Human-readable identifier.
    """

    points: np.ndarray
    name: str = "custom"
    _bit_matrix: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        pts = np.asarray(self.points, dtype=np.complex128)
        if pts.ndim != 1:
            raise ValueError(f"points must be 1-D, got shape {pts.shape}")
        m = pts.size
        if m < 2 or (m & (m - 1)) != 0:
            raise ValueError(f"constellation size must be a power of two >= 2, got {m}")
        object.__setattr__(self, "points", pts)
        k = int(np.log2(m))
        object.__setattr__(self, "_bit_matrix", indices_to_bits(np.arange(m), k))

    # -- properties ---------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of constellation points M."""
        return self.points.size

    @property
    def bits_per_symbol(self) -> int:
        """k = log2(M)."""
        return int(np.log2(self.order))

    @property
    def bit_matrix(self) -> np.ndarray:
        """(M, k) matrix; row i = bits of label i, MSB first."""
        return self._bit_matrix

    @property
    def average_energy(self) -> float:
        """Mean squared magnitude of the points."""
        return float(np.mean(np.abs(self.points) ** 2))

    @property
    def min_distance(self) -> float:
        """Minimum pairwise Euclidean distance between points."""
        d = np.abs(self.points[:, None] - self.points[None, :])
        np.fill_diagonal(d, np.inf)
        return float(d.min())

    # -- constructors -------------------------------------------------------
    @staticmethod
    def from_points(points: np.ndarray, *, name: str = "custom", normalize: bool = False) -> "Constellation":
        """Wrap an arbitrary point set; optionally scale to unit average energy."""
        pts = np.asarray(points, dtype=np.complex128).copy()
        if normalize:
            energy = np.mean(np.abs(pts) ** 2)
            if energy <= 0:
                raise ValueError("cannot normalize an all-zero constellation")
            pts /= np.sqrt(energy)
        return Constellation(points=pts, name=name)

    # -- transforms ----------------------------------------------------------
    def normalized(self) -> "Constellation":
        """Copy scaled to unit average energy."""
        return Constellation.from_points(self.points, name=self.name, normalize=True)

    def rotated(self, phi: float) -> "Constellation":
        """Copy rotated by ``phi`` radians (labels unchanged)."""
        return Constellation(points=self.points * np.exp(1j * phi), name=f"{self.name}*e^j{phi:.3g}")

    def bits_for(self, labels: np.ndarray) -> np.ndarray:
        """Bits (``(N, k)``) carried by the given labels."""
        return indices_to_bits(np.asarray(labels), self.bits_per_symbol)

    def __len__(self) -> int:
        return self.order


def _gray_pam_levels(bits: int) -> np.ndarray:
    """Gray-labelled PAM levels: entry ``v`` is the level whose label is ``v``.

    Positions (left to right) are ``-(L-1), ..., +(L-1)`` in steps of 2; the
    level at position ``p`` carries label ``gray_encode(p)``, so adjacent
    levels differ in exactly one bit.
    """
    levels = 1 << bits
    positions = np.arange(levels)
    amplitudes = 2.0 * positions - (levels - 1)
    out = np.empty(levels, dtype=np.float64)
    out[gray_encode(positions)] = amplitudes
    return out


def qam_constellation(order: int = 16, *, normalize: bool = True) -> Constellation:
    """Gray-coded square M-QAM (M = 4, 16, 64, 256, ...).

    The label's upper ``k/2`` bits select the in-phase level and the lower
    ``k/2`` bits the quadrature level, each via Gray-labelled PAM.  With
    ``normalize=True`` (default) the constellation has unit average energy,
    matching the AE mapper's power-normalisation layer.
    """
    if order < 4 or (order & (order - 1)) != 0:
        raise ValueError(f"order must be a power of two >= 4, got {order}")
    k = int(np.log2(order))
    if k % 2 != 0:
        raise ValueError(f"only square QAM supported (even bits/symbol), got order {order}")
    half = k // 2
    pam = _gray_pam_levels(half)
    labels = np.arange(order)
    i_bits = labels >> half
    q_bits = labels & ((1 << half) - 1)
    pts = pam[i_bits] + 1j * pam[q_bits]
    return Constellation.from_points(pts, name=f"{order}-QAM", normalize=normalize)


def psk_constellation(order: int = 8, *, normalize: bool = True, offset: float = 0.0) -> Constellation:
    """Gray-coded M-PSK on the unit circle (optionally phase-offset)."""
    if order < 2 or (order & (order - 1)) != 0:
        raise ValueError(f"order must be a power of two >= 2, got {order}")
    positions = np.arange(order)
    angles = 2.0 * np.pi * positions / order + offset
    pts = np.empty(order, dtype=np.complex128)
    pts[gray_encode(positions)] = np.exp(1j * angles)
    return Constellation.from_points(pts, name=f"{order}-PSK", normalize=normalize)


def _check_gray_property(constellation: Constellation) -> bool:  # pragma: no cover - debug helper
    """True iff every nearest-neighbour pair differs in exactly one bit."""
    pts = constellation.points
    bm = constellation.bit_matrix
    d = np.abs(pts[:, None] - pts[None, :])
    np.fill_diagonal(d, np.inf)
    dmin = d.min()
    close = np.argwhere(np.isclose(d, dmin))
    return all(int(np.sum(bm[i] != bm[j])) == 1 for i, j in close)
