"""Binary reflected Gray code (vectorised encode/decode)."""

from __future__ import annotations

import numpy as np

__all__ = ["gray_encode", "gray_decode"]


def gray_encode(n: int | np.ndarray) -> int | np.ndarray:
    """Binary -> Gray: ``g = n XOR (n >> 1)``.

    Adjacent integers map to codewords differing in exactly one bit — the
    property that makes Gray-labelled constellations minimise bit errors for
    nearest-neighbour symbol errors.
    """
    n_arr = np.asarray(n)
    if np.any(n_arr < 0):
        raise ValueError("gray_encode requires non-negative integers")
    out = n_arr ^ (n_arr >> 1)
    return int(out) if np.isscalar(n) or n_arr.ndim == 0 else out


def gray_decode(g: int | np.ndarray) -> int | np.ndarray:
    """Gray -> binary via prefix XOR (O(log maxbits) vectorised doubling)."""
    g_arr = np.array(g, copy=True)
    if np.any(g_arr < 0):
        raise ValueError("gray_decode requires non-negative integers")
    shift = 1
    # prefix-XOR doubling: after ceil(log2(bits)) rounds every bit has
    # absorbed the XOR of all more-significant bits.
    max_bits = int(g_arr.max(initial=0)).bit_length() if np.asarray(g).size else 0
    while shift <= max(max_bits, 1):
        g_arr = g_arr ^ (g_arr >> shift)
        shift <<= 1
    return int(g_arr) if np.isscalar(g) or np.asarray(g).ndim == 0 else g_arr
