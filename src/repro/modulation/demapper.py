"""Hard and soft demappers.

Three receivers over a point set ("centroids" in the hybrid flow):

* :class:`HardDemapper` — nearest-point decision, returns labels/bits.
* :class:`MaxLogDemapper` — the paper's sub-optimal soft demapper
  (Robertson et al. 1995, paper Sec. III-A):

  ``llr(b_k | s_r) = 1/(2σ²)·[ min_{i: b_k(i)=0} |s_r − c_i|² − min_{i: b_k(i)=1} |s_r − c_i|² ]``

  Positive LLR ⇒ bit 1 more likely (llr ≈ log P(b=1)/P(b=0)).
* :class:`ExactLogMAPDemapper` — exact bit LLRs via log-sum-exp, the
  communication-performance reference the max-log approximates.

``sigma2`` is the **per-real-dimension** noise variance (N0/2), consistent
with squared Euclidean distances in the 2-D plane.

All three run on the pluggable compute backend (:mod:`repro.backend`): the
distance + per-bit reduction is one fused kernel over a padded bit-set index
table instead of a Python loop over bit positions, intermediates come from
the backend workspace, and ``llrs(..., out=...)`` makes steady-state batches
fully allocation-free.  The default (float64 NumPy) backend produces
bit-identical hard decisions — and bit-identical max-log LLRs — to the
historical implementation.
"""

from __future__ import annotations

import numpy as np

from repro.backend import PaddedBitSets, backend_from_name, get_backend
from repro.backend.numpy_backend import NumpyBackend
from repro.modulation.bits import bits_to_indices
from repro.modulation.constellations import Constellation
from repro.utils.numerics import stable_sigmoid

__all__ = [
    "HardDemapper",
    "MaxLogDemapper",
    "ExactLogMAPDemapper",
    "llrs_to_bits",
    "llrs_to_probabilities",
]


def llrs_to_bits(llrs: np.ndarray) -> np.ndarray:
    """Hard decisions from LLRs (paper convention: llr > 0 ⇒ bit 1)."""
    return (np.asarray(llrs) > 0).astype(np.int8)


def llrs_to_probabilities(llrs: np.ndarray) -> np.ndarray:
    """P(bit = 1) from LLRs: sigmoid(llr) under the llr=log(P1/P0) convention."""
    return stable_sigmoid(np.asarray(llrs, dtype=np.float64))


class _PointSetDemapper:
    """Shared machinery: squared distances to a labelled point set.

    Parameters
    ----------
    constellation:
        Labelled point set.
    backend:
        ``None`` (default) resolves the process-wide backend at every call
        (so ``set_backend``/``REPRO_BACKEND`` apply retroactively); a tier
        name or backend instance pins this demapper to that tier.
    """

    def __init__(self, constellation: Constellation, *, backend: str | NumpyBackend | None = None):
        self.constellation = constellation
        self._pinned = backend_from_name(backend) if isinstance(backend, str) else backend
        # Padded per-bit index table driving the fused backend kernels
        # (per-set indices are available via ``self._bitsets.row(j, value)``).
        self._bitsets = PaddedBitSets.from_bit_matrix(constellation.bit_matrix)

    @property
    def backend(self) -> NumpyBackend:
        """The backend this demapper currently dispatches to."""
        return self._pinned if self._pinned is not None else get_backend()

    @property
    def bitsets(self) -> PaddedBitSets:
        """The padded per-bit index table driving the fused kernels.

        Exposed for batched dispatch layers (:mod:`repro.backend.dispatch`)
        that group several demappers' work into one multi-sigma launch.
        """
        return self._bitsets

    def squared_distances(self, received: np.ndarray) -> np.ndarray:
        """|y − c_i|² for every received sample and point: shape ``(N, M)``.

        Runs on the backend's transposed distance kernel (workspace-managed
        intermediates instead of a naive broadcast temporary); only the
        caller-owned float64 ``(N, M)`` result is allocated.
        """
        d2_t = self.backend.point_distances_t(received, self.constellation.points)
        out = np.empty((d2_t.shape[1], d2_t.shape[0]), dtype=np.float64)
        np.copyto(out, d2_t.T, casting="same_kind")
        return out

    def demap_bits_multi(self, received: np.ndarray) -> np.ndarray:
        """Nearest-point hard bits for an ``(S, n)`` sweep tensor: ``(S, n, k)``.

        Hard decisions are σ²-independent, so a whole multi-SNR batch
        dispatches to one flattened :meth:`hard_indices` launch.
        """
        y = np.asarray(received)
        if y.ndim != 2:
            raise ValueError(f"expected (S, n) received, got shape {y.shape}")
        idx = self.backend.hard_indices(y, self.constellation.points)
        return self.constellation.bit_matrix[idx]


class HardDemapper(_PointSetDemapper):
    """Minimum-distance (ML for equiprobable symbols over AWGN) detector."""

    def demap_indices(self, received: np.ndarray) -> np.ndarray:
        """Received symbols -> nearest-point labels ``(N,)``."""
        return self.backend.hard_indices(received, self.constellation.points)

    def demap_bits(self, received: np.ndarray) -> np.ndarray:
        """Received symbols -> hard bits ``(N, k)``."""
        return self.constellation.bit_matrix[self.demap_indices(received)]

    def __call__(self, received: np.ndarray) -> np.ndarray:
        return self.demap_bits(received)


class MaxLogDemapper(_PointSetDemapper):
    """Sub-optimal max-log soft demapper (the paper's inference algorithm).

    Replaces exponentials/logarithms of exact log-MAP with two minima per
    bit — the simplification that makes the FPGA implementation in Table 2
    an order of magnitude cheaper than ANN inference.
    """

    def llrs(
        self,
        received: np.ndarray,
        sigma2: float,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Bit LLRs ``(N, k)``; ``sigma2`` = per-dimension noise variance.

        ``out`` (optional, float64 ``(N, k)``) is filled and returned in
        place for allocation-free steady-state use.
        """
        if sigma2 <= 0:
            raise ValueError(f"sigma2 must be positive, got {sigma2}")
        return self.backend.maxlog_llrs(
            received, self.constellation.points, self._bitsets, sigma2, out=out
        )

    def llrs_multi(
        self,
        received: np.ndarray,
        sigma2s: np.ndarray,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Max-log LLRs for a whole SNR sweep in one kernel launch.

        ``received`` is ``(S, n)`` (row ``s`` = the batch at sweep point
        ``s``) and ``sigma2s`` the matching per-row noise variances; returns
        (or fills ``out`` with) float64 ``(S, n, k)``.  On the default tier
        each slice ``[s]`` is bit-identical to ``llrs(received[s],
        sigma2s[s])`` — the batched path only shares the distance stage and
        applies the ``1/(2σ²)`` scalings from a vector.
        """
        return self.backend.maxlog_llrs_multi(
            received, self.constellation.points, self._bitsets, sigma2s, out=out
        )

    def demap_bits(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        """Hard bits from max-log demapping.

        The hard decision is independent of ``sigma2`` (the LLR scaling does
        not change the sign), so this dispatches straight to the nearest-point
        ``hard_indices`` kernel — no LLRs are materialised.  Exact-tie inputs
        (equidistant to a 0-point and a 1-point, a measure-zero event under
        noise) resolve to the nearest point with the lowest label, matching
        :class:`HardDemapper`.
        """
        if sigma2 <= 0:
            raise ValueError(f"sigma2 must be positive, got {sigma2}")
        idx = self.backend.hard_indices(received, self.constellation.points)
        return self.constellation.bit_matrix[idx]

    def __call__(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        return self.llrs(received, sigma2)


class ExactLogMAPDemapper(_PointSetDemapper):
    """Exact bitwise log-MAP demapper (log-sum-exp over the point set).

    ``llr_k = logsumexp_{i: b_k=1}(−d_i²/2σ²) − logsumexp_{i: b_k=0}(−d_i²/2σ²)``
    """

    def llrs(
        self,
        received: np.ndarray,
        sigma2: float,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Bit LLRs ``(N, k)`` (positive ⇒ bit 1, same convention as max-log)."""
        if sigma2 <= 0:
            raise ValueError(f"sigma2 must be positive, got {sigma2}")
        return self.backend.logmap_llrs(
            received, self.constellation.points, self._bitsets, sigma2, out=out
        )

    def llrs_multi(
        self,
        received: np.ndarray,
        sigma2s: np.ndarray,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Exact LLRs for an ``(S, n)`` sweep tensor: ``(S, n, k)`` float64.

        Same contract as :meth:`MaxLogDemapper.llrs_multi` (per-row sigma,
        shared distance stage, per-SNR slices bit-identical to the scalar
        kernel on the default tier).
        """
        return self.backend.logmap_llrs_multi(
            received, self.constellation.points, self._bitsets, sigma2s, out=out
        )

    def demap_bits(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        """Hard bits from exact LLRs."""
        return llrs_to_bits(self.llrs(received, sigma2))

    def __call__(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        return self.llrs(received, sigma2)
