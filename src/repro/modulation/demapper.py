"""Hard and soft demappers.

Three receivers over a point set ("centroids" in the hybrid flow):

* :class:`HardDemapper` — nearest-point decision, returns labels/bits.
* :class:`MaxLogDemapper` — the paper's sub-optimal soft demapper
  (Robertson et al. 1995, paper Sec. III-A):

  ``llr(b_k | s_r) = 1/(2σ²)·[ min_{i: b_k(i)=0} |s_r − c_i|² − min_{i: b_k(i)=1} |s_r − c_i|² ]``

  Positive LLR ⇒ bit 1 more likely (llr ≈ log P(b=1)/P(b=0)).
* :class:`ExactLogMAPDemapper` — exact bit LLRs via log-sum-exp, the
  communication-performance reference the max-log approximates.

``sigma2`` is the **per-real-dimension** noise variance (N0/2), consistent
with squared Euclidean distances in the 2-D plane.
"""

from __future__ import annotations

import numpy as np
from scipy.special import logsumexp

from repro.modulation.bits import bits_to_indices
from repro.modulation.constellations import Constellation

__all__ = [
    "HardDemapper",
    "MaxLogDemapper",
    "ExactLogMAPDemapper",
    "llrs_to_bits",
    "llrs_to_probabilities",
]


def llrs_to_bits(llrs: np.ndarray) -> np.ndarray:
    """Hard decisions from LLRs (paper convention: llr > 0 ⇒ bit 1)."""
    return (np.asarray(llrs) > 0).astype(np.int8)


def llrs_to_probabilities(llrs: np.ndarray) -> np.ndarray:
    """P(bit = 1) from LLRs: sigmoid(llr) under the llr=log(P1/P0) convention."""
    z = np.asarray(llrs, dtype=np.float64)
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class _PointSetDemapper:
    """Shared machinery: squared distances to a labelled point set."""

    def __init__(self, constellation: Constellation):
        self.constellation = constellation
        # Pre-split labels by bit value for fast masked minima: for each bit
        # position k we hold the indices whose k-th bit is 0 resp. 1.
        bm = constellation.bit_matrix
        k = constellation.bits_per_symbol
        self._zero_sets = [np.flatnonzero(bm[:, j] == 0) for j in range(k)]
        self._one_sets = [np.flatnonzero(bm[:, j] == 1) for j in range(k)]

    def squared_distances(self, received: np.ndarray) -> np.ndarray:
        """|y − c_i|² for every received sample and point: shape ``(N, M)``."""
        y = np.asarray(received, dtype=np.complex128).ravel()
        diff = y[:, None] - self.constellation.points[None, :]
        return (diff.real * diff.real) + (diff.imag * diff.imag)


class HardDemapper(_PointSetDemapper):
    """Minimum-distance (ML for equiprobable symbols over AWGN) detector."""

    def demap_indices(self, received: np.ndarray) -> np.ndarray:
        """Received symbols -> nearest-point labels ``(N,)``."""
        return np.argmin(self.squared_distances(received), axis=1)

    def demap_bits(self, received: np.ndarray) -> np.ndarray:
        """Received symbols -> hard bits ``(N, k)``."""
        return self.constellation.bit_matrix[self.demap_indices(received)]

    def __call__(self, received: np.ndarray) -> np.ndarray:
        return self.demap_bits(received)


class MaxLogDemapper(_PointSetDemapper):
    """Sub-optimal max-log soft demapper (the paper's inference algorithm).

    Replaces exponentials/logarithms of exact log-MAP with two minima per
    bit — the simplification that makes the FPGA implementation in Table 2
    an order of magnitude cheaper than ANN inference.
    """

    def llrs(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        """Bit LLRs ``(N, k)``; ``sigma2`` = per-dimension noise variance."""
        if sigma2 <= 0:
            raise ValueError(f"sigma2 must be positive, got {sigma2}")
        d2 = self.squared_distances(received)
        k = self.constellation.bits_per_symbol
        out = np.empty((d2.shape[0], k), dtype=np.float64)
        for j in range(k):
            min0 = d2[:, self._zero_sets[j]].min(axis=1)
            min1 = d2[:, self._one_sets[j]].min(axis=1)
            out[:, j] = min0 - min1
        out *= 1.0 / (2.0 * sigma2)
        return out

    def demap_bits(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        """Hard bits from max-log LLRs.

        Note the hard decision is independent of ``sigma2`` (scaling does not
        change the sign) — it equals the nearest-point decision.
        """
        return llrs_to_bits(self.llrs(received, sigma2))

    def __call__(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        return self.llrs(received, sigma2)


class ExactLogMAPDemapper(_PointSetDemapper):
    """Exact bitwise log-MAP demapper (log-sum-exp over the point set).

    ``llr_k = logsumexp_{i: b_k=1}(−d_i²/2σ²) − logsumexp_{i: b_k=0}(−d_i²/2σ²)``
    """

    def llrs(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        """Bit LLRs ``(N, k)`` (positive ⇒ bit 1, same convention as max-log)."""
        if sigma2 <= 0:
            raise ValueError(f"sigma2 must be positive, got {sigma2}")
        metric = -self.squared_distances(received) / (2.0 * sigma2)
        k = self.constellation.bits_per_symbol
        out = np.empty((metric.shape[0], k), dtype=np.float64)
        for j in range(k):
            lse1 = logsumexp(metric[:, self._one_sets[j]], axis=1)
            lse0 = logsumexp(metric[:, self._zero_sets[j]], axis=1)
            out[:, j] = lse1 - lse0
        return out

    def demap_bits(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        """Hard bits from exact LLRs."""
        return llrs_to_bits(self.llrs(received, sigma2))

    def __call__(self, received: np.ndarray, sigma2: float) -> np.ndarray:
        return self.llrs(received, sigma2)
