"""Conventional modulation substrate: constellations, mapping, demapping.

Implements the classical blocks the paper's hybrid receiver builds on:

* bit <-> integer-label packing (:mod:`repro.modulation.bits`),
* Gray coding (:mod:`repro.modulation.gray`),
* square Gray-QAM / Gray-PSK / custom constellations
  (:mod:`repro.modulation.constellations`),
* the mapper (label -> complex symbol) (:mod:`repro.modulation.mapper`),
* hard and soft demappers, including the **sub-optimal max-log demapper of
  Robertson et al. 1995** used by the paper for centroid-based inference,
  and the exact log-MAP reference (:mod:`repro.modulation.demapper`).

LLR sign convention (paper's Sec. III-A formula): ``llr > 0`` means bit = 1
is more likely, ``llr = log(P(b=1)/P(b=0))`` under max-log approximation.
"""

from repro.modulation.bits import (
    bits_to_indices,
    count_bit_errors,
    indices_to_bits,
    random_bits,
    random_indices,
)
from repro.modulation.constellations import Constellation, psk_constellation, qam_constellation
from repro.modulation.demapper import (
    HardDemapper,
    ExactLogMAPDemapper,
    MaxLogDemapper,
    llrs_to_bits,
    llrs_to_probabilities,
)
from repro.modulation.gray import gray_decode, gray_encode
from repro.modulation.labeling import gray_penalty, neighbour_bit_distances, union_bound_ber
from repro.modulation.mapper import Mapper

__all__ = [
    "bits_to_indices",
    "indices_to_bits",
    "random_bits",
    "random_indices",
    "count_bit_errors",
    "gray_encode",
    "gray_decode",
    "Constellation",
    "qam_constellation",
    "psk_constellation",
    "Mapper",
    "HardDemapper",
    "MaxLogDemapper",
    "ExactLogMAPDemapper",
    "llrs_to_bits",
    "llrs_to_probabilities",
    "gray_penalty",
    "neighbour_bit_distances",
    "union_bound_ber",
]
