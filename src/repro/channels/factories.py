"""Picklable channel factories for the chunked/parallel Monte-Carlo mode.

The deterministic chunked mode of :func:`repro.link.simulator.simulate_ber`
(and the parallel workers behind ``n_workers > 1``) rebuild the channel once
per chunk from a *factory*: a picklable callable ``factory(rng) -> Channel``
driven by the chunk's spawned noise generator.  This module provides one
factory per member of the channel zoo, so every scenario — not just AWGN —
runs through the worker-count-invariant parallel path:

========================= ====================================================
factory                   channel built per chunk
========================= ====================================================
:class:`AWGNFactory`      :class:`~repro.channels.awgn.AWGNChannel`
:class:`RayleighFactory`  :class:`~repro.channels.fading.RayleighFadingChannel`
:class:`RicianFactory`    :class:`~repro.channels.fading.RicianFadingChannel`
:class:`PhaseNoiseFactory`:class:`~repro.channels.phase_noise.WienerPhaseNoiseChannel`
:class:`PhaseOffsetFactory`:class:`~repro.channels.phase.PhaseOffsetChannel`
:class:`CFOFactory`       :class:`~repro.channels.cfo.CFOChannel`
:class:`IQImbalanceFactory`:class:`~repro.channels.iq_imbalance.IQImbalanceChannel`
:class:`RappPAFactory`    :class:`~repro.channels.nonlinear.RappPAChannel`
:class:`CompositeFactory` :class:`~repro.channels.composite.CompositeChannel`
========================= ====================================================

Deterministic impairments (phase offset, CFO, IQ imbalance, Rapp PA) accept
and ignore the per-chunk generator so every factory shares one call shape.
:class:`CompositeFactory` spawns one child generator per stage — in stage
order, for every stage whether stochastic or not — so the composed noise
streams are a pure function of the chunk generator, independent of which
stages happen to consume randomness.

Typical sweep scenario (fading + noise, paper §III-C style)::

    factory = CompositeFactory((
        RayleighFactory(block_size=256, coherent=True),
        AWGNFactory(snr_db=8.0, bits_per_symbol=4),
    ))
    simulate_ber(qam, None, demap, 1_000_000, rng=7,
                 channel_factory=factory, n_workers=4)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.channels.awgn import AWGNChannel
from repro.channels.base import Channel
from repro.channels.cfo import CFOChannel
from repro.channels.composite import CompositeChannel
from repro.channels.fading import RayleighFadingChannel, RicianFadingChannel
from repro.channels.iq_imbalance import IQImbalanceChannel
from repro.channels.nonlinear import RappPAChannel
from repro.channels.phase import PhaseOffsetChannel
from repro.channels.phase_noise import WienerPhaseNoiseChannel

__all__ = [
    "AWGNFactory",
    "RayleighFactory",
    "RicianFactory",
    "PhaseNoiseFactory",
    "PhaseOffsetFactory",
    "CFOFactory",
    "IQImbalanceFactory",
    "RappPAFactory",
    "CompositeFactory",
]


@dataclass(frozen=True)
class AWGNFactory:
    """Per-chunk :class:`AWGNChannel` builder — the standard uncoded-AWGN case.

    ``bits_per_symbol`` is deliberately required (unlike the channel's
    16-QAM default): with the default Eb/N0 convention it sets the noise
    power, and a silently wrong ``k`` shifts every BER point.
    """

    snr_db: float
    bits_per_symbol: int
    snr_type: str = "ebn0"
    es: float = 1.0

    def __call__(self, rng: np.random.Generator) -> AWGNChannel:
        return AWGNChannel(
            self.snr_db, self.bits_per_symbol, snr_type=self.snr_type, es=self.es, rng=rng
        )


@dataclass(frozen=True)
class RayleighFactory:
    """Per-chunk quasi-static Rayleigh block fading."""

    block_size: int = 1024
    coherent: bool = False

    def __call__(self, rng: np.random.Generator) -> RayleighFadingChannel:
        return RayleighFadingChannel(self.block_size, coherent=self.coherent, rng=rng)


@dataclass(frozen=True)
class RicianFactory:
    """Per-chunk Rician block fading with K-factor."""

    k_factor: float = 4.0
    block_size: int = 1024
    coherent: bool = False

    def __call__(self, rng: np.random.Generator) -> RicianFadingChannel:
        return RicianFadingChannel(
            self.k_factor, self.block_size, coherent=self.coherent, rng=rng
        )


@dataclass(frozen=True)
class PhaseNoiseFactory:
    """Per-chunk Wiener (random-walk) oscillator phase noise.

    Each chunk restarts the walk at ``initial_phase`` with its own spawned
    generator — the price of worker-invariant parallelism is that the phase
    process is block-independent at chunk boundaries (use the legacy
    streaming mode for one continuous walk).
    """

    linewidth_sigma: float
    initial_phase: float = 0.0

    def __call__(self, rng: np.random.Generator) -> WienerPhaseNoiseChannel:
        return WienerPhaseNoiseChannel(
            self.linewidth_sigma, initial_phase=self.initial_phase, rng=rng
        )


@dataclass(frozen=True)
class PhaseOffsetFactory:
    """Fixed rotation e^{jφ} (deterministic; the paper's retraining scenario)."""

    phase: float

    def __call__(self, rng: np.random.Generator) -> PhaseOffsetChannel:
        return PhaseOffsetChannel(self.phase)


@dataclass(frozen=True)
class CFOFactory:
    """Carrier-frequency offset (deterministic drift, restarts per chunk)."""

    freq_offset: float
    initial_phase: float = 0.0

    def __call__(self, rng: np.random.Generator) -> CFOChannel:
        return CFOChannel(self.freq_offset, self.initial_phase)


@dataclass(frozen=True)
class IQImbalanceFactory:
    """Receiver IQ gain/phase mismatch (deterministic)."""

    amplitude_imbalance_db: float = 0.0
    phase_imbalance: float = 0.0

    def __call__(self, rng: np.random.Generator) -> IQImbalanceChannel:
        return IQImbalanceChannel(self.amplitude_imbalance_db, self.phase_imbalance)


@dataclass(frozen=True)
class RappPAFactory:
    """Rapp solid-state PA compression (deterministic)."""

    a_sat: float = 1.0
    p: float = 2.0

    def __call__(self, rng: np.random.Generator) -> RappPAChannel:
        return RappPAChannel(self.a_sat, self.p)


@dataclass(frozen=True)
class CompositeFactory:
    """Sequential composition of factories -> :class:`CompositeChannel`.

    One child generator is spawned per stage (in stage order, stochastic or
    not), so each stage's noise stream is a pure function of the chunk
    generator and the stage position — adding a deterministic stage never
    shifts the randomness of the stages after it.
    """

    stages: Tuple[Callable[[np.random.Generator], Channel], ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise ValueError("CompositeFactory needs at least one stage factory")
        object.__setattr__(self, "stages", tuple(self.stages))
        for stage in self.stages:
            if not callable(stage):
                raise TypeError(f"stage factory {stage!r} is not callable")

    def __call__(self, rng: np.random.Generator) -> CompositeChannel:
        rngs = rng.spawn(len(self.stages))
        return CompositeChannel([f(r) for f, r in zip(self.stages, rngs)])
