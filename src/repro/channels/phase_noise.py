"""Wiener (random-walk) phase noise — the oscillator impairment.

A free-running oscillator's phase drifts as a Wiener process:
``φ_{t+1} = φ_t + w_t``, ``w_t ~ N(0, σ_φ²)``.  Unlike the fixed offset of
the paper's §III-C this never settles, so the adaptive receiver must keep
re-triggering (or keep a tracker running) — the stress case for the
monitor/retrain loop, complementing :class:`~repro.channels.cfo.CFOChannel`
(deterministic drift) with a stochastic one.
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import Channel
from repro.utils.rng import as_generator

__all__ = ["WienerPhaseNoiseChannel"]


class WienerPhaseNoiseChannel(Channel):
    """y_t = x_t · e^{jφ_t} with φ a Wiener process (persistent across calls).

    Parameters
    ----------
    linewidth_sigma:
        Per-symbol phase-increment standard deviation σ_φ (radians).
        Typical laser/oscillator values are 1e-3..1e-1 rad/symbol.
    initial_phase:
        φ_0.
    """

    def __init__(
        self,
        linewidth_sigma: float,
        *,
        initial_phase: float = 0.0,
        rng: np.random.Generator | int | None = None,
    ):
        if linewidth_sigma < 0:
            raise ValueError("linewidth_sigma must be >= 0")
        self.linewidth_sigma = float(linewidth_sigma)
        self.initial_phase = float(initial_phase)
        self.rng = as_generator(rng)
        self._phase = float(initial_phase)
        self._last_rot: np.ndarray | None = None

    @property
    def current_phase(self) -> float:
        """Phase after the last processed symbol."""
        return self._phase

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = self._as_complex_vector(z)
        steps = self.rng.normal(0.0, self.linewidth_sigma, size=z.size)
        phases = self._phase + np.cumsum(steps)
        if z.size:
            self._phase = float(phases[-1])
        self._last_rot = np.exp(1j * phases)
        return z * self._last_rot

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._last_rot is None:
            raise RuntimeError("backward called before forward")
        g = self._check_grad(grad, self._last_rot.size)
        gc = (g[:, 0] + 1j * g[:, 1]) * np.conj(self._last_rot)
        out = np.empty_like(g)
        out[:, 0] = gc.real
        out[:, 1] = gc.imag
        return out

    def reset(self) -> None:
        self._phase = self.initial_phase
        self._last_rot = None
