"""Additive white Gaussian noise channel with explicit SNR conventions.

SNR convention (DESIGN.md §1): the paper's "SNR" is **Eb/N0**.  With unit
average symbol energy Es and ``k`` bits/symbol,

``N0 = Es / (k · Eb/N0)``   and   ``σ² = N0/2`` per real dimension,

so ``sigma2_from_snr(snr_db, k)`` returns the per-dimension variance used
both to draw noise and to scale LLRs (the ``1/(2σ²)`` factor in the paper's
max-log formula).
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import Channel
from repro.utils.rng import as_generator

__all__ = ["AWGNChannel", "sigma2_from_snr"]


def sigma2_from_snr(
    snr_db: float,
    bits_per_symbol: int,
    *,
    snr_type: str = "ebn0",
    es: float = 1.0,
) -> float:
    """Per-real-dimension noise variance σ² = N0/2 for a given SNR.

    Parameters
    ----------
    snr_db:
        SNR in dB.  Interpreted as Eb/N0 (paper convention) or Es/N0
        depending on ``snr_type``.
    bits_per_symbol:
        k (4 for the paper's 16-QAM case study).  Ignored for ``esn0``.
    snr_type:
        ``"ebn0"`` (default) or ``"esn0"``.
    es:
        Average symbol energy (1.0 for normalised constellations).
    """
    if es <= 0:
        raise ValueError("es must be positive")
    lin = 10.0 ** (snr_db / 10.0)
    if snr_type == "ebn0":
        if bits_per_symbol < 1:
            raise ValueError("bits_per_symbol must be >= 1")
        n0 = es / (bits_per_symbol * lin)
    elif snr_type == "esn0":
        n0 = es / lin
    else:
        raise ValueError(f"snr_type must be 'ebn0' or 'esn0', got {snr_type!r}")
    return n0 / 2.0


class AWGNChannel(Channel):
    """y = x + n with n ~ CN(0, N0) (i.e. σ² = N0/2 per real dimension).

    The Jacobian of additive noise is the identity, so ``backward`` passes
    gradients through unchanged — this is what makes AWGN the standard
    differentiable surrogate for E2E training.
    """

    def __init__(
        self,
        snr_db: float,
        bits_per_symbol: int = 4,
        *,
        snr_type: str = "ebn0",
        es: float = 1.0,
        rng: np.random.Generator | int | None = None,
    ):
        self.snr_db = float(snr_db)
        self.bits_per_symbol = int(bits_per_symbol)
        self.snr_type = snr_type
        self.es = float(es)
        self.sigma2 = sigma2_from_snr(snr_db, bits_per_symbol, snr_type=snr_type, es=es)
        self.sigma = float(np.sqrt(self.sigma2))
        self.rng = as_generator(rng)
        self._n_last = 0

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = self._as_complex_vector(z)
        self._n_last = z.size
        noise = self.rng.normal(0.0, self.sigma, size=(z.size, 2))
        return z + noise[:, 0] + 1j * noise[:, 1]

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return self._check_grad(grad, self._n_last)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AWGNChannel(snr_db={self.snr_db}, k={self.bits_per_symbol}, {self.snr_type})"
