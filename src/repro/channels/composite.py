"""Channel composition: apply stages in order, back-propagate in reverse.

The paper's retraining scenario is ``CompositeChannel([PhaseOffsetChannel(pi/4),
AWGNChannel(snr)])`` — a deterministic impairment followed by noise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.channels.base import Channel

__all__ = ["CompositeChannel"]


class CompositeChannel(Channel):
    """Sequential composition of channels (first stage applied first)."""

    def __init__(self, stages: Sequence[Channel]):
        if not stages:
            raise ValueError("CompositeChannel needs at least one stage")
        for s in stages:
            if not isinstance(s, Channel):
                raise TypeError(f"stage {s!r} is not a Channel")
        self.stages = list(stages)

    def forward(self, z: np.ndarray) -> np.ndarray:
        for stage in self.stages:
            z = stage.forward(z)
        return z

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for stage in reversed(self.stages):
            grad = stage.backward(grad)
        return grad

    def reset(self) -> None:
        for stage in self.stages:
            stage.reset()

    def __repr__(self) -> str:  # pragma: no cover
        inner = ", ".join(repr(s) for s in self.stages)
        return f"CompositeChannel([{inner}])"
