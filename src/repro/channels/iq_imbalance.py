"""Receiver IQ-imbalance channel (gain and phase mismatch of the I/Q arms).

Standard widely-linear model:  ``y = μ·z + ν·conj(z)`` with

``μ = (1 + g·e^{-jθ}) / 2``,  ``ν = (1 − g·e^{jθ}) / 2``,

where ``g`` is the amplitude mismatch (linear) and ``θ`` the phase mismatch.
Perfect balance (g=1, θ=0) gives μ=1, ν=0.  The conj term makes the channel
widely linear (not complex-linear), which is why the real 2×2 Jacobian is
kept explicitly for the backward pass.
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import Channel

__all__ = ["IQImbalanceChannel"]


class IQImbalanceChannel(Channel):
    """Widely-linear IQ mismatch; learnable by the demapper ANN on retraining."""

    def __init__(self, amplitude_imbalance_db: float = 0.0, phase_imbalance: float = 0.0):
        self.amplitude_imbalance_db = float(amplitude_imbalance_db)
        self.phase_imbalance = float(phase_imbalance)
        g = 10.0 ** (amplitude_imbalance_db / 20.0)
        theta = phase_imbalance
        self.mu = 0.5 * (1.0 + g * np.exp(-1j * theta))
        self.nu = 0.5 * (1.0 - g * np.exp(1j * theta))
        # Real Jacobian of y = mu*z + nu*conj(z):
        #   [Re y]   [mu_r + nu_r,  -mu_i + nu_i] [Re z]
        #   [Im y] = [mu_i + nu_i,   mu_r - nu_r] [Im z]
        self._jac = np.array(
            [
                [self.mu.real + self.nu.real, -self.mu.imag + self.nu.imag],
                [self.mu.imag + self.nu.imag, self.mu.real - self.nu.real],
            ],
            dtype=np.float64,
        )
        self._n_last = 0

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = self._as_complex_vector(z)
        self._n_last = z.size
        return self.mu * z + self.nu * np.conj(z)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self._check_grad(grad, self._n_last)
        return g @ self._jac  # (Jᵀ gᵀ)ᵀ = g J since J is applied per-row

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"IQImbalanceChannel(amp={self.amplitude_imbalance_db}dB, "
            f"phase={self.phase_imbalance:.4g})"
        )
