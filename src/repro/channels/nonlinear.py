"""Memoryless nonlinear power-amplifier distortion (Rapp model).

AM/AM compression: ``|y| = |x| / (1 + (|x|/A_sat)^{2p})^{1/(2p)}``, phase
preserved.  This is the canonical saturating-PA model; the AE's ability to
learn constellations that back off from the saturation region is one of the
motivating use cases for trainable mappers [Cammerer et al. 2020].  The
backward pass uses the analytic Jacobian ``g(r)·I + (g'(r)/r)·x xᵀ``.
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import Channel

__all__ = ["RappPAChannel"]


class RappPAChannel(Channel):
    """Rapp solid-state PA: smoothness ``p`` (≥1), saturation amplitude ``a_sat``."""

    def __init__(self, a_sat: float = 1.0, p: float = 2.0):
        if a_sat <= 0:
            raise ValueError("a_sat must be positive")
        if p < 0.5:
            raise ValueError("smoothness p must be >= 0.5")
        self.a_sat = float(a_sat)
        self.p = float(p)
        self._x: np.ndarray | None = None

    def _gain(self, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (g(r), g'(r)) with g(r)=|y|/|x|; safe at r=0."""
        u = (r / self.a_sat) ** (2.0 * self.p)
        base = 1.0 + u
        g = base ** (-1.0 / (2.0 * self.p))
        # g'(r) = -(u/r) * (1+u)^{-1/(2p) - 1}; at r=0, u=0 so g'=0.
        with np.errstate(divide="ignore", invalid="ignore"):
            gp = np.where(r > 0, -(u / np.where(r > 0, r, 1.0)) * base ** (-1.0 / (2.0 * self.p) - 1.0), 0.0)
        return g, gp

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = self._as_complex_vector(z)
        self._x = z
        r = np.abs(z)
        g, _ = self._gain(r)
        return z * g

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise RuntimeError("backward called before forward")
        g_out = self._check_grad(grad, self._x.size)
        x = np.empty((self._x.size, 2))
        x[:, 0] = self._x.real
        x[:, 1] = self._x.imag
        r = np.abs(self._x)
        g, gp = self._gain(r)
        # J = g(r) I + (g'(r)/r) x xᵀ  (symmetric, so Jᵀ = J)
        dot = (x * g_out).sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            coeff = np.where(r > 0, gp / np.where(r > 0, r, 1.0), 0.0)
        return g[:, None] * g_out + (coeff * dot)[:, None] * x

    @property
    def input_p1db(self) -> float:
        """Input amplitude at which the gain is compressed by 1 dB."""
        target = 10.0 ** (-1.0 / 20.0)
        # solve (1+u)^{-1/(2p)} = target -> u = target^{-2p} - 1
        u = target ** (-2.0 * self.p) - 1.0
        return self.a_sat * u ** (1.0 / (2.0 * self.p))
