"""Flat block-fading channels (Rayleigh / Rician).

A complex gain ``h`` is drawn per block of ``block_size`` symbols and held
constant within the block (quasi-static flat fading).  ``coherent=True``
divides the output by |h| (ideal amplitude tracking, residual phase error
only) — the regime where the paper's demapper retraining is most effective,
since the MLP can absorb a phase rotation but not per-symbol amplitude
scintillation.
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import Channel
from repro.utils.rng import as_generator

__all__ = ["RayleighFadingChannel", "RicianFadingChannel"]


class RayleighFadingChannel(Channel):
    """y = h·x with h ~ CN(0, 1) redrawn every ``block_size`` symbols."""

    def __init__(
        self,
        block_size: int = 1024,
        *,
        coherent: bool = False,
        rng: np.random.Generator | int | None = None,
    ):
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = int(block_size)
        self.coherent = bool(coherent)
        self.rng = as_generator(rng)
        self._h: complex = 1.0 + 0.0j
        self._symbols_in_block = self.block_size  # force draw on first use
        self._last_gain: np.ndarray | None = None

    def _draw_gain(self) -> complex:
        re, im = self.rng.normal(0.0, np.sqrt(0.5), size=2)
        return complex(re, im)

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = self._as_complex_vector(z)
        gains = np.empty(z.size, dtype=np.complex128)
        pos = 0
        while pos < z.size:
            if self._symbols_in_block >= self.block_size:
                self._h = self._draw_gain()
                self._symbols_in_block = 0
            take = min(z.size - pos, self.block_size - self._symbols_in_block)
            gains[pos : pos + take] = self._h
            self._symbols_in_block += take
            pos += take
        if self.coherent:
            # |h| can be drawn arbitrarily close to 0 (Rayleigh has full
            # density at the origin); dividing by it would blow the "ideal
            # amplitude tracking" output up to inf/nan.  A deep-faded block
            # carries no usable phase either, so treat it as unrotated.
            mag = np.abs(gains)
            gains = np.divide(
                gains, mag, out=np.ones_like(gains), where=mag > 1e-12
            )
        self._last_gain = gains
        return z * gains

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._last_gain is None:
            raise RuntimeError("backward called before forward")
        g = self._check_grad(grad, self._last_gain.size)
        gc = (g[:, 0] + 1j * g[:, 1]) * np.conj(self._last_gain)
        out = np.empty_like(g)
        out[:, 0] = gc.real
        out[:, 1] = gc.imag
        return out

    def reset(self) -> None:
        self._symbols_in_block = self.block_size
        self._last_gain = None


class RicianFadingChannel(RayleighFadingChannel):
    """Rician fading with K-factor: h = sqrt(K/(K+1)) + CN(0, 1/(K+1)).

    K → ∞ degenerates to a pure line-of-sight (AWGN-like) channel; K = 0 is
    Rayleigh.
    """

    def __init__(
        self,
        k_factor: float = 4.0,
        block_size: int = 1024,
        *,
        coherent: bool = False,
        rng: np.random.Generator | int | None = None,
    ):
        if k_factor < 0:
            raise ValueError("k_factor must be >= 0")
        super().__init__(block_size, coherent=coherent, rng=rng)
        self.k_factor = float(k_factor)

    def _draw_gain(self) -> complex:
        los = np.sqrt(self.k_factor / (self.k_factor + 1.0))
        scatter_std = np.sqrt(0.5 / (self.k_factor + 1.0))
        re, im = self.rng.normal(0.0, scatter_std, size=2)
        return complex(los + re, im)
