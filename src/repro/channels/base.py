"""Channel interface: forward on complex symbols, backward on real gradients."""

from __future__ import annotations

import numpy as np

__all__ = ["Channel", "find_awgn"]


class Channel:
    """Base class for differentiable channel models.

    ``forward`` maps complex samples ``(N,)`` to complex samples ``(N,)``
    and caches whatever the backward pass needs.  ``backward`` maps the
    gradient of the loss w.r.t. the channel *output* (real ``(N, 2)``,
    columns = d/dRe, d/dIm) to the gradient w.r.t. the channel *input*, via
    the transpose of the channel's real Jacobian.  Stochastic channels
    (noise, fading) hold their own :class:`numpy.random.Generator`.
    """

    def forward(self, z: np.ndarray) -> np.ndarray:
        """Propagate complex samples through the channel."""
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Pull a real ``(N, 2)`` output-gradient back to the input."""
        raise NotImplementedError

    def __call__(self, z: np.ndarray) -> np.ndarray:
        return self.forward(z)

    def reset(self) -> None:
        """Reset any per-stream state (e.g. symbol counters).  Default: no-op."""

    @staticmethod
    def _as_complex_vector(z: np.ndarray) -> np.ndarray:
        z = np.asarray(z)
        if not np.iscomplexobj(z):
            z = z.astype(np.complex128)
        if z.ndim != 1:
            raise ValueError(f"channel input must be 1-D complex, got shape {z.shape}")
        return z

    @staticmethod
    def _check_grad(grad: np.ndarray, n: int) -> np.ndarray:
        g = np.asarray(grad, dtype=np.float64)
        if g.shape != (n, 2):
            raise ValueError(f"gradient must have shape ({n}, 2), got {g.shape}")
        return g


def find_awgn(channel: Channel):
    """Locate the AWGN component inside a (possibly composite) channel.

    The receiver needs the noise variance σ² for soft demapping; this walks
    composites and returns the first :class:`~repro.channels.awgn.AWGNChannel`
    found, or ``None``.
    """
    from repro.channels.awgn import AWGNChannel
    from repro.channels.composite import CompositeChannel

    if isinstance(channel, AWGNChannel):
        return channel
    if isinstance(channel, CompositeChannel):
        for stage in channel.stages:
            found = find_awgn(stage)
            if found is not None:
                return found
    return None
