"""Channel models (differentiable operators on complex symbol streams).

E2E autoencoder training needs gradients *through* the channel
(∂loss/∂constellation), so every channel implements both

* ``forward(z)`` — complex samples in, complex samples out, and
* ``backward(grad)`` — pull a real ``(N, 2)`` gradient back through the
  channel's real-valued Jacobian transpose.

AWGN's Jacobian is the identity (additive noise), a phase offset's is the
inverse rotation, a complex gain's is multiplication by the conjugate, etc.
The paper trains E2E over AWGN and illustrates "real channel" retraining
with a fixed π/4 phase offset (:class:`PhaseOffsetChannel` over
:class:`AWGNChannel`, composed with :class:`CompositeChannel`).
"""

from repro.channels.awgn import AWGNChannel, sigma2_from_snr
from repro.channels.base import Channel, find_awgn
from repro.channels.cfo import CFOChannel
from repro.channels.composite import CompositeChannel
from repro.channels.factories import (
    AWGNFactory,
    CFOFactory,
    CompositeFactory,
    IQImbalanceFactory,
    PhaseNoiseFactory,
    PhaseOffsetFactory,
    RappPAFactory,
    RayleighFactory,
    RicianFactory,
)
from repro.channels.fading import RayleighFadingChannel, RicianFadingChannel
from repro.channels.iq_imbalance import IQImbalanceChannel
from repro.channels.nonlinear import RappPAChannel
from repro.channels.phase import PhaseOffsetChannel, TimeVaryingPhaseChannel
from repro.channels.phase_noise import WienerPhaseNoiseChannel

__all__ = [
    "Channel",
    "find_awgn",
    "AWGNChannel",
    "sigma2_from_snr",
    "PhaseOffsetChannel",
    "TimeVaryingPhaseChannel",
    "CFOChannel",
    "IQImbalanceChannel",
    "RayleighFadingChannel",
    "RicianFadingChannel",
    "RappPAChannel",
    "CompositeChannel",
    "WienerPhaseNoiseChannel",
    # chunked/parallel-mode channel factories (one per zoo member)
    "AWGNFactory",
    "RayleighFactory",
    "RicianFactory",
    "PhaseNoiseFactory",
    "PhaseOffsetFactory",
    "CFOFactory",
    "IQImbalanceFactory",
    "RappPAFactory",
    "CompositeFactory",
]
