"""Carrier-frequency-offset channel (linearly growing phase).

A residual CFO of normalised frequency ε rotates symbol ``t`` by
``φ_t = 2π·ε·t + φ0``.  Unlike a fixed phase offset this cannot be absorbed
by a single retraining pass — it is the stress-case for the paper's
"trigger retraining when BER degrades" loop (the decision regions must be
re-learned periodically).
"""

from __future__ import annotations

import numpy as np

from repro.channels.base import Channel

__all__ = ["CFOChannel"]


class CFOChannel(Channel):
    """y_t = x_t · e^{j(2π ε t + φ0)} with a persistent symbol counter."""

    def __init__(self, freq_offset: float, initial_phase: float = 0.0):
        self.freq_offset = float(freq_offset)
        self.initial_phase = float(initial_phase)
        self._t = 0
        self._last_rot: np.ndarray | None = None

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = self._as_complex_vector(z)
        t = np.arange(self._t, self._t + z.size, dtype=np.float64)
        self._t += z.size
        phases = 2.0 * np.pi * self.freq_offset * t + self.initial_phase
        self._last_rot = np.exp(1j * phases)
        return z * self._last_rot

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._last_rot is None:
            raise RuntimeError("backward called before forward")
        g = self._check_grad(grad, self._last_rot.size)
        gc = (g[:, 0] + 1j * g[:, 1]) * np.conj(self._last_rot)
        out = np.empty_like(g)
        out[:, 0] = gc.real
        out[:, 1] = gc.imag
        return out

    def reset(self) -> None:
        self._t = 0
        self._last_rot = None

    @property
    def symbols_elapsed(self) -> int:
        return self._t
