"""Phase-offset channels: the paper's "changing environmental condition".

:class:`PhaseOffsetChannel` applies a fixed rotation e^{jφ} (the paper uses
φ = π/4 to demonstrate retraining).  :class:`TimeVaryingPhaseChannel` applies
a per-symbol phase given by a schedule function — used by the adaptive
receiver scenarios where the channel drifts mid-stream and retraining must
be re-triggered.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.channels.base import Channel

__all__ = ["PhaseOffsetChannel", "TimeVaryingPhaseChannel"]


class PhaseOffsetChannel(Channel):
    """y = x · e^{jφ}.  Backward rotates gradients by −φ (Jacobian transpose)."""

    def __init__(self, phase: float):
        self.phase = float(phase)
        self._rot = np.exp(1j * self.phase)
        self._n_last = 0

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = self._as_complex_vector(z)
        self._n_last = z.size
        return z * self._rot

    def backward(self, grad: np.ndarray) -> np.ndarray:
        g = self._check_grad(grad, self._n_last)
        gc = (g[:, 0] + 1j * g[:, 1]) * np.conj(self._rot)
        out = np.empty_like(g)
        out[:, 0] = gc.real
        out[:, 1] = gc.imag
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"PhaseOffsetChannel(phase={self.phase:.4g})"


class TimeVaryingPhaseChannel(Channel):
    """Per-symbol phase φ(t) from a vectorised schedule function.

    ``phase_fn(t)`` receives the absolute symbol indices (int64 array) of the
    current block and returns one phase per symbol.  The symbol counter
    persists across calls (a stream), so successive blocks see a continuous
    schedule; :meth:`reset` rewinds to t = 0.

    Example — a sudden π/4 jump after 10k symbols::

        ch = TimeVaryingPhaseChannel(lambda t: np.where(t < 10_000, 0.0, np.pi/4))
    """

    def __init__(self, phase_fn: Callable[[np.ndarray], np.ndarray]):
        self.phase_fn = phase_fn
        self._t = 0
        self._last_rot: np.ndarray | None = None

    def forward(self, z: np.ndarray) -> np.ndarray:
        z = self._as_complex_vector(z)
        t = np.arange(self._t, self._t + z.size, dtype=np.int64)
        self._t += z.size
        phases = np.asarray(self.phase_fn(t), dtype=np.float64)
        if phases.shape != (z.size,):
            raise ValueError(f"phase_fn must return shape ({z.size},), got {phases.shape}")
        self._last_rot = np.exp(1j * phases)
        return z * self._last_rot

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._last_rot is None:
            raise RuntimeError("backward called before forward")
        g = self._check_grad(grad, self._last_rot.size)
        gc = (g[:, 0] + 1j * g[:, 1]) * np.conj(self._last_rot)
        out = np.empty_like(g)
        out[:, 0] = gc.real
        out[:, 1] = gc.imag
        return out

    def reset(self) -> None:
        self._t = 0
        self._last_rot = None

    @property
    def symbols_elapsed(self) -> int:
        """Number of symbols that have passed through the stream so far."""
        return self._t
