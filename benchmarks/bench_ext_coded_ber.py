"""Extension — coded BER sweep: does hybrid demapping preserve *soft* quality?

The paper compares uncoded BER, but real links run FEC on the demapper's
LLRs, so LLR *quality* (not just hard decisions) is what matters.  This
bench runs a rate-1/2 K=3 convolutional code over the 16-QAM link across a
small Es/N0 sweep around 4 dB and Viterbi-decodes from four LLR sources:

* exact log-MAP on the true constellation (best possible),
* max-log on the true constellation (the conventional receiver),
* max-log on **extracted centroids** (the hybrid receiver),
* hard-decision Viterbi (throwing the soft information away).

The sweep is generated with common random numbers through the multi-sigma
backend kernels (`llrs_multi`): one shared symbol/unit-noise draw, scaled
per SNR into an ``(S, n)`` received tensor, all S points demapped in one
fused launch per LLR source.  Shared noise across the axis also means the
coded-BER-vs-SNR trend is a low-variance paired comparison.

Expected: the hybrid LLRs track the conventional max-log LLRs (no coded-
performance drawback either), all soft variants beat hard decisions at the
paper's 4 dB anchor, and every soft source improves monotonically along the
sweep.
"""

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.ecc import ConvolutionalCode
from repro.extraction import HybridDemapper
from repro.modulation import ExactLogMAPDemapper, MaxLogDemapper
from repro.modulation.bits import bits_to_indices
from repro.utils.tables import format_table

SNR_DBS = (3.0, 4.0, 5.0)
ANCHOR_DB = 4.0
N_INFO = 60_000


def run_coded(bench_system_8db, bench_constellation_8db):
    const = bench_constellation_8db
    sigma2s = np.array([sigma2_from_snr(s, 4) for s in SNR_DBS])
    anchor = SNR_DBS.index(ANCHOR_DB)
    code = ConvolutionalCode((0b111, 0b101), 3)
    rng = np.random.default_rng(90)

    data = rng.integers(0, 2, size=N_INFO, dtype=np.int8)
    coded = code.encode(data)
    pad = (-coded.size) % 4
    tx_bits = np.concatenate([coded, np.zeros(pad, dtype=np.int8)])
    tx_idx = bits_to_indices(tx_bits.reshape(-1, 4))
    x = const.points[tx_idx]
    # common random numbers: one unit-variance draw, scaled per sweep point
    unit = rng.normal(0.0, 1.0, size=(x.size, 2))
    e = unit[:, 0] + 1j * unit[:, 1]
    received = x[None, :] + np.sqrt(sigma2s)[:, None] * e[None, :]

    hybrid = HybridDemapper.extract(bench_system_8db.demapper, sigma2s[anchor],
                                    method="lsq", fallback=const)
    maxlog = MaxLogDemapper(const)
    sources = {
        "exact log-MAP (true constellation)":
            ExactLogMAPDemapper(const).llrs_multi(received, sigma2s),
        "max-log (true constellation)":
            maxlog.llrs_multi(received, sigma2s),
        "max-log (extracted centroids)":
            MaxLogDemapper(hybrid.constellation).llrs_multi(received, sigma2s),
    }
    results = {}
    for name, llrs in sources.items():
        results[name] = [
            float(np.mean(code.decode_soft(llrs[s].ravel()[: coded.size]).data != data))
            for s in range(len(SNR_DBS))
        ]
    hard_bits = maxlog.demap_bits(received[anchor], sigma2s[anchor]).ravel()[: coded.size]
    hard_coded = float(np.mean(code.decode_hard(hard_bits).data != data))
    uncoded = float(np.mean(hard_bits != coded))
    return results, hard_coded, uncoded


def test_coded_ber_llr_sources(benchmark, bench_system_8db, bench_constellation_8db, capsys):
    (results, hard_coded, uncoded) = benchmark.pedantic(
        run_coded, args=(bench_system_8db, bench_constellation_8db),
        rounds=1, iterations=1,
    )
    anchor = SNR_DBS.index(ANCHOR_DB)
    with capsys.disabled():
        print()
        rows = [[name, *bers] for name, bers in results.items()]
        rows.append(["hard-decision Viterbi", *[None] * anchor, hard_coded,
                     *[None] * (len(SNR_DBS) - anchor - 1)])
        rows.append(["(uncoded channel BER)", *[None] * anchor, uncoded,
                     *[None] * (len(SNR_DBS) - anchor - 1)])
        print(format_table(
            ["LLR source -> Viterbi", *[f"coded BER @ {s:g} dB" for s in SNR_DBS]],
            rows, float_fmt=".3e",
            title="Extension: coded performance of the hybrid receiver (K=3 conv. code)",
        ))

    exact = results["exact log-MAP (true constellation)"][anchor]
    maxlog = results["max-log (true constellation)"][anchor]
    hybrid = results["max-log (extracted centroids)"][anchor]
    # soft information is worth keeping
    assert maxlog < hard_coded * 0.7
    # the hybrid LLRs carry (essentially) the conventional soft quality
    assert hybrid < maxlog * 1.5 + 1e-4
    # exact log-MAP is the lower bound among the soft sources
    assert exact <= maxlog * 1.1 + 1e-4
    # coded BER improves monotonically along the (CRN-paired) sweep
    for name, bers in results.items():
        assert bers == sorted(bers, reverse=True), f"{name} not monotone: {bers}"
