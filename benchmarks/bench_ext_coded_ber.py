"""Extension — coded BER: does hybrid demapping preserve *soft* quality?

The paper compares uncoded BER, but real links run FEC on the demapper's
LLRs, so LLR *quality* (not just hard decisions) is what matters.  This
bench runs a rate-1/2 K=3 convolutional code over the 16-QAM link at 4 dB
and Viterbi-decodes from four LLR sources:

* exact log-MAP on the true constellation (best possible),
* max-log on the true constellation (the conventional receiver),
* max-log on **extracted centroids** (the hybrid receiver),
* hard-decision Viterbi (throwing the soft information away).

Expected: the hybrid LLRs track the conventional max-log LLRs (no coded-
performance drawback either), and all soft variants beat hard decisions.
"""

import numpy as np
import pytest

from repro.channels import AWGNChannel
from repro.ecc import ConvolutionalCode
from repro.extraction import HybridDemapper
from repro.modulation import ExactLogMAPDemapper, MaxLogDemapper
from repro.modulation.bits import bits_to_indices
from repro.utils.tables import format_table

SNR_DB = 4.0
N_INFO = 60_000


def run_coded(bench_system_8db, bench_constellation_8db):
    const = bench_constellation_8db
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2
    code = ConvolutionalCode((0b111, 0b101), 3)
    rng = np.random.default_rng(90)

    data = rng.integers(0, 2, size=N_INFO, dtype=np.int8)
    coded = code.encode(data)
    pad = (-coded.size) % 4
    tx_bits = np.concatenate([coded, np.zeros(pad, dtype=np.int8)])
    tx_idx = bits_to_indices(tx_bits.reshape(-1, 4))
    received = AWGNChannel(SNR_DB, 4, rng=rng)(const.points[tx_idx])

    hybrid = HybridDemapper.extract(bench_system_8db.demapper, sigma2,
                                    method="lsq", fallback=const)
    sources = {
        "exact log-MAP (true constellation)":
            ExactLogMAPDemapper(const).llrs(received, sigma2),
        "max-log (true constellation)":
            MaxLogDemapper(const).llrs(received, sigma2),
        "max-log (extracted centroids)": hybrid.llrs(received),
    }
    results = {}
    for name, llrs in sources.items():
        flat = llrs.ravel()[: coded.size]
        results[name] = float(np.mean(code.decode_soft(flat).data != data))
    hard_bits = MaxLogDemapper(const).demap_bits(received, sigma2).ravel()[: coded.size]
    results["hard-decision Viterbi"] = float(np.mean(code.decode_hard(hard_bits).data != data))
    uncoded = float(np.mean(
        MaxLogDemapper(const).demap_bits(received, sigma2).ravel()[: coded.size]
        != coded
    ))
    return results, uncoded


def test_coded_ber_llr_sources(benchmark, bench_system_8db, bench_constellation_8db, capsys):
    (results, uncoded) = benchmark.pedantic(
        run_coded, args=(bench_system_8db, bench_constellation_8db),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        rows = [[name, ber] for name, ber in results.items()]
        rows.append(["(uncoded channel BER at this Es/N0)", uncoded])
        print(format_table(
            ["LLR source -> Viterbi", f"coded BER @ {SNR_DB:g} dB"],
            rows, float_fmt=".3e",
            title="Extension: coded performance of the hybrid receiver (K=3 conv. code)",
        ))

    exact = results["exact log-MAP (true constellation)"]
    maxlog = results["max-log (true constellation)"]
    hybrid = results["max-log (extracted centroids)"]
    hard = results["hard-decision Viterbi"]
    # soft information is worth keeping
    assert maxlog < hard * 0.7
    # the hybrid LLRs carry (essentially) the conventional soft quality
    assert hybrid < maxlog * 1.5 + 1e-4
    # exact log-MAP is the lower bound among the soft sources
    assert exact <= maxlog * 1.1 + 1e-4
