"""Table 2 regeneration bench — FPGA implementation comparison.

Builds the paper's three ZU3EG designs with the calibrated architectural
model, cross-validates the closed-form pipeline metrics against the
cycle-accurate simulation, and asserts the table's headline ratios
(LUT ~10×, DSP 352×, power ~10×, energy ~50×) plus the Gbps replication
argument.
"""

import numpy as np
import pytest

from repro.experiments.table2_fpga import Table2Config, run
from repro.fpga.report import PAPER_TABLE2

CFG = Table2Config()


def test_table2_fpga(benchmark, capsys):
    result = benchmark.pedantic(run, args=(CFG,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.to_table())

    # paper-vs-model, row by row
    for key, paper in PAPER_TABLE2.items():
        model = result.reports[key]
        assert abs(model.resources.lut - paper.lut) / paper.lut < 0.15, key
        assert abs(model.resources.ff - paper.ff) / paper.ff < 0.15, key
        assert abs(model.power_w - paper.power_w) / paper.power_w < 0.1, key
        assert 0.4 < model.throughput_per_s / paper.throughput_per_s < 1.6, key
        assert 0.5 < model.latency_s / paper.latency_s < 2.0, key

    # DSP counts are structural: exact for the two inference designs
    assert round(result.reports["soft_demapper"].resources.dsp) == 1
    assert round(result.reports["ae_inference"].resources.dsp) == 352

    # headline ratios
    assert result.ratio("dsp") == 352
    assert 8 < result.ratio("lut") < 13
    assert 5 < result.ratio("power") < 12
    assert 30 < result.ratio("energy") < 70

    # cycle-accurate simulation agrees with the closed-form pipeline model
    assert result.simulated_ii["soft_demapper"] == 2.0
    assert result.simulated_latency_cycles["soft_demapper"] == 8
    assert result.simulated_ii["ae_inference"] == 12.0

    # Gbps replication (paper SIII-D)
    assert result.replication.reaches_gbps
    assert result.replication.aggregate_bits_per_s > 5e9
