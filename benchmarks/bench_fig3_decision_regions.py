"""Fig. 3 regeneration bench — decision regions + centroids, before/after.

Reproduces the paper's Fig. 3: the demapper's decision regions at SNR −2
and 8 dB, before and after retraining for a π/4 phase-offset channel, with
extracted centroids overlaid.  Asserts the paper's observation that "for
both SNRs the DRs are rotated by π/4 after retraining" via the mean
centroid-rotation estimate.
"""

import numpy as np
import pytest

from repro.experiments.fig3_decision_regions import Fig3Config, run

CFG = Fig3Config(
    snr_dbs=(-2.0, 8.0),
    train_steps=2500,
    retrain_steps=1500,
    seed=1234,
    resolution=192,
)


def test_fig3_decision_regions(benchmark, capsys):
    result = benchmark.pedantic(run, args=(CFG,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for snr, (before, after) in result.snapshots.items():
            print(before.to_plot(f"Fig. 3 | SNR {snr:+.0f} dB | before retraining"))
            print()
            print(after.to_plot(f"Fig. 3 | SNR {snr:+.0f} dB | after retraining (pi/4)"))
            print(f"measured rotation: {result.rotations[snr]:+.4f} rad "
                  f"(paper: +{np.pi / 4:.4f})\n")

    for snr in CFG.snr_dbs:
        assert abs(result.rotations[snr] - np.pi / 4) < 0.12, (
            f"decision regions did not rotate by pi/4 at {snr} dB"
        )
        before, after = result.snapshots[snr]
        assert before.centroids.n_missing == 0
        assert after.centroids.n_missing == 0
