"""Ablation D — degree of parallelism (paper §II-B folding knob).

Sweeps the PE/SIMD folding of (a) the soft-demapper core's distance bank
and (b) the AE-inference accelerator, reporting the II / latency / area /
power / energy trade-off.  The model's trends must be monotone: more
parallelism -> lower II, higher area/power, lower energy per symbol.
"""

import pytest

from repro.fpga import build_ae_inference_accelerator, build_soft_demapper_core
from repro.utils.tables import format_table


def test_soft_demapper_dop_sweep(benchmark, capsys):
    def sweep():
        rows = []
        for units in (1, 2, 4, 8, 16):
            pipe, rep = build_soft_demapper_core(distance_units=units)
            rows.append((units, pipe.ii, rep.throughput_per_s, rep.resources.lut,
                         rep.power_w, rep.energy_per_symbol_j))
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["units", "II", "tput [sym/s]", "LUT", "power [W]", "energy [J/sym]"],
            [list(r) for r in rows], float_fmt=".3g",
            title="soft-demapper DOP sweep",
        ))
    # monotone trends
    for (u1, ii1, t1, l1, p1, e1), (u2, ii2, t2, l2, p2, e2) in zip(rows, rows[1:]):
        assert ii2 <= ii1
        assert t2 >= t1
        assert l2 > l1
        assert p2 > p1
        assert e2 < e1


def test_ae_inference_folding_sweep(benchmark, capsys):
    foldings = {
        "min  (pe=1, simd=1 hidden)": [(1, 2), (1, 1), (1, 1), (1, 1)],
        "low  (pe=1, simd=4 hidden)": [(1, 2), (1, 4), (1, 4), (1, 4)],
        "paper (II=12, 352 DSP)":     None,  # calibrated default
        "max  (fully parallel)":      [(16, 2), (16, 16), (16, 16), (4, 16)],
    }

    def sweep():
        rows = []
        for name, folding in foldings.items():
            _, rep = build_ae_inference_accelerator(folding=folding)
            rows.append((name, rep.throughput_per_s, round(rep.resources.dsp),
                         rep.power_w, rep.energy_per_symbol_j))
        return rows

    rows = benchmark.pedantic(sweep, rounds=3, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            ["folding", "tput [sym/s]", "DSP", "power [W]", "energy [J/sym]"],
            [list(r) for r in rows], float_fmt=".3g",
            title="AE-inference folding sweep (fully-parallel exceeds the ZU3EG: 'limited by the amount of available DSPs')",
        ))
    by_name = {r[0]: r for r in rows}
    # the fully-parallel design needs more DSPs than the ZU3EG has --
    # exactly why the paper folds to II=12/352 DSP
    from repro.fpga import ZU3EG

    assert by_name["max  (fully parallel)"][2] > ZU3EG.dsp
    assert by_name["paper (II=12, 352 DSP)"][2] <= ZU3EG.dsp
    # throughput ordering follows parallelism
    assert (by_name["min  (pe=1, simd=1 hidden)"][1]
            < by_name["low  (pe=1, simd=4 hidden)"][1]
            < by_name["paper (II=12, 352 DSP)"][1]
            <= by_name["max  (fully parallel)"][1])
