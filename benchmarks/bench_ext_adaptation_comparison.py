"""Extension — adaptation-strategy comparison: where is ANN retraining *needed*?

Three adaptation tiers against two impairments at 8 dB:

* **classical phase sync** — pilot phase estimate + derotation + max-log
  (the decades-old baseline the paper implicitly competes with),
* **centroid tracking** — rigid one-tap update of the extracted centroids
  (this repo's cheap middle tier; no ANN, no reconfiguration),
* **ANN retraining + re-extraction** — the paper's full loop.

Impairment A (pure π/4 phase offset): all three tiers recover — the paper's
showcase impairment does not *require* learning.  Impairment B (IQ imbalance
+ phase): the constellation warps in a widely-linear way; one-tap methods
hit an error floor while demapper retraining absorbs it — the genuine
adaptability argument for the AE approach.
"""

import numpy as np
import pytest

from repro.autoencoder import AESystem, ReceiverFinetuner, TrainingConfig
from repro.channels import AWGNChannel, CompositeChannel, IQImbalanceChannel, PhaseOffsetChannel
from repro.extraction import CentroidTracker, HybridDemapper
from repro.link import PhaseSyncReceiver, simulate_ber
from repro.modulation import random_indices
from repro.utils.tables import format_table

SNR_DB = 8.0
N_SYMBOLS = 300_000


def make_impairments(seed):
    return {
        "A: pi/4 phase offset": lambda: CompositeChannel([
            PhaseOffsetChannel(np.pi / 4),
            AWGNChannel(SNR_DB, 4, rng=np.random.default_rng(seed)),
        ]),
        "B: IQ imbalance (3 dB, 0.3 rad) + pi/8": lambda: CompositeChannel([
            IQImbalanceChannel(3.0, 0.3),
            PhaseOffsetChannel(np.pi / 8),
            AWGNChannel(SNR_DB, 4, rng=np.random.default_rng(seed + 1)),
        ]),
    }


def run_comparison(bench_system_8db, bench_constellation_8db):
    const = bench_constellation_8db
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2
    results = {}
    for imp_name, make_ch in make_impairments(200).items():
        rng = np.random.default_rng(201)
        pilots = random_indices(rng, 1024, 16)

        # classical: pilot gain estimate + one-tap equalisation
        classical = PhaseSyncReceiver(const, sigma2, mode="gain")
        ch = make_ch()
        classical.update(const.points[pilots], ch(const.points[pilots]))
        ber_classical = simulate_ber(const, make_ch(), classical.demap_bits,
                                     N_SYMBOLS, rng=202, max_errors=3000).ber

        # centroid tracking (rigid update of the extracted centroids)
        hybrid = HybridDemapper.extract(bench_system_8db.demapper, sigma2,
                                        method="lsq", fallback=const)
        tracker = CentroidTracker(hybrid)
        ch = make_ch()
        rigid_ok = tracker.update(pilots, ch(const.points[pilots]))
        ber_tracking = simulate_ber(const, make_ch(), tracker.demap_bits,
                                    N_SYMBOLS, rng=203, max_errors=3000).ber

        # full retraining + re-extraction (a private demapper copy)
        system = AESystem(bench_system_8db.mapper, bench_system_8db.demapper.copy(),
                          bench_system_8db.channel)
        ReceiverFinetuner(system, TrainingConfig(steps=1200, batch_size=512),
                          constellation=const).run(make_ch(), np.random.default_rng(204))
        retrained = HybridDemapper.extract(system.demapper, sigma2,
                                           method="lsq", fallback=const)
        ber_retrain = simulate_ber(const, make_ch(), retrained.demap_bits,
                                   N_SYMBOLS, rng=205, max_errors=3000).ber

        results[imp_name] = {
            "classical": ber_classical,
            "tracking": ber_tracking,
            "tracking_rigid_ok": rigid_ok,
            "retraining": ber_retrain,
        }
    return results


def test_adaptation_comparison(benchmark, bench_system_8db, bench_constellation_8db, capsys):
    results = benchmark.pedantic(
        run_comparison, args=(bench_system_8db, bench_constellation_8db),
        rounds=1, iterations=1,
    )
    with capsys.disabled():
        print()
        rows = []
        for imp, r in results.items():
            rows.append([imp, r["classical"], r["tracking"],
                         "yes" if r["tracking_rigid_ok"] else "NO (escalate)",
                         r["retraining"]])
        print(format_table(
            ["impairment", "classical sync", "centroid tracking",
             "tracker says rigid ok?", "ANN retraining"],
            rows, float_fmt=".3e",
            title="Extension: adaptation strategies at 8 dB (BER)",
        ))

    a = results["A: pi/4 phase offset"]
    b = results["B: IQ imbalance (3 dB, 0.3 rad) + pi/8"]
    # impairment A: every tier recovers to ~baseline (1e-2 at 8 dB)
    for tier in ("classical", "tracking", "retraining"):
        assert a[tier] < 0.03, f"{tier} failed on the pure phase offset"
    assert a["tracking_rigid_ok"]
    # impairment B: one-tap methods floor, retraining recovers
    assert b["retraining"] < 0.04
    assert b["classical"] > 2.0 * b["retraining"]
    assert not b["tracking_rigid_ok"]  # the tracker itself calls for escalation
