"""Ablation A — centroid estimator comparison (DESIGN.md design choice).

Compares the three extraction methods on the same trained demapper:

* ``vertex`` — the paper's algorithm (mean of Voronoi-cell vertices),
* ``mass``   — mean of the cell's window samples,
* ``lsq``    — this repo's Voronoi-inversion Gauss-Newton fit.

Reported per method: BER on a fresh 8 dB stream (vs the AE-inference
reference), RMS centroid displacement from the transmit constellation, and
extraction runtime.  Expected: lsq matches AE BER most closely; vertex and
mass trail slightly (consistent with the paper's small 12 dB gap).
"""

import time

import numpy as np
import pytest

from repro.channels import AWGNChannel
from repro.extraction import HybridDemapper
from repro.link import simulate_ber
from repro.utils.complexmath import complex_to_real2
from repro.utils.tables import format_table

SNR_DB = 8.0
N_SYMBOLS = 400_000


@pytest.mark.parametrize("method", ["vertex", "mass", "lsq"])
def test_extraction_method(benchmark, method, bench_system_8db, bench_constellation_8db, capsys):
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2

    hybrid = benchmark.pedantic(
        HybridDemapper.extract,
        args=(bench_system_8db.demapper, sigma2),
        kwargs=dict(method=method, fallback=bench_constellation_8db),
        rounds=3,
        iterations=1,
    )

    ber = simulate_ber(
        bench_constellation_8db,
        AWGNChannel(SNR_DB, 4, rng=np.random.default_rng(50)),
        hybrid.demap_bits, N_SYMBOLS, rng=51, max_errors=3000,
    ).ber

    ae_ber = simulate_ber(
        bench_constellation_8db,
        AWGNChannel(SNR_DB, 4, rng=np.random.default_rng(50)),
        lambda y: (bench_system_8db.demapper.forward(complex_to_real2(y)) > 0).astype(np.int8),
        N_SYMBOLS, rng=51, max_errors=3000,
    ).ber

    disp = np.abs(hybrid.constellation.points - bench_constellation_8db.points)
    with capsys.disabled():
        print()
        print(format_table(
            ["method", "BER @ 8 dB", "AE reference", "BER ratio", "RMS displacement"],
            [[method, ber, ae_ber, ber / ae_ber, float(np.sqrt((disp**2).mean()))]],
            float_fmt=".4g",
        ))

    assert hybrid.centroids.n_missing == 0
    # every estimator must stay within 2x of AE inference at 8 dB...
    assert ber < 2.0 * ae_ber
    # ...and the lsq extension must essentially match it
    if method == "lsq":
        assert ber < 1.15 * ae_ber
