"""Micro-benchmarks — throughput of the computational hot paths.

These time the *software* implementation (symbols/s in NumPy), a sanity
complement to the architectural FPGA model: training steps, ANN inference,
max-log demapping (per backend tier), exact log-MAP, quantised integer
inference, and decision-region extraction.

Every timed test records its stats into ``BENCH_micro.json`` at the repo
root (a pytest-benchmark-style artifact) so the performance trajectory is
tracked in-tree from PR to PR.  Regenerate with::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro.py --benchmark-only
"""

import json
import os
import platform
from pathlib import Path

import numpy as np
import pytest

from repro.autoencoder import AESystem, DemapperANN, MapperANN
from repro.backend import NUMBA_AVAILABLE
from repro.channels import AWGNChannel
from repro.extraction import sample_decision_regions
from repro.fpga import QuantizedDemapper
from repro.modulation import (
    ExactLogMAPDemapper,
    Mapper,
    MaxLogDemapper,
    qam_constellation,
    random_indices,
)
from repro.nn import Adam
from repro.utils.complexmath import complex_to_real2

N = 262_144  # symbols per timed call

_ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_micro.json"
_RESULTS: list[dict] = []

#: Record names environment-conditional benchmarks may add (skipped tiers).
#: The fleet pair needs >= 4 cores, so laptops/CI runners below that record
#: neither entry and check_bench skips the fleet scaling gate.
_ENV_BENCH_NAMES = frozenset(
    {
        "maxlog_llrs[numba]",
        "viterbi_decode[numba]",
        "serving_fleet[numpy]",
        "serving_fleet_single[numpy]",
    }
)

#: Every record name a full run produces on this machine-independent core
#: set; environment-conditional benchmarks (skipped tiers) are excluded so
#: their absence doesn't demote a genuine full run to a merge.  _record
#: enforces membership, so a renamed benchmark fails loudly instead of
#: silently desynchronising this set.
_CORE_BENCH_NAMES = frozenset(
    {
        "maxlog_llrs[numpy]",
        "maxlog_llrs[numpy32]",
        "logmap_llrs[numpy]",
        "hard_indices[numpy]",
        "sweep_maxlog_multi[numpy]",
        "sweep_maxlog_seq[numpy]",
        "sweep_maxlog_multi[numpy32]",
        "sweep_maxlog_seq[numpy32]",
        "serving_batched[numpy]",
        "serving_sequential[numpy]",
        "serving_traced[numpy]",
        "serving_control_plane[numpy]",
        "serving_churn[numpy]",
        "serving_churn_sequential[numpy]",
        "serving_faulted[numpy]",
        "serving_coded[numpy]",
        "viterbi_decode[python]",
        "viterbi_decode[numpy]",
        "ann_forward",
        "quantized_hard_bits",
        "e2e_train_step",
        "simulate_ber_chunked",
        "decision_region_sampling",
        "full_extraction_lsq",
    }
)


def _record(benchmark, name: str, *, symbols: int | None = None, extra: dict | None = None):
    """Append one benchmark's stats to the artifact; returns sym/s (or None).

    Tolerates ``--benchmark-disable`` runs (no stats collected).
    """
    if name not in _CORE_BENCH_NAMES | _ENV_BENCH_NAMES:
        raise AssertionError(
            f"benchmark record name {name!r} is not registered in "
            "_CORE_BENCH_NAMES/_ENV_BENCH_NAMES — update the set so "
            "full-run detection stays in sync"
        )
    if getattr(benchmark, "disabled", False) or benchmark.stats is None:
        return None  # --benchmark-disable run: nothing was timed
    # any other stats-access failure must raise: silently skipping here
    # would also silently skip the throughput-floor assertions
    stats = {"mean": float(benchmark.stats["mean"])}
    for key in ("min", "max", "stddev", "median", "rounds", "ops"):
        try:
            stats[key] = float(benchmark.stats[key])
        except (TypeError, KeyError):
            pass
    entry = {"name": name, "stats": stats}
    rate = None
    if symbols is not None:
        rate = symbols / stats["mean"]
        entry["symbols_per_call"] = symbols
        entry["symbols_per_second"] = rate
    if extra:
        entry.update(extra)
    _RESULTS.append(entry)
    return rate


@pytest.fixture(scope="module", autouse=True)
def _bench_micro_artifact():
    """Write the JSON artifact once the module's benchmarks have run.

    A full-suite run rewrites the artifact from scratch (pruning entries
    whose benchmark was renamed or deleted); a partial run (``-k``, single
    test) merges by name into the existing artifact so it refreshes only
    the benchmarks that actually ran instead of clobbering the rest.
    """
    _RESULTS.clear()
    yield
    if not _RESULTS:
        return
    machine_info = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "numba_available": NUMBA_AVAILABLE,
        "cpus": os.cpu_count(),
        "machine": platform.machine(),
    }
    merged: dict[str, dict] = {}
    # Full run (every core benchmark recorded; env-conditional tiers such
    # as numba may be skipped): rewrite from scratch so renamed/deleted
    # benchmarks don't linger in the tracked artifact.  Partial selections
    # (-k / node ids) merge instead.
    full_run = _CORE_BENCH_NAMES <= {entry["name"] for entry in _RESULTS}
    if not full_run:
        try:
            previous = json.loads(_ARTIFACT.read_text())
        except (OSError, ValueError):
            previous = None  # absent or unreadable artifact: start fresh
        if isinstance(previous, dict) and isinstance(previous.get("benchmarks"), list):
            if previous.get("machine_info") != machine_info:
                # a partial run from another environment must neither
                # re-stamp foreign numbers as ours nor clobber the tracked
                # full artifact — leave the file untouched
                return
            for entry in previous["benchmarks"]:
                merged[entry["name"]] = entry
    for entry in _RESULTS:
        merged[entry["name"]] = entry
    payload = {
        "schema": 1,
        "suite": "bench_micro",
        "machine_info": machine_info,
        "benchmarks": list(merged.values()),
    }
    _ARTIFACT.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _record_timed(name: str, times: list[float], *, symbols: int | None = None,
                  extra: dict | None = None) -> float:
    """Record a manually timed benchmark (same artifact schema); returns mean."""
    if name not in _CORE_BENCH_NAMES | _ENV_BENCH_NAMES:
        raise AssertionError(
            f"benchmark record name {name!r} is not registered in "
            "_CORE_BENCH_NAMES/_ENV_BENCH_NAMES — update the set so "
            "full-run detection stays in sync"
        )
    arr = np.asarray(times, dtype=np.float64)
    stats = {
        "mean": float(arr.mean()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "stddev": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "median": float(np.median(arr)),
        "rounds": float(arr.size),
    }
    entry = {"name": name, "stats": stats}
    if symbols is not None:
        entry["symbols_per_call"] = symbols
        entry["symbols_per_second"] = symbols / stats["mean"]
    if extra:
        entry.update(extra)
    _RESULTS.append(entry)
    return stats["mean"]


@pytest.fixture(scope="module")
def stream(bench_constellation_8db):
    rng = np.random.default_rng(42)
    idx = random_indices(rng, N, 16)
    y = AWGNChannel(8.0, 4, rng=rng)(Mapper(bench_constellation_8db)(idx))
    return y, complex_to_real2(y)


def test_maxlog_demapper_throughput(benchmark, stream):
    y, _ = stream
    qam = qam_constellation(16)
    ml = MaxLogDemapper(qam)  # default backend: float64 NumPy reference
    out = np.empty((N, 4))  # workspace contract: steady state allocates nothing
    benchmark(ml.llrs, y, 0.02, out=out)
    rate = _record(benchmark, "maxlog_llrs[numpy]", symbols=N, extra={"backend": "numpy"})
    if rate is not None:
        # fused transposed kernel: >= 3x the historical 3e5 floor even on the
        # reference tier (the FPGA core does 75M)
        assert rate > 1e6


def test_maxlog_demapper_throughput_float32(benchmark, stream):
    y, _ = stream
    qam = qam_constellation(16)
    ml = MaxLogDemapper(qam, backend="numpy32")
    out = np.empty((N, 4))
    benchmark(ml.llrs, y, 0.02, out=out)
    rate = _record(benchmark, "maxlog_llrs[numpy32]", symbols=N, extra={"backend": "numpy32"})
    if rate is not None:
        assert rate > 2e6  # fast tier: roughly double the reference


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
def test_maxlog_demapper_throughput_numba(benchmark, stream):
    y, _ = stream
    qam = qam_constellation(16)
    ml = MaxLogDemapper(qam, backend="numba")
    out = np.empty((N, 4))
    ml.llrs(y, 0.02, out=out)  # JIT warmup outside the timer
    benchmark(ml.llrs, y, 0.02, out=out)
    _record(benchmark, "maxlog_llrs[numba]", symbols=N, extra={"backend": "numba"})


# -- multi-SNR sweep section --------------------------------------------------
# S=8 sweep points, 64k symbols per point, 16-QAM: one fused (S, n) launch of
# the multi-sigma kernel vs S sequential single-SNR launches on the same data.

SWEEP_S = 8
SWEEP_N = 65_536
SWEEP_ROUNDS = 7


@pytest.fixture(scope="module")
def sweep_stream():
    from repro.channels import sigma2_from_snr

    qam = qam_constellation(16)
    rng = np.random.default_rng(7)
    idx = random_indices(rng, SWEEP_N, 16)
    sigma2s = np.array([sigma2_from_snr(s, 4) for s in np.linspace(0.0, 14.0, SWEEP_S)])
    unit = rng.normal(size=SWEEP_N) + 1j * rng.normal(size=SWEEP_N)
    received = qam.points[idx][None, :] + np.sqrt(sigma2s)[:, None] * unit[None, :]
    return qam, received, sigma2s


def _bench_sweep_tier(benchmark, sweep_stream, tier: str):
    """Batched (S, n) multi-sigma kernel vs S sequential launches, one tier."""
    qam, received, sigma2s = sweep_stream
    ml = MaxLogDemapper(qam, backend=tier)
    out_multi = np.empty((SWEEP_S, SWEEP_N, 4))
    out_seq = np.empty((SWEEP_N, 4))

    def sequential():
        for s in range(SWEEP_S):
            ml.llrs(received[s], sigma2s[s], out=out_seq)

    ml.llrs_multi(received, sigma2s, out=out_multi)  # warm the workspace
    benchmark.pedantic(
        ml.llrs_multi, args=(received, sigma2s), kwargs={"out": out_multi},
        rounds=SWEEP_ROUNDS, iterations=1, warmup_rounds=1,
    )
    rate = _record(
        benchmark, f"sweep_maxlog_multi[{tier}]", symbols=SWEEP_S * SWEEP_N,
        extra={"backend": tier, "snr_points": SWEEP_S},
    )
    if rate is None:
        return  # --benchmark-disable run: nothing to compare
    sequential()  # warm the per-SNR workspace shapes
    # The fused launch must not lose to S dispatches of the same work.
    multi_times, seq_times = _interleaved_min_times(
        lambda: ml.llrs_multi(received, sigma2s, out=out_multi),
        sequential,
        rounds=SWEEP_ROUNDS,
    )
    # record *both* sides of the check_bench ratio gate from this one
    # interleaved run (the later multi entry overwrites the pedantic one in
    # the artifact): mixing measurement phases adds several percent of
    # phase noise on a throttling box, which a 1.0x floor has no room for
    _record_timed(
        f"sweep_maxlog_multi[{tier}]", multi_times, symbols=SWEEP_S * SWEEP_N,
        extra={"backend": tier, "snr_points": SWEEP_S},
    )
    _record_timed(
        f"sweep_maxlog_seq[{tier}]", seq_times, symbols=SWEEP_S * SWEEP_N,
        extra={"backend": tier, "snr_points": SWEEP_S},
    )
    assert min(multi_times) <= min(seq_times), (
        f"batched multi-sigma path slower than sequential on {tier}: "
        f"best {min(multi_times):.4f}s vs {min(seq_times):.4f}s"
    )


def test_sweep_multi_vs_sequential_numpy(benchmark, sweep_stream):
    _bench_sweep_tier(benchmark, sweep_stream, "numpy")
    # default tier: every batched per-SNR slice is bit-identical to the
    # per-SNR kernel
    qam, received, sigma2s = sweep_stream
    ml = MaxLogDemapper(qam, backend="numpy")
    multi = ml.llrs_multi(received, sigma2s)
    for s in range(SWEEP_S):
        assert np.array_equal(multi[s], ml.llrs(received[s], sigma2s[s]))


def test_sweep_multi_vs_sequential_numpy32(benchmark, sweep_stream):
    _bench_sweep_tier(benchmark, sweep_stream, "numpy32")


# -- Viterbi decoding section -------------------------------------------------
# The coded serving path's ACS inner loop: soft-decision Viterbi on the
# K=7 (171,133) industry-standard rate-1/2 code, ~1 kbit of info per decode.
# Three tiers share the trellis tables: the pure-python reference ACS,
# the vectorised NumPy kernel, and (when installed) the numba kernel —
# check_bench gates numba at >= 5x pure python.

VIT_INFO_BITS = 1024
VIT_GENERATORS = (0o171, 0o133)
VIT_K = 7


@pytest.fixture(scope="module")
def viterbi_workload():
    from repro.ecc import ConvolutionalCode

    code = ConvolutionalCode(VIT_GENERATORS, VIT_K)
    rng = np.random.default_rng(21)
    bits = rng.integers(0, 2, VIT_INFO_BITS).astype(np.int8)
    coded = code.encode(bits).astype(np.float64)
    # mildly noisy LLRs: the decode is still exact, so every tier's result
    # can be verified against the transmitted bits before it is timed
    llrs = (2.0 * coded - 1.0) * 4.0 + rng.normal(scale=1.0, size=coded.size)
    return code, llrs.reshape(-1, code.n_out), bits


def _bench_viterbi_tier(benchmark, viterbi_workload, tier, backend):
    code, llrs, bits = viterbi_workload
    res = code.decode_soft(llrs, backend=backend)  # warm trellis/JIT caches
    assert np.array_equal(res.data, bits)
    benchmark(code.decode_soft, llrs, backend=backend)
    _record(
        benchmark, f"viterbi_decode[{tier}]", symbols=VIT_INFO_BITS,
        extra={"backend": tier, "unit": "info_bits",
               "constraint_length": VIT_K, "n_out": code.n_out},
    )


def test_viterbi_decode_python(benchmark, viterbi_workload):
    """The pure-python reference ACS (the parity baseline every kernel
    must match bit-for-bit)."""
    _bench_viterbi_tier(benchmark, viterbi_workload, "python", None)


def test_viterbi_decode_numpy(benchmark, viterbi_workload):
    from repro.backend import backend_from_name

    _bench_viterbi_tier(
        benchmark, viterbi_workload, "numpy", backend_from_name("numpy")
    )


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
def test_viterbi_decode_numba(benchmark, viterbi_workload):
    from repro.backend import backend_from_name

    _bench_viterbi_tier(
        benchmark, viterbi_workload, "numba", backend_from_name("numba")
    )


# -- serving section ----------------------------------------------------------
# 64 concurrent sessions on one shared 16-QAM centroid set, short frames
# (32 pilots + 224 payload — the regime cross-session coalescing exists for):
# the ServingEngine's micro-batched round vs the same 64 sessions demapped
# per-session sequentially (per-frame llrs + hard bits + pilot/payload BER).

SERVE_SESSIONS = 64
SERVE_ROUNDS = 7


def _sequential_demap_round(sessions, frames, n):
    """Per-session sequential baseline: per-frame llrs + hard bits + BERs."""
    from repro.link.frames import frame_bers

    out = np.empty((n, 4))

    def sequential_round():
        for s in sessions:
            f = frames[s.session_id]
            llrs = s.hybrid.llrs(f.received, out=out)
            hat = (llrs > 0).astype(np.int8)
            truth = s.hybrid.constellation.bit_matrix[f.indices]
            frame_bers(hat, truth, f.pilot_mask)

    return sequential_round


def _interleaved_min_times(a, b, rounds=SERVE_ROUNDS):
    """Time two callables round-by-round interleaved (clock drift and
    throttling hit both equally) and return their per-round times; callers
    compare best-of-rounds, the jitter-robust statistic for equal work."""
    import timeit

    a_times, b_times = [], []
    for _ in range(rounds):
        a_times.append(timeit.timeit(a, number=1))
        b_times.append(timeit.timeit(b, number=1))
    return a_times, b_times


@pytest.fixture(scope="module")
def serving_setup():
    from repro.channels import sigma2_from_snr
    from repro.channels.factories import AWGNFactory
    from repro.extraction import HybridDemapper, PilotBERMonitor
    from repro.link.frames import FrameConfig
    from repro.serving import (
        EngineConfig,
        ServingEngine,
        SessionConfig,
        SteadyChannel,
        build_fleet,
        generate_traffic,
    )

    fc = FrameConfig(pilot_symbols=32, payload_symbols=224)
    qam = qam_constellation(16)
    sigma2 = sigma2_from_snr(8.0, 4)
    engine = ServingEngine(config=EngineConfig(max_batch=SERVE_SESSIONS))
    sessions = build_fleet(
        engine,
        SERVE_SESSIONS,
        HybridDemapper(constellation=qam, sigma2=sigma2),
        monitor_factory=lambda: PilotBERMonitor(0.5, window=4),
        config=SessionConfig(frame=fc, queue_depth=2),
        seed=3,
    )
    rng = np.random.default_rng(11)
    chan = SteadyChannel(AWGNFactory(8.0, 4))
    frames = {
        s.session_id: generate_traffic(qam, fc, 1, chan, r)[0]
        for s, r in zip(sessions, rng.spawn(SERVE_SESSIONS))
    }
    return engine, sessions, frames, fc


def test_serving_batched_vs_sequential(benchmark, serving_setup):
    """Engine round (fill + one micro-batched step) vs per-session loop.

    Asserts the acceptance bar: the batched engine serves >= 2x the
    aggregate symbols/s of the sequential path, with per-session LLRs
    bit-identical to sequential ``hybrid.llrs`` on the default tier.
    """
    engine, sessions, frames, fc = serving_setup
    n = fc.total_symbols
    symbols = SERVE_SESSIONS * n

    def batched_round():
        for s in sessions:
            s.submit(frames[s.session_id])
        return engine.step()

    sequential_round = _sequential_demap_round(sessions, frames, n)
    assert batched_round() == SERVE_SESSIONS  # warm workspace; full occupancy
    sequential_round()
    benchmark.pedantic(
        batched_round, rounds=SERVE_ROUNDS, iterations=1, warmup_rounds=1
    )
    occupancy = engine.telemetry.snapshot()["mean_occupancy"]
    rate = _record(
        benchmark, "serving_batched[numpy]", symbols=symbols,
        extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
               "frame_symbols": n, "mean_batch_occupancy": occupancy},
    )
    if rate is None:
        return  # --benchmark-disable run: nothing to compare
    batched_times, seq_times = _interleaved_min_times(batched_round, sequential_round)
    _record_timed(
        "serving_sequential[numpy]", seq_times, symbols=symbols,
        extra={"backend": "numpy", "sessions": SERVE_SESSIONS, "frame_symbols": n},
    )
    speedup = min(seq_times) / min(batched_times)
    assert speedup >= 2.0, (
        f"serving engine must be >= 2x sequential per-session demapping at "
        f"N={SERVE_SESSIONS}: got {speedup:.2f}x "
        f"({symbols / min(batched_times) / 1e6:.2f} vs "
        f"{symbols / min(seq_times) / 1e6:.2f} Msym/s)"
    )

    # bit-identity: the batched engine's LLR stream == sequential hybrid.llrs
    caps = {}
    engine.on_frame = lambda s, f, llrs, rep: caps.__setitem__(s.session_id, llrs.copy())
    for s in sessions:
        s.submit(frames[s.session_id])
    engine.step()
    engine.on_frame = None
    for s in sessions:
        f = frames[s.session_id]
        assert np.array_equal(caps[s.session_id], s.hybrid.llrs(f.received))


def test_serving_traced_overhead(benchmark, serving_setup):
    """Full observability attached (tracer + profiler + metrics registry)
    vs the same engine untraced: the layer is passive, so a traced round
    must stay within 10% of the untraced round (``check_bench.py`` gates
    the recorded rates at the same ratio).

    Both measurements run on the *one* fixture engine — attach/detach is
    plain attribute assignment under the passivity contract — because two
    separately-built engines differ by several percent on allocation
    layout alone, which would drown a 10% bound.  Sharing the fixture
    engine also means ``serving_traced`` / ``serving_batched`` in the
    artifact are rates of the same instance, keeping the check_bench
    ratio gate stable.
    """
    from repro.serving import MetricsRegistry, RoundProfiler, Tracer

    engine, sessions, frames, fc = serving_setup
    n = fc.total_symbols
    symbols = SERVE_SESSIONS * n

    # ring sized so the bench never evicts (eviction is cheap, but keep the
    # measured path identical across rounds)
    tracer = Tracer(capacity=1 << 15)
    profiler = RoundProfiler()
    engine.register_metrics(MetricsRegistry())

    # both rounds go through engine.submit so the traced side pays for its
    # frame.submit events — the overhead bound covers the whole surface
    def traced_round():
        engine.tracer, engine.profiler = tracer, profiler
        for s in sessions:
            engine.submit(s.session_id, frames[s.session_id])
        return engine.step()

    def bare_round():
        engine.tracer = engine.profiler = None
        for s in sessions:
            engine.submit(s.session_id, frames[s.session_id])
        return engine.step()

    try:
        assert traced_round() == SERVE_SESSIONS  # warm ring; full occupancy
        assert bare_round() == SERVE_SESSIONS
        benchmark.pedantic(
            traced_round, rounds=SERVE_ROUNDS, iterations=1, warmup_rounds=1
        )
        assert tracer.dropped == 0
        events_per_round = len(tracer) / max(1, profiler.snapshot()["phases"]
                                             .get("schedule", {}).get("count", 1))
        rate = _record(
            benchmark, "serving_traced[numpy]", symbols=symbols,
            extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
                   "frame_symbols": n,
                   "trace_events_per_round": events_per_round},
        )
        if rate is None:
            return  # --benchmark-disable run: nothing to compare
        traced_times, bare_times = _interleaved_min_times(traced_round, bare_round)
        # record both sides of the check_bench ratio gate from this one
        # interleaved run (the later entries overwrite the pedantic ones in
        # the artifact): the bare rounds here *are* the serving_batched
        # benchmark — same engine, same round shape — and a 0.9x floor has
        # no room for cross-phase measurement noise
        occupancy = engine.telemetry.snapshot()["mean_occupancy"]
        _record_timed(
            "serving_traced[numpy]", traced_times, symbols=symbols,
            extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
                   "frame_symbols": n,
                   "trace_events_per_round": events_per_round},
        )
        _record_timed(
            "serving_batched[numpy]", bare_times, symbols=symbols,
            extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
                   "frame_symbols": n, "mean_batch_occupancy": occupancy},
        )
        overhead = min(traced_times) / min(bare_times)
        assert overhead <= 1.10, (
            f"observability must cost <= 10% of an untraced round at "
            f"N={SERVE_SESSIONS}: got {overhead:.3f}x "
            f"({symbols / min(traced_times) / 1e6:.2f} vs "
            f"{symbols / min(bare_times) / 1e6:.2f} Msym/s)"
        )
    finally:
        # leave the shared fixture engine exactly as we found it
        engine.tracer = engine.profiler = engine.registry = None


def test_serving_control_plane_overhead(benchmark):
    """Full control plane on (in-loop σ² estimation, tracking tier armed,
    DRR scheduling, latency histograms) vs the same per-session sequential
    baseline: the per-frame receiver-state updates are scalar work, so the
    engine must stay >= 1.5x sequential (plain batched serving is >= 2x).
    """
    from repro.channels import sigma2_from_snr
    from repro.channels.factories import AWGNFactory
    from repro.extraction import HybridDemapper, PilotBERMonitor
    from repro.link.frames import FrameConfig
    from repro.serving import (
        EngineConfig,
        ServingEngine,
        SessionConfig,
        SteadyChannel,
        build_fleet,
        generate_traffic,
    )

    fc = FrameConfig(pilot_symbols=32, payload_symbols=224)
    qam = qam_constellation(16)
    sigma2 = sigma2_from_snr(8.0, 4)
    engine = ServingEngine(config=EngineConfig(max_batch=SERVE_SESSIONS))
    sessions = build_fleet(
        engine,
        SERVE_SESSIONS,
        HybridDemapper(constellation=qam, sigma2=sigma2),
        monitor_factory=lambda: PilotBERMonitor(0.5, window=4),
        config=SessionConfig(
            frame=fc, queue_depth=2, sigma2_alpha=0.3, tracking=True
        ),
        seed=3,
    )
    rng = np.random.default_rng(11)
    chan = SteadyChannel(AWGNFactory(8.0, 4))
    frames = {
        s.session_id: generate_traffic(qam, fc, 1, chan, r)[0]
        for s, r in zip(sessions, rng.spawn(SERVE_SESSIONS))
    }
    n = fc.total_symbols
    symbols = SERVE_SESSIONS * n

    def control_plane_round():
        for s in sessions:
            s.submit(frames[s.session_id])
        return engine.step()

    sequential_round = _sequential_demap_round(sessions, frames, n)
    assert control_plane_round() == SERVE_SESSIONS  # warm workspace
    assert engine.telemetry.retrains_started == 0   # clean channel: no churn
    sequential_round()
    benchmark.pedantic(
        control_plane_round, rounds=SERVE_ROUNDS, iterations=1, warmup_rounds=1
    )
    rate = _record(
        benchmark, "serving_control_plane[numpy]", symbols=symbols,
        extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
               "frame_symbols": n, "sigma2_alpha": 0.3},
    )
    if rate is None:
        return  # --benchmark-disable run: nothing to compare
    cp_times, seq_times = _interleaved_min_times(control_plane_round, sequential_round)
    speedup = min(seq_times) / min(cp_times)
    assert speedup >= 1.5, (
        f"control-plane serving round must stay >= 1.5x sequential "
        f"per-session demapping at N={SERVE_SESSIONS}: got {speedup:.2f}x"
    )
    # the σ² loop is actually live (every session's estimate moved)
    assert all(s.sigma2 != sigma2 for s in sessions)


def test_serving_churn_soak(benchmark):
    """Churn soak: aggregate throughput with 25% of the fleet cycling.

    One timed pass serves 8 rounds: 16 guest sessions join a 48-resident
    fleet (64 live — 25% churn), stream for 4 rounds, drain out, and the
    residents stream 4 more rounds.  The engine must keep >= 1.5x the
    aggregate sym/s of per-session sequential demapping of the *same*
    (session, frame) workload — churn bookkeeping (registry updates,
    scheduler forget, fleet telemetry) must not eat the batching win.
    """
    from repro.channels import sigma2_from_snr
    from repro.channels.factories import AWGNFactory
    from repro.extraction import HybridDemapper, PilotBERMonitor
    from repro.link.frames import FrameConfig
    from repro.serving import (
        DemapperSession,
        EngineConfig,
        ServingEngine,
        SessionConfig,
        SteadyChannel,
        build_fleet,
        generate_traffic,
    )

    n_residents = 48
    n_guests = 16
    fc = FrameConfig(pilot_symbols=32, payload_symbols=224)
    qam = qam_constellation(16)
    sigma2 = sigma2_from_snr(8.0, 4)
    hybrid = HybridDemapper(constellation=qam, sigma2=sigma2)
    config = SessionConfig(frame=fc, queue_depth=2)
    monitor = lambda: PilotBERMonitor(0.5, window=4)  # noqa: E731 — never fires
    engine = ServingEngine(config=EngineConfig(max_batch=SERVE_SESSIONS))
    residents = build_fleet(
        engine, n_residents, hybrid,
        monitor_factory=monitor, config=config, seed=3, prefix="r",
    )
    rng = np.random.default_rng(11)
    chan = SteadyChannel(AWGNFactory(8.0, 4))
    guest_ids = [f"g{i:02d}" for i in range(n_guests)]
    frames = {
        sid: generate_traffic(qam, fc, 1, chan, r)[0]
        for sid, r in zip(
            [s.session_id for s in residents] + guest_ids,
            rng.spawn(n_residents + n_guests),
        )
    }
    n = fc.total_symbols
    # 4 churned rounds x 64 + 4 resident rounds x 48 = 448 frames per pass
    symbols = (4 * (n_residents + n_guests) + 4 * n_residents) * n

    def churn_pass():
        served = 0
        guests = [
            engine.add_session(
                DemapperSession(sid, hybrid, monitor(), config=config, rng=i)
            )
            for i, sid in enumerate(guest_ids)
        ]
        for _ in range(4):
            for s in engine.sessions:
                s.submit(frames[s.session_id], now=engine.telemetry.now)
            served += engine.step()
        for g in guests:
            engine.remove_session(g.session_id, drain=True)
        for _ in range(4):
            for s in engine.sessions:
                s.submit(frames[s.session_id], now=engine.telemetry.now)
            served += engine.step()
        return served

    def sequential_pass():
        from repro.link.frames import frame_bers

        out = np.empty((n, 4))
        for sids in [
            [s.session_id for s in residents] + guest_ids,  # churned phase
            [s.session_id for s in residents],              # resident phase
        ]:
            for _ in range(4):
                for sid in sids:
                    f = frames[sid]
                    llrs = hybrid.llrs(f.received, out=out)
                    hat = (llrs > 0).astype(np.int8)
                    frame_bers(hat, qam.bit_matrix[f.indices], f.pilot_mask)

    assert churn_pass() == 4 * (n_residents + n_guests) + 4 * n_residents
    assert engine.telemetry.leaves == n_guests  # drains completed in-pass
    assert len(engine.sessions) == n_residents
    sequential_pass()
    benchmark.pedantic(churn_pass, rounds=SERVE_ROUNDS, iterations=1, warmup_rounds=1)
    rate = _record(
        benchmark, "serving_churn[numpy]", symbols=symbols,
        extra={"backend": "numpy", "residents": n_residents, "guests": n_guests,
               "frame_symbols": n, "churn_fraction": n_guests / (n_residents + n_guests)},
    )
    if rate is None:
        return  # --benchmark-disable run: nothing to compare
    churn_times, seq_times = _interleaved_min_times(churn_pass, sequential_pass)
    _record_timed(
        "serving_churn_sequential[numpy]", seq_times, symbols=symbols,
        extra={"backend": "numpy", "residents": n_residents, "guests": n_guests,
               "frame_symbols": n},
    )
    speedup = min(seq_times) / min(churn_times)
    assert speedup >= 1.5, (
        f"churning engine must stay >= 1.5x sequential per-session demapping "
        f"at 25% fleet churn: got {speedup:.2f}x "
        f"({symbols / min(churn_times) / 1e6:.2f} vs "
        f"{symbols / min(seq_times) / 1e6:.2f} Msym/s)"
    )


def test_serving_faulted_overhead(benchmark):
    """Fault supervision under a sustained ~10% retrain-failure rate.

    7 of 64 sessions are flaky: their monitors fire every frame and their
    retrain policy raises every time, so each engine round absorbs ~7
    failure outcomes, records them, and schedules backed-off retries
    (``backoff_base=0`` keeps one failing retrain per flaky session per
    round; ``max_failures`` is effectively infinite so the breaker never
    opens and the injection rate stays constant).  The supervision path —
    outcome absorption, failure records, retry scheduling, resume-serving
    — is scalar bookkeeping, so the faulted engine must keep >= 1.3x the
    aggregate sym/s of per-session sequential demapping of the same
    workload.
    """
    from repro.channels import sigma2_from_snr
    from repro.channels.factories import AWGNFactory
    from repro.extraction import HybridDemapper, PilotBERMonitor
    from repro.link.frames import FrameConfig
    from repro.serving import (
        DemapperSession,
        EngineConfig,
        InjectedRetrainError,
        RetrainSupervisor,
        ServingEngine,
        SessionConfig,
        SteadyChannel,
        build_fleet,
        generate_traffic,
    )

    n_flaky = 7  # ~11% of the fleet
    n_steady = SERVE_SESSIONS - n_flaky
    fc = FrameConfig(pilot_symbols=32, payload_symbols=224)
    qam = qam_constellation(16)
    sigma2 = sigma2_from_snr(8.0, 4)
    hybrid = HybridDemapper(constellation=qam, sigma2=sigma2)
    config = SessionConfig(frame=fc, queue_depth=2)

    def failing_retrain(rng):
        raise InjectedRetrainError("injected: no model for you")

    engine = ServingEngine(config=EngineConfig(
        max_batch=SERVE_SESSIONS,
        supervisor=RetrainSupervisor(
            max_failures=10**9, backoff_base=0, backoff_factor=1.0
        ),
    ))
    sessions = build_fleet(
        engine, n_steady, hybrid,
        monitor_factory=lambda: PilotBERMonitor(0.5, window=4),
        config=config, seed=3, prefix="s",
    )
    for i in range(n_flaky):
        sessions.append(
            engine.add_session(
                DemapperSession(
                    f"f{i:02d}", hybrid,
                    # fires on any pilot error, every frame, no cooldown
                    PilotBERMonitor(1e-3, window=1, cooldown=0),
                    config=config, retrain=failing_retrain, rng=100 + i,
                )
            )
        )
    rng = np.random.default_rng(11)
    clean = SteadyChannel(AWGNFactory(8.0, 4))
    noisy = SteadyChannel(AWGNFactory(4.0, 4))  # pilot errors every frame
    frames = {
        s.session_id: generate_traffic(
            qam, fc, 1, noisy if s.session_id.startswith("f") else clean, r
        )[0]
        for s, r in zip(sessions, rng.spawn(SERVE_SESSIONS))
    }
    n = fc.total_symbols
    symbols = SERVE_SESSIONS * n

    def faulted_round():
        for s in sessions:
            s.submit(frames[s.session_id])
        return engine.step()

    sequential_round = _sequential_demap_round(sessions, frames, n)
    assert faulted_round() == SERVE_SESSIONS  # warm workspace; full occupancy
    faulted_round()
    faulted_round()  # reach the steady retry cadence
    before = engine.telemetry.retrain_failures
    assert faulted_round() == SERVE_SESSIONS  # flaky sessions still serve
    per_round = engine.telemetry.retrain_failures - before
    assert per_round == n_flaky, (
        f"expected one failing retrain per flaky session per round, "
        f"got {per_round}/{n_flaky}"
    )
    sequential_round()
    benchmark.pedantic(
        faulted_round, rounds=SERVE_ROUNDS, iterations=1, warmup_rounds=1
    )
    rate = _record(
        benchmark, "serving_faulted[numpy]", symbols=symbols,
        extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
               "flaky_sessions": n_flaky, "frame_symbols": n,
               "failure_rate": n_flaky / SERVE_SESSIONS},
    )
    if rate is None:
        return  # --benchmark-disable run: nothing to compare
    faulted_times, seq_times = _interleaved_min_times(faulted_round, sequential_round)
    speedup = min(seq_times) / min(faulted_times)
    assert speedup >= 1.3, (
        f"faulted serving round must stay >= 1.3x sequential per-session "
        f"demapping at a {n_flaky}/{SERVE_SESSIONS} retrain-failure rate: "
        f"got {speedup:.2f}x "
        f"({symbols / min(faulted_times) / 1e6:.2f} vs "
        f"{symbols / min(seq_times) / 1e6:.2f} Msym/s)"
    )
    # supervision never broke serving: everything submitted was served and
    # every failure was recorded (none raised, none dropped)
    assert all(s.health == "healthy" for s in sessions)
    assert engine.telemetry.retrain_failures == len(engine.telemetry.failure_log)


def test_serving_coded_throughput(benchmark):
    """Coded serving round: demap + batched per-code Viterbi + CRC.

    The full fleet carries a shared ``CodedFrameConfig`` (K=3 (7,5) code,
    CRC-16, interleaved), so every round coalesces the demap *and* the
    64 sessions' decodes share one trellis-table dispatch.  Records the
    aggregate decoded info bits/s — ``check_bench.py`` holds an absolute
    floor on it — and asserts the decode stage is live and clean at 8 dB.
    """
    from repro.channels import sigma2_from_snr
    from repro.channels.factories import AWGNFactory
    from repro.extraction import HybridDemapper, PilotBERMonitor
    from repro.link.frames import FrameConfig
    from repro.serving import (
        CodedFrameConfig,
        EngineConfig,
        ServingEngine,
        SessionConfig,
        SteadyChannel,
        build_fleet,
        coded_layout,
        generate_traffic,
    )

    fc = FrameConfig(pilot_symbols=32, payload_symbols=224)
    qam = qam_constellation(16)
    sigma2 = sigma2_from_snr(8.0, 4)
    coded = CodedFrameConfig()
    layout = coded_layout(coded, fc.payload_symbols * 4)
    engine = ServingEngine(config=EngineConfig(max_batch=SERVE_SESSIONS))
    sessions = build_fleet(
        engine,
        SERVE_SESSIONS,
        HybridDemapper(constellation=qam, sigma2=sigma2),
        monitor_factory=lambda: PilotBERMonitor(0.5, window=4),
        config=SessionConfig(frame=fc, queue_depth=2, coded=coded),
        seed=3,
    )
    rng = np.random.default_rng(11)
    chan = SteadyChannel(AWGNFactory(8.0, 4))
    frames = {
        s.session_id: generate_traffic(qam, fc, 1, chan, r, coded=coded)[0]
        for s, r in zip(sessions, rng.spawn(SERVE_SESSIONS))
    }
    info_bits = SERVE_SESSIONS * layout.n_info

    def coded_round():
        for s in sessions:
            s.submit(frames[s.session_id])
        return engine.step()

    assert coded_round() == SERVE_SESSIONS  # warm workspace; full occupancy
    assert engine.telemetry.frames_decoded == SERVE_SESSIONS  # decode is live
    assert engine.telemetry.crc_failures == 0  # 8 dB AWGN: clean decodes
    benchmark.pedantic(
        coded_round, rounds=SERVE_ROUNDS, iterations=1, warmup_rounds=1
    )
    _record(
        benchmark, "serving_coded[numpy]", symbols=info_bits,
        extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
               "unit": "info_bits", "info_bits_per_frame": layout.n_info,
               "frame_symbols": fc.total_symbols,
               "constraint_length": coded.constraint_length},
    )


def _fleet_and_round(n_shards, *, parallel, fc, qams, sigma2):
    """Build one fleet (own session objects) and its submit-all+step round."""
    from repro.channels.factories import AWGNFactory
    from repro.extraction import HybridDemapper, PilotBERMonitor
    from repro.serving import (
        DemapperSession,
        EngineConfig,
        FleetFrontEnd,
        SessionConfig,
        SteadyChannel,
        generate_traffic,
    )

    fleet = FleetFrontEnd(
        n_shards,
        config=EngineConfig(max_batch=SERVE_SESSIONS),
        parallel=parallel,
    )
    master = np.random.default_rng(5)
    sessions = []
    for i in range(SERVE_SESSIONS):
        (srng,) = master.spawn(1)
        sessions.append(
            DemapperSession(
                f"s{i:03d}",
                HybridDemapper(constellation=qams[i % len(qams)], sigma2=sigma2),
                PilotBERMonitor(0.5, window=4),
                config=SessionConfig(frame=fc, queue_depth=2),
                rng=srng,
            )
        )
        fleet.add_session(sessions[-1])
    rng = np.random.default_rng(11)
    chan = SteadyChannel(AWGNFactory(8.0, 4))
    frames = {
        s.session_id: generate_traffic(
            qams[int(s.session_id[1:]) % len(qams)], fc, 1, chan, r
        )[0]
        for s, r in zip(sessions, rng.spawn(SERVE_SESSIONS))
    }

    def fleet_round():
        for s in sessions:
            s.submit(frames[s.session_id])
        return fleet.step()

    return fleet, fleet_round


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="fleet scaling bench needs >= 4 cores (thread-per-shard)",
)
def test_serving_fleet_scaling(benchmark):
    """4 engine shards behind one FleetFrontEnd vs the same fleet on 1 shard.

    64 sessions striped over 4 distinct (rotated) constellations, so
    affinity placement spreads the groups and each shard fuses its own
    micro-batch.  The NumPy demap kernels release the GIL, so 4 shard
    threads overlap; the larger frame keeps the round kernel-bound.  The
    acceptance bar (and the check_bench ratio gate) is >= 1.8x aggregate
    sym/s over the single-shard fleet serving the identical workload.
    """
    from repro.channels import sigma2_from_snr
    from repro.link.frames import FrameConfig

    fc = FrameConfig(pilot_symbols=32, payload_symbols=992)
    base = qam_constellation(16)
    qams = tuple(
        type(base)(points=base.points * np.exp(1j * g * 0.03)) for g in range(4)
    )
    sigma2 = sigma2_from_snr(8.0, 4)
    n = fc.total_symbols
    symbols = SERVE_SESSIONS * n

    fleet4, fleet4_round = _fleet_and_round(
        4, parallel=True, fc=fc, qams=qams, sigma2=sigma2
    )
    fleet1, fleet1_round = _fleet_and_round(
        1, parallel=False, fc=fc, qams=qams, sigma2=sigma2
    )
    try:
        # affinity placement must actually spread the work
        occupied = {fleet4.shard_of(s.session_id) for s in fleet4.sessions}
        assert len(occupied) == 4, f"groups collapsed onto shards {occupied}"
        assert fleet4_round() == SERVE_SESSIONS  # warm per-shard workspaces
        assert fleet1_round() == SERVE_SESSIONS
        benchmark.pedantic(
            fleet4_round, rounds=SERVE_ROUNDS, iterations=1, warmup_rounds=1
        )
        rate = _record(
            benchmark, "serving_fleet[numpy]", symbols=symbols,
            extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
                   "shards": 4, "frame_symbols": n},
        )
        if rate is None:
            return  # --benchmark-disable run: nothing to compare
        fleet4_times, fleet1_times = _interleaved_min_times(
            fleet4_round, fleet1_round
        )
        _record_timed(
            "serving_fleet_single[numpy]", fleet1_times, symbols=symbols,
            extra={"backend": "numpy", "sessions": SERVE_SESSIONS,
                   "shards": 1, "frame_symbols": n},
        )
        speedup = min(fleet1_times) / min(fleet4_times)
        assert speedup >= 1.8, (
            f"4-shard fleet must serve >= 1.8x the single-shard fleet at "
            f"N={SERVE_SESSIONS}: got {speedup:.2f}x "
            f"({symbols / min(fleet4_times) / 1e6:.2f} vs "
            f"{symbols / min(fleet1_times) / 1e6:.2f} Msym/s)"
        )
        # sharding never changes a bit: merged fleet counters agree
        assert (
            fleet4.stats().frames_served == fleet1.stats().frames_served
        )
    finally:
        fleet4.close()
        fleet1.close()


def test_exact_logmap_throughput(benchmark, stream):
    y, _ = stream
    qam = qam_constellation(16)
    ex = ExactLogMAPDemapper(qam)
    out = np.empty((N, 4))
    benchmark(ex.llrs, y, 0.02, out=out)
    _record(benchmark, "logmap_llrs[numpy]", symbols=N, extra={"backend": "numpy"})


def test_hard_demapper_throughput(benchmark, stream):
    from repro.modulation import HardDemapper

    y, _ = stream
    hd = HardDemapper(qam_constellation(16))
    benchmark(hd.demap_indices, y)
    _record(benchmark, "hard_indices[numpy]", symbols=N, extra={"backend": "numpy"})


def test_ann_inference_throughput(benchmark, stream, bench_system_8db):
    _, y2 = stream
    benchmark(bench_system_8db.demapper.forward, y2)
    rate = _record(benchmark, "ann_forward", symbols=N)
    if rate is not None:
        assert rate > 1e6


def test_quantized_inference_throughput(benchmark, stream, bench_system_8db):
    _, y2 = stream
    q = QuantizedDemapper(bench_system_8db.demapper)
    benchmark(q.hard_bits, y2)
    _record(benchmark, "quantized_hard_bits", symbols=N)


def test_e2e_train_step(benchmark):
    rng = np.random.default_rng(0)
    mapper = MapperANN(16, rng=rng)
    demapper = DemapperANN(4, rng=rng)
    system = AESystem(mapper, demapper, AWGNChannel(8.0, 4, rng=rng))
    opt = Adam(mapper.parameters() + demapper.parameters(), lr=2e-3)

    def step():
        opt.zero_grad()
        loss = system.train_step(rng, 512)
        opt.step()
        return loss

    benchmark(step)
    _record(benchmark, "e2e_train_step", extra={"batch": 512})


def test_parallel_ber_chunked_throughput(benchmark):
    """The deterministic chunked Monte-Carlo path (1 worker, in-process)."""
    from repro.link import AWGNFactory, simulate_ber

    qam = qam_constellation(16)
    ml = MaxLogDemapper(qam)
    import functools

    demap = functools.partial(ml.demap_bits, sigma2=0.05)
    benchmark.pedantic(
        simulate_ber,
        args=(qam, None, demap, N),
        kwargs=dict(rng=5, batch_size=65536, channel_factory=AWGNFactory(8.0, 4)),
        rounds=3,
        iterations=1,
    )
    _record(benchmark, "simulate_ber_chunked", symbols=N)


def test_decision_region_sampling(benchmark, bench_system_8db):
    fn = bench_system_8db.demapper.bit_probability_fn()
    benchmark(sample_decision_regions, fn, extent=1.5, resolution=256)
    _record(benchmark, "decision_region_sampling", extra={"resolution": 256})


def test_full_extraction_lsq(benchmark, bench_system_8db, bench_constellation_8db):
    from repro.extraction import HybridDemapper

    sigma2 = AWGNChannel(8.0, 4).sigma2
    benchmark.pedantic(
        HybridDemapper.extract,
        args=(bench_system_8db.demapper, sigma2),
        kwargs=dict(method="lsq", fallback=bench_constellation_8db),
        rounds=5, iterations=1,
    )
    _record(benchmark, "full_extraction_lsq")
