"""Micro-benchmarks — throughput of the computational hot paths.

These time the *software* implementation (symbols/s in NumPy), a sanity
complement to the architectural FPGA model: training steps, ANN inference,
max-log demapping, exact log-MAP, quantised integer inference, and
decision-region extraction.
"""

import numpy as np
import pytest

from repro.autoencoder import AESystem, DemapperANN, MapperANN
from repro.channels import AWGNChannel
from repro.extraction import sample_decision_regions
from repro.fpga import QuantizedDemapper
from repro.modulation import (
    ExactLogMAPDemapper,
    Mapper,
    MaxLogDemapper,
    qam_constellation,
    random_indices,
)
from repro.nn import Adam
from repro.utils.complexmath import complex_to_real2

N = 262_144  # symbols per timed call


@pytest.fixture(scope="module")
def stream(bench_constellation_8db):
    rng = np.random.default_rng(42)
    idx = random_indices(rng, N, 16)
    y = AWGNChannel(8.0, 4, rng=rng)(Mapper(bench_constellation_8db)(idx))
    return y, complex_to_real2(y)


def test_maxlog_demapper_throughput(benchmark, stream):
    y, _ = stream
    qam = qam_constellation(16)
    ml = MaxLogDemapper(qam)
    benchmark(ml.llrs, y, 0.02)
    rate = N / benchmark.stats["mean"]
    assert rate > 3e5  # hundreds of ksym/s in NumPy (the FPGA core does 75M)


def test_exact_logmap_throughput(benchmark, stream):
    y, _ = stream
    qam = qam_constellation(16)
    ex = ExactLogMAPDemapper(qam)
    benchmark(ex.llrs, y, 0.02)


def test_ann_inference_throughput(benchmark, stream, bench_system_8db):
    _, y2 = stream
    benchmark(bench_system_8db.demapper.forward, y2)
    rate = N / benchmark.stats["mean"]
    assert rate > 1e6


def test_quantized_inference_throughput(benchmark, stream, bench_system_8db):
    _, y2 = stream
    q = QuantizedDemapper(bench_system_8db.demapper)
    benchmark(q.hard_bits, y2)


def test_e2e_train_step(benchmark):
    rng = np.random.default_rng(0)
    mapper = MapperANN(16, rng=rng)
    demapper = DemapperANN(4, rng=rng)
    system = AESystem(mapper, demapper, AWGNChannel(8.0, 4, rng=rng))
    opt = Adam(mapper.parameters() + demapper.parameters(), lr=2e-3)

    def step():
        opt.zero_grad()
        loss = system.train_step(rng, 512)
        opt.step()
        return loss

    benchmark(step)


def test_decision_region_sampling(benchmark, bench_system_8db):
    fn = bench_system_8db.demapper.bit_probability_fn()
    benchmark(sample_decision_regions, fn, extent=1.5, resolution=256)


def test_full_extraction_lsq(benchmark, bench_system_8db, bench_constellation_8db):
    from repro.extraction import HybridDemapper

    sigma2 = AWGNChannel(8.0, 4).sigma2
    benchmark.pedantic(
        HybridDemapper.extract,
        args=(bench_system_8db.demapper, sigma2),
        kwargs=dict(method="lsq", fallback=bench_constellation_8db),
        rounds=5, iterations=1,
    )
