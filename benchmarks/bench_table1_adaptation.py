"""Table 1 regeneration bench — phase-offset adaptation BERs.

Reproduces the paper's Table 1 (SNR −2 / 8 dB; baseline, AE and centroid
BER before/after retraining under a π/4 offset) and asserts its claims:

* before retraining, both AE and centroid receivers are catastrophic
  (≈ 0.32 — the "upper bound ... without any adaption"),
* after retraining both "nearly approach the baseline BER",
* "there is no drawback of using the extracted centroids as compared to
  the AE-inference".

Since the sweep-engine port, every row is measured through
:func:`repro.link.sweep.sweep_ber`: the π/4 rotation is a pre-noise channel
stage, and the centroid rows re-extract centroids at each point's σ²
*inside* the engine (``ExtractedCentroidFactory``), so this bench also
exercises the sweep-native adaptation path end to end.
"""

import pytest

from repro.experiments import paper_values
from repro.experiments.table1_adaptation import Table1Config, run

CFG = Table1Config(
    snr_dbs=(-2.0, 8.0),
    train_steps=2500,
    retrain_steps=1500,
    seed=1234,
    n_symbols=800_000,
    max_errors=4000,
)


def test_table1_adaptation(benchmark, capsys):
    result = benchmark.pedantic(run, args=(CFG,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.to_table())

    for snr in CFG.snr_dbs:
        m = result.measured[snr]
        p = paper_values.TABLE1[snr]
        # upper bound: unadapted receivers are catastrophic (paper ~0.32)
        assert m["ae_before"] > 0.25
        assert m["centroid_before"] > 0.25
        # baseline matches the paper's lower bound within Monte-Carlo margin
        assert abs(m["baseline"] - p["baseline"]) / p["baseline"] < 0.35
        # adaptation: post-retraining BER approaches the baseline
        assert m["ae_after"] < 2.5 * m["baseline"]
        assert m["centroid_after"] < 2.5 * m["baseline"]
        # no centroid drawback
        assert m["centroid_after"] < m["ae_after"] * 1.6 + 1e-3
