"""Fig. 2 regeneration bench — BER of demapping algorithms vs SNR.

Reproduces the paper's Fig. 2 sweep (0..12 dB, conventional vs AE vs
extracted centroids) and asserts its qualitative claims:

* AE inference sits on the conventional curve ("on the level of the
  conventional demapper for SNRs up to 10 dB"),
* centroid demapping tracks it, with the paper-faithful vertex extractor
  allowed a visible-but-small degradation at 12 dB.

The timed quantity is the full experiment (training + extraction +
Monte-Carlo BER for every point).
"""

import pytest

from repro.experiments.fig2_ber import Fig2Config, run

CFG = Fig2Config(
    snr_dbs=(0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0),
    train_steps=2500,
    seed=1234,
    max_symbols=1_500_000,
    max_errors=2500,
)


@pytest.fixture(scope="module")
def fig2_result():
    return run(CFG)


def test_fig2_full_sweep(benchmark, capsys):
    result = benchmark.pedantic(run, args=(CFG,), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.to_table())
        print()
        print(result.to_plot())

    # paper shape assertions over the whole sweep
    for i, snr in enumerate(result.snr_dbs):
        conv = result.series["conventional"][i].ber
        ae = result.series["ae"][i].ber
        lsq = result.series["centroid_lsq"][i].ber
        assert ae < conv * 1.5 + 1e-4, f"AE off the conventional curve at {snr} dB"
        assert lsq < ae * 1.6 + 1e-3, f"lsq centroids off the AE curve at {snr} dB"

    # conventional curve matches the analytic reference (calibration anchor)
    for i in range(len(result.snr_dbs)):
        conv = result.series["conventional"][i].ber
        ref = result.analytic[i]
        assert abs(conv - ref) / ref < 0.3
