"""Benchmark-suite configuration.

Heavy experiment benches run exactly once per session
(``benchmark.pedantic(rounds=1)``) and print paper-vs-measured tables into
the captured output, so ``pytest benchmarks/ --benchmark-only`` regenerates
every table and figure of the paper in one run.  Micro benches use regular
multi-round timing.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.cache import trained_ae_system


#: Benchmarks reuse one moderately-trained AE (the experiment drivers train
#: their own per-SNR systems through the same cache).
@pytest.fixture(scope="session")
def bench_system_8db():
    return trained_ae_system(8.0, seed=1234, steps=2500)


@pytest.fixture(scope="session")
def bench_constellation_8db(bench_system_8db):
    return bench_system_8db.mapper.constellation()


@pytest.fixture
def bench_rng():
    return np.random.default_rng(99)
