"""Ablation C — fixed-point bit width of the demapper datapath vs BER.

Sweeps the integer datapath's weight width (4..16 bits, per-layer scaled,
calibrated activations) and measures the BER of the quantised demapper —
the precision/area trade every FINN-style deployment must make.  Expected:
8-bit weights are BER-free; 6-bit marginal; 4-bit visibly degraded.
"""

import numpy as np
import pytest

from repro.channels import AWGNChannel
from repro.fpga import FixedPointFormat, QuantizedDemapper
from repro.modulation import Mapper, random_indices
from repro.utils.complexmath import complex_to_real2
from repro.utils.tables import format_table

SNR_DB = 8.0


@pytest.mark.parametrize("bits", [4, 6, 8, 12, 16])
def test_quantization_bits(benchmark, bits, bench_system_8db,
                           bench_constellation_8db, capsys):
    rng = np.random.default_rng(70)
    idx = random_indices(rng, 300_000, 16)
    y2 = complex_to_real2(
        AWGNChannel(SNR_DB, 4, rng=rng)(Mapper(bench_constellation_8db)(idx))
    )
    truth = bench_constellation_8db.bit_matrix[idx]

    quantized = QuantizedDemapper(
        bench_system_8db.demapper,
        weight_format=FixedPointFormat(bits, max(0, bits - 2)),
        activation_format=FixedPointFormat(bits + 4, max(0, bits - 2)),
    )
    # the timed quantity: integer inference over the whole stream
    hard = benchmark.pedantic(quantized.hard_bits, args=(y2,), rounds=3, iterations=1)
    ber_q = float(np.mean(hard != truth))
    ber_f = float(np.mean(bench_system_8db.demapper.hard_bits(y2) != truth))

    with capsys.disabled():
        print()
        print(format_table(
            ["weight bits", "BER quantised", "BER float", "ratio", "weight memory [bits]"],
            [[bits, ber_q, ber_f, ber_q / ber_f, quantized.weight_memory_bits]],
            float_fmt=".4g",
        ))

    if bits >= 8:
        assert ber_q < 1.1 * ber_f  # >= 8 bits: free
    elif bits >= 6:
        assert ber_q < 1.6 * ber_f  # 6 bits: marginal
    else:
        assert ber_q < 20 * ber_f   # 4 bits: degraded but functional
