"""Ablation E — constellation order: does the hybrid approach scale?

The paper's case study is 16-QAM.  This bench runs the full pipeline
(E2E training → extraction → hybrid demapping) for 4-, 16- and 64-QAM at a
fixed Eb/N0 and checks the hybrid receiver stays on the conventional curve
at every order — i.e. nothing in the method is specific to M=16.
"""

import numpy as np
import pytest

from repro.autoencoder import AESystem, DemapperANN, E2ETrainer, MapperANN, TrainingConfig
from repro.channels import AWGNChannel
from repro.extraction import HybridDemapper
from repro.link import simulate_ber
from repro.modulation import MaxLogDemapper, qam_constellation
from repro.utils.stats import gray_qam_ber_approx
from repro.utils.tables import format_table

SNR_DB = 10.0  # Eb/N0 — reasonable operating point for all three orders

_rows = []


@pytest.mark.parametrize("order", [4, 16, 64])
def test_order(benchmark, order, capsys):
    k = int(np.log2(order))

    def full_pipeline():
        rng = np.random.default_rng(300 + order)
        mapper = MapperANN(order, init="qam", rng=rng)
        demapper = DemapperANN(k, hidden=(16, 16, 16) if order <= 16 else (32, 32, 32),
                               rng=rng)
        system = AESystem(mapper, demapper, AWGNChannel(SNR_DB, k, rng=rng))
        E2ETrainer(system, TrainingConfig(steps=3000 if order <= 16 else 5000,
                                          batch_size=1024)).run(rng)
        const = mapper.constellation()
        sigma2 = system.channel.sigma2
        hybrid = HybridDemapper.extract(demapper, sigma2, method="lsq",
                                        resolution=256, fallback=const)
        ber_hybrid = simulate_ber(
            const, AWGNChannel(SNR_DB, k, rng=np.random.default_rng(301 + order)),
            hybrid.demap_bits, 600_000, rng=302 + order, max_errors=3000,
        ).ber
        qam = qam_constellation(order)
        conv = MaxLogDemapper(qam)
        ber_conv = simulate_ber(
            qam, AWGNChannel(SNR_DB, k, rng=np.random.default_rng(303 + order)),
            lambda y: conv.demap_bits(y, sigma2), 600_000,
            rng=304 + order, max_errors=3000,
        ).ber
        return ber_hybrid, ber_conv

    ber_hybrid, ber_conv = benchmark.pedantic(full_pipeline, rounds=1, iterations=1)
    analytic = float(gray_qam_ber_approx(SNR_DB, order=order))
    _rows.append([f"{order}-QAM", analytic, ber_conv, ber_hybrid])
    with capsys.disabled():
        print()
        print(format_table(
            ["constellation", "analytic", "conventional", "hybrid (AE + centroids)"],
            _rows, float_fmt=".3e",
            title=f"Order sweep @ Eb/N0 = {SNR_DB:g} dB",
        ))

    assert abs(ber_conv - analytic) / analytic < 0.35
    assert ber_hybrid < 1.8 * ber_conv + 1e-4
