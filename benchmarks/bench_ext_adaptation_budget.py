"""Extension — end-to-end adaptation latency budget and FPGA-vs-ASIC.

Combines the Table-2 design models with reconfiguration timing into the
latency of one full adaptation event (reconfigure → retrain → reconfigure →
re-extract), and quantifies the paper's §III-D FPGA-vs-ASIC argument at a
realistic adaptation rate.
"""

import pytest

from repro.fpga import (
    AdaptationBudget,
    build_ae_inference_accelerator,
    build_ae_training_accelerator,
    compare_fpga_vs_asic,
)


def run_budget():
    _, inference = build_ae_inference_accelerator()
    _, training = build_ae_training_accelerator()
    budget = AdaptationBudget.estimate(
        training, inference,
        retrain_steps=1500, batch_size=512, extraction_resolution=256,
    )
    comparison = compare_fpga_vs_asic(training, inference, budget,
                                      adaptations_per_hour=60)
    return training, inference, budget, comparison


def test_adaptation_budget(benchmark, capsys):
    training, inference, budget, comparison = benchmark.pedantic(
        run_budget, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(budget.to_table())
        print()
        print(comparison.to_table())

    # retraining dominates the budget; the whole event is sub-second
    assert budget.retraining_s > 0.5 * budget.total_s
    assert budget.total_s < 1.0
    # paper SIII-D quantified: ASIC training logic idles > 99.5% of the time
    # at one adaptation per minute, while the FPGA stays > 95% available
    assert comparison.asic_training_idle_fraction > 0.995
    assert comparison.fpga_inference_availability > 0.95
    assert comparison.asic_resident_lut > 1.5 * comparison.fpga_resident_lut
