#!/usr/bin/env python3
"""Bench regression gate: fail CI when a tracked hot path gets slower.

Reads the *committed* ``BENCH_micro.json`` as the baseline, re-runs the
micro-benchmark suite (which rewrites the artifact in place), and compares:

1. **Relative gate** — every benchmark with a ``symbols_per_second`` in both
   artifacts must not regress more than ``--tolerance`` (default 30%) vs the
   baseline.  Absolute throughput is machine-bound, so this gate only
   applies when the baseline was recorded on a matching environment
   (same machine/cpu-count/python/numpy ``machine_info``); on a different
   machine it downgrades to a warning — the committed baseline from a dev
   box must not fail a slower CI runner on hardware alone.
2. **Ratio gates** — machine-independent invariants checked on the fresh
   artifact unconditionally:
   * serving engine >= 2x sequential per-session demapping,
   * control-plane serving >= 1.5x sequential,
   * churn-soak serving >= 1.5x sequential under 25% fleet churn,
   * faulted serving >= 1.3x sequential at a ~10% injected
     retrain-failure rate (supervision bookkeeping stays scalar),
   * fully-observed serving (tracer + profiler + metrics) >= 0.9x the
     untraced engine — observability overhead capped at ~10%,
   * batched multi-sigma sweep >= sequential per-SNR launches (both tiers),
   * max-log demapping >= 1e6 sym/s (the historical floor, generous on any
     hardware this decade),
   * coded serving >= 2e4 decoded info bits/s (absolute floor on the
     ``serving_coded[numpy]`` round: demap + batched Viterbi + CRC).
3. **Environment-conditional ratio gates** — same invariant style, but the
   underlying benchmark only runs on capable machines, so an absent pair is
   a skip, not a failure:
   * 4-shard ``FleetFrontEnd`` >= 1.8x the single-shard fleet on the same
     64-session workload (recorded only on >= 4-core machines),
   * numba ``viterbi_decode`` >= 5x the pure-python reference ACS
     (recorded only where numba is installed).

Exit code 0 = gate passed; 1 = regression (or missing artifact/benchmark).

Usage::

    python benchmarks/check_bench.py              # run suite, then compare
    python benchmarks/check_bench.py --no-run     # compare existing artifact
    python benchmarks/check_bench.py --tolerance 0.2
"""

from __future__ import annotations

import argparse
import copy
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ARTIFACT = REPO / "BENCH_micro.json"

#: (numerator, denominator, floor) — machine-independent ratio invariants.
RATIO_GATES = [
    ("serving_batched[numpy]", "serving_sequential[numpy]", 2.0),
    ("serving_control_plane[numpy]", "serving_sequential[numpy]", 1.5),
    ("serving_churn[numpy]", "serving_churn_sequential[numpy]", 1.5),
    ("serving_faulted[numpy]", "serving_sequential[numpy]", 1.3),
    ("serving_traced[numpy]", "serving_batched[numpy]", 0.9),
    ("sweep_maxlog_multi[numpy]", "sweep_maxlog_seq[numpy]", 1.0),
    ("sweep_maxlog_multi[numpy32]", "sweep_maxlog_seq[numpy32]", 1.0),
]

#: Ratio invariants whose benchmarks are environment-conditional (skipped on
#: machines that can't run them — see bench_micro._ENV_BENCH_NAMES).  When
#: either side is absent from the fresh artifact the gate is *skipped*, not
#: failed: a <4-core runner never records the fleet pair.
ENV_RATIO_GATES = [
    ("serving_fleet[numpy]", "serving_fleet_single[numpy]", 1.8),
    ("viterbi_decode[numba]", "viterbi_decode[python]", 5.0),
]

#: Benchmark names that only capable environments record; their absence from
#: a fresh run is expected, never a regression.  Keep in sync with
#: bench_micro._ENV_BENCH_NAMES.
ENV_BENCH_NAMES = frozenset(
    {
        "maxlog_llrs[numba]",
        "viterbi_decode[numba]",
        "serving_fleet[numpy]",
        "serving_fleet_single[numpy]",
    }
)

#: (benchmark, sym/s floor) — absolute floors low enough to be
#: machine-independent in practice.  ``serving_coded`` counts decoded info
#: bits: the measured rate is ~1e5/s, the floor leaves 5x headroom.
ABSOLUTE_FLOORS = [
    ("maxlog_llrs[numpy]", 1e6),
    ("serving_coded[numpy]", 2e4),
]


def load(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        sys.exit(f"check_bench: cannot read {path}: {exc}")
    if not isinstance(data.get("benchmarks"), list):
        sys.exit(f"check_bench: {path} has no 'benchmarks' list")
    return data


def rates(artifact: dict) -> dict[str, float]:
    return {
        b["name"]: float(b["symbols_per_second"])
        for b in artifact["benchmarks"]
        if "symbols_per_second" in b
    }


def run_suite() -> None:
    cmd = [
        sys.executable, "-m", "pytest",
        str(REPO / "benchmarks" / "bench_micro.py"),
        "--benchmark-only", "-q", "-p", "no:cacheprovider",
    ]
    print(f"check_bench: running {' '.join(cmd)}", flush=True)
    result = subprocess.run(cmd, cwd=REPO)
    if result.returncode != 0:
        sys.exit("check_bench: benchmark suite failed (in-bench assertion?)")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="max fractional sym/s regression vs baseline (default 0.30)")
    parser.add_argument("--no-run", action="store_true",
                        help="compare the existing artifact instead of re-running")
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance < 1.0:
        parser.error("--tolerance must be in (0, 1)")

    baseline = copy.deepcopy(load(ARTIFACT))
    if not args.no_run:
        run_suite()
    current = load(ARTIFACT)
    base_rates, cur_rates = rates(baseline), rates(current)

    failures: list[str] = []
    warnings: list[str] = []

    # 1. relative gate (same-environment baselines only)
    comparable = args.no_run or baseline.get("machine_info") == current.get("machine_info")
    print(f"\n{'benchmark':<34} {'baseline':>12} {'current':>12} {'ratio':>7}")
    for name in sorted(base_rates):
        if name not in cur_rates:
            if name in ENV_BENCH_NAMES:
                warnings.append(
                    f"env-conditional benchmark {name!r} in the baseline was "
                    "not recorded by this environment"
                )
            else:
                failures.append(f"tracked benchmark {name!r} missing from the fresh run")
            continue
        ratio = cur_rates[name] / base_rates[name]
        print(f"{name:<34} {base_rates[name]:>10.3g}/s {cur_rates[name]:>10.3g}/s "
              f"{ratio:>6.2f}x")
        if ratio < 1.0 - args.tolerance:
            msg = (f"{name}: {cur_rates[name]:.3g} sym/s is "
                   f"{(1 - ratio) * 100:.0f}% below baseline {base_rates[name]:.3g}")
            (failures if comparable else warnings).append(msg)
    if not comparable:
        print("\ncheck_bench: machine_info differs from the committed baseline — "
              "absolute regressions are warnings, ratio gates still apply")

    # 2. machine-independent ratio gates on the fresh artifact
    for num, den, floor in RATIO_GATES:
        if num not in cur_rates or den not in cur_rates:
            failures.append(f"ratio gate {num}/{den}: benchmark missing from artifact")
            continue
        ratio = cur_rates[num] / cur_rates[den]
        status = "ok" if ratio >= floor else "FAIL"
        print(f"ratio {num} / {den}: {ratio:.2f}x (floor {floor}x) {status}")
        if ratio < floor:
            failures.append(f"{num} is only {ratio:.2f}x {den}, floor is {floor}x")

    # 3. environment-conditional ratio gates: absent pair = skip, not failure
    for num, den, floor in ENV_RATIO_GATES:
        if num not in cur_rates or den not in cur_rates:
            print(f"ratio {num} / {den}: skipped (not recorded by this environment)")
            continue
        ratio = cur_rates[num] / cur_rates[den]
        status = "ok" if ratio >= floor else "FAIL"
        print(f"ratio {num} / {den}: {ratio:.2f}x (floor {floor}x) {status}")
        if ratio < floor:
            failures.append(f"{num} is only {ratio:.2f}x {den}, floor is {floor}x")

    for name, floor in ABSOLUTE_FLOORS:
        if name not in cur_rates:
            failures.append(f"floor gate {name}: benchmark missing from artifact")
            continue
        status = "ok" if cur_rates[name] >= floor else "FAIL"
        print(f"floor {name}: {cur_rates[name]:.3g} sym/s (floor {floor:.0e}) {status}")
        if cur_rates[name] < floor:
            failures.append(f"{name} at {cur_rates[name]:.3g} sym/s is below {floor:.0e}")

    for msg in warnings:
        print(f"check_bench: WARNING (cross-machine): {msg}")
    if failures:
        print("\ncheck_bench: FAILED")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print("\ncheck_bench: all gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
