"""Ablation B — decision-region sampling resolution vs extraction quality.

The extraction step samples the demapper on a resolution² grid (on-device,
this is resolution² ANN inferences — it has a real hardware cost).  This
bench sweeps the resolution and reports extraction time and resulting BER:
how coarse can the grid be before communication performance degrades?
"""

import numpy as np
import pytest

from repro.channels import AWGNChannel
from repro.extraction import HybridDemapper
from repro.link import simulate_ber
from repro.utils.tables import format_table

SNR_DB = 8.0

_results: dict[int, float] = {}


@pytest.mark.parametrize("resolution", [32, 64, 128, 256])
def test_grid_resolution(benchmark, resolution, bench_system_8db,
                         bench_constellation_8db, capsys):
    sigma2 = AWGNChannel(SNR_DB, 4).sigma2
    hybrid = benchmark.pedantic(
        HybridDemapper.extract,
        args=(bench_system_8db.demapper, sigma2),
        kwargs=dict(method="lsq", resolution=resolution,
                    fallback=bench_constellation_8db),
        rounds=3,
        iterations=1,
    )
    ber = simulate_ber(
        bench_constellation_8db,
        AWGNChannel(SNR_DB, 4, rng=np.random.default_rng(60)),
        hybrid.demap_bits, 300_000, rng=61, max_errors=2500,
    ).ber
    _results[resolution] = ber
    with capsys.disabled():
        print()
        print(format_table(
            ["resolution", "grid points (ANN inferences)", "BER @ 8 dB"],
            [[resolution, resolution**2, ber]],
            float_fmt=".4g",
        ))
    # even a very coarse grid must produce a working receiver
    assert ber < 0.05
    # from 64x64 upward the BER is at the conventional level
    if resolution >= 64:
        assert ber < 0.015
