"""Session state machine, bounded queues, and cross-session micro-batching."""

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.extraction import HybridDemapper
from repro.extraction.monitor import DegradationMonitor
from repro.link.frames import FrameConfig, build_frame
from repro.modulation import psk_constellation, qam_constellation
from repro.serving import (
    RETRAINING,
    SERVING,
    DemapperSession,
    ServingFrame,
    SessionConfig,
    collect_microbatches,
)

SIGMA2 = sigma2_from_snr(8.0, 4)


def make_frame(seq, order=16, n=32, rng=None):
    rng = np.random.default_rng(seq if rng is None else rng)
    f = build_frame(FrameConfig(pilot_symbols=8, payload_symbols=n - 8), order, rng)
    y = rng.normal(size=n) + 1j * rng.normal(size=n)
    return ServingFrame(seq=seq, indices=f.indices, pilot_mask=f.pilot_mask, received=y)


def make_session(sid="s0", const=None, *, queue_depth=4, retrain=None, sigma2=SIGMA2):
    const = const if const is not None else qam_constellation(16)
    return DemapperSession(
        sid,
        HybridDemapper(constellation=const, sigma2=SIGMA2),
        DegradationMonitor(0.1, window=2, cooldown=2),
        config=SessionConfig(queue_depth=queue_depth),
        retrain=retrain,
        sigma2=sigma2,
        rng=0,
    )


class TestSession:
    def test_bounded_queue_backpressure(self):
        s = make_session(queue_depth=2)
        assert s.submit(make_frame(0))
        assert s.submit(make_frame(1))
        assert not s.submit(make_frame(2))  # full -> rejected
        assert s.stats.rejects == 1
        assert s.pending == 2
        s.pop()
        assert s.submit(make_frame(2))  # room again

    def test_ready_requires_serving_state_and_frames(self):
        s = make_session()
        assert not s.ready  # empty queue
        s.submit(make_frame(0))
        assert s.ready
        s.begin_retrain()
        assert s.state == RETRAINING
        assert not s.ready  # retraining sessions are never served

    def test_install_resumes_and_resets_monitor(self):
        s = make_session()
        s.monitor.observe(0.5)
        s.begin_retrain()
        new_hybrid = HybridDemapper(constellation=psk_constellation(16), sigma2=SIGMA2)
        s.install(new_hybrid)
        assert s.state == SERVING
        assert s.hybrid is new_hybrid
        assert np.isnan(s.monitor.current_level)  # reset
        assert s.stats.retrains == 1

    def test_begin_retrain_spawns_deterministic_rngs(self):
        a, b = make_session("a"), make_session("b")
        ra1, ra2 = a.begin_retrain(), a.begin_retrain()
        rb1 = b.begin_retrain()
        # same session seed => same spawn sequence; successive spawns differ
        assert ra1.random() == rb1.random()
        assert ra1.random() != ra2.random()

    def test_own_sigma2_independent_of_hybrid(self):
        s = make_session(sigma2=0.33)
        assert s.sigma2 == 0.33
        s.update_sigma2(0.5)
        assert s.sigma2 == 0.5
        assert s.hybrid.sigma2 == SIGMA2  # demapper untouched: no swap needed
        with pytest.raises(ValueError):
            s.update_sigma2(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(queue_depth=0)
        with pytest.raises(ValueError):
            make_session(sigma2=-1.0)
        with pytest.raises(ValueError):
            ServingFrame(
                seq=0,
                indices=np.zeros(3, dtype=np.int64),
                pilot_mask=np.zeros(4, dtype=bool),
                received=np.zeros(4, dtype=np.complex128),
            )


class TestMicroBatching:
    def test_shared_constellation_coalesces(self):
        qam = qam_constellation(16)
        sessions = [make_session(f"s{i}", qam) for i in range(4)]
        for i, s in enumerate(sessions):
            s.submit(make_frame(i))
        batches = collect_microbatches(sessions)
        assert len(batches) == 1
        assert batches[0].occupancy == 4
        assert [s.session_id for s in batches[0].sessions] == ["s0", "s1", "s2", "s3"]

    def test_one_frame_per_session_per_round(self):
        sessions = [make_session("s0")]
        sessions[0].submit(make_frame(0))
        sessions[0].submit(make_frame(1))
        batches = collect_microbatches(sessions)
        assert batches[0].frames[0].seq == 0  # head frame only
        assert sessions[0].pending == 1

    def test_different_constellations_split(self):
        qam, psk = qam_constellation(16), psk_constellation(16)
        sessions = [make_session("q0", qam), make_session("p0", psk), make_session("q1", qam)]
        for i, s in enumerate(sessions):
            s.submit(make_frame(i))
        batches = collect_microbatches(sessions)
        assert [b.occupancy for b in batches] == [2, 1]
        assert {s.session_id for s in batches[0].sessions} == {"q0", "q1"}

    def test_max_batch_splits_in_order(self):
        qam = qam_constellation(16)
        sessions = [make_session(f"s{i}", qam) for i in range(5)]
        for i, s in enumerate(sessions):
            s.submit(make_frame(i))
        batches = collect_microbatches(sessions, max_batch=2)
        assert [b.occupancy for b in batches] == [2, 2, 1]
        order = [s.session_id for b in batches for s in b.sessions]
        assert order == ["s0", "s1", "s2", "s3", "s4"]

    def test_retraining_sessions_skipped(self):
        qam = qam_constellation(16)
        sessions = [make_session(f"s{i}", qam) for i in range(3)]
        for i, s in enumerate(sessions):
            s.submit(make_frame(i))
        sessions[1].begin_retrain()
        batches = collect_microbatches(sessions)
        assert [s.session_id for s in batches[0].sessions] == ["s0", "s2"]
        assert sessions[1].pending == 1  # its frame stays queued

    def test_empty_when_nothing_ready(self):
        assert collect_microbatches([make_session()]) == []

    def test_max_batch_validation(self):
        with pytest.raises(ValueError):
            collect_microbatches([], max_batch=0)
