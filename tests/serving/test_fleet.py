"""Fleet front-end: sharding, affinity placement, live migration, config API.

The determinism contract one level up: a session's LLR/trigger/σ²/tier
timelines are a pure function of its own frame order, so they are
bit-identical at any shard count {1, 2, 4}, any placement seed and any
migration schedule.  Plus the PR's API-redesign satellites: the frozen
``EngineConfig`` construction path (legacy keywords via a single-warning
deprecation shim), the curated ``from repro.serving import *`` surface,
and the one ``SCHEMA_VERSION`` across every serving snapshot.
"""

import threading
import warnings

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.channels.factories import AWGNFactory, CompositeFactory, PhaseOffsetFactory
from repro.extraction import HybridDemapper
from repro.extraction.monitor import PilotBERMonitor
from repro.link.frames import FrameConfig
from repro.modulation import qam_constellation
from repro.serving import (
    DEGRADED,
    QUARANTINED,
    SCHEMA_VERSION,
    SERVING,
    CodedFrameConfig,
    DemapperSession,
    EngineConfig,
    FleetFrontEnd,
    MetricsRegistry,
    MigrationPlan,
    RetrainSupervisor,
    ServingEngine,
    SessionConfig,
    generate_traffic,
    run_fleet_load,
)
from repro.serving.loadgen import SteadyChannel, SteppedChannel
from repro.serving.obs_report import export_run

SIGMA2 = sigma2_from_snr(8.0, 4)
FC = FrameConfig(pilot_symbols=16, payload_symbols=48)
N_SESSIONS = 8
N_GROUPS = 4
N_FRAMES = 8
OFFSET = np.pi / 4


class RotatePolicy:
    """Deterministic-in-rng retrain stand-in (see test_determinism)."""

    def __init__(self, qam):
        self.qam = qam

    def __call__(self, rng):
        angle = OFFSET + rng.normal(scale=1e-3)
        return HybridDemapper(
            constellation=type(self.qam)(points=self.qam.points * np.exp(1j * angle)),
            sigma2=SIGMA2,
        )


@pytest.fixture(scope="module")
def qam_groups():
    """Four distinct centroid sets — four affinity-placement keys."""
    base = qam_constellation(16)
    return tuple(
        type(base)(points=base.points * np.exp(1j * g * 0.03)) for g in range(N_GROUPS)
    )


def build_sessions(qam_groups, *, with_policy=True, seed=99):
    """N sessions striped across the constellation groups."""
    master = np.random.default_rng(seed)
    sessions = []
    for i in range(N_SESSIONS):
        (srng,) = master.spawn(1)
        qam = qam_groups[i % N_GROUPS]
        sessions.append(
            DemapperSession(
                f"s{i:03d}",
                HybridDemapper(constellation=qam, sigma2=SIGMA2),
                PilotBERMonitor(0.12, window=2, cooldown=2),
                config=SessionConfig(frame=FC, queue_depth=4),
                retrain=RotatePolicy(qam) if with_policy else None,
                rng=srng,
            )
        )
    return sessions


def make_traffic(qam_groups, session_ids, *, seed=17):
    """Deterministic per-session traffic; half the fleet sees a phase jump."""
    chan_clean = SteadyChannel(AWGNFactory(8.0, 4))
    chan_jump = SteppedChannel(
        AWGNFactory(8.0, 4),
        CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(8.0, 4))),
        step_seq=4,
    )
    rng = np.random.default_rng(seed)
    traffic = {}
    for i, sid in enumerate(session_ids):
        (srng,) = rng.spawn(1)
        chan = chan_jump if i % 2 == 0 else chan_clean
        traffic[sid] = generate_traffic(qam_groups[i % N_GROUPS], FC, N_FRAMES, chan, srng)
    return traffic


def fleet_serve(
    qam_groups,
    *,
    n_shards,
    placement_seed=0,
    migrations=(),
    parallel=False,
):
    """One full fleet run; returns (per-session LLRs, timelines, fleet stats)."""
    llrs: dict[str, list[np.ndarray]] = {}

    def on_frame(s, f, block, rep):
        llrs.setdefault(s.session_id, []).append(block.copy())

    fleet = FleetFrontEnd(
        n_shards,
        config_factory=lambda i: EngineConfig(max_batch=64, on_frame=on_frame),
        placement_seed=placement_seed,
        parallel=parallel,
    )
    sessions = build_sessions(qam_groups)
    for s in sessions:
        fleet.add_session(s)
    traffic = make_traffic(qam_groups, [s.session_id for s in sessions])
    with fleet:
        stats = run_fleet_load(fleet, traffic, migrations=migrations, max_rounds=500)
    timelines = {
        s.session_id: (
            tuple(s.stats.trigger_seqs),
            s.stats.retrains,
            tuple(s.stats.tier_timeline),
            tuple(s.stats.sigma2_trajectory),
        )
        for s in sessions
    }
    return llrs, timelines, stats


def assert_identical(run, reference):
    llrs, timelines, _ = run
    ref_llrs, ref_timelines, _ = reference
    assert timelines == ref_timelines
    assert set(llrs) == set(ref_llrs)
    for sid in ref_llrs:
        assert len(llrs[sid]) == len(ref_llrs[sid]) == N_FRAMES
        for got, ref in zip(llrs[sid], ref_llrs[sid]):
            assert np.array_equal(got, ref)


@pytest.fixture(scope="module")
def reference(qam_groups):
    """The single-shard run every other placement must reproduce."""
    return fleet_serve(qam_groups, n_shards=1)


# ---------------------------------------------------------------------------
# EngineConfig: the redesigned construction API


class TestEngineConfig:
    def test_config_and_legacy_build_identical_engines(self):
        sched_args = dict(max_batch=7, retrain_workers=2)
        cfg_engine = ServingEngine(config=EngineConfig(**sched_args))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy_engine = ServingEngine(**sched_args)
        try:
            assert cfg_engine.max_batch == legacy_engine.max_batch == 7
            assert cfg_engine.worker.n_workers == legacy_engine.worker.n_workers == 2
            assert cfg_engine.config == legacy_engine.config == EngineConfig(**sched_args)
        finally:
            cfg_engine.close()
            legacy_engine.close()

    def test_legacy_keywords_warn_exactly_once(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine = ServingEngine(max_batch=4, retrain_workers=0)
        engine.close()
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "EngineConfig" in str(deprecations[0].message)

    def test_config_path_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ServingEngine(config=EngineConfig(max_batch=4)).close()
            ServingEngine().close()  # all-defaults path is the config path

    def test_mixing_config_and_legacy_raises(self):
        with pytest.raises(TypeError, match="not both"):
            ServingEngine(config=EngineConfig(), max_batch=4)

    def test_validation_lives_in_the_config(self):
        with pytest.raises(ValueError, match="max_batch"):
            EngineConfig(max_batch=0)
        with pytest.raises(ValueError, match="n_workers"):
            EngineConfig(retrain_workers=-1)
        # and the legacy shim still surfaces the same errors
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError, match="max_batch"):
                ServingEngine(max_batch=0)

    def test_config_is_frozen_and_buildable(self):
        cfg = EngineConfig(max_batch=3)
        with pytest.raises(AttributeError):
            cfg.max_batch = 5
        engine = cfg.build()
        try:
            assert engine.config is cfg
            assert engine.max_batch == 3
        finally:
            engine.close()

    def test_stateful_fields_detected(self):
        assert EngineConfig().stateful_fields_set() == ()
        cfg = EngineConfig(supervisor=RetrainSupervisor(), on_frame=lambda *a: None)
        assert cfg.stateful_fields_set() == ("supervisor", "on_frame")


# ---------------------------------------------------------------------------
# Package surface


class TestPackageSurface:
    def test_star_import_is_supported(self):
        ns: dict = {}
        exec("from repro.serving import *", ns)  # noqa: S102 — the contract itself
        import repro.serving as pkg

        for name in pkg.__all__:
            assert name in ns, f"__all__ name {name!r} not importable"
        public = {k for k in ns if not k.startswith("_")}
        assert public == set(pkg.__all__)

    def test_fleet_tier_is_exported(self):
        import repro.serving as pkg

        for name in ("FleetFrontEnd", "EngineConfig", "MigrationPlan",
                     "run_fleet_load", "SCHEMA_VERSION"):
            assert name in pkg.__all__
            assert getattr(pkg, name) is not None


# ---------------------------------------------------------------------------
# Snapshot schema unification


class TestSchemaUnification:
    def test_one_schema_constant_everywhere(self, qam_groups):
        engine = ServingEngine(config=EngineConfig(max_batch=4))
        session = build_sessions(qam_groups, with_policy=False)[0]
        engine.add_session(session)
        doc = export_run(engine)
        assert engine.telemetry.snapshot()["schema"] == SCHEMA_VERSION
        assert session.stats.snapshot()["schema"] == SCHEMA_VERSION
        assert doc["schema"] == SCHEMA_VERSION
        assert doc["engine"]["schema"] == SCHEMA_VERSION
        engine.close()
        with FleetFrontEnd(2, config=EngineConfig(), parallel=False) as fleet:
            snap = fleet.snapshot()
        assert snap["schema"] == SCHEMA_VERSION
        assert snap["merged"]["schema"] == SCHEMA_VERSION
        assert all(s["schema"] == SCHEMA_VERSION for s in snap["shards"])

    def test_legacy_alias_still_points_at_it(self):
        from repro.serving.telemetry import SNAPSHOT_SCHEMA

        assert SNAPSHOT_SCHEMA == SCHEMA_VERSION


# ---------------------------------------------------------------------------
# Constellation-affinity placement


class TestPlacement:
    def test_shared_constellation_lands_on_one_shard(self, qam_groups):
        with FleetFrontEnd(4, config=EngineConfig(), parallel=False) as fleet:
            sessions = build_sessions(qam_groups, with_policy=False)
            for s in sessions:
                fleet.add_session(s)
            by_group: dict[int, set[int]] = {}
            for i, s in enumerate(sessions):
                by_group.setdefault(i % N_GROUPS, set()).add(
                    fleet.shard_of(s.session_id)
                )
            for group, shards in by_group.items():
                assert len(shards) == 1, f"group {group} split across {shards}"

    def test_distinct_constellations_spread(self, qam_groups):
        """Some placement seed spreads 4 groups over more than one shard."""
        for seed in range(8):
            fleet = FleetFrontEnd(
                4, config=EngineConfig(), placement_seed=seed, parallel=False
            )
            sessions = build_sessions(qam_groups, with_policy=False)
            shards = {fleet.place(s) for s in sessions}
            fleet.close()
            if len(shards) > 1:
                return
        pytest.fail("no placement seed in range(8) spread the groups at all")

    def test_placement_seed_reshuffles(self, qam_groups):
        sessions = build_sessions(qam_groups, with_policy=False)
        placements = set()
        for seed in range(8):
            fleet = FleetFrontEnd(
                4, config=EngineConfig(), placement_seed=seed, parallel=False
            )
            placements.add(tuple(fleet.place(s) for s in sessions))
            fleet.close()
        assert len(placements) > 1

    def test_explicit_shard_override_and_bounds(self, qam_groups):
        with FleetFrontEnd(2, config=EngineConfig(), parallel=False) as fleet:
            session = build_sessions(qam_groups, with_policy=False)[0]
            fleet.add_session(session, shard=1)
            assert fleet.shard_of(session.session_id) == 1
            assert fleet.session(session.session_id) is session
            assert fleet.has_session(session.session_id)
            with pytest.raises(ValueError, match="duplicate"):
                fleet.add_session(session)
            other = build_sessions(qam_groups, with_policy=False, seed=7)[1]
            with pytest.raises(ValueError, match="shard must be"):
                fleet.add_session(other, shard=5)
            with pytest.raises(KeyError):
                fleet.shard_of("nope")

    def test_replicated_config_must_be_stateless(self):
        with pytest.raises(ValueError, match="supervisor"):
            FleetFrontEnd(2, config=EngineConfig(supervisor=RetrainSupervisor()))
        # a single shard may carry collaborators (nothing is shared)
        FleetFrontEnd(
            1, config=EngineConfig(supervisor=RetrainSupervisor()), parallel=False
        ).close()
        with pytest.raises(ValueError, match="not both"):
            FleetFrontEnd(2, config=EngineConfig(), config_factory=lambda i: EngineConfig())
        with pytest.raises(ValueError, match="n_shards"):
            FleetFrontEnd(0)


# ---------------------------------------------------------------------------
# The tentpole invariance: shard count x placement seed x migration schedule


class TestPlacementInvariance:
    @pytest.mark.parametrize("n_shards", [2, 4])
    @pytest.mark.parametrize("placement_seed", [0, 3])
    def test_invariant_to_shard_count_and_placement(
        self, qam_groups, reference, n_shards, placement_seed
    ):
        assert_identical(
            fleet_serve(
                qam_groups, n_shards=n_shards, placement_seed=placement_seed
            ),
            reference,
        )

    def test_invariant_to_migration_schedule(self, qam_groups, reference):
        migrations = [
            MigrationPlan("s000", round=1, dest_shard=3),
            MigrationPlan("s003", round=2, dest_shard=0),
            MigrationPlan("s000", round=4, dest_shard=1),
            MigrationPlan("s005", round=3, dest_shard=2),
        ]
        run = fleet_serve(qam_groups, n_shards=4, migrations=migrations)
        assert_identical(run, reference)
        assert run[2].migrations_in == run[2].migrations_out == len(migrations)

    def test_parallel_stepping_matches_reference(self, qam_groups, reference):
        assert_identical(
            fleet_serve(qam_groups, n_shards=2, parallel=True), reference
        )

    def test_triggers_actually_fire(self, reference):
        _, timelines, _ = reference
        fired = [sid for sid, (seqs, *_rest) in timelines.items() if seqs]
        assert len(fired) == N_SESSIONS // 2  # the phase-jump half


# ---------------------------------------------------------------------------
# Live migration mechanics


def two_shard_fleet(qam_groups, **session_kwargs):
    fleet = FleetFrontEnd(2, config=EngineConfig(max_batch=8), parallel=False)
    session = build_sessions(qam_groups, **session_kwargs)[0]
    fleet.add_session(session, shard=0)
    return fleet, session


class TestMigration:
    def test_queued_frames_survive_in_order(self, qam_groups):
        fleet, session = two_shard_fleet(qam_groups, with_policy=False)
        sid = session.session_id
        traffic = generate_traffic(
            qam_groups[0], FC, 4, SteadyChannel(AWGNFactory(8.0, 4)), 3
        )
        with fleet:
            for frame in traffic:
                assert fleet.submit(sid, frame)
            fleet.migrate(sid, 1)
            assert fleet.shard_of(sid) == 1
            assert session.pending == 4  # nothing lost in transit
            served = []
            fleet.shards[1].on_frame = lambda s, f, block, rep: served.append(f.seq)
            fleet.drain(max_rounds=50)
        assert served == [f.seq for f in traffic]  # destination, in order
        assert fleet.shards[0].telemetry.frames_served == 0
        assert fleet.shards[1].telemetry.frames_served == 4
        assert fleet.shards[0].telemetry.migrations_out == 1
        assert fleet.shards[1].telemetry.migrations_in == 1
        assert fleet.migrations == 1

    def test_queued_stamps_rebased_across_clock_skew(self, qam_groups):
        """Frames stamped on a source clock that runs AHEAD of the
        destination must not surface negative queue waits there."""
        fleet = FleetFrontEnd(2, config=EngineConfig(max_batch=8), parallel=False)
        helper, mover = build_sessions(qam_groups, with_policy=False)[:2]
        fleet.add_session(helper, shard=0)
        fleet.add_session(mover, shard=0)
        chan = SteadyChannel(AWGNFactory(8.0, 4))
        with fleet:
            for f in generate_traffic(qam_groups[0], FC, 3, chan, 3):
                fleet.submit(helper.session_id, f)
            fleet.step()  # shard 0's symbol clock advances; shard 1 stays at 0
            assert fleet.shards[0].telemetry.now > fleet.shards[1].telemetry.now
            for f in generate_traffic(qam_groups[1], FC, 2, chan, 4):
                fleet.submit(mover.session_id, f)  # stamped on shard 0's clock
            fleet.migrate(mover.session_id, 1)
            fleet.drain(max_rounds=50)  # served on shard 1: wait must be >= 0
        assert mover.stats.frames_served == 2
        assert mover.stats.queue_wait.count == 2

    def test_migrate_to_current_shard_is_noop(self, qam_groups):
        fleet, session = two_shard_fleet(qam_groups, with_policy=False)
        with fleet:
            assert fleet.migrate(session.session_id, 0) is session
            assert fleet.migrations == 0
            assert fleet.shards[0].telemetry.migrations_out == 0
            with pytest.raises(ValueError, match="dest must be"):
                fleet.migrate(session.session_id, 2)

    def test_draining_session_refuses_migration(self, qam_groups):
        fleet, session = two_shard_fleet(qam_groups, with_policy=False)
        sid = session.session_id
        with fleet:
            frame = generate_traffic(
                qam_groups[0], FC, 1, SteadyChannel(AWGNFactory(8.0, 4)), 3
            )[0]
            fleet.submit(sid, frame)
            fleet.remove_session(sid, drain=True)  # queue nonempty: still live
            assert fleet.has_session(sid)
            with pytest.raises(ValueError, match="draining"):
                fleet.migrate(sid, 1)

    def test_scheduler_credit_travels(self, qam_groups):
        fleet, session = two_shard_fleet(qam_groups, with_policy=False)
        sid = session.session_id
        with fleet:
            fleet.shards[0].scheduler.restore(sid, 0.75)
            fleet.migrate(sid, 1)
            assert fleet.shards[0].scheduler.credit(sid) == 0.0
            assert fleet.shards[1].scheduler.credit(sid) == 0.75

    def test_quarantined_health_travels(self, qam_groups):
        fleet, session = two_shard_fleet(qam_groups, with_policy=False)
        sid = session.session_id
        frames = generate_traffic(
            qam_groups[0], FC, 2, SteadyChannel(AWGNFactory(8.0, 4)), 3
        )
        poisoned = frames[0].received.copy()
        poisoned[0] = complex(float("nan"), 0.0)
        from repro.serving import ServingFrame

        with fleet:
            fleet.submit(
                sid,
                ServingFrame(
                    seq=0,
                    indices=frames[0].indices,
                    pilot_mask=frames[0].pilot_mask,
                    received=poisoned,
                ),
            )
            fleet.step()
            assert session.health == QUARANTINED
            refusals_before = session.stats.quarantine_refusals
            fleet.migrate(sid, 1)
            assert session.health == QUARANTINED  # health travelled
            assert not fleet.submit(sid, frames[1])  # still fenced off
            assert session.stats.quarantine_refusals == refusals_before + 1

    def test_degraded_breaker_state_travels(self, qam_groups):
        fleet, session = two_shard_fleet(qam_groups, with_policy=False)
        sid = session.session_id
        with fleet:
            src, dst = fleet.shards
            # open the breaker by hand: one submission, failures to the max
            src.supervisor.on_submitted(sid, 0)
            record = src.supervisor.on_failure(sid, 1, RuntimeError("boom"))
            record = src.supervisor.on_failure(sid, 2, RuntimeError("boom"))
            record = src.supervisor.on_failure(sid, 3, RuntimeError("boom"))
            assert record.action == "degrade"
            session.set_health(DEGRADED, now=0)
            fleet.migrate(sid, 1)
            assert session.health == DEGRADED
            assert dst.supervisor.state(sid) == "open"
            assert dst.supervisor.failures(sid) == 3
            assert not dst.supervisor.allows(sid)  # triggers stay suppressed
            assert src.supervisor.state(sid) == "idle"  # source forgot

    def test_backoff_clock_is_rebased(self, qam_groups):
        fleet, session = two_shard_fleet(qam_groups, with_policy=False)
        sid = session.session_id
        with fleet:
            src, dst = fleet.shards
            # destination clock runs ahead of the source clock
            dst.telemetry.rounds = 10
            src.supervisor.on_submitted(sid, 0)
            src.supervisor.on_failure(sid, 0, RuntimeError("boom"))
            # retry_at = 0 + backoff(1) = 1 on the source clock (1 round out)
            assert src.supervisor.due_retries(1) == [sid]
            fleet.migrate(sid, 1)
            assert dst.supervisor.state(sid) == "backoff"
            assert dst.supervisor.due_retries(10) == []  # not due immediately…
            assert dst.supervisor.due_retries(11) == [sid]  # …one round out

    def test_in_flight_retrain_lands_on_destination(self, qam_groups):
        gate = threading.Event()
        done = HybridDemapper(constellation=qam_groups[0], sigma2=SIGMA2)

        def gated_retrain(rng):
            gate.wait(10.0)
            return done

        master = np.random.default_rng(1)
        session = DemapperSession(
            "mig",
            HybridDemapper(constellation=qam_groups[0], sigma2=SIGMA2),
            PilotBERMonitor(0.12, window=2),
            config=SessionConfig(frame=FC),
            retrain=gated_retrain,
            rng=master,
        )
        fleet = FleetFrontEnd(
            2,
            config_factory=lambda i: EngineConfig(max_batch=8, retrain_workers=1),
            parallel=False,
        )
        fleet.add_session(session, shard=0)
        src, dst = fleet.shards
        try:
            src._submit_retrain(session)
            assert src.worker.pending == 1
            fleet.migrate("mig", 1)
            # the job moved: source can never install into the wrong shard
            assert src.worker.pending == 0
            assert dst.worker.pending == 1
            assert dst.supervisor.state("mig") == "in_flight"
            gate.set()
            dst.worker.wait_all(10.0)
            dst.step()  # absorbs the install outcome
            assert session.hybrid is done
            assert session.state == SERVING
            assert session.stats.retrains == 1
            assert dst.supervisor.state("mig") == "idle"  # breaker re-armed here
            assert src.worker.take_outcomes() == []  # nothing leaked back
        finally:
            gate.set()
            fleet.close()

    def test_undelivered_outcomes_travel(self, qam_groups):
        """An inline install whose outcome the source never absorbed must
        reach the destination supervisor, not vanish."""
        fleet, session = two_shard_fleet(qam_groups, with_policy=True)
        sid = session.session_id
        with fleet:
            src, dst = fleet.shards
            src._submit_retrain(session)  # inline: installs synchronously
            assert session.stats.retrains == 1
            # outcome still queued on the source worker; migrate before a step
            fleet.migrate(sid, 1)
            assert src.worker.take_outcomes() == []
            dst.step()
            assert dst.supervisor.state(sid) == "idle"  # install absorbed here

    def test_import_refuses_duplicates_and_draining(self, qam_groups):
        fleet, session = two_shard_fleet(qam_groups, with_policy=False)
        with fleet:
            other = build_sessions(qam_groups, with_policy=False, seed=7)[0]
            fleet.shards[1].add_session(other)
            with pytest.raises(ValueError, match="duplicate"):
                fleet.shards[1].import_session(other)
            exported = build_sessions(qam_groups, with_policy=False, seed=8)[2]
            exported.draining = True
            with pytest.raises(ValueError, match="draining"):
                fleet.shards[1].import_session(exported)


# ---------------------------------------------------------------------------
# Fleet load driver


class TestFleetLoad:
    def test_migration_plan_validates(self):
        with pytest.raises(ValueError, match="round"):
            MigrationPlan("s", round=-1, dest_shard=0)
        with pytest.raises(ValueError, match="dest_shard"):
            MigrationPlan("s", round=0, dest_shard=-1)

    def test_departed_session_migration_is_skipped(self, qam_groups):
        fleet = FleetFrontEnd(2, config=EngineConfig(max_batch=8), parallel=False)
        sessions = build_sessions(qam_groups, with_policy=False)[:2]
        for s in sessions:
            fleet.add_session(s)
        traffic = make_traffic(qam_groups, [s.session_id for s in sessions])
        with fleet:
            stats = run_fleet_load(
                fleet,
                traffic,
                migrations=[MigrationPlan("not-there", round=1, dest_shard=1)],
                max_rounds=200,
            )
        assert fleet.migrations == 0
        assert stats.frames_served == 2 * N_FRAMES

    def test_conservation_across_shards(self, qam_groups, reference):
        run = fleet_serve(qam_groups, n_shards=4, placement_seed=3)
        assert run[2].frames_served == reference[2].frames_served
        assert run[2].symbols_served == reference[2].symbols_served
        assert run[2].frames_dropped == 0

    def test_stall_raises(self, qam_groups):
        fleet = FleetFrontEnd(2, config=EngineConfig(max_batch=8), parallel=False)
        session = build_sessions(qam_groups, with_policy=False)[0]
        fleet.add_session(session)
        frame = generate_traffic(
            qam_groups[0], FC, 1, SteadyChannel(AWGNFactory(8.0, 4)), 3
        )[0]
        with fleet:
            fleet.submit(session.session_id, frame)
            session.state = "retraining"  # wedged outside SERVING, no job
            with pytest.raises(RuntimeError, match="stalled"):
                run_fleet_load(fleet, {session.session_id: []}, max_rounds=50)
            session.state = SERVING  # unwedge so close() drains cleanly


# ---------------------------------------------------------------------------
# Fleet telemetry: merge, metrics, snapshot


class TestFleetTelemetry:
    def test_merged_stats_equal_shard_sums(self, qam_groups):
        llrs, _, stats = fleet_serve(qam_groups, n_shards=4, placement_seed=3)
        assert stats.frames_served == N_SESSIONS * N_FRAMES
        assert stats.joins == N_SESSIONS
        assert sum(len(v) for v in llrs.values()) == N_SESSIONS * N_FRAMES
        assert stats.queue_wait.count == N_SESSIONS * N_FRAMES

    def test_snapshot_breakdown(self, qam_groups):
        fleet = FleetFrontEnd(2, config=EngineConfig(max_batch=8), parallel=False)
        sessions = build_sessions(qam_groups, with_policy=False)[:2]
        for s in sessions:
            fleet.add_session(s)
        traffic = make_traffic(qam_groups, [s.session_id for s in sessions])
        with fleet:
            run_fleet_load(fleet, traffic, max_rounds=200)
            snap = fleet.snapshot()
        assert snap["n_shards"] == 2
        assert len(snap["shards"]) == 2
        assert snap["merged"]["frames_served"] == sum(
            s["frames_served"] for s in snap["shards"]
        )
        assert snap["sessions"] == 2

    def test_shard_labelled_metrics_merge(self, qam_groups):
        fleet = FleetFrontEnd(2, config=EngineConfig(max_batch=8), parallel=False)
        sessions = build_sessions(qam_groups, with_policy=False)[:2]
        for i, s in enumerate(sessions):
            fleet.add_session(s, shard=i)
        traffic = make_traffic(qam_groups, [s.session_id for s in sessions])
        with fleet:
            registries = fleet.register_metrics()
            assert len(registries) == 2
            run_fleet_load(fleet, traffic, max_rounds=200)
            merged = fleet.metrics()
        rows = {
            (inst.name, tuple(sorted(inst.labels.items()))): inst.value
            for inst in merged.collect()
            if inst.kind != "histogram"
        }
        per_shard = [
            rows[("serving_engine_frames_served", (("shard", str(i)),))]
            for i in range(2)
        ]
        assert sum(per_shard) == 2 * N_FRAMES
        assert all(v > 0 for v in per_shard)
        # session instruments carry the shard label too
        assert any(
            name == "serving_session_frames_served"
            and dict(labels).get("shard") == "0"
            for (name, labels) in rows
        )

    def test_metrics_requires_registration(self):
        with FleetFrontEnd(1, parallel=False) as fleet:
            with pytest.raises(RuntimeError, match="register_metrics"):
                fleet.metrics()


# ---------------------------------------------------------------------------
# Coded traffic across shards and migrations

#: fast-firing CRC monitor so the payload-aware trigger path is exercised
CODED = CodedFrameConfig(crc_fail_window=2, crc_fail_cooldown=2)


def coded_fleet_serve(qam_groups, *, n_shards, placement_seed=0, migrations=()):
    """One coded fleet run; returns (per-session decoded timelines, stats).

    Same shape as :func:`fleet_serve`, but every session carries a
    ``CodedFrameConfig`` and every timeline is decoded-bit-derived:
    per-frame ``(seq, crc_ok, post_fec_ber)`` reports plus CRC-failure
    seqs, decode counters and the trigger timeline.
    """
    reports: dict[str, list] = {}

    def on_frame(s, f, block, rep):
        reports.setdefault(s.session_id, []).append(
            (rep.seq, rep.crc_ok, rep.post_fec_ber)
        )

    fleet = FleetFrontEnd(
        n_shards,
        config_factory=lambda i: EngineConfig(max_batch=64, on_frame=on_frame),
        placement_seed=placement_seed,
        parallel=False,
    )
    master = np.random.default_rng(43)
    sessions = []
    for i in range(N_SESSIONS):
        (srng,) = master.spawn(1)
        qam = qam_groups[i % N_GROUPS]
        sessions.append(
            DemapperSession(
                f"s{i:03d}",
                HybridDemapper(constellation=qam, sigma2=SIGMA2),
                PilotBERMonitor(0.12, window=2, cooldown=2),
                config=SessionConfig(frame=FC, queue_depth=4, coded=CODED),
                retrain=RotatePolicy(qam),
                rng=srng,
            )
        )
    for s in sessions:
        fleet.add_session(s)
    chan_clean = SteadyChannel(AWGNFactory(8.0, 4))
    chan_jump = SteppedChannel(
        AWGNFactory(8.0, 4),
        CompositeFactory((PhaseOffsetFactory(OFFSET), AWGNFactory(8.0, 4))),
        step_seq=4,
    )
    rng = np.random.default_rng(59)
    traffic = {}
    for i, s in enumerate(sessions):
        (srng,) = rng.spawn(1)
        chan = chan_jump if i % 2 == 0 else chan_clean
        traffic[s.session_id] = generate_traffic(
            qam_groups[i % N_GROUPS], FC, N_FRAMES, chan, srng, coded=CODED
        )
    with fleet:
        stats = run_fleet_load(fleet, traffic, migrations=migrations, max_rounds=500)
    timelines = {
        s.session_id: (
            tuple(reports[s.session_id]),
            tuple(s.stats.trigger_seqs),
            s.stats.retrains,
            s.stats.frames_decoded,
            s.stats.crc_failures,
            tuple(s.stats.crc_fail_seqs),
            tuple(s.stats.post_fec_ber_trajectory),
        )
        for s in sessions
    }
    return timelines, stats


@pytest.fixture(scope="module")
def coded_reference(qam_groups):
    """The single-shard coded run every sharded placement must reproduce."""
    return coded_fleet_serve(qam_groups, n_shards=1)


class TestCodedFleetInvariance:
    """Coded sessions inherit the fleet determinism contract unchanged:
    decoded-bit timelines are invariant to shard count, placement seed and
    a mid-run migration schedule."""

    def test_coded_path_exercised_and_merged(self, coded_reference):
        timelines, stats = coded_reference
        assert stats.frames_decoded == N_SESSIONS * N_FRAMES
        assert stats.crc_failures == sum(t[4] for t in timelines.values())
        fired = [t for t in timelines.values() if t[4] > 0]
        assert len(fired) == N_SESSIONS // 2  # the phase-jump half

    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_invariant_to_shard_count(self, qam_groups, coded_reference, n_shards):
        timelines, stats = coded_fleet_serve(
            qam_groups, n_shards=n_shards, placement_seed=3
        )
        assert timelines == coded_reference[0]
        assert stats.frames_decoded == coded_reference[1].frames_decoded
        assert stats.crc_failures == coded_reference[1].crc_failures

    def test_invariant_to_migration_schedule(self, qam_groups, coded_reference):
        migrations = [
            MigrationPlan("s000", round=1, dest_shard=2),
            MigrationPlan("s003", round=2, dest_shard=0),
            MigrationPlan("s000", round=4, dest_shard=1),
        ]
        timelines, stats = coded_fleet_serve(
            qam_groups, n_shards=3, migrations=migrations
        )
        assert timelines == coded_reference[0]
        assert stats.migrations_in == stats.migrations_out == len(migrations)
        assert stats.frames_decoded == coded_reference[1].frames_decoded
