"""Serving control plane: in-loop σ², tiered adaptation, latency telemetry.

Three contracts on top of the PR-3 determinism story:

* **σ² loop** — each session's noise estimate follows a drifting SNR from
  its own pilots (EWMA over :func:`repro.link.estimation.
  estimate_noise_sigma2`), deterministically;
* **tier ladder** — a monitor trigger is answered by the cheap rigid
  tracking tier first; retrain+re-extract runs only for non-rigid warps or
  persisting degradation, and a recovered session re-arms the ladder;
* **invariance** — per-session LLR streams, trigger/tier timelines and σ²
  trajectories are bit-identical across micro-batch width, queue depth,
  retrain worker count and scheduler weight permutations (weights reorder
  *when* frames are served, never *what* a session's frames see).
"""

import numpy as np
import pytest

from repro.channels import sigma2_from_snr
from repro.channels.factories import (
    AWGNFactory,
    CompositeFactory,
    IQImbalanceFactory,
    PhaseOffsetFactory,
)
from repro.extraction import HybridDemapper, PilotBERMonitor
from repro.link.frames import FrameConfig
from repro.modulation import qam_constellation
from repro.serving import (
    EngineConfig,
    LatencyHistogram,
    ServingEngine,
    SessionConfig,
    SteadyChannel,
    SteppedChannel,
    build_fleet,
    generate_traffic,
    run_load,
)

S10 = sigma2_from_snr(10.0, 4)
S8 = sigma2_from_snr(8.0, 4)
FC = FrameConfig(pilot_symbols=32, payload_symbols=96)


@pytest.fixture(scope="module")
def qam16():
    return qam_constellation(16)


def control_plane_config(**overrides):
    defaults = dict(
        frame=FC,
        queue_depth=4,
        sigma2_alpha=0.5,
        tracking=True,
        track_attempts=1,
        track_residual=0.8,
    )
    defaults.update(overrides)
    return SessionConfig(**defaults)


def stub_policy(qam, sigma2=S10):
    """Deterministic retrain stand-in (restores the clean constellation)."""
    return lambda rng: HybridDemapper(constellation=qam, sigma2=sigma2)


class TestSigma2Loop:
    def run_snr_step(self, qam, alpha, *, n_frames=14, seed=3):
        engine = ServingEngine()
        (session,) = build_fleet(
            engine, 1, HybridDemapper(constellation=qam, sigma2=S10),
            monitor_factory=lambda: PilotBERMonitor(0.9, window=4),  # never fires
            config=control_plane_config(sigma2_alpha=alpha, tracking=False),
            seed=11,
        )
        chan = SteppedChannel(AWGNFactory(10.0, 4), AWGNFactory(6.0, 4), step_seq=4)
        traffic = {session.session_id: generate_traffic(qam, FC, n_frames, chan, seed)}
        run_load(engine, traffic)
        return session

    def test_sigma2_tracks_snr_drop(self, qam16):
        """An AWGN 10 dB → 6 dB step: the EWMA converges to the new floor."""
        s6 = sigma2_from_snr(6.0, 4)
        session = self.run_snr_step(qam16, alpha=0.4)
        traj = session.stats.sigma2_trajectory
        assert len(traj) == 14
        assert abs(traj[2] - S10) < 0.15 * S10          # pre-step: old floor
        assert abs(traj[-1] - s6) < 0.25 * s6           # post-step: converged
        assert traj[-1] > 1.8 * traj[2]                 # and it visibly moved
        assert session.sigma2 == traj[-1]

    def test_alpha_zero_keeps_sigma2_fixed(self, qam16):
        session = self.run_snr_step(qam16, alpha=0.0)
        assert session.stats.sigma2_trajectory == [S10] * 14

    def test_sigma2_trajectory_is_deterministic(self, qam16):
        a = self.run_snr_step(qam16, alpha=0.4).stats.sigma2_trajectory
        b = self.run_snr_step(qam16, alpha=0.4).stats.sigma2_trajectory
        assert a == b  # bit-identical floats, not just close

    def test_updated_sigma2_scales_next_frames_llrs(self, qam16):
        """Frame n is demapped with the σ² left by frames < n (causal loop)."""
        caps = {}
        engine = ServingEngine(config=EngineConfig(
            on_frame=lambda s, f, llrs, rep: caps.__setitem__(f.seq, (llrs.copy(), rep))
        ))
        (session,) = build_fleet(
            engine, 1, HybridDemapper(constellation=qam16, sigma2=S10),
            monitor_factory=lambda: PilotBERMonitor(0.9, window=4),
            config=control_plane_config(sigma2_alpha=1.0, tracking=False),
            seed=2,
        )
        traffic = {
            session.session_id: generate_traffic(
                qam16, FC, 2, SteadyChannel(AWGNFactory(8.0, 4)), 5
            )
        }
        run_load(engine, traffic)
        f0, f1 = traffic[session.session_id]
        # frame 0 used the initial σ²; its report carries the post-update one
        llrs0, rep0 = caps[0]
        assert np.array_equal(llrs0, session.hybrid.core.llrs(f0.received, S10))
        assert rep0.sigma2 != S10
        # frame 1 was demapped with exactly frame 0's updated estimate
        llrs1, _ = caps[1]
        assert np.array_equal(llrs1, session.hybrid.core.llrs(f1.received, rep0.sigma2))


class TestTieredAdaptation:
    def run_fleet(self, qam, after_factory, *, config=None, n_frames=16,
                  n_sessions=4, step=4, with_policy=True, seed=21, fleet_seed=99):
        engine = ServingEngine()
        sessions = build_fleet(
            engine, n_sessions, HybridDemapper(constellation=qam, sigma2=S10),
            monitor_factory=lambda: PilotBERMonitor(0.12, window=2, cooldown=2),
            config=config if config is not None else control_plane_config(),
            retrain_factory=(lambda i: stub_policy(qam)) if with_policy else None,
            seed=fleet_seed,
        )
        chan = SteppedChannel(AWGNFactory(10.0, 4), after_factory, step_seq=step)
        rng = np.random.default_rng(seed)
        traffic = {
            s.session_id: generate_traffic(qam, FC, n_frames, chan, r)
            for s, r in zip(sessions, rng.spawn(n_sessions))
        }
        run_load(engine, traffic)
        return engine, sessions

    def test_rigid_snr_drop_recovers_via_tracking_without_retrain(self, qam16):
        """Acceptance scenario: a π/4 rotation + 10→8 dB SNR drop is fully
        absorbed by the tracking tier — pilot BER returns below threshold,
        zero retrains fleet-wide, and the σ² loop lands on the new floor."""
        after = CompositeFactory((PhaseOffsetFactory(np.pi / 4), AWGNFactory(8.0, 4)))
        engine, sessions = self.run_fleet(qam16, after)
        assert engine.telemetry.retrains_started == 0
        assert engine.telemetry.tracks == len(sessions)
        for s in sessions:
            assert s.stats.retrains == 0
            assert s.stats.tracks == 1
            assert s.stats.tier_timeline == [(4, "track")]
            traj = np.array(s.stats.pilot_ber_trajectory)
            assert max(traj[:4]) < 0.05         # healthy before the jump
            assert traj[4] > 0.12               # catastrophic at the trigger
            assert max(traj[5:]) < 0.08         # recovered by the rigid tier
            # σ² followed the drop: from the 10 dB floor to ~the 8 dB floor
            assert 0.7 * S8 < s.stats.sigma2_trajectory[-1] < 1.4 * S8

    def test_persistent_degradation_escalates_to_retrain(self, qam16):
        """Rotation + SNR crash to 0 dB: the rigid tier fixes the rotation
        but BER stays degraded, so the next trigger escalates."""
        after = CompositeFactory((PhaseOffsetFactory(np.pi / 4), AWGNFactory(0.0, 4)))
        engine, sessions = self.run_fleet(qam16, after)
        assert engine.telemetry.retrains_started > 0
        for s in sessions:
            assert s.stats.tracks >= 1 and s.stats.retrains >= 1
            # ladder order: cheap tier first, escalation second
            assert s.stats.tier_timeline[0][1] == "track"
            assert s.stats.tier_timeline[1][1] == "retrain"

    def test_nonrigid_warp_escalates_at_the_trigger(self, qam16):
        """IQ-imbalance warp: the tracker's residual check rejects the rigid
        model immediately — the very first trigger retrains."""
        after = CompositeFactory((IQImbalanceFactory(8.0, 0.8), AWGNFactory(10.0, 4)))
        engine, sessions = self.run_fleet(
            qam16, after,
            config=control_plane_config(sigma2_alpha=0.25, track_residual=0.35),
        )
        for s in sessions:
            # the very first trigger escalated at the trigger itself — the
            # rigid probe ran (tracks >= 1) and flagged the warp, so no
            # tracking-only response preceded the first retrain
            assert s.stats.tier_timeline[0][1] == "retrain"
            assert s.stats.tracks >= 1 and s.stats.retrains >= 1

    def test_tracking_without_policy_never_escalates(self, qam16):
        """No retrain policy: every trigger stays on the tracking tier and
        the fleet keeps streaming (no stall, no pause)."""
        after = CompositeFactory((PhaseOffsetFactory(np.pi / 4), AWGNFactory(0.0, 4)))
        engine, sessions = self.run_fleet(qam16, after, with_policy=False)
        assert engine.telemetry.retrains_started == 0
        for s in sessions:
            assert s.stats.frames_served == 16
            assert s.stats.retrains == 0
            assert all(tier == "track" for _, tier in s.stats.tier_timeline)

    def test_recovery_rearms_the_ladder(self, qam16):
        """Two well-separated rigid jumps with track_attempts=1: the healthy
        window between them resets the track streak, so the second jump is
        again answered by tracking instead of escalating."""

        clean = AWGNFactory(10.0, 4)
        jump1 = CompositeFactory((PhaseOffsetFactory(np.pi / 4), clean))
        jump2 = CompositeFactory((PhaseOffsetFactory(np.pi / 2), clean))

        def chan(rng, seq):
            factory = clean if seq < 3 else (jump1 if seq < 9 else jump2)
            return factory(rng)

        engine = ServingEngine()
        (session,) = build_fleet(
            engine, 1, HybridDemapper(constellation=qam16, sigma2=S10),
            monitor_factory=lambda: PilotBERMonitor(0.12, window=2, cooldown=2),
            config=control_plane_config(),
            retrain_factory=lambda i: stub_policy(qam16),
            seed=13,
        )
        traffic = {session.session_id: generate_traffic(qam16, FC, 16, chan, 77)}
        run_load(engine, traffic)
        assert session.stats.retrains == 0   # escalation never needed
        assert session.stats.tracks == 2
        assert [tier for _, tier in session.stats.tier_timeline] == ["track", "track"]


class RotateStub:
    """Deterministic-in-rng retrain policy: corrected centroids plus an
    rng-drawn jitter, so reused/reordered job generators would change
    outputs (the same canary as the PR-3 determinism suite)."""

    def __init__(self, qam, angle):
        self.qam = qam
        self.angle = angle

    def __call__(self, rng):
        angle = self.angle + rng.normal(scale=1e-3)
        return HybridDemapper(
            constellation=type(self.qam)(points=self.qam.points * np.exp(1j * angle)),
            sigma2=S10,
        )


class TestControlPlaneDeterminism:
    """Mixed fleet — rigid jumps (tracking tier), IQ warps (retrain tier),
    clean sessions — served with every control-plane feature on.  All
    per-session timelines must be bit-identical across engine knobs."""

    N_SESSIONS = 6
    N_FRAMES = 10

    def make_traffic(self, qam, session_ids, seed=17):
        clean = SteadyChannel(AWGNFactory(10.0, 4))
        rigid = SteppedChannel(
            AWGNFactory(10.0, 4),
            CompositeFactory((PhaseOffsetFactory(np.pi / 4), AWGNFactory(8.0, 4))),
            step_seq=4,
        )
        warp = SteppedChannel(
            AWGNFactory(10.0, 4),
            CompositeFactory((IQImbalanceFactory(8.0, 0.8), AWGNFactory(10.0, 4))),
            step_seq=4,
        )
        rng = np.random.default_rng(seed)
        traffic = {}
        for i, sid in enumerate(session_ids):
            (srng,) = rng.spawn(1)
            chan = (rigid, warp, clean)[i % 3]
            traffic[sid] = generate_traffic(qam, FC, self.N_FRAMES, chan, srng)
        return traffic

    def serve(self, qam, *, max_batch, queue_depth, retrain_workers, weights=None):
        llrs: dict[str, list[np.ndarray]] = {}
        engine = ServingEngine(config=EngineConfig(
            max_batch=max_batch,
            retrain_workers=retrain_workers,
            on_frame=lambda s, f, block, rep: llrs.setdefault(s.session_id, []).append(
                block.copy()
            ),
        ))
        weights = weights if weights is not None else [1.0] * self.N_SESSIONS
        sessions = build_fleet(
            engine,
            self.N_SESSIONS,
            HybridDemapper(constellation=qam, sigma2=S10),
            monitor_factory=lambda: PilotBERMonitor(0.12, window=2, cooldown=2),
            config_factory=lambda i: control_plane_config(
                sigma2_alpha=0.25, track_residual=0.35,
                queue_depth=queue_depth, weight=weights[i],
            ),
            retrain_factory=lambda i: RotateStub(qam, np.pi / 4),
            seed=99,
        )
        with engine:
            run_load(engine, self.make_traffic(qam, [s.session_id for s in sessions]))
        timelines = {
            s.session_id: (
                tuple(s.stats.trigger_seqs),
                tuple(s.stats.tier_timeline),
                tuple(s.stats.sigma2_trajectory),
                s.stats.retrains,
                s.stats.tracks,
            )
            for s in sessions
        }
        return llrs, timelines

    @pytest.fixture(scope="class")
    def qamc(self):
        return qam_constellation(16)

    @pytest.fixture(scope="class")
    def reference(self, qamc):
        """Inline-worker, single-frame-batches, uniform-weight reference."""
        return self.serve(qamc, max_batch=1, queue_depth=1, retrain_workers=0)

    def assert_identical(self, run, reference):
        llrs, timelines = run
        ref_llrs, ref_timelines = reference
        assert timelines == ref_timelines
        assert set(llrs) == set(ref_llrs)
        for sid in ref_llrs:
            assert len(llrs[sid]) == len(ref_llrs[sid]) == self.N_FRAMES
            for got, ref in zip(llrs[sid], ref_llrs[sid]):
                assert np.array_equal(got, ref)

    def test_scenario_exercises_both_tiers(self, reference):
        """Sanity: the mixed fleet actually hits track AND retrain paths."""
        _, timelines = reference
        tiers = {t for _, tl, *_ in timelines.values() for _, t in tl}
        assert tiers == {"track", "retrain"}
        # the σ² loop is live too: every session's estimate moved
        assert all(traj[-1] != S10 for _, _, traj, _, _ in timelines.values())

    @pytest.mark.parametrize("max_batch", [2, 64])
    def test_invariant_to_micro_batch_width(self, qamc, reference, max_batch):
        self.assert_identical(
            self.serve(qamc, max_batch=max_batch, queue_depth=1, retrain_workers=0),
            reference,
        )

    @pytest.mark.parametrize("queue_depth", [2, 8])
    def test_invariant_to_queue_depth(self, qamc, reference, queue_depth):
        self.assert_identical(
            self.serve(qamc, max_batch=64, queue_depth=queue_depth, retrain_workers=0),
            reference,
        )

    def test_invariant_to_worker_threads(self, qamc, reference):
        self.assert_identical(
            self.serve(qamc, max_batch=64, queue_depth=4, retrain_workers=2),
            reference,
        )

    @pytest.mark.parametrize(
        "weights",
        [
            [1.0, 2.0, 0.5, 3.0, 1.0, 4.0],
            [4.0] * 6,
            [0.5] * 6,
        ],
    )
    def test_invariant_to_scheduler_weights(self, qamc, reference, weights):
        """Weights change when frames are served, never what they contain:
        multi-frame rounds are served in waves that replay per-frame state
        updates in the session's own frame order."""
        self.assert_identical(
            self.serve(
                qamc, max_batch=64, queue_depth=8, retrain_workers=0, weights=weights
            ),
            reference,
        )


class TestLatencyTelemetry:
    def test_histogram_buckets_mean_and_quantiles(self):
        h = LatencyHistogram()
        for v in (0, 1, 5, 5, 300):
            h.record(v)
        assert h.count == 5
        assert h.total == 311
        assert h.mean == 311 / 5
        snap = h.snapshot()
        # bucket upper bounds: 0, 1, 7 (covers 4..7), 511 (covers 256..511)
        assert snap["buckets"] == {0: 1, 1: 1, 7: 2, 511: 1}
        assert snap["p50"] == 7
        assert snap["p99"] == 511
        assert h.quantile(0.0) == 0
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.record(-1)

    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.quantile(0.99) == 0
        assert np.isnan(h.mean)
        assert h.snapshot()["count"] == 0

    def test_queue_wait_and_service_time_on_symbol_clock(self, qam16):
        """Co-batched frames share a service time (the launch width); a
        frame waiting a round accrues the symbols served in between."""
        reports = []
        engine = ServingEngine(config=EngineConfig(
            on_frame=lambda s, f, llrs, rep: reports.append(rep)
        ))
        sessions = build_fleet(
            engine, 2, HybridDemapper(constellation=qam16, sigma2=S10),
            monitor_factory=lambda: PilotBERMonitor(0.9, window=4),
            config=SessionConfig(frame=FC, queue_depth=2),
            seed=1,
        )
        chan = SteadyChannel(AWGNFactory(8.0, 4))
        n = FC.total_symbols
        for s in sessions:
            for frame in generate_traffic(qam16, FC, 2, chan, 4):
                assert engine.submit(s.session_id, frame)
        assert engine.step() == 2   # head frames, one batch of 2
        assert engine.step() == 2   # second frames, after 2n symbols served
        first, second = reports[:2], reports[2:]
        assert all(r.queue_wait == 0 and r.service_time == 2 * n for r in first)
        assert all(r.queue_wait == 2 * n and r.service_time == 2 * n for r in second)
        tele = engine.telemetry
        assert tele.now == 4 * n
        assert tele.queue_wait.count == tele.service_time.count == 4
        assert tele.queue_wait.total == 4 * n
        snap = tele.snapshot()
        assert snap["queue_wait"]["count"] == 4 and snap["service_time"]["mean"] == 2 * n

    def test_paused_session_frames_accrue_wait(self, qam16):
        """Frames queued behind a retrain keep aging on the symbol clock
        while other sessions are served."""
        reports = {}
        engine = ServingEngine(config=EngineConfig(
            on_frame=lambda s, f, llrs, rep: reports.setdefault(s.session_id, []).append(rep)
        ))
        paused, busy = build_fleet(
            engine, 2, HybridDemapper(constellation=qam16, sigma2=S10),
            monitor_factory=lambda: PilotBERMonitor(0.9, window=4),
            config=SessionConfig(frame=FC, queue_depth=4),
            seed=1,
        )
        chan = SteadyChannel(AWGNFactory(8.0, 4))
        n = FC.total_symbols
        frames = generate_traffic(qam16, FC, 3, chan, 6)
        engine.submit(paused.session_id, frames[0])
        paused.begin_retrain()  # pause with one frame queued at tick 0
        for f in frames:
            engine.submit(busy.session_id, f)
        for _ in range(3):
            engine.step()       # busy streams 3 frames; paused waits
        paused.install(paused.hybrid)  # resume
        engine.step()
        (rep,) = reports[paused.session_id]
        assert rep.queue_wait == 3 * n  # aged by the busy session's service


class TestEngineApi:
    def test_submit_unknown_session_names_the_id(self, qam16):
        engine = ServingEngine()
        with pytest.raises(KeyError, match="unknown session id 'nope'"):
            engine.submit("nope", None)
        with pytest.raises(KeyError, match="ghost"):
            engine.session("ghost")

    def test_session_config_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(sigma2_alpha=1.5)
        with pytest.raises(ValueError):
            SessionConfig(sigma2_alpha=-0.1)
        with pytest.raises(ValueError):
            SessionConfig(track_attempts=-1)
        with pytest.raises(ValueError):
            SessionConfig(track_residual=0.0)