"""Serving telemetry edge cases: histogram corners, merge, churn counters.

``LatencyHistogram`` is the signal both CI gates (tail-latency snapshots in
benchmark artifacts) and the weight controller read — its corners (empty,
q∈{0,1}, single bucket) and the merge-of-shards path must be exact, not
just plausible.
"""

import numpy as np
import pytest

from repro.serving import EngineStats, LatencyHistogram, SessionStats


def filled(values):
    h = LatencyHistogram()
    for v in values:
        h.record(v)
    return h


class TestLatencyHistogramEdges:
    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.count == 0 and h.total == 0
        assert np.isnan(h.mean)
        # every quantile of nothing is 0, including the extremes
        assert h.quantile(0.0) == 0
        assert h.quantile(0.5) == 0
        assert h.quantile(1.0) == 0
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["buckets"] == {}
        assert snap["p50"] == 0 and snap["p99"] == 0

    def test_extreme_quantiles_hit_extreme_buckets(self):
        h = filled([0, 3, 1000])
        # q=0 resolves to the smallest occupied bucket, q=1 to the largest
        assert h.quantile(0.0) == 0
        assert h.quantile(1.0) == 1023
        # and every quantile is monotone in q
        qs = [h.quantile(q) for q in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert qs == sorted(qs)

    def test_single_bucket_histogram(self):
        h = filled([5, 6, 7])  # all in bucket (4..7]
        assert h.count == 3 and h.total == 18
        assert h.mean == 6.0
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 7
        assert h.snapshot()["buckets"] == {7: 3}

    def test_single_observation(self):
        h = filled([0])
        assert h.quantile(0.0) == h.quantile(1.0) == 0
        h2 = filled([1])
        assert h2.quantile(0.5) == 1

    def test_validation(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.record(-1)
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)


class TestLatencyHistogramMerge:
    def test_merge_equals_recording_everything_in_one(self):
        a_vals = [0, 1, 5, 5, 300, 17]
        b_vals = [2, 5, 4096, 0]
        a, b = filled(a_vals), filled(b_vals)
        ref = filled(a_vals + b_vals)
        out = a.merge(b)
        assert out is a  # in-place, chainable
        assert a.count == ref.count
        assert a.total == ref.total
        assert a.mean == ref.mean
        assert a.snapshot() == ref.snapshot()
        for q in (0.0, 0.25, 0.5, 0.9, 0.99, 1.0):
            assert a.quantile(q) == ref.quantile(q)

    def test_merge_is_order_insensitive(self):
        a_vals, b_vals = [1, 2, 3], [100, 200]
        ab = filled(a_vals).merge(filled(b_vals))
        ba = filled(b_vals).merge(filled(a_vals))
        assert ab.snapshot() == ba.snapshot()

    def test_merge_with_empty_is_identity_both_ways(self):
        vals = [0, 7, 9]
        h = filled(vals)
        before = h.snapshot()
        h.merge(LatencyHistogram())
        assert h.snapshot() == before
        fresh = LatencyHistogram()
        fresh.merge(filled(vals))
        assert fresh.snapshot() == before

    def test_merge_does_not_mutate_the_source(self):
        src = filled([1, 2])
        src_before = src.snapshot()
        filled([9]).merge(src)
        assert src.snapshot() == src_before

    def test_shard_merge_consistency(self):
        """Per-shard snapshots combined == the fleet-wide histogram (the
        pattern a sharded engine would use to report global tails)."""
        rng = np.random.default_rng(3)
        shards = [
            [int(v) for v in rng.integers(0, 10_000, size=n)] for n in (10, 1, 0, 37)
        ]
        combined = LatencyHistogram()
        for shard in shards:
            combined.merge(filled(shard))
        ref = filled([v for shard in shards for v in shard])
        assert combined.snapshot() == ref.snapshot()


class TestChurnCounters:
    def test_engine_stats_snapshot_has_churn_fields(self):
        stats = EngineStats()
        stats.joins = 3
        stats.leaves = 1
        stats.drains_started = 2
        stats.drains_completed = 1
        stats.frames_dropped = 4
        stats.retrains_orphaned = 1
        stats.record_fleet_size(3)
        snap = stats.snapshot()
        assert snap["joins"] == 3 and snap["leaves"] == 1
        assert snap["drains_started"] == 2 and snap["drains_completed"] == 1
        assert snap["frames_dropped"] == 4 and snap["retrains_orphaned"] == 1
        assert snap["fleet_timeline"] == [(0, 3)]
        # snapshots are copies, not views
        snap["fleet_timeline"].append((9, 9))
        assert stats.fleet_timeline == [(0, 3)]

    def test_fleet_timeline_stamps_the_symbol_clock(self):
        stats = EngineStats()
        stats.record_fleet_size(2)
        stats.record_batch(2, 128)
        stats.record_fleet_size(3)
        assert stats.fleet_timeline == [(0, 2), (128, 3)]

    def test_session_stats_snapshot_has_churn_and_weight_fields(self):
        stats = SessionStats()
        stats.drain_refusals = 2
        stats.frames_dropped = 1
        stats.queue_wait.record(64)
        stats.weight_timeline.append((64, 2.0))
        snap = stats.snapshot()
        assert snap["drain_refusals"] == 2 and snap["frames_dropped"] == 1
        assert snap["queue_wait"]["count"] == 1
        assert snap["weight_timeline"] == [(64, 2.0)]
